"""Program container: code image plus initial data segment.

Instructions occupy 4 bytes each starting at address 0; data lives anywhere
in the 64-bit address space.  Fetching past the end of the code image yields
``nop`` padding followed by a ``halt`` -- this matters because the simulator
executes down mispredicted paths, which may run off the end of the program.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .instructions import HALT, NOP, Instruction

INSTRUCTION_BYTES = 4

#: How many nop instructions are implicitly appended past the end of the
#: code image before the implicit halt.  Wrong-path fetch may fall through
#: the last instruction; the pad keeps it harmless until the flush arrives.
WRONG_PATH_PAD = 64

_NOP = Instruction(NOP)
_HALT = Instruction(HALT)


class Program:
    """An executable image: instruction list + initial memory contents."""

    def __init__(self, instructions: List[Instruction],
                 data: Optional[Dict[int, bytes]] = None,
                 name: str = "program"):
        self.instructions = instructions
        self.data = dict(data or {})
        self.name = name

    def __len__(self) -> int:
        return len(self.instructions)

    def fetch(self, pc: int) -> Instruction:
        """Return the instruction at byte address ``pc``.

        Unaligned or out-of-range addresses return pad instructions rather
        than raising, because wrong-path execution routinely produces them.
        """
        if pc & (INSTRUCTION_BYTES - 1):
            return _NOP
        index = pc >> 2
        instructions = self.instructions
        if 0 <= index < len(instructions):
            return instructions[index]
        if len(instructions) <= index < len(instructions) + WRONG_PATH_PAD:
            return _NOP
        return _HALT

    def pc_of(self, index: int) -> int:
        """Byte address of the instruction at position ``index``."""
        return index * INSTRUCTION_BYTES

    def disassemble(self) -> str:
        """Human-readable listing of the code image."""
        lines = []
        for i, inst in enumerate(self.instructions):
            lines.append(f"{i * INSTRUCTION_BYTES:#06x}: {inst!r}")
        return "\n".join(lines)
