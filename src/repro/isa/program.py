"""Program container: code image plus initial data segment.

Instructions occupy 4 bytes each starting at address 0; data lives anywhere
in the 64-bit address space.  Fetching past the end of the code image yields
``nop`` padding followed by a ``halt`` -- this matters because the simulator
executes down mispredicted paths, which may run off the end of the program.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Optional

from .instructions import HALT, NOP, Instruction

INSTRUCTION_BYTES = 4

#: How many nop instructions are implicitly appended past the end of the
#: code image before the implicit halt.  Wrong-path fetch may fall through
#: the last instruction; the pad keeps it harmless until the flush arrives.
WRONG_PATH_PAD = 64

_NOP = Instruction(NOP)
_HALT = Instruction(HALT)


class Program:
    """An executable image: instruction list + initial memory contents."""

    def __init__(self, instructions: List[Instruction],
                 data: Optional[Dict[int, bytes]] = None,
                 name: str = "program"):
        self.instructions = instructions
        self.data = dict(data or {})
        self.name = name

    def __len__(self) -> int:
        return len(self.instructions)

    @classmethod
    def from_riscv(cls, source, name: Optional[str] = None) -> "Program":
        """Load RV32 machine code (path to a ``.hex``/binary image, raw
        bytes, or an iterable of 32-bit words) and translate it to an
        executable internal-ISA program.  See :mod:`repro.isa.riscv`."""
        from .riscv import load_program  # local import: avoid a cycle
        return load_program(source, name=name)

    def predecoded(self):
        """Dense-array predecoded form (see :mod:`repro.isa.predecode`).

        Cached globally by content digest, so identical images -- however
        they were built -- share one predecode and its compiled blocks.
        """
        from .predecode import predecode  # local import: avoid a cycle
        return predecode(self)

    def fetch(self, pc: int) -> Instruction:
        """Return the instruction at byte address ``pc``.

        Unaligned or out-of-range addresses return pad instructions rather
        than raising, because wrong-path execution routinely produces them.
        """
        if pc & (INSTRUCTION_BYTES - 1):
            return _NOP
        index = pc >> 2
        instructions = self.instructions
        if 0 <= index < len(instructions):
            return instructions[index]
        if len(instructions) <= index < len(instructions) + WRONG_PATH_PAD:
            return _NOP
        return _HALT

    def pc_of(self, index: int) -> int:
        """Byte address of the instruction at position ``index``."""
        return index * INSTRUCTION_BYTES

    def disassemble(self) -> str:
        """Human-readable listing of the code image."""
        lines = []
        for i, inst in enumerate(self.instructions):
            lines.append(f"{i * INSTRUCTION_BYTES:#06x}: {inst!r}")
        return "\n".join(lines)

    def to_asm(self) -> str:
        """Complete textual form: data directives plus the disassembly.

        Unlike :meth:`disassemble`, the output carries the initial data
        segments, so ``parse_asm(program.to_asm())`` rebuilds an
        equivalent program -- the replayable-corpus and failure-shrinking
        machinery in :mod:`repro.verify` round-trips programs through
        this form.  Branch targets appear as absolute byte addresses.
        """
        lines = []
        for addr in sorted(self.data):
            payload = self.data[addr]
            for start in range(0, len(payload), 16):
                chunk = payload[start:start + 16]
                lines.append(f".data {addr + start:#x} bytes "
                             + " ".join(str(b) for b in chunk))
        for inst in self.instructions:
            lines.append(repr(inst))
        return "\n".join(lines)

    def digest(self) -> str:
        """Content hash (sha256 hex) of the executable image.

        Covers every instruction field and every data segment, but not
        the display name, so two identically generated programs compare
        equal.  Guards the random-program generator against
        nondeterminism (dict-order or global-``random`` leakage)."""
        hasher = hashlib.sha256()
        for inst in self.instructions:
            hasher.update(repr((inst.op, inst.rd, inst.rs1, inst.rs2,
                                inst.imm)).encode())
        for addr in sorted(self.data):
            hasher.update(repr(addr).encode())
            hasher.update(self.data[addr])
        return hasher.hexdigest()
