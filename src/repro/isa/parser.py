"""Text-format assembly parser.

Lets programs be written as plain assembly strings instead of builder
calls:

    program = parse_asm('''
        .data 0x1000 words 1 2 3
            li   r1, 0x1000
            li   r2, 0
            li   r3, 3
        loop:
            slli r4, r2, 3
            add  r4, r4, r1
            ld   r5, 0(r4)
            add  r6, r6, r5
            addi r2, r2, 1
            bne  r2, r3, loop
            halt
    ''')

Syntax
------
* one instruction per line; ``#`` or ``;`` start a comment;
* ``label:`` on its own line (or before an instruction) defines a label;
* loads/stores use ``offset(base)`` addressing: ``ld r5, 8(r4)``,
  ``sd r5, -16(r4)``;
* branch targets are labels or absolute addresses;
* immediates accept decimal, hex (``0x``), and negative values;
* ``.data ADDR bytes B0 B1 ...`` and ``.data ADDR words W0 W1 ...``
  populate the initial data segment.
"""

from __future__ import annotations

import re
from typing import List

from .assembler import Assembler, AssemblyError
from .program import Program

_MEM_OPERAND = re.compile(r"^(-?\w+)\((\w+)\)$")

#: mnemonics taking ``rd, rs1, rs2``
_RRR = {"add", "sub", "and", "or", "xor", "slt", "sltu", "sll", "srl",
        "sra", "mul", "div", "rem", "fadd", "fsub", "fmul", "fdiv",
        "addw", "subw", "sllw", "srlw", "sraw",
        "mulw", "mulhw", "mulhsuw", "mulhuw",
        "divw", "divuw", "remw", "remuw"}
#: mnemonics taking ``rd, rs1, imm``
_RRI = {"addi", "andi", "ori", "xori", "slti", "slli", "srli", "srai",
        "addiw", "slliw", "srliw", "sraiw", "sltiu"}
#: loads: ``rd, offset(base)``
_LOADS = {"lb", "lbu", "lh", "lhu", "lw", "lwu", "ld"}
#: stores: ``src, offset(base)``
_STORES = {"sb", "sh", "sw", "sd"}
#: branches: ``rs1, rs2, target``
_BRANCHES = {"beq", "bne", "blt", "bge", "bltu", "bgeu"}

#: python-keyword-safe method names on Assembler
_METHOD_OF = {"and": "and_", "or": "or_"}


class AsmSyntaxError(AssemblyError):
    """Malformed assembly text (carries the offending line number)."""

    def __init__(self, line_number: int, line: str, message: str):
        super().__init__(f"line {line_number}: {message}: {line!r}")
        self.line_number = line_number


def _parse_int(token: str, line_number: int, line: str) -> int:
    try:
        return int(token, 0)
    except ValueError:
        raise AsmSyntaxError(line_number, line,
                             f"bad integer {token!r}") from None


def _split_operands(rest: str) -> List[str]:
    return [part.strip() for part in rest.split(",")] if rest else []


def parse_asm(text: str, name: str = "program") -> Program:
    """Parse assembly text into an executable :class:`Program`."""
    asm = Assembler()
    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].split(";", 1)[0].strip()
        if not line:
            continue

        # Disassembly-style address prefixes ("0x0040: add ...") are
        # ignored, so `parse_asm(program.disassemble())` roundtrips.
        line = re.sub(r"^(0[xX][0-9a-fA-F]+|\d+):\s*", "", line)
        if not line:
            continue

        # Labels (possibly followed by an instruction on the same line).
        while True:
            match = re.match(r"^([A-Za-z_]\w*):\s*(.*)$", line)
            if not match:
                break
            asm.label(match.group(1))
            line = match.group(2).strip()
        if not line:
            continue

        # Data directives.
        if line.startswith(".data"):
            parts = line.split()
            if len(parts) < 4 or parts[2] not in ("bytes", "words"):
                raise AsmSyntaxError(
                    line_number, raw,
                    "expected '.data ADDR bytes|words V0 V1 ...'")
            addr = _parse_int(parts[1], line_number, raw)
            values = [_parse_int(tok, line_number, raw)
                      for tok in parts[3:]]
            if parts[2] == "bytes":
                asm.data(addr, bytes(v & 0xFF for v in values))
            else:
                asm.data_words(addr, values)
            continue

        mnemonic, _, rest = line.partition(" ")
        mnemonic = mnemonic.lower()
        operands = _split_operands(rest.strip())

        def need(n: int) -> None:
            if len(operands) != n:
                raise AsmSyntaxError(
                    line_number, raw,
                    f"{mnemonic} expects {n} operands, got "
                    f"{len(operands)}")

        def mem_operand(token: str):
            match = _MEM_OPERAND.match(token.replace(" ", ""))
            if not match:
                raise AsmSyntaxError(line_number, raw,
                                     f"bad memory operand {token!r}")
            return (_parse_int(match.group(1), line_number, raw),
                    match.group(2))

        def target(token: str):
            if re.match(r"^-?(0x)?[0-9a-fA-F]+$", token):
                return _parse_int(token, line_number, raw)
            return token

        try:
            if mnemonic in _RRR:
                need(3)
                getattr(asm, _METHOD_OF.get(mnemonic, mnemonic))(
                    *operands)
            elif mnemonic in _RRI:
                need(3)
                getattr(asm, mnemonic)(
                    operands[0], operands[1],
                    _parse_int(operands[2], line_number, raw))
            elif mnemonic == "li":
                need(2)
                asm.li(operands[0],
                       _parse_int(operands[1], line_number, raw))
            elif mnemonic == "mov":
                need(2)
                asm.mov(operands[0], operands[1])
            elif mnemonic in _LOADS:
                need(2)
                offset, base = mem_operand(operands[1])
                getattr(asm, mnemonic)(operands[0], base, offset)
            elif mnemonic in _STORES:
                need(2)
                offset, base = mem_operand(operands[1])
                getattr(asm, mnemonic)(operands[0], base, offset)
            elif mnemonic in _BRANCHES:
                need(3)
                getattr(asm, mnemonic)(operands[0], operands[1],
                                       target(operands[2]))
            elif mnemonic == "j":
                need(1)
                asm.j(target(operands[0]))
            elif mnemonic == "jal":
                need(2)
                asm.jal(operands[0], target(operands[1]))
            elif mnemonic == "jr":
                need(1)
                asm.jr(operands[0])
            elif mnemonic == "jalr":
                need(2)
                offset, base = mem_operand(operands[1])
                asm.jalr(operands[0], base, offset)
            elif mnemonic == "nop":
                need(0)
                asm.nop()
            elif mnemonic == "halt":
                need(0)
                asm.halt()
            else:
                raise AsmSyntaxError(line_number, raw,
                                     f"unknown mnemonic {mnemonic!r}")
        except ValueError as exc:
            raise AsmSyntaxError(line_number, raw, str(exc)) from None

    return asm.build(name=name)
