"""Instruction set, assembler, program container, and architectural ISS."""

from .assembler import Assembler, AssemblyError, parse_reg
from .instructions import (
    ACCESS_SIZE,
    BRANCH_OPS,
    CONTROL_OPS,
    JUMP_OPS,
    LOAD_OPS,
    MASK64,
    MEM_OPS,
    NUM_REGS,
    OPCODE_NAMES,
    STORE_OPS,
    Instruction,
    sign_extend,
    to_signed,
    to_unsigned,
)
from .parser import AsmSyntaxError, parse_asm
from .riscv import (
    DecodeError,
    RVInstruction,
    UnsupportedInstructionError,
    decode_word,
)
from .interp import (
    ExecutionLimitExceeded,
    Interpreter,
    RetireRecord,
    branch_taken,
    execute_op,
    load_value,
    run_program,
)
from .program import INSTRUCTION_BYTES, Program

__all__ = [
    "ACCESS_SIZE",
    "Assembler",
    "AsmSyntaxError",
    "AssemblyError",
    "BRANCH_OPS",
    "CONTROL_OPS",
    "DecodeError",
    "ExecutionLimitExceeded",
    "INSTRUCTION_BYTES",
    "Instruction",
    "Interpreter",
    "JUMP_OPS",
    "LOAD_OPS",
    "MASK64",
    "MEM_OPS",
    "NUM_REGS",
    "OPCODE_NAMES",
    "Program",
    "RetireRecord",
    "RVInstruction",
    "STORE_OPS",
    "UnsupportedInstructionError",
    "decode_word",
    "branch_taken",
    "parse_asm",
    "execute_op",
    "load_value",
    "parse_reg",
    "run_program",
    "sign_extend",
    "to_signed",
    "to_unsigned",
]
