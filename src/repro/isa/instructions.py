"""Instruction set for the simulated 64-bit RISC machine.

The paper evaluates its memory subsystem on a 64-bit MIPS pipeline.  We
define a small MIPS-like load/store ISA that is sufficient to express the
workload kernels: integer ALU operations, long-latency multiply/divide,
"floating-point class" operations (integer semantics, FP latencies, used by
the specfp-style kernels), byte/half/word/double loads and stores, and
conditional branches and jumps.

All register values are 64-bit unsigned integers in ``[0, 2**64)``; signed
operations interpret them as two's complement.  Register 0 is hardwired to
zero, as in MIPS.
"""

from __future__ import annotations

from typing import Optional

MASK64 = (1 << 64) - 1
NUM_REGS = 32

# --- opcode constants -------------------------------------------------------
# Grouped by execution class.  Values are small ints so dispatch tables are
# plain list lookups in the hot interpreter/pipeline loops.

# ALU register-register
ADD, SUB, AND, OR, XOR, SLT, SLTU, SLL, SRL, SRA = range(10)
# ALU register-immediate
ADDI, ANDI, ORI, XORI, SLTI, SLLI, SRLI, SRAI, LI = range(10, 19)
# Long-latency integer
MUL, DIV, REM = range(19, 22)
# FP-class (integer semantics, FP latency) -- used by specfp-style kernels
FADD, FSUB, FMUL, FDIV = range(22, 26)
# Loads (signed/unsigned byte, half, word; doubleword)
LB, LBU, LH, LHU, LW, LWU, LD = range(26, 33)
# Stores
SB, SH, SW, SD = range(33, 37)
# Control
BEQ, BNE, BLT, BGE, BLTU, BGEU, J, JAL, JR, HALT, NOP = range(37, 48)
# 32-bit ("W") operations with RV32 semantics, used by the RISC-V frontend
# (repro.isa.riscv).  Invariant: a W-op destination always holds the 64-bit
# sign-extension of its 32-bit result, so 64-bit SLT/SLTU/branches compare
# 32-bit values correctly.  Appended after the original opcode space so the
# existing opcode numbering (and the pinned result digests) are untouched.
ADDW, SUBW, SLLW, SRLW, SRAW = range(48, 53)
ADDIW, SLLIW, SRLIW, SRAIW, SLTIU = range(53, 58)
MULW, MULHW, MULHSUW, MULHUW, DIVW, DIVUW, REMW, REMUW = range(58, 66)
# Indirect jump-and-link: rd <- pc+4, pc <- (rs1 + imm) & ~1.
JALR = 66

NUM_OPCODES = 67

OPCODE_NAMES = {
    ADD: "add", SUB: "sub", AND: "and", OR: "or", XOR: "xor",
    SLT: "slt", SLTU: "sltu", SLL: "sll", SRL: "srl", SRA: "sra",
    ADDI: "addi", ANDI: "andi", ORI: "ori", XORI: "xori", SLTI: "slti",
    SLLI: "slli", SRLI: "srli", SRAI: "srai", LI: "li",
    MUL: "mul", DIV: "div", REM: "rem",
    FADD: "fadd", FSUB: "fsub", FMUL: "fmul", FDIV: "fdiv",
    LB: "lb", LBU: "lbu", LH: "lh", LHU: "lhu", LW: "lw", LWU: "lwu",
    LD: "ld",
    SB: "sb", SH: "sh", SW: "sw", SD: "sd",
    BEQ: "beq", BNE: "bne", BLT: "blt", BGE: "bge", BLTU: "bltu",
    BGEU: "bgeu", J: "j", JAL: "jal", JR: "jr", HALT: "halt", NOP: "nop",
    ADDW: "addw", SUBW: "subw", SLLW: "sllw", SRLW: "srlw", SRAW: "sraw",
    ADDIW: "addiw", SLLIW: "slliw", SRLIW: "srliw", SRAIW: "sraiw",
    SLTIU: "sltiu",
    MULW: "mulw", MULHW: "mulhw", MULHSUW: "mulhsuw", MULHUW: "mulhuw",
    DIVW: "divw", DIVUW: "divuw", REMW: "remw", REMUW: "remuw",
    JALR: "jalr",
}

LOAD_OPS = frozenset({LB, LBU, LH, LHU, LW, LWU, LD})
STORE_OPS = frozenset({SB, SH, SW, SD})
MEM_OPS = LOAD_OPS | STORE_OPS
BRANCH_OPS = frozenset({BEQ, BNE, BLT, BGE, BLTU, BGEU})
JUMP_OPS = frozenset({J, JAL, JR, JALR})
CONTROL_OPS = BRANCH_OPS | JUMP_OPS

#: W-class reg-reg ops (two register sources, one destination).
W_RRR_OPS = frozenset({ADDW, SUBW, SLLW, SRLW, SRAW,
                       MULW, MULHW, MULHSUW, MULHUW,
                       DIVW, DIVUW, REMW, REMUW})
#: W-class reg-imm ops (one register source, one immediate, one destination).
W_RRI_OPS = frozenset({ADDIW, SLLIW, SRLIW, SRAIW, SLTIU})

#: Number of bytes accessed by each memory opcode.
ACCESS_SIZE = {
    LB: 1, LBU: 1, LH: 2, LHU: 2, LW: 4, LWU: 4, LD: 8,
    SB: 1, SH: 2, SW: 4, SD: 8,
}

#: Execution latency class for each opcode (cycles in the function unit).
#: Matches common superscalar models: single-cycle integer ALU, pipelined
#: multi-cycle multiply and FP, long divide.
OP_LATENCY = {MUL: 3, DIV: 12, REM: 12, FADD: 4, FSUB: 4, FMUL: 4, FDIV: 12,
              MULW: 3, MULHW: 3, MULHSUW: 3, MULHUW: 3,
              DIVW: 12, DIVUW: 12, REMW: 12, REMUW: 12}
DEFAULT_LATENCY = 1


def to_signed(value: int) -> int:
    """Interpret a 64-bit unsigned value as two's-complement signed."""
    return value - (1 << 64) if value & (1 << 63) else value


def to_unsigned(value: int) -> int:
    """Wrap an arbitrary Python int into the 64-bit unsigned range."""
    return value & MASK64


def sign_extend(value: int, bits: int) -> int:
    """Sign-extend ``value`` from ``bits`` bits to the full 64-bit range."""
    sign_bit = 1 << (bits - 1)
    if value & sign_bit:
        value |= MASK64 ^ ((1 << bits) - 1)
    return value & MASK64


class Instruction:
    """A single static instruction.

    Attributes
    ----------
    op:
        One of the opcode constants in this module.
    rd:
        Destination register index (0 means "no destination" for every
        opcode except the degenerate write to r0, which is discarded).
    rs1, rs2:
        Source register indices.
    imm:
        Immediate operand: the signed offset for loads/stores/ALU-imm, the
        byte target address for branches and jumps, or the 64-bit literal
        for ``li``.
    """

    __slots__ = ("op", "rd", "rs1", "rs2", "imm",
                 "is_load", "is_store", "is_mem", "is_branch", "is_control",
                 "access_size", "latency")

    def __init__(self, op: int, rd: int = 0, rs1: int = 0, rs2: int = 0,
                 imm: int = 0):
        self.op = op
        self.rd = rd
        self.rs1 = rs1
        self.rs2 = rs2
        self.imm = imm
        # Opcode classification, precomputed once per *static* instruction:
        # the pipeline reads these every fetch/dispatch/execute/retire, so
        # they must be attribute loads, not per-access set-membership
        # properties.
        self.is_load = op in LOAD_OPS
        self.is_store = op in STORE_OPS
        self.is_mem = op in MEM_OPS
        self.is_branch = op in BRANCH_OPS
        self.is_control = op in CONTROL_OPS
        self.access_size: Optional[int] = ACCESS_SIZE.get(op)
        self.latency = OP_LATENCY.get(op, DEFAULT_LATENCY)

    def __repr__(self) -> str:
        name = OPCODE_NAMES.get(self.op, f"op{self.op}")
        op = self.op
        if op in LOAD_OPS:
            return f"{name} r{self.rd}, {self.imm}(r{self.rs1})"
        if op in STORE_OPS:
            return f"{name} r{self.rs2}, {self.imm}(r{self.rs1})"
        if op in BRANCH_OPS:
            return f"{name} r{self.rs1}, r{self.rs2}, {self.imm:#x}"
        if op == J:
            return f"{name} {self.imm:#x}"
        if op == JAL:
            return f"{name} r{self.rd}, {self.imm:#x}"
        if op == JR:
            return f"{name} r{self.rs1}"
        if op == JALR:
            return f"{name} r{self.rd}, {self.imm}(r{self.rs1})"
        if op in (HALT, NOP):
            return name
        if op == LI:
            return f"{name} r{self.rd}, {self.imm:#x}"
        if ADDI <= op <= SRAI or op in W_RRI_OPS:
            return f"{name} r{self.rd}, r{self.rs1}, {self.imm}"
        return f"{name} r{self.rd}, r{self.rs1}, r{self.rs2}"
