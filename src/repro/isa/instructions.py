"""Instruction set for the simulated 64-bit RISC machine.

The paper evaluates its memory subsystem on a 64-bit MIPS pipeline.  We
define a small MIPS-like load/store ISA that is sufficient to express the
workload kernels: integer ALU operations, long-latency multiply/divide,
"floating-point class" operations (integer semantics, FP latencies, used by
the specfp-style kernels), byte/half/word/double loads and stores, and
conditional branches and jumps.

All register values are 64-bit unsigned integers in ``[0, 2**64)``; signed
operations interpret them as two's complement.  Register 0 is hardwired to
zero, as in MIPS.
"""

from __future__ import annotations

from typing import Optional

MASK64 = (1 << 64) - 1
NUM_REGS = 32

# --- opcode constants -------------------------------------------------------
# Grouped by execution class.  Values are small ints so dispatch tables are
# plain list lookups in the hot interpreter/pipeline loops.

# ALU register-register
ADD, SUB, AND, OR, XOR, SLT, SLTU, SLL, SRL, SRA = range(10)
# ALU register-immediate
ADDI, ANDI, ORI, XORI, SLTI, SLLI, SRLI, SRAI, LI = range(10, 19)
# Long-latency integer
MUL, DIV, REM = range(19, 22)
# FP-class (integer semantics, FP latency) -- used by specfp-style kernels
FADD, FSUB, FMUL, FDIV = range(22, 26)
# Loads (signed/unsigned byte, half, word; doubleword)
LB, LBU, LH, LHU, LW, LWU, LD = range(26, 33)
# Stores
SB, SH, SW, SD = range(33, 37)
# Control
BEQ, BNE, BLT, BGE, BLTU, BGEU, J, JAL, JR, HALT, NOP = range(37, 48)

NUM_OPCODES = 48

OPCODE_NAMES = {
    ADD: "add", SUB: "sub", AND: "and", OR: "or", XOR: "xor",
    SLT: "slt", SLTU: "sltu", SLL: "sll", SRL: "srl", SRA: "sra",
    ADDI: "addi", ANDI: "andi", ORI: "ori", XORI: "xori", SLTI: "slti",
    SLLI: "slli", SRLI: "srli", SRAI: "srai", LI: "li",
    MUL: "mul", DIV: "div", REM: "rem",
    FADD: "fadd", FSUB: "fsub", FMUL: "fmul", FDIV: "fdiv",
    LB: "lb", LBU: "lbu", LH: "lh", LHU: "lhu", LW: "lw", LWU: "lwu",
    LD: "ld",
    SB: "sb", SH: "sh", SW: "sw", SD: "sd",
    BEQ: "beq", BNE: "bne", BLT: "blt", BGE: "bge", BLTU: "bltu",
    BGEU: "bgeu", J: "j", JAL: "jal", JR: "jr", HALT: "halt", NOP: "nop",
}

LOAD_OPS = frozenset({LB, LBU, LH, LHU, LW, LWU, LD})
STORE_OPS = frozenset({SB, SH, SW, SD})
MEM_OPS = LOAD_OPS | STORE_OPS
BRANCH_OPS = frozenset({BEQ, BNE, BLT, BGE, BLTU, BGEU})
JUMP_OPS = frozenset({J, JAL, JR})
CONTROL_OPS = BRANCH_OPS | JUMP_OPS

#: Number of bytes accessed by each memory opcode.
ACCESS_SIZE = {
    LB: 1, LBU: 1, LH: 2, LHU: 2, LW: 4, LWU: 4, LD: 8,
    SB: 1, SH: 2, SW: 4, SD: 8,
}

#: Execution latency class for each opcode (cycles in the function unit).
#: Matches common superscalar models: single-cycle integer ALU, pipelined
#: multi-cycle multiply and FP, long divide.
OP_LATENCY = {MUL: 3, DIV: 12, REM: 12, FADD: 4, FSUB: 4, FMUL: 4, FDIV: 12}
DEFAULT_LATENCY = 1


def to_signed(value: int) -> int:
    """Interpret a 64-bit unsigned value as two's-complement signed."""
    return value - (1 << 64) if value & (1 << 63) else value


def to_unsigned(value: int) -> int:
    """Wrap an arbitrary Python int into the 64-bit unsigned range."""
    return value & MASK64


def sign_extend(value: int, bits: int) -> int:
    """Sign-extend ``value`` from ``bits`` bits to the full 64-bit range."""
    sign_bit = 1 << (bits - 1)
    if value & sign_bit:
        value |= MASK64 ^ ((1 << bits) - 1)
    return value & MASK64


class Instruction:
    """A single static instruction.

    Attributes
    ----------
    op:
        One of the opcode constants in this module.
    rd:
        Destination register index (0 means "no destination" for every
        opcode except the degenerate write to r0, which is discarded).
    rs1, rs2:
        Source register indices.
    imm:
        Immediate operand: the signed offset for loads/stores/ALU-imm, the
        byte target address for branches and jumps, or the 64-bit literal
        for ``li``.
    """

    __slots__ = ("op", "rd", "rs1", "rs2", "imm",
                 "is_load", "is_store", "is_mem", "is_branch", "is_control",
                 "access_size", "latency")

    def __init__(self, op: int, rd: int = 0, rs1: int = 0, rs2: int = 0,
                 imm: int = 0):
        self.op = op
        self.rd = rd
        self.rs1 = rs1
        self.rs2 = rs2
        self.imm = imm
        # Opcode classification, precomputed once per *static* instruction:
        # the pipeline reads these every fetch/dispatch/execute/retire, so
        # they must be attribute loads, not per-access set-membership
        # properties.
        self.is_load = op in LOAD_OPS
        self.is_store = op in STORE_OPS
        self.is_mem = op in MEM_OPS
        self.is_branch = op in BRANCH_OPS
        self.is_control = op in CONTROL_OPS
        self.access_size: Optional[int] = ACCESS_SIZE.get(op)
        self.latency = OP_LATENCY.get(op, DEFAULT_LATENCY)

    def __repr__(self) -> str:
        name = OPCODE_NAMES.get(self.op, f"op{self.op}")
        op = self.op
        if op in LOAD_OPS:
            return f"{name} r{self.rd}, {self.imm}(r{self.rs1})"
        if op in STORE_OPS:
            return f"{name} r{self.rs2}, {self.imm}(r{self.rs1})"
        if op in BRANCH_OPS:
            return f"{name} r{self.rs1}, r{self.rs2}, {self.imm:#x}"
        if op == J:
            return f"{name} {self.imm:#x}"
        if op == JAL:
            return f"{name} r{self.rd}, {self.imm:#x}"
        if op == JR:
            return f"{name} r{self.rs1}"
        if op in (HALT, NOP):
            return name
        if op == LI:
            return f"{name} r{self.rd}, {self.imm:#x}"
        if ADDI <= op <= SRAI:
            return f"{name} r{self.rd}, r{self.rs1}, {self.imm}"
        return f"{name} r{self.rd}, r{self.rs1}, r{self.rs2}"
