"""Predecoded program images for the batch-dispatch fast-forward engine.

A :class:`PredecodedProgram` translates a :class:`~repro.isa.program.Program`
once into dense parallel arrays -- opcode, register indices, immediate, a
dispatch *kind* (ALU / load / store / branch / jump flavour / halt / nop),
the memory access size, and the straight-line run length starting at each
instruction.  The fast-forward engine dispatches from these arrays instead
of fetching :class:`~repro.isa.instructions.Instruction` objects, and
compiles each basic block's straight-line body into a single Python
function (a "superinstruction") so hot loops execute without
per-instruction dispatch overhead.

Predecoded images are cached globally, keyed by the program's content
digest, so the fast-forward engine, the architectural oracle
(:meth:`Interpreter.step` / :meth:`Interpreter.run`), and any frontend that
builds an identical image (e.g. the RV32 loader) share one predecode.

Correctness contract
--------------------
Compiled blocks are architecturally identical to executing the same
instructions through :meth:`Interpreter.step`:

* loads always perform the memory read, even with ``rd == r0`` (the read
  is architecturally visible to the warm cache capsule and must match the
  oracle's access stream);
* pure ALU work targeting ``r0`` is skipped only when the opcode is a
  known pure op -- unknown opcodes still reach ``execute_op`` so they
  raise exactly as the oracle would;
* warm instruction-cache touches are emitted only at block entry and at
  I-cache line crossings.  Within a straight-line run every skipped touch
  hits the line touched by the immediately preceding instruction, which is
  MRU by construction (data accesses never touch the L1I), so the skipped
  touches are tag-state no-ops: the resulting warm capsule
  (``CacheHierarchy.export_state`` -- tag arrays only, no hit/miss stats)
  is bit-identical to per-instruction touching.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from . import instructions as ops
from .instructions import MASK64, Instruction

__all__ = [
    "PredecodedProgram",
    "predecode",
    "K_ALU", "K_LOAD", "K_STORE", "K_BRANCH",
    "K_J", "K_JAL", "K_JR", "K_JALR", "K_HALT", "K_NOP",
]

# Dispatch kinds.  Straight-line kinds (ALU/load/store/nop) may appear
# inside superinstruction blocks; the rest terminate a block.
K_ALU, K_LOAD, K_STORE, K_BRANCH, K_J, K_JAL, K_JR, K_JALR, K_HALT, K_NOP = \
    range(10)

_STRAIGHT_KINDS = frozenset({K_ALU, K_LOAD, K_STORE, K_NOP})

#: Opcodes ``execute_op`` is known to handle; r0-targeted instances are
#: pure and may be elided inside compiled blocks.  Anything outside this
#: set must still reach ``execute_op`` so it raises like the oracle does.
_PURE_ALU = (frozenset(range(ops.NUM_OPCODES))
             - ops.MEM_OPS - ops.CONTROL_OPS - {ops.HALT, ops.NOP})

#: Signed loads: (access size, sign-bit mask, extension OR-mask).
_SIGNED_LOADS = {
    ops.LB: (1, 0x80, MASK64 ^ 0xFF),
    ops.LH: (2, 0x8000, MASK64 ^ 0xFFFF),
    ops.LW: (4, 0x8000_0000, MASK64 ^ 0xFFFF_FFFF),
}

#: Longest straight-line run compiled into a single block; longer runs are
#: chained block-to-block by the dispatcher.
MAX_BLOCK_INSTRUCTIONS = 256
#: Per-variant cap on compiled entry points -- a backstop against
#: pathological programs where every branch lands on a fresh offset.
MAX_COMPILED_BLOCKS = 2048

_M = "0xffffffffffffffff"


def _kind_of(op: int) -> int:
    if op in ops.LOAD_OPS:
        return K_LOAD
    if op in ops.STORE_OPS:
        return K_STORE
    if op in ops.BRANCH_OPS:
        return K_BRANCH
    if op == ops.J:
        return K_J
    if op == ops.JAL:
        return K_JAL
    if op == ops.JR:
        return K_JR
    if op == ops.JALR:
        return K_JALR
    if op == ops.HALT:
        return K_HALT
    if op == ops.NOP:
        return K_NOP
    return K_ALU


def _signed(expr: str) -> str:
    """Expression computing ``to_signed`` of a 64-bit unsigned expression."""
    return f"({expr} - (({expr} >> 63) << 64))"


def _alu_expr(op: int, a: str, b: str, imm: int) -> Optional[str]:
    """Inline expression for the common pure ALU ops; None -> xop fallback.

    Must mirror ``execute_op`` exactly for every opcode it claims.
    """
    if op == ops.ADDI:
        return f"({a} + {imm}) & {_M}"
    if op == ops.ADD:
        return f"({a} + {b}) & {_M}"
    if op == ops.LI:
        return repr(imm & MASK64)
    if op == ops.SUB:
        return f"({a} - {b}) & {_M}"
    if op == ops.AND:
        return f"{a} & {b}"
    if op == ops.OR:
        return f"{a} | {b}"
    if op == ops.XOR:
        return f"{a} ^ {b}"
    if op == ops.SLT:
        return f"(1 if {_signed(a)} < {_signed(b)} else 0)"
    if op == ops.SLTU:
        return f"(1 if {a} < {b} else 0)"
    if op == ops.SLL:
        return f"({a} << ({b} & 63)) & {_M}"
    if op == ops.SRL:
        return f"{a} >> ({b} & 63)"
    if op == ops.SRA:
        return f"({_signed(a)} >> ({b} & 63)) & {_M}"
    if op == ops.ANDI:
        return f"{a} & {imm & MASK64}"
    if op == ops.ORI:
        return f"{a} | {imm & MASK64}"
    if op == ops.XORI:
        return f"{a} ^ {imm & MASK64}"
    if op == ops.SLTI:
        return f"(1 if {_signed(a)} < {imm} else 0)"
    if op == ops.SLLI:
        return f"({a} << {imm & 63}) & {_M}"
    if op == ops.SRLI:
        return f"{a} >> {imm & 63}"
    if op == ops.SRAI:
        return f"({_signed(a)} >> {imm & 63}) & {_M}"
    if op in (ops.MUL, ops.FMUL):
        return f"({a} * {b}) & {_M}"
    if op == ops.FADD:
        return f"({a} + {b}) & {_M}"
    if op == ops.FSUB:
        return f"({a} - {b}) & {_M}"
    if op == ops.SLTIU:
        return f"(1 if {a} < {imm & MASK64} else 0)"
    return None


def _w_alu_stmts(op: int, target: str, a: str, b: str,
                 imm: int) -> Optional[List[str]]:
    """Two-statement inline form for the common W-ops (32-bit result,
    sign-extended to 64).  None -> xop fallback."""
    if op == ops.ADDW:
        low = f"({a} + {b}) & 0xffffffff"
    elif op == ops.ADDIW:
        low = f"({a} + {imm}) & 0xffffffff"
    elif op == ops.SUBW:
        low = f"({a} - {b}) & 0xffffffff"
    elif op == ops.SLLW:
        low = f"({a} << ({b} & 31)) & 0xffffffff"
    elif op == ops.SRLW:
        low = f"({a} & 0xffffffff) >> ({b} & 31)"
    elif op == ops.SLLIW:
        low = f"({a} << {imm & 31}) & 0xffffffff"
    elif op == ops.SRLIW:
        low = f"({a} & 0xffffffff) >> {imm & 31}"
    else:
        return None
    return [f"_w = {low}",
            f"{target} = (_w | 0xffffffff00000000) if _w & 0x80000000 "
            f"else _w"]


class PredecodedProgram:
    """Dense-array form of a program plus its compiled block cache."""

    __slots__ = ("digest", "name", "length", "op", "rd", "rs1", "rs2",
                 "imm", "kind", "size", "run_len",
                 "_cold_blocks", "_warm_blocks")

    def __init__(self, instructions: List[Instruction], digest: str,
                 name: str = "program"):
        self.digest = digest
        self.name = name
        n = len(instructions)
        self.length = n
        self.op = [inst.op for inst in instructions]
        self.rd = [inst.rd for inst in instructions]
        self.rs1 = [inst.rs1 for inst in instructions]
        self.rs2 = [inst.rs2 for inst in instructions]
        self.imm = [inst.imm for inst in instructions]
        self.kind = [_kind_of(o) for o in self.op]
        self.size = [ops.ACCESS_SIZE.get(o, 0) for o in self.op]
        # run_len[i]: number of consecutive straight-line instructions
        # starting at i (0 when i itself is a block terminator).
        run_len = [0] * n
        straight = _STRAIGHT_KINDS
        for i in range(n - 1, -1, -1):
            if self.kind[i] in straight:
                run_len[i] = (run_len[i + 1] + 1) if i + 1 < n else 1
        self.run_len = run_len
        # entry index -> (fn, block length); warm variants keyed per
        # I-cache line shift so touch emission matches the hierarchy.
        self._cold_blocks: Dict[int, Tuple[Callable, int]] = {}
        self._warm_blocks: Dict[Tuple[int, int], Tuple[Callable, int]] = {}

    # -- round-trip ---------------------------------------------------------

    def to_instruction_tuples(self) -> List[Tuple[int, int, int, int, int]]:
        """(op, rd, rs1, rs2, imm) per instruction -- the full information
        content of the original stream, for round-trip checking."""
        return list(zip(self.op, self.rd, self.rs1, self.rs2, self.imm))

    # -- block compilation --------------------------------------------------

    def cold_block(self, index: int) -> Optional[Tuple[Callable, int]]:
        """Compiled block starting at ``index`` without cache training."""
        blk = self._cold_blocks.get(index)
        if blk is None:
            if len(self._cold_blocks) >= MAX_COMPILED_BLOCKS:
                return None
            blk = self._cold_blocks[index] = self._compile(index, None)
        return blk

    def warm_block_getter(self, line_shift: int) -> Callable:
        """Block lookup bound to one I-cache line geometry."""
        warm_blocks = self._warm_blocks

        def get(index: int) -> Optional[Tuple[Callable, int]]:
            key = (line_shift, index)
            blk = warm_blocks.get(key)
            if blk is None:
                if len(warm_blocks) >= MAX_COMPILED_BLOCKS:
                    return None
                blk = warm_blocks[key] = self._compile(index, line_shift)
            return blk

        return get

    def _compile(self, start: int, line_shift: Optional[int]
                 ) -> Tuple[Callable, int]:
        """Compile the straight-line run at ``start`` into one function.

        The function body is pure array-free Python over the register
        file and bound memory accessors; signature
        ``_blk(regs, rdint, wrint, xop, il, dl)`` where ``il``/``dl`` are
        the hierarchy's inst/data latency hooks (unused when cold).
        """
        blen = min(self.run_len[start], MAX_BLOCK_INSTRUCTIONS)
        warm = line_shift is not None
        body: List[str] = []
        emit = body.append
        prev_line = None
        for i in range(start, start + blen):
            if warm:
                line = (i << 2) >> line_shift
                if line != prev_line:
                    emit(f"il({i << 2})")
                    prev_line = line
            k = self.kind[i]
            if k == K_NOP:
                continue
            op = self.op[i]
            rd = self.rd[i]
            rs1 = self.rs1[i]
            rs2 = self.rs2[i]
            imm = self.imm[i]
            a = f"regs[{rs1}]"
            b = f"regs[{rs2}]"
            if k == K_ALU:
                target = f"regs[{rd}]"
                if rd == 0:
                    if op in _PURE_ALU:
                        continue  # pure result discarded: elide
                    emit(f"xop({op}, {a}, {b}, {imm})")
                    continue
                expr = _alu_expr(op, a, b, imm)
                if expr is not None:
                    emit(f"{target} = {expr}")
                    continue
                stmts = _w_alu_stmts(op, target, a, b, imm)
                if stmts is not None:
                    body.extend(stmts)
                    continue
                emit(f"{target} = xop({op}, {a}, {b}, {imm})")
                continue
            # memory: effective address first (imm == 0 needs no mask --
            # register values are already in [0, 2**64)).
            addr = f"({a} + {imm}) & {_M}" if imm else a
            emit(f"_a = {addr}")
            if warm:
                emit("dl(_a)")
            if k == K_LOAD:
                signed = _SIGNED_LOADS.get(op)
                if signed is not None:
                    size, sign_bit, ext = signed
                    emit(f"_v = rdint(_a, {size})")
                    if rd:
                        emit(f"regs[{rd}] = (_v | {ext}) "
                             f"if _v & {sign_bit} else _v")
                elif rd:
                    emit(f"regs[{rd}] = rdint(_a, {self.size[i]})")
                else:
                    emit(f"rdint(_a, {self.size[i]})")
            else:  # K_STORE
                size = self.size[i]
                mask = (1 << (8 * size)) - 1
                emit(f"wrint(_a, {size}, {b} & {mask})")
        if not body:
            body.append("pass")
        src = ("def _blk(regs, rdint, wrint, xop, il, dl):\n    "
               + "\n    ".join(body) + "\n")
        namespace: Dict[str, Callable] = {}
        exec(compile(src, f"<predecode:{self.name}:{start}>", "exec"),
             {"__builtins__": {}}, namespace)
        return namespace["_blk"], blen


# -- digest-keyed global cache ----------------------------------------------

#: Digest -> PredecodedProgram.  Bounded: cleared wholesale at the cap
#: (simple and safe -- predecode is cheap relative to any simulation that
#: would refill it).
_CACHE: Dict[str, PredecodedProgram] = {}
_CACHE_CAP = 256


def predecode(program) -> PredecodedProgram:
    """Predecoded form of ``program``, shared across identical images.

    Keyed by ``Program.digest()`` so two identically built programs (or
    the same workload rebuilt by another frontend) share one predecode
    and its compiled blocks.  A per-program memo avoids re-hashing when
    the same ``Program`` object is interpreted repeatedly.
    """
    memo = getattr(program, "_predecode_memo", None)
    digest = program.digest()
    if memo is not None and memo.digest == digest:
        return memo
    pd = _CACHE.get(digest)
    if pd is None:
        if len(_CACHE) >= _CACHE_CAP:
            _CACHE.clear()
        pd = PredecodedProgram(program.instructions, digest,
                               name=program.name)
        _CACHE[digest] = pd
    program._predecode_memo = pd
    return pd
