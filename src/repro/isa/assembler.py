"""A small programmatic assembler for building workload kernels.

The assembler is a builder: each mnemonic method appends one instruction,
labels mark branch targets, and :meth:`Assembler.build` resolves label
references into byte addresses and returns a :class:`Program`.

Example
-------
>>> a = Assembler()
>>> a.li("r1", 0)
>>> a.li("r2", 10)
>>> a.label("loop")
>>> a.addi("r1", "r1", 1)
>>> a.bne("r1", "r2", "loop")
>>> a.halt()
>>> program = a.build(name="count")
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from . import instructions as ops
from .instructions import Instruction
from .program import INSTRUCTION_BYTES, Program

Reg = Union[int, str]
Target = Union[int, str]


def parse_reg(reg: Reg) -> int:
    """Convert ``"r7"`` or ``7`` to a register index, validating range."""
    if isinstance(reg, str):
        if not reg.startswith("r"):
            raise ValueError(f"bad register name {reg!r}")
        reg = int(reg[1:])
    if not 0 <= reg < ops.NUM_REGS:
        raise ValueError(f"register index {reg} out of range")
    return reg


class AssemblyError(Exception):
    """Raised for malformed programs (duplicate or undefined labels)."""


class _LabelRef:
    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name


class Assembler:
    """Builder that assembles instruction sequences with symbolic labels."""

    def __init__(self):
        self._instructions: List[Instruction] = []
        self._labels: Dict[str, int] = {}
        self._data: Dict[int, bytes] = {}

    # -- structure ----------------------------------------------------------

    def label(self, name: str) -> None:
        """Define ``name`` as the address of the next instruction."""
        if name in self._labels:
            raise AssemblyError(f"duplicate label {name!r}")
        self._labels[name] = len(self._instructions) * INSTRUCTION_BYTES

    def data(self, addr: int, payload: bytes) -> None:
        """Place ``payload`` into the initial data segment at ``addr``."""
        self._data[addr] = bytes(payload)

    def data_words(self, addr: int, values, width: int = 8) -> None:
        """Place little-endian integers of ``width`` bytes starting at addr."""
        blob = b"".join(
            (v & ((1 << (8 * width)) - 1)).to_bytes(width, "little")
            for v in values
        )
        self.data(addr, blob)

    def here(self) -> int:
        """Byte address of the next instruction to be emitted."""
        return len(self._instructions) * INSTRUCTION_BYTES

    def build(self, name: str = "program",
              data: Optional[Dict[int, bytes]] = None) -> Program:
        """Resolve labels and produce an executable :class:`Program`."""
        resolved: List[Instruction] = []
        for inst in self._instructions:
            if isinstance(inst.imm, _LabelRef):
                target = self._labels.get(inst.imm.name)
                if target is None:
                    raise AssemblyError(f"undefined label {inst.imm.name!r}")
                inst = Instruction(inst.op, inst.rd, inst.rs1, inst.rs2,
                                   target)
            resolved.append(inst)
        merged = dict(self._data)
        if data:
            merged.update(data)
        return Program(resolved, data=merged, name=name)

    # -- emission helpers ----------------------------------------------------

    def _emit(self, op: int, rd: Reg = 0, rs1: Reg = 0, rs2: Reg = 0,
              imm=0) -> None:
        self._instructions.append(
            Instruction(op, parse_reg(rd), parse_reg(rs1), parse_reg(rs2),
                        imm))

    def _target(self, target: Target):
        if isinstance(target, str):
            return _LabelRef(target)
        return target

    # -- ALU reg-reg ----------------------------------------------------------

    def add(self, rd: Reg, rs1: Reg, rs2: Reg) -> None:
        self._emit(ops.ADD, rd, rs1, rs2)

    def sub(self, rd: Reg, rs1: Reg, rs2: Reg) -> None:
        self._emit(ops.SUB, rd, rs1, rs2)

    def and_(self, rd: Reg, rs1: Reg, rs2: Reg) -> None:
        self._emit(ops.AND, rd, rs1, rs2)

    def or_(self, rd: Reg, rs1: Reg, rs2: Reg) -> None:
        self._emit(ops.OR, rd, rs1, rs2)

    def xor(self, rd: Reg, rs1: Reg, rs2: Reg) -> None:
        self._emit(ops.XOR, rd, rs1, rs2)

    def slt(self, rd: Reg, rs1: Reg, rs2: Reg) -> None:
        self._emit(ops.SLT, rd, rs1, rs2)

    def sltu(self, rd: Reg, rs1: Reg, rs2: Reg) -> None:
        self._emit(ops.SLTU, rd, rs1, rs2)

    def sll(self, rd: Reg, rs1: Reg, rs2: Reg) -> None:
        self._emit(ops.SLL, rd, rs1, rs2)

    def srl(self, rd: Reg, rs1: Reg, rs2: Reg) -> None:
        self._emit(ops.SRL, rd, rs1, rs2)

    def sra(self, rd: Reg, rs1: Reg, rs2: Reg) -> None:
        self._emit(ops.SRA, rd, rs1, rs2)

    def mul(self, rd: Reg, rs1: Reg, rs2: Reg) -> None:
        self._emit(ops.MUL, rd, rs1, rs2)

    def div(self, rd: Reg, rs1: Reg, rs2: Reg) -> None:
        self._emit(ops.DIV, rd, rs1, rs2)

    def rem(self, rd: Reg, rs1: Reg, rs2: Reg) -> None:
        self._emit(ops.REM, rd, rs1, rs2)

    def fadd(self, rd: Reg, rs1: Reg, rs2: Reg) -> None:
        self._emit(ops.FADD, rd, rs1, rs2)

    def fsub(self, rd: Reg, rs1: Reg, rs2: Reg) -> None:
        self._emit(ops.FSUB, rd, rs1, rs2)

    def fmul(self, rd: Reg, rs1: Reg, rs2: Reg) -> None:
        self._emit(ops.FMUL, rd, rs1, rs2)

    def fdiv(self, rd: Reg, rs1: Reg, rs2: Reg) -> None:
        self._emit(ops.FDIV, rd, rs1, rs2)

    # -- 32-bit ("W") reg-reg, RV32 semantics --------------------------------

    def addw(self, rd: Reg, rs1: Reg, rs2: Reg) -> None:
        self._emit(ops.ADDW, rd, rs1, rs2)

    def subw(self, rd: Reg, rs1: Reg, rs2: Reg) -> None:
        self._emit(ops.SUBW, rd, rs1, rs2)

    def sllw(self, rd: Reg, rs1: Reg, rs2: Reg) -> None:
        self._emit(ops.SLLW, rd, rs1, rs2)

    def srlw(self, rd: Reg, rs1: Reg, rs2: Reg) -> None:
        self._emit(ops.SRLW, rd, rs1, rs2)

    def sraw(self, rd: Reg, rs1: Reg, rs2: Reg) -> None:
        self._emit(ops.SRAW, rd, rs1, rs2)

    def mulw(self, rd: Reg, rs1: Reg, rs2: Reg) -> None:
        self._emit(ops.MULW, rd, rs1, rs2)

    def mulhw(self, rd: Reg, rs1: Reg, rs2: Reg) -> None:
        self._emit(ops.MULHW, rd, rs1, rs2)

    def mulhsuw(self, rd: Reg, rs1: Reg, rs2: Reg) -> None:
        self._emit(ops.MULHSUW, rd, rs1, rs2)

    def mulhuw(self, rd: Reg, rs1: Reg, rs2: Reg) -> None:
        self._emit(ops.MULHUW, rd, rs1, rs2)

    def divw(self, rd: Reg, rs1: Reg, rs2: Reg) -> None:
        self._emit(ops.DIVW, rd, rs1, rs2)

    def divuw(self, rd: Reg, rs1: Reg, rs2: Reg) -> None:
        self._emit(ops.DIVUW, rd, rs1, rs2)

    def remw(self, rd: Reg, rs1: Reg, rs2: Reg) -> None:
        self._emit(ops.REMW, rd, rs1, rs2)

    def remuw(self, rd: Reg, rs1: Reg, rs2: Reg) -> None:
        self._emit(ops.REMUW, rd, rs1, rs2)

    # -- ALU reg-imm ----------------------------------------------------------

    def addi(self, rd: Reg, rs1: Reg, imm: int) -> None:
        self._emit(ops.ADDI, rd, rs1, imm=imm)

    def andi(self, rd: Reg, rs1: Reg, imm: int) -> None:
        self._emit(ops.ANDI, rd, rs1, imm=imm)

    def ori(self, rd: Reg, rs1: Reg, imm: int) -> None:
        self._emit(ops.ORI, rd, rs1, imm=imm)

    def xori(self, rd: Reg, rs1: Reg, imm: int) -> None:
        self._emit(ops.XORI, rd, rs1, imm=imm)

    def slti(self, rd: Reg, rs1: Reg, imm: int) -> None:
        self._emit(ops.SLTI, rd, rs1, imm=imm)

    def slli(self, rd: Reg, rs1: Reg, imm: int) -> None:
        self._emit(ops.SLLI, rd, rs1, imm=imm)

    def srli(self, rd: Reg, rs1: Reg, imm: int) -> None:
        self._emit(ops.SRLI, rd, rs1, imm=imm)

    def srai(self, rd: Reg, rs1: Reg, imm: int) -> None:
        self._emit(ops.SRAI, rd, rs1, imm=imm)

    def li(self, rd: Reg, imm: int) -> None:
        self._emit(ops.LI, rd, imm=imm)

    def addiw(self, rd: Reg, rs1: Reg, imm: int) -> None:
        self._emit(ops.ADDIW, rd, rs1, imm=imm)

    def slliw(self, rd: Reg, rs1: Reg, imm: int) -> None:
        self._emit(ops.SLLIW, rd, rs1, imm=imm)

    def srliw(self, rd: Reg, rs1: Reg, imm: int) -> None:
        self._emit(ops.SRLIW, rd, rs1, imm=imm)

    def sraiw(self, rd: Reg, rs1: Reg, imm: int) -> None:
        self._emit(ops.SRAIW, rd, rs1, imm=imm)

    def sltiu(self, rd: Reg, rs1: Reg, imm: int) -> None:
        self._emit(ops.SLTIU, rd, rs1, imm=imm)

    def mov(self, rd: Reg, rs1: Reg) -> None:
        """Pseudo-instruction: ``add rd, rs1, r0``."""
        self._emit(ops.ADD, rd, rs1, 0)

    def nop(self) -> None:
        self._emit(ops.NOP)

    # -- memory ---------------------------------------------------------------

    def lb(self, rd: Reg, base: Reg, offset: int = 0) -> None:
        self._emit(ops.LB, rd, base, imm=offset)

    def lbu(self, rd: Reg, base: Reg, offset: int = 0) -> None:
        self._emit(ops.LBU, rd, base, imm=offset)

    def lh(self, rd: Reg, base: Reg, offset: int = 0) -> None:
        self._emit(ops.LH, rd, base, imm=offset)

    def lhu(self, rd: Reg, base: Reg, offset: int = 0) -> None:
        self._emit(ops.LHU, rd, base, imm=offset)

    def lw(self, rd: Reg, base: Reg, offset: int = 0) -> None:
        self._emit(ops.LW, rd, base, imm=offset)

    def lwu(self, rd: Reg, base: Reg, offset: int = 0) -> None:
        self._emit(ops.LWU, rd, base, imm=offset)

    def ld(self, rd: Reg, base: Reg, offset: int = 0) -> None:
        self._emit(ops.LD, rd, base, imm=offset)

    def sb(self, src: Reg, base: Reg, offset: int = 0) -> None:
        self._emit(ops.SB, 0, base, src, imm=offset)

    def sh(self, src: Reg, base: Reg, offset: int = 0) -> None:
        self._emit(ops.SH, 0, base, src, imm=offset)

    def sw(self, src: Reg, base: Reg, offset: int = 0) -> None:
        self._emit(ops.SW, 0, base, src, imm=offset)

    def sd(self, src: Reg, base: Reg, offset: int = 0) -> None:
        self._emit(ops.SD, 0, base, src, imm=offset)

    # -- control --------------------------------------------------------------

    def beq(self, rs1: Reg, rs2: Reg, target: Target) -> None:
        self._emit(ops.BEQ, 0, rs1, rs2, imm=self._target(target))

    def bne(self, rs1: Reg, rs2: Reg, target: Target) -> None:
        self._emit(ops.BNE, 0, rs1, rs2, imm=self._target(target))

    def blt(self, rs1: Reg, rs2: Reg, target: Target) -> None:
        self._emit(ops.BLT, 0, rs1, rs2, imm=self._target(target))

    def bge(self, rs1: Reg, rs2: Reg, target: Target) -> None:
        self._emit(ops.BGE, 0, rs1, rs2, imm=self._target(target))

    def bltu(self, rs1: Reg, rs2: Reg, target: Target) -> None:
        self._emit(ops.BLTU, 0, rs1, rs2, imm=self._target(target))

    def bgeu(self, rs1: Reg, rs2: Reg, target: Target) -> None:
        self._emit(ops.BGEU, 0, rs1, rs2, imm=self._target(target))

    def j(self, target: Target) -> None:
        self._emit(ops.J, imm=self._target(target))

    def jal(self, rd: Reg, target: Target) -> None:
        self._emit(ops.JAL, rd, imm=self._target(target))

    def jr(self, rs1: Reg) -> None:
        self._emit(ops.JR, 0, rs1)

    def jalr(self, rd: Reg, base: Reg, offset: int = 0) -> None:
        """Indirect jump-and-link: ``rd <- pc+4, pc <- (base+offset) & ~1``."""
        self._emit(ops.JALR, rd, base, imm=offset)

    def halt(self) -> None:
        self._emit(ops.HALT)
