"""RV32I(+M) frontend: run real RISC-V instruction streams on the simulator.

The rest of the stack (interpreter oracle, OoO pipeline, checkpointed
fast-forward, differential fuzzer) speaks the internal 64-bit ISA of
:mod:`repro.isa.instructions`.  This module accepts real RV32 machine code
-- raw hex word lists, flat little-endian binary images, or ``.hex`` text
files in the synapse32 style (one word per line, ``#``/``//`` comments) --
and translates it 1:1 into internal instructions, one internal instruction
per RV32 word at the same byte address, so branch offsets and ``jal`` link
values need no relocation.

Translation model
-----------------
The internal machine is 64-bit; RV32 results are represented under the
RV64 convention that *every register holds the sign-extension of its
32-bit value*.  Arithmetic that can overflow 32 bits maps to the
W-opcodes (``ADDW``/``SUBW``/``MULW``/... with exact RV32 semantics,
including division edge cases and 5-bit shift amounts); bitwise ops,
comparisons, branches, loads and stores map directly because
sign-extension preserves bit patterns, 32-bit signed/unsigned ordering,
and low-order memory bytes.

Boundaries (documented, asserted by tests):

* Addresses are computed in 64 bits (RV64-style): a base+offset sum that
  would wrap around 2**32 on real RV32 hardware lands in high 64-bit
  space here instead.  Oracle and pipeline agree, so conformance holds,
  but programs relying on 32-bit address wraparound are out of scope.
* ``fence``/``fence.i`` translate to ``nop`` (single core, strong
  ordering); ``ecall``/``ebreak`` translate to ``halt``.
* CSR instructions and anything outside RV32IM raise
  :class:`UnsupportedInstructionError` (a :class:`DecodeError`).
"""

from __future__ import annotations

import os
from typing import Iterable, List, Optional, Union

from . import instructions as ops
from .instructions import Instruction
from .program import INSTRUCTION_BYTES, Program

MASK32 = (1 << 32) - 1

__all__ = [
    "DecodeError",
    "UnsupportedInstructionError",
    "RVInstruction",
    "RVAssembler",
    "decode_word",
    "encode",
    "translate",
    "words_from_hex_text",
    "words_from_binary",
    "load_words",
    "load_program",
]


class DecodeError(ValueError):
    """An instruction word is not a valid, supported RV32 encoding."""

    def __init__(self, message: str, word: Optional[int] = None,
                 pc: Optional[int] = None):
        if word is not None:
            where = f" (word={word & MASK32:#010x}"
            where += f", pc={pc:#x})" if pc is not None else ")"
            message += where
        super().__init__(message)
        self.word = word
        self.pc = pc


class UnsupportedInstructionError(DecodeError):
    """A real RV32 encoding this frontend deliberately does not model
    (CSR accesses, privileged instructions, other extensions)."""


class RVInstruction:
    """One decoded RV32 instruction: mnemonic plus raw operand fields.

    ``imm`` is the fully sign-extended immediate as a Python int (the
    PC-relative *offset* for branches/``jal``, not an absolute target);
    for shifts it is the 5-bit shamt, for ``lui``/``auipc`` the
    already-shifted 32-bit immediate.
    """

    __slots__ = ("mnemonic", "rd", "rs1", "rs2", "imm")

    def __init__(self, mnemonic: str, rd: int = 0, rs1: int = 0,
                 rs2: int = 0, imm: int = 0):
        self.mnemonic = mnemonic
        self.rd = rd
        self.rs1 = rs1
        self.rs2 = rs2
        self.imm = imm

    def key(self):
        return (self.mnemonic, self.rd, self.rs1, self.rs2, self.imm)

    def __eq__(self, other) -> bool:
        return isinstance(other, RVInstruction) and self.key() == other.key()

    def __hash__(self) -> int:
        return hash(self.key())

    def __repr__(self) -> str:
        return (f"RVInstruction({self.mnemonic!r}, rd={self.rd}, "
                f"rs1={self.rs1}, rs2={self.rs2}, imm={self.imm})")


# --- decode -----------------------------------------------------------------

def _sext(value: int, bits: int) -> int:
    """Sign-extend ``value`` from ``bits`` bits to a Python int."""
    sign = 1 << (bits - 1)
    return (value & (sign - 1)) - (value & sign)


_BRANCH_F3 = {0: "beq", 1: "bne", 4: "blt", 5: "bge", 6: "bltu", 7: "bgeu"}
_LOAD_F3 = {0: "lb", 1: "lh", 2: "lw", 4: "lbu", 5: "lhu"}
_STORE_F3 = {0: "sb", 1: "sh", 2: "sw"}
_OPIMM_F3 = {0: "addi", 2: "slti", 3: "sltiu", 4: "xori", 6: "ori",
             7: "andi"}
_OP_F3 = {  # (funct3, funct7) -> mnemonic
    (0, 0x00): "add", (0, 0x20): "sub",
    (1, 0x00): "sll", (2, 0x00): "slt", (3, 0x00): "sltu",
    (4, 0x00): "xor", (5, 0x00): "srl", (5, 0x20): "sra",
    (6, 0x00): "or", (7, 0x00): "and",
    (0, 0x01): "mul", (1, 0x01): "mulh", (2, 0x01): "mulhsu",
    (3, 0x01): "mulhu", (4, 0x01): "div", (5, 0x01): "divu",
    (6, 0x01): "rem", (7, 0x01): "remu",
}


def decode_word(word: int, pc: Optional[int] = None) -> RVInstruction:
    """Decode one 32-bit RV32I(+M) instruction word.

    Raises :class:`DecodeError` on invalid encodings and
    :class:`UnsupportedInstructionError` on valid-but-unmodelled ones
    (CSR/privileged).  Never raises ``KeyError``.
    """
    if not isinstance(word, int):
        raise DecodeError(f"instruction word must be an int, "
                          f"got {type(word).__name__}", pc=pc)
    if not 0 <= word <= MASK32:
        raise DecodeError("instruction word out of 32-bit range",
                          word=word, pc=pc)
    opcode = word & 0x7F
    rd = (word >> 7) & 0x1F
    funct3 = (word >> 12) & 0x7
    rs1 = (word >> 15) & 0x1F
    rs2 = (word >> 20) & 0x1F
    funct7 = word >> 25

    if opcode == 0x37:  # LUI
        return RVInstruction("lui", rd=rd, imm=_sext(word & 0xFFFFF000, 32))
    if opcode == 0x17:  # AUIPC
        return RVInstruction("auipc", rd=rd, imm=_sext(word & 0xFFFFF000, 32))
    if opcode == 0x6F:  # JAL
        imm = _sext(((word >> 31) << 20)
                    | (((word >> 21) & 0x3FF) << 1)
                    | (((word >> 20) & 1) << 11)
                    | (((word >> 12) & 0xFF) << 12), 21)
        return RVInstruction("jal", rd=rd, imm=imm)
    if opcode == 0x67:  # JALR
        if funct3 != 0:
            raise DecodeError("jalr requires funct3=0", word=word, pc=pc)
        return RVInstruction("jalr", rd=rd, rs1=rs1, imm=_sext(word >> 20, 12))
    if opcode == 0x63:  # conditional branches
        mnemonic = _BRANCH_F3.get(funct3)
        if mnemonic is None:
            raise DecodeError(f"invalid branch funct3={funct3}",
                              word=word, pc=pc)
        imm = _sext(((word >> 31) << 12)
                    | (((word >> 25) & 0x3F) << 5)
                    | (((word >> 8) & 0xF) << 1)
                    | (((word >> 7) & 1) << 11), 13)
        return RVInstruction(mnemonic, rs1=rs1, rs2=rs2, imm=imm)
    if opcode == 0x03:  # loads
        mnemonic = _LOAD_F3.get(funct3)
        if mnemonic is None:
            raise DecodeError(f"invalid load funct3={funct3}",
                              word=word, pc=pc)
        return RVInstruction(mnemonic, rd=rd, rs1=rs1,
                             imm=_sext(word >> 20, 12))
    if opcode == 0x23:  # stores
        mnemonic = _STORE_F3.get(funct3)
        if mnemonic is None:
            raise DecodeError(f"invalid store funct3={funct3}",
                              word=word, pc=pc)
        imm = _sext((funct7 << 5) | rd, 12)
        return RVInstruction(mnemonic, rs1=rs1, rs2=rs2, imm=imm)
    if opcode == 0x13:  # OP-IMM
        if funct3 == 1:  # slli
            if funct7 != 0:
                raise DecodeError("slli requires funct7=0", word=word, pc=pc)
            return RVInstruction("slli", rd=rd, rs1=rs1, imm=rs2)
        if funct3 == 5:  # srli / srai
            if funct7 == 0x00:
                return RVInstruction("srli", rd=rd, rs1=rs1, imm=rs2)
            if funct7 == 0x20:
                return RVInstruction("srai", rd=rd, rs1=rs1, imm=rs2)
            raise DecodeError(f"invalid shift funct7={funct7:#x}",
                              word=word, pc=pc)
        mnemonic = _OPIMM_F3[funct3]  # funct3 1/5 handled; rest all valid
        return RVInstruction(mnemonic, rd=rd, rs1=rs1,
                             imm=_sext(word >> 20, 12))
    if opcode == 0x33:  # OP (register-register, incl. the M extension)
        mnemonic = _OP_F3.get((funct3, funct7))
        if mnemonic is None:
            raise DecodeError(
                f"invalid OP funct3={funct3} funct7={funct7:#x}",
                word=word, pc=pc)
        return RVInstruction(mnemonic, rd=rd, rs1=rs1, rs2=rs2)
    if opcode == 0x0F:  # MISC-MEM
        if funct3 == 0:
            return RVInstruction("fence", rd=rd, rs1=rs1,
                                 imm=_sext(word >> 20, 12))
        if funct3 == 1:
            return RVInstruction("fence.i", rd=rd, rs1=rs1,
                                 imm=_sext(word >> 20, 12))
        raise DecodeError(f"invalid MISC-MEM funct3={funct3}",
                          word=word, pc=pc)
    if opcode == 0x73:  # SYSTEM
        if funct3 == 0:
            funct12 = word >> 20
            if rd == 0 and rs1 == 0 and funct12 == 0:
                return RVInstruction("ecall")
            if rd == 0 and rs1 == 0 and funct12 == 1:
                return RVInstruction("ebreak")
            raise UnsupportedInstructionError(
                "privileged SYSTEM instruction is not modelled",
                word=word, pc=pc)
        raise UnsupportedInstructionError(
            "CSR instructions are not modelled", word=word, pc=pc)
    raise DecodeError(f"invalid major opcode {opcode:#04x}",
                      word=word, pc=pc)


# --- encode (round-trip support for tests and corpus generation) ------------

_R_ENC = {  # mnemonic -> (funct3, funct7)
    "add": (0, 0x00), "sub": (0, 0x20), "sll": (1, 0x00), "slt": (2, 0x00),
    "sltu": (3, 0x00), "xor": (4, 0x00), "srl": (5, 0x00), "sra": (5, 0x20),
    "or": (6, 0x00), "and": (7, 0x00),
    "mul": (0, 0x01), "mulh": (1, 0x01), "mulhsu": (2, 0x01),
    "mulhu": (3, 0x01), "div": (4, 0x01), "divu": (5, 0x01),
    "rem": (6, 0x01), "remu": (7, 0x01),
}
_I_ENC = {"addi": 0, "slti": 2, "sltiu": 3, "xori": 4, "ori": 6, "andi": 7}
_SHIFT_ENC = {"slli": (1, 0x00), "srli": (5, 0x00), "srai": (5, 0x20)}
_LOAD_ENC = {"lb": 0, "lh": 1, "lw": 2, "lbu": 4, "lhu": 5}
_STORE_ENC = {"sb": 0, "sh": 1, "sw": 2}
_BRANCH_ENC = {"beq": 0, "bne": 1, "blt": 4, "bge": 5, "bltu": 6, "bgeu": 7}


def encode(rv: RVInstruction) -> int:
    """Re-encode a decoded instruction into its RV32 word.

    Exact inverse of :func:`decode_word` for every accepted encoding:
    ``encode(decode_word(w)) == w``.
    """
    m, rd, rs1, rs2 = rv.mnemonic, rv.rd, rv.rs1, rv.rs2
    imm = rv.imm
    if m in _R_ENC:
        f3, f7 = _R_ENC[m]
        return (f7 << 25) | (rs2 << 20) | (rs1 << 15) | (f3 << 12) \
            | (rd << 7) | 0x33
    if m in _I_ENC:
        return ((imm & 0xFFF) << 20) | (rs1 << 15) | (_I_ENC[m] << 12) \
            | (rd << 7) | 0x13
    if m in _SHIFT_ENC:
        f3, f7 = _SHIFT_ENC[m]
        return (f7 << 25) | ((imm & 0x1F) << 20) | (rs1 << 15) | (f3 << 12) \
            | (rd << 7) | 0x13
    if m in _LOAD_ENC:
        return ((imm & 0xFFF) << 20) | (rs1 << 15) | (_LOAD_ENC[m] << 12) \
            | (rd << 7) | 0x03
    if m in _STORE_ENC:
        return (((imm >> 5) & 0x7F) << 25) | (rs2 << 20) | (rs1 << 15) \
            | (_STORE_ENC[m] << 12) | ((imm & 0x1F) << 7) | 0x23
    if m in _BRANCH_ENC:
        return (((imm >> 12) & 1) << 31) | (((imm >> 5) & 0x3F) << 25) \
            | (rs2 << 20) | (rs1 << 15) | (_BRANCH_ENC[m] << 12) \
            | (((imm >> 1) & 0xF) << 8) | (((imm >> 11) & 1) << 7) | 0x63
    if m == "lui":
        return (imm & 0xFFFFF000) | (rd << 7) | 0x37
    if m == "auipc":
        return (imm & 0xFFFFF000) | (rd << 7) | 0x17
    if m == "jal":
        return (((imm >> 20) & 1) << 31) | (((imm >> 1) & 0x3FF) << 21) \
            | (((imm >> 11) & 1) << 20) | (((imm >> 12) & 0xFF) << 12) \
            | (rd << 7) | 0x6F
    if m == "jalr":
        return ((imm & 0xFFF) << 20) | (rs1 << 15) | (rd << 7) | 0x67
    if m == "fence":
        return ((imm & 0xFFF) << 20) | (rs1 << 15) | (rd << 7) | 0x0F
    if m == "fence.i":
        return ((imm & 0xFFF) << 20) | (rs1 << 15) | (1 << 12) \
            | (rd << 7) | 0x0F
    if m == "ecall":
        return 0x00000073
    if m == "ebreak":
        return 0x00100073
    raise DecodeError(f"cannot encode mnemonic {m!r}")


class RVAssembler:
    """Tiny two-pass RV32 assembler over :class:`RVInstruction` +
    :func:`encode` -- enough to write corpus and fuzz programs as real
    machine code with symbolic branch labels."""

    def __init__(self):
        self._items: List[object] = []
        self._labels: dict = {}

    def label(self, name: str) -> None:
        if name in self._labels:
            raise DecodeError(f"duplicate label {name!r}")
        self._labels[name] = len(self._items) * INSTRUCTION_BYTES

    def emit(self, mnemonic: str, rd: int = 0, rs1: int = 0, rs2: int = 0,
             imm: int = 0) -> None:
        self._items.append(RVInstruction(mnemonic, rd=rd, rs1=rs1,
                                         rs2=rs2, imm=imm))

    def branch(self, mnemonic: str, rs1: int, rs2: int, label: str) -> None:
        """A conditional branch to a symbolic label."""
        self._items.append(("branch", mnemonic, rs1, rs2, label))

    def jal(self, rd: int, label: str) -> None:
        self._items.append(("jal", rd, label))

    def li32(self, rd: int, value: int) -> None:
        """Materialise a 32-bit constant via the lui/addi idiom (with the
        +0x800 rounding that compensates addi's sign-extension)."""
        lo = (value & 0xFFF) - ((value & 0x800) << 1)
        hi = (value - lo) & MASK32
        self.emit("lui", rd=rd, imm=hi - (1 << 32) if hi >> 31 else hi)
        if lo:
            self.emit("addi", rd=rd, rs1=rd, imm=lo)

    def here(self) -> int:
        return len(self._items) * INSTRUCTION_BYTES

    def words(self) -> List[int]:
        """Resolve labels and return the encoded instruction words."""
        out: List[int] = []
        for index, item in enumerate(self._items):
            pc = index * INSTRUCTION_BYTES
            if isinstance(item, RVInstruction):
                rv = item
            elif item[0] == "branch":
                _, mnemonic, rs1, rs2, label = item
                if label not in self._labels:
                    raise DecodeError(f"undefined label {label!r}")
                rv = RVInstruction(mnemonic, rs1=rs1, rs2=rs2,
                                   imm=self._labels[label] - pc)
            else:
                _, rd, label = item
                if label not in self._labels:
                    raise DecodeError(f"undefined label {label!r}")
                rv = RVInstruction("jal", rd=rd,
                                   imm=self._labels[label] - pc)
            out.append(encode(rv))
        return out

    def build(self, name: str = "riscv") -> Program:
        return translate(self.words(), name=name)


# --- translation ------------------------------------------------------------

# mnemonic -> internal opcode, for the classes that map field-for-field.
_DIRECT_RRR = {
    "add": ops.ADDW, "sub": ops.SUBW, "sll": ops.SLLW, "srl": ops.SRLW,
    "sra": ops.SRAW, "slt": ops.SLT, "sltu": ops.SLTU,
    "xor": ops.XOR, "or": ops.OR, "and": ops.AND,
    "mul": ops.MULW, "mulh": ops.MULHW, "mulhsu": ops.MULHSUW,
    "mulhu": ops.MULHUW, "div": ops.DIVW, "divu": ops.DIVUW,
    "rem": ops.REMW, "remu": ops.REMUW,
}
_DIRECT_RRI = {
    "addi": ops.ADDIW, "slti": ops.SLTI, "sltiu": ops.SLTIU,
    "xori": ops.XORI, "ori": ops.ORI, "andi": ops.ANDI,
    "slli": ops.SLLIW, "srli": ops.SRLIW, "srai": ops.SRAIW,
}
_DIRECT_LOAD = {"lb": ops.LB, "lh": ops.LH, "lw": ops.LW,
                "lbu": ops.LBU, "lhu": ops.LHU}
_DIRECT_STORE = {"sb": ops.SB, "sh": ops.SH, "sw": ops.SW}
_DIRECT_BRANCH = {"beq": ops.BEQ, "bne": ops.BNE, "blt": ops.BLT,
                  "bge": ops.BGE, "bltu": ops.BLTU, "bgeu": ops.BGEU}


def _translate_one(rv: RVInstruction, pc: int) -> Instruction:
    m = rv.mnemonic
    op = _DIRECT_RRR.get(m)
    if op is not None:
        return Instruction(op, rd=rv.rd, rs1=rv.rs1, rs2=rv.rs2)
    op = _DIRECT_RRI.get(m)
    if op is not None:
        return Instruction(op, rd=rv.rd, rs1=rv.rs1, imm=rv.imm)
    op = _DIRECT_LOAD.get(m)
    if op is not None:
        return Instruction(op, rd=rv.rd, rs1=rv.rs1, imm=rv.imm)
    op = _DIRECT_STORE.get(m)
    if op is not None:
        # Internal store convention: rs1 = base, rs2 = data source.
        return Instruction(op, rs1=rv.rs1, rs2=rv.rs2, imm=rv.imm)
    op = _DIRECT_BRANCH.get(m)
    if op is not None:
        # Internal branches carry the absolute byte target.
        return Instruction(op, rs1=rv.rs1, rs2=rv.rs2, imm=pc + rv.imm)
    if m == "lui":
        return Instruction(ops.LI, rd=rv.rd, imm=rv.imm)
    if m == "auipc":
        return Instruction(ops.LI, rd=rv.rd,
                           imm=_sext((pc + rv.imm) & MASK32, 32))
    if m == "jal":
        if rv.rd == 0:
            return Instruction(ops.J, imm=pc + rv.imm)
        return Instruction(ops.JAL, rd=rv.rd, imm=pc + rv.imm)
    if m == "jalr":
        return Instruction(ops.JALR, rd=rv.rd, rs1=rv.rs1, imm=rv.imm)
    if m in ("fence", "fence.i"):
        return Instruction(ops.NOP)
    if m in ("ecall", "ebreak"):
        return Instruction(ops.HALT)
    raise DecodeError(f"cannot translate mnemonic {m!r}", pc=pc)


def translate(words: Iterable[int], name: str = "riscv") -> Program:
    """Translate a sequence of RV32 words into an executable Program.

    Instruction ``i`` of the result sits at the same byte address
    ``4*i`` as its RV32 source, so PC-relative control flow needs no
    relocation.  A ``halt`` sentinel is appended after the stream so a
    program that falls off the end stops immediately instead of sliding
    through the wrong-path ``nop`` pad.
    """
    internal: List[Instruction] = []
    for index, word in enumerate(words):
        pc = index * INSTRUCTION_BYTES
        internal.append(_translate_one(decode_word(word, pc=pc), pc))
    internal.append(Instruction(ops.HALT))
    return Program(internal, name=name)


# --- image loaders ----------------------------------------------------------

def words_from_hex_text(text: str) -> List[int]:
    """Parse ``.hex`` text: whitespace/comma-separated hex words, one or
    more per line; ``#``, ``//`` and ``;`` start comments; an optional
    ``0x`` prefix is accepted."""
    words: List[int] = []
    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].split("//", 1)[0].split(";", 1)[0]
        for token in line.replace(",", " ").split():
            body = token[2:] if token[:2].lower() == "0x" else token
            try:
                value = int(body, 16)
            except ValueError:
                raise DecodeError(
                    f"line {line_number}: bad hex word {token!r}") from None
            if not 0 <= value <= MASK32:
                raise DecodeError(
                    f"line {line_number}: word {token!r} out of 32-bit "
                    f"range")
            words.append(value)
    return words


def words_from_binary(blob: bytes) -> List[int]:
    """Split a flat binary image into little-endian 32-bit words."""
    if len(blob) % 4:
        raise DecodeError(f"flat binary image length {len(blob)} is not a "
                          f"multiple of 4")
    return [int.from_bytes(blob[i:i + 4], "little")
            for i in range(0, len(blob), 4)]


def _sniff(blob: bytes) -> List[int]:
    """Autodetect hex text vs flat binary for extension-less sources."""
    try:
        text = blob.decode("ascii")
    except UnicodeDecodeError:
        return words_from_binary(blob)
    try:
        return words_from_hex_text(text)
    except DecodeError:
        return words_from_binary(blob)


Source = Union[str, "os.PathLike[str]", bytes, bytearray, Iterable[int]]


def load_words(source: Source) -> List[int]:
    """Extract RV32 words from a path, raw bytes, or an int iterable.

    Paths ending in ``.hex``/``.txt`` are parsed as hex text; other
    paths and raw ``bytes`` are sniffed (ascii hex first, flat
    little-endian binary otherwise).
    """
    if isinstance(source, (str, os.PathLike)):
        path = os.fspath(source)
        with open(path, "rb") as fh:
            blob = fh.read()
        if path.endswith((".hex", ".txt")):
            try:
                text = blob.decode("ascii")
            except UnicodeDecodeError:
                raise DecodeError(f"{path}: hex text file is not "
                                  f"ascii") from None
            return words_from_hex_text(text)
        return _sniff(blob)
    if isinstance(source, (bytes, bytearray, memoryview)):
        return _sniff(bytes(source))
    return list(source)


def load_program(source: Source, name: Optional[str] = None) -> Program:
    """Load + translate in one step (the engine behind
    :meth:`repro.isa.program.Program.from_riscv` and ``repro run
    --riscv``)."""
    if name is None:
        if isinstance(source, (str, os.PathLike)):
            base = os.path.basename(os.fspath(source))
            name = f"riscv-{os.path.splitext(base)[0]}"
        else:
            name = "riscv"
    return translate(load_words(source), name=name)
