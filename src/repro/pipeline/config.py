"""Core and system configuration.

The two presets mirror the paper's Figure 4: a 4-wide *baseline*
superscalar with a 128-entry window and an 8-wide *aggressive* superscalar
with a 1024-entry window, each combinable with either memory subsystem.
Preset constructors live in :mod:`repro.harness.configs`; this module
defines the parameter records themselves:

* :class:`CoreConfig` -- every knob of one superscalar core (the record
  formerly named ``ProcessorConfig``; that name remains as an alias and
  is what the single-core digest gate serializes);
* :class:`SystemConfig` -- an N-core system over a shared memory
  system: a homogeneous :class:`CoreConfig` plus the core count and the
  memory-sharing mode.
"""

from __future__ import annotations

from typing import Optional

from ..core import registry
from ..core.lsq import LSQConfig
from ..core.mdt import MDTConfig
from ..core.predictors import ENF, PredictorConfig
from ..core.sfc import SFCConfig
from ..core.subsystem import OUTPUT_RECOVERY_FLUSH

#: Names of the built-in subsystems (kept as conveniences; the source of
#: truth is :mod:`repro.core.registry`, which any number of additional
#: subsystems may join via ``@register_subsystem``).
SUBSYSTEM_LSQ = "lsq"
SUBSYSTEM_SFC_MDT = "sfc_mdt"
SUBSYSTEM_LOAD_REPLAY = "load_replay"

#: :class:`SystemConfig` memory modes.  ``shared``: all cores execute
#: over one shared architectural image (stores become globally visible
#: at retirement -- the litmus/weak-memory mode); ``private``: each core
#: owns a private image but timing flows through a shared L2 (the
#: throughput mode, which keeps per-core golden-trace validation exact).
MEMORY_SHARED = "shared"
MEMORY_PRIVATE = "private"
MEMORY_MODES = (MEMORY_SHARED, MEMORY_PRIVATE)


class CoreConfig:
    """Every knob of one simulated superscalar core."""

    def __init__(
        self,
        width: int = 4,
        fetch_branches_per_cycle: int = 1,
        rob_size: int = 128,
        sched_size: int = 128,
        num_fus: int = 4,
        mispredict_penalty: int = 8,
        subsystem: str = SUBSYSTEM_LSQ,
        lsq: Optional[LSQConfig] = None,
        sfc: Optional[SFCConfig] = None,
        mdt: Optional[MDTConfig] = None,
        predictor: Optional[PredictorConfig] = None,
        store_fifo_capacity: int = 256,
        output_recovery: str = OUTPUT_RECOVERY_FLUSH,
        oracle_fix_rate: float = 0.8,
        branch_seed: int = 0x5EED,
        max_cycles: int = 50_000_000,
        name: str = "",
    ):
        for field, value in (("width", width),
                             ("fetch_branches_per_cycle",
                              fetch_branches_per_cycle),
                             ("rob_size", rob_size),
                             ("sched_size", sched_size),
                             ("num_fus", num_fus)):
            if not isinstance(value, int) or value < 1:
                raise ValueError(
                    f"{field} must be a positive integer, got {value!r}")
        self.width = width
        self.fetch_branches_per_cycle = fetch_branches_per_cycle
        self.rob_size = rob_size
        self.sched_size = sched_size
        self.num_fus = num_fus
        self.mispredict_penalty = mispredict_penalty
        self.subsystem = registry.validate(subsystem)
        self.lsq = lsq if lsq is not None else LSQConfig()
        self.sfc = sfc if sfc is not None else SFCConfig()
        self.mdt = mdt if mdt is not None else MDTConfig()
        self.predictor = predictor if predictor is not None \
            else PredictorConfig(mode=ENF)
        self.store_fifo_capacity = store_fifo_capacity
        self.output_recovery = output_recovery
        self.oracle_fix_rate = oracle_fix_rate
        self.branch_seed = branch_seed
        self.max_cycles = max_cycles
        self.name = name or subsystem

    def to_dict(self) -> dict:
        """Canonical, JSON-serializable view of every knob.

        Derived from ``vars(self)`` so a newly added field can never be
        forgotten; nested configuration records serialize through their
        own ``to_dict``.  The experiment engine hashes this dict (minus
        ``name``, which is a display label, not a simulation parameter)
        to key its persistent result cache.
        """
        out = {}
        for field in sorted(vars(self)):
            value = getattr(self, field)
            out[field] = value.to_dict() if hasattr(value, "to_dict") \
                else value
        return out

    def __repr__(self) -> str:
        sub = self.lsq if self.subsystem == SUBSYSTEM_LSQ \
            else (self.sfc, self.mdt)
        return (f"CoreConfig({self.name}: width={self.width}, "
                f"rob={self.rob_size}, {self.subsystem}={sub!r}, "
                f"pred={self.predictor.mode})")


#: Backwards-compatible alias: the single-core world (presets, the
#: experiment engine's cache keys, the ``manifest_digest`` gate) built
#: and serialized ``ProcessorConfig`` objects; the record is unchanged,
#: only the canonical name moved to :class:`CoreConfig`.
ProcessorConfig = CoreConfig


class SystemConfig:
    """An N-core system: one homogeneous core recipe plus system knobs.

    ``cores=1`` systems are still legal (useful for differential tests
    against the plain single-core path), but the single-core pipelines
    -- presets, engine cache keys, digest gate -- keep using
    :class:`CoreConfig` directly so their serialized form is untouched.
    """

    def __init__(self, core: Optional[CoreConfig] = None, cores: int = 2,
                 memory_mode: str = MEMORY_SHARED, name: str = ""):
        if not isinstance(cores, int) or cores < 1:
            raise ValueError(
                f"cores must be a positive integer, got {cores!r}")
        if memory_mode not in MEMORY_MODES:
            raise ValueError(
                f"unknown memory_mode {memory_mode!r}; choose from "
                f"{MEMORY_MODES}")
        self.core = core if core is not None else CoreConfig()
        self.cores = cores
        self.memory_mode = memory_mode
        self.name = name or f"{self.core.name}-x{cores}-{memory_mode}"

    @property
    def shared_memory(self) -> bool:
        return self.memory_mode == MEMORY_SHARED

    def to_dict(self) -> dict:
        """Canonical, JSON-serializable view (same contract as
        :meth:`CoreConfig.to_dict`; the engine hashes it minus ``name``
        for multicore cache keys)."""
        return {
            "core": self.core.to_dict(),
            "cores": self.cores,
            "memory_mode": self.memory_mode,
            "name": self.name,
        }

    def __repr__(self) -> str:
        return (f"SystemConfig({self.name}: {self.cores} x "
                f"{self.core.name}, memory={self.memory_mode})")
