"""Processor configuration.

The two presets mirror the paper's Figure 4: a 4-wide *baseline*
superscalar with a 128-entry window and an 8-wide *aggressive* superscalar
with a 1024-entry window, each combinable with either memory subsystem.
Preset constructors live in :mod:`repro.harness.configs`; this module
defines the parameter record itself.
"""

from __future__ import annotations

from typing import Optional

from ..core import registry
from ..core.lsq import LSQConfig
from ..core.mdt import MDTConfig
from ..core.predictors import ENF, PredictorConfig
from ..core.sfc import SFCConfig
from ..core.subsystem import OUTPUT_RECOVERY_FLUSH

#: Names of the built-in subsystems (kept as conveniences; the source of
#: truth is :mod:`repro.core.registry`, which any number of additional
#: subsystems may join via ``@register_subsystem``).
SUBSYSTEM_LSQ = "lsq"
SUBSYSTEM_SFC_MDT = "sfc_mdt"
SUBSYSTEM_LOAD_REPLAY = "load_replay"


class ProcessorConfig:
    """Every knob of the simulated superscalar."""

    def __init__(
        self,
        width: int = 4,
        fetch_branches_per_cycle: int = 1,
        rob_size: int = 128,
        sched_size: int = 128,
        num_fus: int = 4,
        mispredict_penalty: int = 8,
        subsystem: str = SUBSYSTEM_LSQ,
        lsq: Optional[LSQConfig] = None,
        sfc: Optional[SFCConfig] = None,
        mdt: Optional[MDTConfig] = None,
        predictor: Optional[PredictorConfig] = None,
        store_fifo_capacity: int = 256,
        output_recovery: str = OUTPUT_RECOVERY_FLUSH,
        oracle_fix_rate: float = 0.8,
        branch_seed: int = 0x5EED,
        max_cycles: int = 50_000_000,
        name: str = "",
    ):
        self.width = width
        self.fetch_branches_per_cycle = fetch_branches_per_cycle
        self.rob_size = rob_size
        self.sched_size = sched_size
        self.num_fus = num_fus
        self.mispredict_penalty = mispredict_penalty
        self.subsystem = registry.validate(subsystem)
        self.lsq = lsq if lsq is not None else LSQConfig()
        self.sfc = sfc if sfc is not None else SFCConfig()
        self.mdt = mdt if mdt is not None else MDTConfig()
        self.predictor = predictor if predictor is not None \
            else PredictorConfig(mode=ENF)
        self.store_fifo_capacity = store_fifo_capacity
        self.output_recovery = output_recovery
        self.oracle_fix_rate = oracle_fix_rate
        self.branch_seed = branch_seed
        self.max_cycles = max_cycles
        self.name = name or subsystem

    def to_dict(self) -> dict:
        """Canonical, JSON-serializable view of every knob.

        Derived from ``vars(self)`` so a newly added field can never be
        forgotten; nested configuration records serialize through their
        own ``to_dict``.  The experiment engine hashes this dict (minus
        ``name``, which is a display label, not a simulation parameter)
        to key its persistent result cache.
        """
        out = {}
        for field in sorted(vars(self)):
            value = getattr(self, field)
            out[field] = value.to_dict() if hasattr(value, "to_dict") \
                else value
        return out

    def __repr__(self) -> str:
        sub = self.lsq if self.subsystem == SUBSYSTEM_LSQ \
            else (self.sfc, self.mdt)
        return (f"ProcessorConfig({self.name}: width={self.width}, "
                f"rob={self.rob_size}, {self.subsystem}={sub!r}, "
                f"pred={self.predictor.mode})")
