"""Cycle-level out-of-order superscalar core.

Execution-driven, as in the paper: the pipeline fetches along the
*predicted* path, so wrong-path loads and stores really execute and touch
the SFC/MDT (the source of SFC corruptions), and every retired instruction
is validated against the golden trace of the in-order architectural
simulator.  Recovery from branch mispredictions and memory-ordering
violations is a partial pipeline flush: squash everything younger than the
recovery point, restore the register alias table from the per-instruction
checkpoint, and redirect fetch.

Stage order within :meth:`Core.step` (one simulated cycle):

1. complete instructions whose latency expires this cycle (writeback);
2. retire from the ROB head, validating against the golden trace;
3. clear scheduler stall bits if the MDT/SFC evicted entries;
4. select + execute ready instructions (loads/stores consult the memory
   subsystem here, speculatively and out of order);
5. fetch/rename/dispatch along the predicted path.

A :class:`Core` owns every *per-core* structure (fetch state, rename
table, scheduler, ROB, store FIFO, SFC/MDT subsystem, gshare, counters)
but its architectural memory image and cache hierarchy are injectable:
standalone (the :class:`~repro.pipeline.processor.Processor` single-core
path) it builds a private :class:`~repro.memory.main_memory.MainMemory`
and the paper's hierarchy; under a
:class:`~repro.pipeline.system.System` it is handed a shared image
and a per-core hierarchy over a shared L2 instead.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional

from ..branch.gshare import GsharePredictor
from ..core import registry
from ..core.predictors import DependenceTagFile, ProducerSetPredictor
from ..core.subsystem import REPLAY
from ..isa import instructions as ops
from ..isa.instructions import MASK64, sign_extend
from ..isa.interp import RetireRecord, branch_taken, execute_op, run_program
from ..isa.program import INSTRUCTION_BYTES, Program
from ..memory.cache import CacheHierarchy, paper_hierarchy
from ..memory.main_memory import MainMemory
from ..obs.metrics import COUNTER, GAUGE, declare_metric
from ..stats.counters import Counters
from .config import ProcessorConfig
from .dyninst import DynInst
from .rename import RenameTable
from .scheduler import Scheduler

# -- declared metrics (metadata only; see repro.obs.metrics) -----------------
for _name, _kind, _unit, _desc in (
    ("dispatched_instructions", COUNTER, "insts",
     "instructions renamed and dispatched (right and wrong path)"),
    ("executed_loads", COUNTER, "insts", "loads issued to the memory unit"),
    ("executed_stores", COUNTER, "insts",
     "stores issued to the memory unit"),
    ("retired_loads", COUNTER, "insts", "loads retired from the ROB head"),
    ("retired_stores", COUNTER, "insts",
     "stores retired from the ROB head"),
    ("mem_replays", COUNTER, "events",
     "memory accesses bounced back to the scheduler for replay"),
    ("idle_cycles_skipped", COUNTER, "cycles",
     "guaranteed-idle cycles fast-forwarded by the clock"),
    ("dispatch_stalls_rob", COUNTER, "slots",
     "dispatch slots lost to a full ROB"),
    ("dispatch_stalls_sched", COUNTER, "slots",
     "dispatch slots lost to a full scheduler window"),
    ("dispatch_stalls_phys", COUNTER, "slots",
     "dispatch slots lost to physical-register exhaustion"),
    ("dispatch_stalls_lq", COUNTER, "slots",
     "dispatch slots lost to a full load queue"),
    ("dispatch_stalls_sq", COUNTER, "slots",
     "dispatch slots lost to a full store queue/FIFO"),
    ("rob_head_bypass_grants", COUNTER, "events",
     "ROB-lockup avoidance grants (Section 2.2)"),
    ("branch_mispredict_flushes", COUNTER, "events",
     "partial flushes caused by branch mispredictions"),
    ("violation_flushes_true", COUNTER, "events",
     "recovery flushes for true (RAW) ordering violations"),
    ("violation_flushes_anti", COUNTER, "events",
     "recovery flushes for anti (WAR) ordering violations"),
    ("violation_flushes_output", COUNTER, "events",
     "recovery flushes for output (WAW) ordering violations"),
    ("partial_flushes", COUNTER, "events",
     "partial pipeline flushes (all causes)"),
    ("squashed_instructions", COUNTER, "insts",
     "in-flight instructions squashed by recovery flushes"),
    ("cycles", GAUGE, "cycles", "total simulated cycles"),
    ("retired_instructions", GAUGE, "insts",
     "architecturally retired instructions"),
    ("branch_predictions", GAUGE, "events",
     "conditional-branch predictions made"),
    ("branch_mispredictions", GAUGE, "events",
     "conditional-branch mispredictions"),
):
    declare_metric(_name, kind=_kind, subsystem="pipeline",
                   description=_desc, unit=_unit)

_USES_RS2 = frozenset(
    {ops.ADD, ops.SUB, ops.AND, ops.OR, ops.XOR, ops.SLT, ops.SLTU,
     ops.SLL, ops.SRL, ops.SRA, ops.MUL, ops.DIV, ops.REM,
     ops.FADD, ops.FSUB, ops.FMUL, ops.FDIV}
    | ops.BRANCH_OPS | ops.STORE_OPS | ops.W_RRR_OPS)
_NO_RS1 = frozenset({ops.J, ops.JAL, ops.LI, ops.NOP, ops.HALT})
_HAS_DEST = frozenset(
    {ops.ADD, ops.SUB, ops.AND, ops.OR, ops.XOR, ops.SLT, ops.SLTU,
     ops.SLL, ops.SRL, ops.SRA, ops.ADDI, ops.ANDI, ops.ORI, ops.XORI,
     ops.SLTI, ops.SLLI, ops.SRLI, ops.SRAI, ops.LI, ops.MUL, ops.DIV,
     ops.REM, ops.FADD, ops.FSUB, ops.FMUL, ops.FDIV, ops.JAL, ops.JALR}
    | ops.LOAD_OPS | ops.W_RRR_OPS | ops.W_RRI_OPS)


class SimulationError(Exception):
    """Retired state diverged from the golden trace (simulator bug) or the
    simulation exceeded its cycle budget."""


class SimResult:
    """Outcome of one simulation run."""

    def __init__(self, program_name: str, config: ProcessorConfig,
                 cycles: int, instructions: int, counters: Counters):
        self.program_name = program_name
        self.config = config
        self.cycles = cycles
        self.instructions = instructions
        self.counters = counters

    @property
    def ipc(self) -> float:
        return self.instructions / self.cycles if self.cycles else 0.0

    def rate(self, numerator: str, denominator: str) -> float:
        return self.counters.rate(numerator, denominator)

    def to_dict(self) -> dict:
        """JSON-serializable snapshot (result cache / run manifests)."""
        return {
            "program_name": self.program_name,
            "config": self.config.to_dict(),
            "cycles": self.cycles,
            "instructions": self.instructions,
            "counters": self.counters.as_dict(),
        }

    def __repr__(self) -> str:
        return (f"SimResult({self.program_name} on {self.config.name}: "
                f"IPC={self.ipc:.3f}, {self.instructions} insts, "
                f"{self.cycles} cycles)")


class Core:
    """One configured superscalar core bound to one program.

    ``memory``/``hierarchy`` default to a private image and the paper's
    single-core hierarchy; a :class:`~repro.pipeline.system.System`
    injects shared ones instead.  ``validate=False`` disables golden-
    trace value/effect validation at retirement (required under a shared
    memory image, where cross-core stores legitimately change what a
    load returns relative to its single-threaded golden trace).
    ``idle_skip=False`` disables the guaranteed-idle clock fast-forward
    so lockstepped cores keep identical cycle counts.

    Checkpoint restore (see :mod:`repro.checkpoint`): ``start_pc`` and
    ``start_regs`` begin detailed simulation mid-program from a
    fast-forwarded architectural state instead of from reset.  The
    supplied ``trace`` must then be the golden *suffix* starting at
    ``start_pc`` (record 0 is the first instruction this core retires),
    and ``memory`` the checkpoint's restored image.  ``warm_state``
    optionally pre-loads trained branch-predictor state and cache tag
    arrays from a checkpoint's warm capsule (``{"bpred": ...,
    "caches": ...}``); statistics always start from zero.
    """

    def __init__(self, program: Program, config: ProcessorConfig,
                 trace: Optional[List[RetireRecord]] = None,
                 max_instructions: int = 1_000_000,
                 memory: Optional[MainMemory] = None,
                 hierarchy: Optional[CacheHierarchy] = None,
                 core_id: int = 0, validate: bool = True,
                 idle_skip: bool = True, start_pc: int = 0,
                 start_regs: Optional[List[int]] = None,
                 warm_state: Optional[dict] = None):
        self.program = program
        self.config = config
        self.trace = trace if trace is not None \
            else run_program(program, max_instructions)
        self.counters = Counters()
        if memory is None:
            memory = MainMemory()
            memory.load_segments(program.data)
        self.memory = memory
        self.hierarchy = hierarchy if hierarchy is not None \
            else paper_hierarchy()
        self.core_id = core_id
        self.validate_trace = validate
        self.idle_skip = idle_skip
        self.subsystem = registry.build(config.subsystem, config,
                                        self.memory, self.hierarchy,
                                        self.counters)
        self.tag_file = DependenceTagFile()
        self.predictor = ProducerSetPredictor(config.predictor,
                                              self.counters)
        self.scheduler = Scheduler(config.sched_size, self.tag_file)
        self.rename = RenameTable(num_phys=config.rob_size + 64)
        self.bpred = GsharePredictor(oracle_fix_rate=config.oracle_fix_rate,
                                     seed=config.branch_seed)

        self.rob: Deque[DynInst] = deque()
        self._by_seq: Dict[int, DynInst] = {}
        self._completions: Dict[int, List[DynInst]] = {}

        # Interned counter handles for per-instruction events (a plain
        # attribute add instead of a string-dict lookup per event); rare
        # events stay on Counters.incr.
        counters = self.counters
        self._c_dispatched = counters.cell("dispatched_instructions")
        self._c_executed_loads = counters.cell("executed_loads")
        self._c_executed_stores = counters.cell("executed_stores")
        self._c_retired_loads = counters.cell("retired_loads")
        self._c_retired_stores = counters.cell("retired_stores")
        self._c_mem_replays = counters.cell("mem_replays")
        self._c_idle_skipped = counters.cell("idle_cycles_skipped")
        self._c_stall_rob = counters.cell("dispatch_stalls_rob")
        self._c_stall_sched = counters.cell("dispatch_stalls_sched")
        self._c_stall_phys = counters.cell("dispatch_stalls_phys")

        self.cycle = 0
        self.next_seq = 0
        self.retired = 0
        self.done = False

        # Fetch state: ``_fetch_trace_index >= 0`` means fetch is on the
        # architecturally correct path and the next instruction fetched is
        # ``trace[_fetch_trace_index]``.
        self._fetch_pc: Optional[int] = start_pc
        self._fetch_trace_index = 0
        self._fetch_stall_until = 0
        self._fetch_progress = False
        self._last_evictions = 0

        # Checkpoint restore: seed the architectural register values into
        # the identity-mapped rename table (arch i -> phys i at reset) and
        # optionally pre-warm predictor/cache state.  r0 stays hardwired
        # zero.  Defaults (pc 0, no regs, no warm state) leave a
        # from-reset core bit-identical to before this feature existed.
        if start_regs is not None:
            values = self.rename.values
            for arch in range(1, ops.NUM_REGS):
                values[arch] = start_regs[arch] & MASK64
        if warm_state is not None:
            bpred_state = warm_state.get("bpred")
            if bpred_state is not None:
                self.bpred.import_state(bpred_state)
            cache_state = warm_state.get("caches")
            if cache_state is not None:
                self.hierarchy.import_state(cache_state)

    # ------------------------------------------------------------------ run

    def run(self) -> SimResult:
        """Simulate until the program's HALT retires."""
        max_cycles = self.config.max_cycles
        while not self.done:
            if self.cycle > max_cycles:
                raise SimulationError(
                    f"exceeded {max_cycles} cycles "
                    f"({self.retired}/{len(self.trace)} retired; "
                    f"rob head={self.rob[0] if self.rob else None})")
            self.step()
        return self.finalize()

    def run_until(self, retired_target: int) -> None:
        """Step cycles until ``retired_target`` instructions have retired
        (or the program halts).  The sampling engine uses this to split a
        detailed window into a discarded warm-up span and a measured
        span; call :meth:`finalize` (or read counters directly) after the
        last window."""
        max_cycles = self.config.max_cycles
        while not self.done and self.retired < retired_target:
            if self.cycle > max_cycles:
                raise SimulationError(
                    f"exceeded {max_cycles} cycles "
                    f"({self.retired}/{len(self.trace)} retired; "
                    f"rob head={self.rob[0] if self.rob else None})")
            self.step()

    def architectural_registers(self) -> List[int]:
        """The committed architectural register file.

        Only meaningful once the core is quiescent (``done`` or between
        retirement groups): reads each architectural register through the
        retirement-consistent rename table.  The conformance harness
        compares this against the in-order interpreter's register file.
        """
        rename = self.rename
        return [rename.values[rename.rat[arch]] if arch else 0
                for arch in range(ops.NUM_REGS)]

    def finalize(self) -> SimResult:
        """Snapshot end-of-run gauges and wrap up the result.

        Split from :meth:`run` so a :class:`~repro.pipeline.system.
        System` that drives cores cycle-by-cycle can finalize each one
        after the whole system quiesces.
        """
        self.counters.set("cycles", self.cycle)
        self.counters.set("retired_instructions", self.retired)
        for key, value in self.hierarchy.stats().items():
            self.counters.set(key, value)
        self.counters.set("branch_mispredictions",
                          self.bpred.mispredictions)
        self.counters.set("branch_predictions", self.bpred.predictions)
        return SimResult(self.program.name, self.config, self.cycle,
                         self.retired, self.counters)

    # ------------------------------------------------------------------ cycle

    def step(self) -> None:
        """Advance one cycle."""
        cycle = self.cycle

        for inst in self._completions.pop(cycle, ()):
            self._complete(inst)

        self._retire_stage()
        if self.done:
            return

        evictions = self.subsystem.eviction_events
        if evictions != self._last_evictions:
            self._last_evictions = evictions
            self.scheduler.clear_stall_bits()

        self._issue_stage()
        self._fetch_stage()
        self._advance_clock()

    def _advance_clock(self) -> None:
        """Advance to the next cycle, skipping guaranteed-idle spans."""
        cycle = self.cycle + 1
        self.cycle = cycle
        if not self.idle_skip:
            return
        if self.scheduler.has_ready or self._fetch_progress:
            return
        rob = self.rob
        if rob and rob[0].completed:
            return
        completions = self._completions
        target = min(completions) if completions else -1
        if self._fetch_pc is not None and self._fetch_stall_until > cycle:
            stall = self._fetch_stall_until
            if target < 0 or stall < target:
                target = stall
        if target > cycle:
            self._c_idle_skipped.value += target - cycle
            self.cycle = target

    # ------------------------------------------------------------------ completion

    def _complete(self, inst: DynInst) -> None:
        if inst.squashed:
            return
        inst.completed = True
        inst.complete_cycle = self.cycle
        phys = inst.rd_phys
        if phys is not None:
            rename = self.rename
            rename.values[phys] = inst.dest_value or 0
            rename.ready[phys] = True
            self.scheduler.on_phys_ready(phys)
        if inst.produced_tag is not None:
            # The idealized scheduler only wakes predicted consumers of
            # accesses that complete successfully (Section 3).
            self.tag_file.mark_ready(inst.produced_tag)
            self.scheduler.on_tag_ready(inst.produced_tag)

    def _schedule_completion(self, inst: DynInst, latency: int) -> None:
        due = self.cycle + (latency if latency > 1 else 1)
        pending = self._completions.get(due)
        if pending is None:
            self._completions[due] = [inst]
        else:
            pending.append(inst)

    # ------------------------------------------------------------------ retire

    def _retire_stage(self) -> None:
        rob = self.rob
        for _ in range(self.config.width):
            if not rob:
                return
            head = rob[0]
            if not head.completed:
                if head.stalled and head.inst.is_mem and \
                        not head.rob_head_bypass:
                    # ROB-lockup avoidance (Section 2.2): let the head
                    # access bypass the MDT/SFC.
                    head.rob_head_bypass = True
                    self.counters.incr("rob_head_bypass_grants")
                    self.scheduler.force_ready(head)
                return
            self._retire_one(head)
            if self.done:
                return

    def _retire_one(self, head: DynInst) -> None:
        inst = head.inst
        if inst.is_load:
            corrected, violations = self.subsystem.retire_load(
                head.seq, head.addr or 0, head.size)
            self._c_retired_loads.value += 1
            if corrected is not None:
                # Value-based retirement replay (Cain & Lipasti): the
                # load consumed stale data; retire it with the corrected
                # value and flush everything that may have used the old
                # one.  The physical register becomes architectural state
                # here, so it must carry the corrected value too.  The
                # subsystem replays the raw memory bytes; signed loads
                # need the same extension the execute path applies.
                if inst.op in (ops.LB, ops.LH, ops.LW):
                    corrected = sign_extend(corrected, head.size * 8)
                head.dest_value = corrected
                if head.rd_phys is not None:
                    self.rename.write(head.rd_phys, corrected)
            if violations:
                self._ordering_violation(head, violations)
        elif inst.is_store:
            addr, size, data, violations = self.subsystem.retire_store(
                head.seq, head.addr or 0, head.size,
                bypassed=head.rob_head_bypass, pc=head.pc)
            self.memory.write_int(addr, size, data)
            self.hierarchy.data_latency(addr)  # commit-port cache traffic
            self._c_retired_stores.value += 1
            if violations:
                # A bypassed store found younger loads that already read
                # stale data: conservative recovery flush (see
                # MemoryDisambiguationTable.check_store).
                self._ordering_violation(head, violations)
        elif inst.op in ops.BRANCH_OPS:
            self.bpred.update(head.pc, head.actual_taken,
                              head.predicted_taken)
        elif inst.op == ops.JR or inst.op == ops.JALR:
            self.bpred.update_indirect(head.pc, head.actual_target)
        # Validation runs after retirement-replay correction so the
        # value compared against the golden trace is the retiring one.
        if self.validate_trace:
            self._validate(head)
        old_phys = head.old_rd_phys
        if old_phys is not None:
            rename = self.rename
            rename.ready[old_phys] = False
            rename._free.append(old_phys)
        if head.produced_tag is not None:
            self.tag_file.release(head.produced_tag)
        self.rob.popleft()
        del self._by_seq[head.seq]
        self.retired += 1
        if inst.op == ops.HALT:
            self.done = True

    def _validate(self, head: DynInst) -> None:
        """Compare a retiring instruction against the golden trace."""
        if head.trace_index != self.retired:
            raise SimulationError(
                f"retired {head!r} out of order: trace index "
                f"{head.trace_index} != retire count {self.retired}")
        record = self.trace[self.retired]
        if head.pc != record.pc or head.inst.op != record.op:
            raise SimulationError(
                f"retired {head!r} does not match trace {record!r}")
        if record.dest_value is not None and head.inst.rd != 0 and \
                head.dest_value != record.dest_value:
            raise SimulationError(
                f"wrong destination value at {head!r}: "
                f"{head.dest_value} != {record.dest_value} ({record!r})")
        if record.store_addr is not None and (
                head.addr != record.store_addr or
                head.store_data != record.store_data):
            raise SimulationError(
                f"wrong store effect at {head!r}: "
                f"{head.addr}/{head.store_data} != "
                f"{record.store_addr}/{record.store_data}")
        if head.inst.is_control and head.actual_target != record.next_pc:
            raise SimulationError(
                f"wrong control target at {head!r}: "
                f"{head.actual_target:#x} != {record.next_pc:#x}")

    # ------------------------------------------------------------------ issue/execute

    def _issue_stage(self) -> None:
        scheduler = self.scheduler
        selected = scheduler.select(self.config.num_fus)
        cycle = self.cycle
        for inst in selected:
            if inst.squashed:
                continue
            scheduler.mark_issued(inst)
            inst.issue_cycle = cycle
            self._execute(inst)

    def _execute(self, inst: DynInst) -> None:
        static = inst.inst
        op = static.op
        values = self.rename.values
        a = values[inst.rs1_phys]
        b = values[inst.rs2_phys]

        if static.is_mem:
            self._execute_mem(inst, a, b)
            return

        latency = 1
        mispredicted = False
        if static.is_branch:
            inst.actual_taken = taken = branch_taken(op, a, b)
            inst.actual_target = static.imm if taken \
                else (inst.pc + INSTRUCTION_BYTES) & MASK64
            mispredicted = inst.actual_target != inst.predicted_target
        elif op == ops.JR:
            inst.actual_taken = True
            inst.actual_target = a
            mispredicted = inst.actual_target != inst.predicted_target
        elif op == ops.JALR:
            inst.actual_taken = True
            inst.actual_target = (a + static.imm) & MASK64 & ~1
            inst.dest_value = (inst.pc + INSTRUCTION_BYTES) & MASK64
            mispredicted = inst.actual_target != inst.predicted_target
        elif op in (ops.J, ops.JAL):
            inst.actual_taken = True
            inst.actual_target = static.imm
            if op == ops.JAL:
                inst.dest_value = (inst.pc + INSTRUCTION_BYTES) & MASK64
        elif op in (ops.NOP, ops.HALT):
            pass
        else:
            inst.dest_value = execute_op(op, a, b, static.imm)
            latency = static.latency

        # Inline completion scheduling (the per-instruction common case).
        due = self.cycle + (latency if latency > 1 else 1)
        completions = self._completions
        pending = completions.get(due)
        if pending is None:
            completions[due] = [inst]
        else:
            pending.append(inst)
        if mispredicted:
            self._branch_mispredict(inst)

    def _execute_mem(self, inst: DynInst, a: int, b: int) -> None:
        static = inst.inst
        op = static.op
        addr = (a + static.imm) & MASK64
        size = ops.ACCESS_SIZE[op]
        inst.addr = addr
        inst.size = size
        watermark = self.rob[0].seq if self.rob else self.next_seq
        if static.is_load:
            self._c_executed_loads.value += 1
            outcome = self.subsystem.execute_load(
                inst.seq, inst.pc, addr, size, watermark,
                at_rob_head=inst.rob_head_bypass)
        else:
            data = b & ((1 << (8 * size)) - 1)
            inst.store_data = data
            self._c_executed_stores.value += 1
            outcome = self.subsystem.execute_store(
                inst.seq, inst.pc, addr, size, data, watermark,
                at_rob_head=inst.rob_head_bypass)

        if outcome.status == REPLAY:
            self._c_mem_replays.value += 1
            self.scheduler.replay(inst)
            return

        for violation in outcome.train_only:
            self.predictor.on_violation(violation.kind,
                                        violation.producer_pc,
                                        violation.consumer_pc)
        if outcome.violations:
            self._ordering_violation(inst, outcome.violations)
        if inst.squashed:
            # An anti-dependence flush squashes the triggering load itself.
            return
        if static.is_load:
            value = outcome.value or 0
            if op in (ops.LB, ops.LH, ops.LW):
                value = sign_extend(value, size * 8)
            inst.dest_value = value
        self._schedule_completion(inst, outcome.latency)

    # ------------------------------------------------------------------ recovery

    def _branch_mispredict(self, inst: DynInst) -> None:
        self.counters.incr("branch_mispredict_flushes")
        resume_trace = -1
        if inst.on_right_path:
            record = self.trace[inst.trace_index]
            if inst.actual_target == record.next_pc:
                resume_trace = inst.trace_index + 1
            # Otherwise the branch resolved from misspeculated inputs (a
            # stale load value whose ordering violation has not been
            # detected yet): the redirect target is itself wrong-path,
            # and the eventual violation flush re-fetches the truth.
        self._flush_after(inst.seq, inst.actual_target, resume_trace,
                          self.config.mispredict_penalty)

    def _ordering_violation(self, inst: DynInst,
                            violations: List) -> None:
        """Recover from MDT/LSQ-detected ordering violations."""
        flush_after = None
        for violation in violations:
            self.counters.incr(f"violation_flushes_{violation.kind}")
            self.predictor.on_violation(violation.kind,
                                        violation.producer_pc,
                                        violation.consumer_pc)
            if flush_after is None or \
                    violation.flush_after_seq < flush_after:
                flush_after = violation.flush_after_seq
        assert flush_after is not None
        penalty = self.config.mispredict_penalty + \
            self.subsystem.violation_extra_penalty
        first_squashed = self._squash_after(flush_after)
        if first_squashed is None:
            # Nothing younger in flight; fetch continues where it was.
            return
        resume_trace = first_squashed.trace_index
        self._redirect_fetch(first_squashed.pc, resume_trace, penalty)
        self.subsystem.on_partial_flush(flush_after, self.next_seq - 1)
        self.counters.incr("partial_flushes")

    def _flush_after(self, flush_after_seq: int, resume_pc: int,
                     resume_trace_index: int, penalty: int) -> None:
        """Partial pipeline flush with an explicit resume point."""
        self._squash_after(flush_after_seq)
        self._redirect_fetch(resume_pc, resume_trace_index, penalty)
        self.subsystem.on_partial_flush(flush_after_seq,
                                        self.next_seq - 1)
        self.counters.incr("partial_flushes")

    def _squash_after(self, flush_after_seq: int) -> Optional[DynInst]:
        """Squash every instruction younger than the flush point.

        Returns the oldest squashed instruction (None when nothing was
        squashed).  The RAT is recovered through the undo log: walking
        the squashed instructions youngest-first and re-mapping each
        destination back to ``old_rd_phys`` (the mapping that instruction
        displaced at rename) reconstructs exactly the pre-rename RAT of
        the oldest squashed instruction, without per-dispatch snapshots.
        """
        rob = self.rob
        rename = self.rename
        rat = rename.rat
        scheduler = self.scheduler
        tag_file = self.tag_file
        by_seq = self._by_seq
        first_squashed: Optional[DynInst] = None
        squashed_count = 0
        while rob and rob[-1].seq > flush_after_seq:
            dead = rob.pop()
            dead.squashed = True
            scheduler.note_squashed(dead)
            if dead.produced_tag is not None:
                tag_file.mark_ready(dead.produced_tag)
                scheduler.on_tag_ready(dead.produced_tag)
                tag_file.release(dead.produced_tag)
            if dead.rd_phys is not None:
                rat[dead.inst.rd] = dead.old_rd_phys
                rename.release(dead.rd_phys)
            del by_seq[dead.seq]
            first_squashed = dead
            squashed_count += 1
        if first_squashed is not None:
            self.counters.incr("squashed_instructions", squashed_count)
            scheduler.squash_after(flush_after_seq)
        return first_squashed

    def _redirect_fetch(self, resume_pc: int, resume_trace_index: int,
                        penalty: int) -> None:
        self._fetch_pc = resume_pc
        self._fetch_trace_index = resume_trace_index
        # A redirect supersedes any pending stall for the abandoned path.
        self._fetch_stall_until = self.cycle + penalty

    # ------------------------------------------------------------------ fetch/dispatch

    def _fetch_stage(self) -> None:
        self._fetch_progress = False
        if self._fetch_pc is None or self.cycle < self._fetch_stall_until:
            return
        branches = 0
        config = self.config
        rob = self.rob
        rob_size = config.rob_size
        scheduler = self.scheduler
        sched_capacity = scheduler.capacity
        rename = self.rename
        subsystem = self.subsystem
        fetch = self.program.fetch
        instructions = self.program.instructions
        num_insts = len(instructions)
        inst_latency = self.hierarchy.inst_latency
        branch_limit = config.fetch_branches_per_cycle
        for _ in range(config.width):
            if len(rob) >= rob_size:
                self._c_stall_rob.value += 1
                return
            if scheduler._occupancy >= sched_capacity:
                self._c_stall_sched.value += 1
                return
            if not rename._free:
                self._c_stall_phys.value += 1
                return
            pc = self._fetch_pc
            # Inline of Program.fetch's aligned in-range fast path; the
            # slow path (pad/HALT for wrong-path fetch) stays in fetch().
            index = pc >> 2
            if index < num_insts and not pc & 3:
                static = instructions[index]
            else:
                static = fetch(pc)
            if static.is_load and not subsystem.can_dispatch_load():
                self.counters.incr("dispatch_stalls_lq")
                return
            if static.is_store and not subsystem.can_dispatch_store():
                self.counters.incr("dispatch_stalls_sq")
                return
            if static.is_control and branches >= branch_limit:
                return
            # Instruction cache: a miss stalls fetch; the lookup filled
            # the line, so the re-fetch after the stall hits.
            ilat = inst_latency(pc)
            if ilat > 1:
                self._fetch_stall_until = self.cycle + ilat - 1
                return

            self._dispatch(static, pc)
            self._fetch_progress = True
            if static.is_control:
                branches += 1
            if static.op == ops.HALT:
                self._fetch_pc = None
                return
            if self._fetch_pc is None:
                return

    def _dispatch(self, static, pc: int) -> None:
        """Rename + dispatch one fetched instruction, updating fetch PC.

        This is the hottest function in the simulator (once per dispatched
        instruction, right *and* wrong path), so the next-fetch-PC logic is
        folded in rather than split into a helper, and the non-control
        common case exits early.
        """
        trace_index = self._fetch_trace_index
        record: Optional[RetireRecord] = None
        if trace_index >= 0:
            trace = self.trace
            if trace_index >= len(trace):
                raise SimulationError(
                    f"right-path fetch ran past the golden trace "
                    f"({len(trace)} records) at pc={pc:#x}; the "
                    f"trace does not belong to this program")
            record = trace[trace_index]
            if record.pc != pc:
                raise SimulationError(
                    f"right-path fetch diverged: pc={pc:#x} but trace "
                    f"expects {record.pc:#x} at index {trace_index}")

        seq = self.next_seq
        self.next_seq = seq + 1
        inst = DynInst(seq, pc, static, trace_index)

        # Source renaming.  The RAT needs no checkpoint here: recovery
        # walks the undo log (each instruction's old_rd_phys) instead.
        rename = self.rename
        rat = rename.rat
        ready = rename.ready
        unready1 = -1
        unready2 = -1
        op = static.op
        if op not in _NO_RS1:
            phys = rat[static.rs1]
            inst.rs1_phys = phys
            if not ready[phys]:
                unready1 = phys
        if op in _USES_RS2:
            phys = rat[static.rs2]
            inst.rs2_phys = phys
            if not ready[phys]:
                unready2 = phys
        # Destination renaming.
        if op in _HAS_DEST and static.rd != 0:
            inst.old_rd_phys = rat[static.rd]
            inst.rd_phys = rename.allocate(static.rd)

        # Memory dependence prediction (Section 2.1).
        if static.is_mem:
            consumed, produced = self.predictor.on_dispatch(
                pc, static.is_store, self.tag_file)
            inst.consumed_tag = consumed
            inst.produced_tag = produced
            if static.is_load:
                self.subsystem.dispatch_load(seq, pc)
            else:
                self.subsystem.dispatch_store(seq, pc)

        self.rob.append(inst)
        self._by_seq[seq] = inst
        self.scheduler.dispatch_fast(inst, unready1, unready2)
        self._c_dispatched.value += 1

        # Next fetch PC + right-path tracking (was _advance_fetch_pc).
        if not static.is_control:
            if op == ops.HALT:
                inst.actual_target = pc  # matches the ISS convention
                inst.predicted_target = pc
                return
            fall_through = (pc + INSTRUCTION_BYTES) & MASK64
            inst.predicted_target = fall_through
            self._fetch_pc = fall_through
            if record is not None:
                self._fetch_trace_index = trace_index + 1
            return

        if static.is_branch:
            if record is not None:
                predicted = self.bpred.predict_with_oracle(pc, record.taken)
            else:
                predicted = self.bpred.predict(pc)
                self.bpred.predictions += 1
            inst.predicted_taken = predicted
            target = static.imm if predicted \
                else (pc + INSTRUCTION_BYTES) & MASK64
            inst.predicted_target = target
            self._fetch_pc = target
            if record is not None and target == record.next_pc:
                self._fetch_trace_index = trace_index + 1
            else:
                self._fetch_trace_index = -1
        elif op == ops.JR or op == ops.JALR:
            predicted_target = self.bpred.predict_indirect(pc)
            if record is not None and predicted_target != record.next_pc \
                    and self.bpred.oracle_should_fix():
                predicted_target = record.next_pc
            inst.predicted_taken = True
            inst.predicted_target = predicted_target
            self._fetch_pc = predicted_target
            if record is not None and predicted_target == record.next_pc:
                self._fetch_trace_index = trace_index + 1
            else:
                self._fetch_trace_index = -1
        else:  # J / JAL
            inst.predicted_taken = True
            inst.predicted_target = static.imm
            self._fetch_pc = static.imm
            if record is not None:
                self._fetch_trace_index = trace_index + 1
