"""Cycle-level out-of-order superscalar pipeline."""

from .config import (MEMORY_MODES, MEMORY_PRIVATE, MEMORY_SHARED,
                     SUBSYSTEM_LOAD_REPLAY, SUBSYSTEM_LSQ,
                     SUBSYSTEM_SFC_MDT, CoreConfig, ProcessorConfig,
                     SystemConfig)
from .core import Core
from .dyninst import DynInst
from .pipetrace import InstructionTrace, PipeTracer, trace_run
from .processor import Processor, SimResult, SimulationError
from .rename import RenameError, RenameTable
from .scheduler import Scheduler
from .system import System, SystemResult

__all__ = [
    "Core",
    "CoreConfig",
    "MEMORY_MODES",
    "MEMORY_PRIVATE",
    "MEMORY_SHARED",
    "DynInst",
    "InstructionTrace",
    "PipeTracer",
    "trace_run",
    "Processor",
    "ProcessorConfig",
    "RenameError",
    "RenameTable",
    "Scheduler",
    "SimResult",
    "SimulationError",
    "System",
    "SystemConfig",
    "SystemResult",
    "SUBSYSTEM_LOAD_REPLAY",
    "SUBSYSTEM_LSQ",
    "SUBSYSTEM_SFC_MDT",
]
