"""Cycle-level out-of-order superscalar pipeline."""

from .config import (SUBSYSTEM_LOAD_REPLAY, SUBSYSTEM_LSQ,
                     SUBSYSTEM_SFC_MDT, ProcessorConfig)
from .dyninst import DynInst
from .pipetrace import InstructionTrace, PipeTracer, trace_run
from .processor import Processor, SimResult, SimulationError
from .rename import RenameError, RenameTable
from .scheduler import Scheduler

__all__ = [
    "DynInst",
    "InstructionTrace",
    "PipeTracer",
    "trace_run",
    "Processor",
    "ProcessorConfig",
    "RenameError",
    "RenameTable",
    "Scheduler",
    "SimResult",
    "SimulationError",
    "SUBSYSTEM_LOAD_REPLAY",
    "SUBSYSTEM_LSQ",
    "SUBSYSTEM_SFC_MDT",
]
