"""Pipeline event tracing ("pipetrace") for debugging and teaching.

Attach a :class:`PipeTracer` to a :class:`~repro.pipeline.processor.Processor`
to record, for every dynamic instruction, the cycles at which it was
dispatched, issued, completed, squashed, or retired, plus memory-unit
events (replays with their reasons, violations).  The collected trace can
be rendered as a classic timeline:

    seq    pc       instruction           D     I     C     R
    37     0x1c     ld r5, 0(r4)          12    14    25    27   replay:sfc_corrupt@13

Tracing hooks into the processor by wrapping its stage methods, so the
processor itself stays hook-free and fast when no tracer is attached.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .dyninst import DynInst
from .processor import Processor


class InstructionTrace:
    """Lifecycle of one dynamic instruction."""

    __slots__ = ("seq", "pc", "text", "dispatch_cycle", "issue_cycles",
                 "complete_cycle", "retire_cycle", "squash_cycle",
                 "events")

    def __init__(self, seq: int, pc: int, text: str, dispatch_cycle: int):
        self.seq = seq
        self.pc = pc
        self.text = text
        self.dispatch_cycle = dispatch_cycle
        self.issue_cycles: List[int] = []
        self.complete_cycle: Optional[int] = None
        self.retire_cycle: Optional[int] = None
        self.squash_cycle: Optional[int] = None
        self.events: List[str] = []

    @property
    def replays(self) -> int:
        """Number of times the instruction issued beyond the first."""
        return max(0, len(self.issue_cycles) - 1)

    def format_row(self) -> str:
        def cell(value: Optional[int]) -> str:
            return f"{value}" if value is not None else "-"

        issue = cell(self.issue_cycles[0]) if self.issue_cycles else "-"
        marks = " ".join(self.events)
        return (f"{self.seq:<6d} {self.pc:<#8x} {self.text:<26s} "
                f"{self.dispatch_cycle:<5d} {issue:<5s} "
                f"{cell(self.complete_cycle):<5s} "
                f"{cell(self.retire_cycle):<5s} {marks}")


class PipeTracer:
    """Records per-instruction pipeline events from a live processor."""

    def __init__(self, processor: Processor,
                 max_instructions: int = 100_000):
        self.processor = processor
        self.max_instructions = max_instructions
        self.traces: Dict[int, InstructionTrace] = {}
        self._install(processor)

    # -- hook installation ----------------------------------------------------

    def _install(self, proc: Processor) -> None:
        orig_dispatch = proc._dispatch
        orig_execute = proc._execute
        orig_complete = proc._complete
        orig_retire = proc._retire_one
        orig_squash = proc._squash_after

        def dispatch(static, pc):
            orig_dispatch(static, pc)
            inst = proc.rob[-1]
            if len(self.traces) < self.max_instructions:
                self.traces[inst.seq] = InstructionTrace(
                    inst.seq, pc, repr(static), proc.cycle)

        def execute(inst: DynInst):
            trace = self.traces.get(inst.seq)
            if trace is not None:
                trace.issue_cycles.append(proc.cycle)
            orig_execute(inst)
            if trace is not None and inst.stalled:
                trace.events.append(
                    f"replay@{proc.cycle}")

        def complete(inst: DynInst):
            orig_complete(inst)
            trace = self.traces.get(inst.seq)
            if trace is not None and inst.completed:
                trace.complete_cycle = proc.cycle

        def retire(head: DynInst):
            orig_retire(head)
            trace = self.traces.get(head.seq)
            if trace is not None:
                trace.retire_cycle = proc.cycle

        def squash_after(flush_after_seq: int):
            cycle = proc.cycle
            # Mark everything younger before the processor drops it.
            for seq, trace in self.traces.items():
                if seq > flush_after_seq and trace.retire_cycle is None \
                        and trace.squash_cycle is None:
                    candidate = proc._by_seq.get(seq)
                    if candidate is not None:
                        trace.squash_cycle = cycle
                        trace.events.append(f"squash@{cycle}")
            return orig_squash(flush_after_seq)

        proc._dispatch = dispatch
        proc._execute = execute
        proc._complete = complete
        proc._retire_one = retire
        proc._squash_after = squash_after

    # -- queries ---------------------------------------------------------------

    def retired(self) -> List[InstructionTrace]:
        """Traces of instructions that retired, in retirement order."""
        return sorted((t for t in self.traces.values()
                       if t.retire_cycle is not None),
                      key=lambda t: t.seq)

    def squashed(self) -> List[InstructionTrace]:
        return sorted((t for t in self.traces.values()
                       if t.squash_cycle is not None),
                      key=lambda t: t.seq)

    def of(self, seq: int) -> Optional[InstructionTrace]:
        return self.traces.get(seq)

    def latency_of(self, seq: int) -> Optional[int]:
        """Dispatch-to-retire latency in cycles, if the inst retired."""
        trace = self.traces.get(seq)
        if trace is None or trace.retire_cycle is None:
            return None
        return trace.retire_cycle - trace.dispatch_cycle

    # -- rendering ----------------------------------------------------------------

    HEADER = (f"{'seq':<6s} {'pc':<8s} {'instruction':<26s} "
              f"{'D':<5s} {'I':<5s} {'C':<5s} {'R':<5s} events")

    def format(self, first: int = 0, count: int = 50,
               include_squashed: bool = True) -> str:
        """Render a window of the trace as a timeline table."""
        rows = [self.HEADER, "-" * len(self.HEADER)]
        shown = 0
        for seq in sorted(self.traces):
            if seq < first:
                continue
            trace = self.traces[seq]
            if not include_squashed and trace.squash_cycle is not None:
                continue
            rows.append(trace.format_row())
            shown += 1
            if shown >= count:
                break
        return "\n".join(rows)


def trace_run(processor: Processor,
              max_instructions: int = 100_000) -> PipeTracer:
    """Attach a tracer, run the processor to completion, return the
    tracer (convenience for scripts and tests)."""
    tracer = PipeTracer(processor, max_instructions=max_instructions)
    processor.run()
    return tracer
