"""Pipeline event tracing ("pipetrace") for debugging and time series.

Attach a :class:`PipeTracer` to a :class:`~repro.pipeline.processor.Processor`
to record, for every dynamic instruction, the cycles at which it was
dispatched, issued, completed, squashed, or retired, plus memory-unit
events (replays with their reasons, violations).  The collected trace can
be rendered as a classic timeline:

    seq    pc       instruction           D     I     C     R
    37     0x1c     ld r5, 0(r4)          12    14    25    27   replay:sfc_corrupt@13

Two sampling modes bound the tracer's memory so it can run on
arbitrarily long simulations:

* ``ring_size=N`` keeps only the N youngest instruction traces (a ring
  buffer: the oldest trace is evicted as each new one is recorded);
* ``epoch_cycles=N`` additionally records one :class:`EpochSnapshot`
  every N cycles -- window occupancy, the stall/violation/replay counter
  deltas for the epoch, and the derived per-epoch rates -- exportable as
  JSON Lines (:meth:`PipeTracer.epochs_jsonl`) for time-series analysis.

Tracing hooks into the processor by wrapping its stage methods, so the
processor itself stays hook-free and fast when no tracer is attached;
results (cycles and every counter) are bit-identical with and without a
tracer.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Deque, Dict, List, Optional, Union

from .dyninst import DynInst
from .processor import Processor


class InstructionTrace:
    """Lifecycle of one dynamic instruction."""

    __slots__ = ("seq", "pc", "text", "dispatch_cycle", "issue_cycles",
                 "complete_cycle", "retire_cycle", "squash_cycle",
                 "events")

    def __init__(self, seq: int, pc: int, text: str, dispatch_cycle: int):
        self.seq = seq
        self.pc = pc
        self.text = text
        self.dispatch_cycle = dispatch_cycle
        self.issue_cycles: List[int] = []
        self.complete_cycle: Optional[int] = None
        self.retire_cycle: Optional[int] = None
        self.squash_cycle: Optional[int] = None
        self.events: List[str] = []

    @property
    def replays(self) -> int:
        """Number of times the instruction issued beyond the first."""
        return max(0, len(self.issue_cycles) - 1)

    def to_dict(self) -> dict:
        return {
            "seq": self.seq,
            "pc": self.pc,
            "text": self.text,
            "dispatch_cycle": self.dispatch_cycle,
            "issue_cycles": list(self.issue_cycles),
            "complete_cycle": self.complete_cycle,
            "retire_cycle": self.retire_cycle,
            "squash_cycle": self.squash_cycle,
            "events": list(self.events),
        }

    def format_row(self) -> str:
        def cell(value: Optional[int]) -> str:
            return f"{value}" if value is not None else "-"

        issue = cell(self.issue_cycles[0]) if self.issue_cycles else "-"
        marks = " ".join(self.events)
        return (f"{self.seq:<6d} {self.pc:<#8x} {self.text:<26s} "
                f"{self.dispatch_cycle:<5d} {issue:<5s} "
                f"{cell(self.complete_cycle):<5s} "
                f"{cell(self.retire_cycle):<5s} {marks}")


#: Counters whose per-epoch deltas drive the snapshot's derived rates.
_EPOCH_VIOLATION_KEYS = ("violation_flushes_true", "violation_flushes_anti",
                         "violation_flushes_output")


class EpochSnapshot:
    """One per-epoch sample of pipeline state and counter deltas."""

    __slots__ = ("epoch", "cycle", "retired", "rob_occupancy",
                 "sched_occupancy", "deltas")

    def __init__(self, epoch: int, cycle: int, retired: int,
                 rob_occupancy: int, sched_occupancy: int,
                 deltas: Dict[str, float]):
        self.epoch = epoch
        self.cycle = cycle
        self.retired = retired
        #: Counter increments since the previous snapshot.
        self.rob_occupancy = rob_occupancy
        self.sched_occupancy = sched_occupancy
        self.deltas = deltas

    @property
    def violations(self) -> float:
        return sum(self.deltas.get(key, 0.0)
                   for key in _EPOCH_VIOLATION_KEYS)

    @property
    def replays(self) -> float:
        return self.deltas.get("mem_replays", 0.0)

    def stall_breakdown(self) -> Dict[str, float]:
        """The dispatch-stall deltas of this epoch, keyed by cause."""
        prefix = "dispatch_stalls_"
        return {key[len(prefix):]: value
                for key, value in self.deltas.items()
                if key.startswith(prefix) and value}

    def to_dict(self) -> dict:
        retired_delta = self.deltas.get("retired_delta", 0.0)
        per_retired = (1.0 / retired_delta) if retired_delta else 0.0
        return {
            "epoch": self.epoch,
            "cycle": self.cycle,
            "retired": self.retired,
            "rob_occupancy": self.rob_occupancy,
            "sched_occupancy": self.sched_occupancy,
            "stalls": self.stall_breakdown(),
            "violations": self.violations,
            "replays": self.replays,
            "violation_rate": self.violations * per_retired,
            "replay_rate": self.replays * per_retired,
            "deltas": {k: v for k, v in sorted(self.deltas.items()) if v},
        }

    def __repr__(self) -> str:
        return (f"EpochSnapshot(epoch={self.epoch}, cycle={self.cycle}, "
                f"rob={self.rob_occupancy}, viol={self.violations:g})")


class PipeTracer:
    """Records per-instruction pipeline events from a live processor.

    ``ring_size`` bounds the per-instruction trace store to the N
    youngest instructions; ``epoch_cycles`` samples an
    :class:`EpochSnapshot` every N cycles.  Both default to off,
    preserving the original record-everything (up to
    ``max_instructions``) behaviour.
    """

    def __init__(self, processor: Processor,
                 max_instructions: int = 100_000,
                 ring_size: Optional[int] = None,
                 epoch_cycles: Optional[int] = None):
        if ring_size is not None and ring_size <= 0:
            raise ValueError("ring_size must be positive")
        if epoch_cycles is not None and epoch_cycles <= 0:
            raise ValueError("epoch_cycles must be positive")
        self.processor = processor
        self.max_instructions = max_instructions
        self.ring_size = ring_size
        self.epoch_cycles = epoch_cycles
        self.traces: Dict[int, InstructionTrace] = {}
        self.epochs: List[EpochSnapshot] = []
        self._ring: Deque[int] = deque()
        self._last_epoch = 0
        self._epoch_counters: Dict[str, float] = {}
        self._epoch_retired = 0
        self._install(processor)

    # -- hook installation ----------------------------------------------------

    def _install(self, proc: Processor) -> None:
        orig_dispatch = proc._dispatch
        orig_execute = proc._execute
        orig_complete = proc._complete
        orig_retire = proc._retire_one
        orig_squash = proc._squash_after

        ring_size = self.ring_size
        ring = self._ring

        def dispatch(static, pc):
            orig_dispatch(static, pc)
            inst = proc.rob[-1]
            if ring_size is not None:
                if len(ring) >= ring_size:
                    del self.traces[ring.popleft()]
                ring.append(inst.seq)
            elif len(self.traces) >= self.max_instructions:
                return
            self.traces[inst.seq] = InstructionTrace(
                inst.seq, pc, repr(static), proc.cycle)

        def execute(inst: DynInst):
            trace = self.traces.get(inst.seq)
            if trace is not None:
                trace.issue_cycles.append(proc.cycle)
            orig_execute(inst)
            if trace is not None and inst.stalled:
                trace.events.append(
                    f"replay@{proc.cycle}")

        def complete(inst: DynInst):
            orig_complete(inst)
            trace = self.traces.get(inst.seq)
            if trace is not None and inst.completed:
                trace.complete_cycle = proc.cycle

        def retire(head: DynInst):
            orig_retire(head)
            trace = self.traces.get(head.seq)
            if trace is not None:
                trace.retire_cycle = proc.cycle

        def squash_after(flush_after_seq: int):
            cycle = proc.cycle
            # Mark everything younger before the processor drops it.
            for seq, trace in self.traces.items():
                if seq > flush_after_seq and trace.retire_cycle is None \
                        and trace.squash_cycle is None:
                    candidate = proc._by_seq.get(seq)
                    if candidate is not None:
                        trace.squash_cycle = cycle
                        trace.events.append(f"squash@{cycle}")
            return orig_squash(flush_after_seq)

        proc._dispatch = dispatch
        proc._execute = execute
        proc._complete = complete
        proc._retire_one = retire
        proc._squash_after = squash_after

        if self.epoch_cycles is not None:
            orig_advance = proc._advance_clock
            epoch_cycles = self.epoch_cycles

            def advance_clock():
                orig_advance()
                epoch = proc.cycle // epoch_cycles
                if epoch > self._last_epoch:
                    self._snapshot(epoch)
            proc._advance_clock = advance_clock

    # -- epoch sampling -------------------------------------------------------

    def _snapshot(self, epoch: int) -> None:
        proc = self.processor
        current = proc.counters.as_dict()
        previous = self._epoch_counters
        deltas = {name: value - previous.get(name, 0.0)
                  for name, value in current.items()
                  if value != previous.get(name, 0.0)}
        deltas["retired_delta"] = float(proc.retired - self._epoch_retired)
        self._epoch_counters = current
        self._epoch_retired = proc.retired
        self._last_epoch = epoch
        self.epochs.append(EpochSnapshot(
            epoch=epoch, cycle=proc.cycle, retired=proc.retired,
            rob_occupancy=len(proc.rob),
            sched_occupancy=proc.scheduler._occupancy, deltas=deltas))

    # -- queries ---------------------------------------------------------------

    def retired(self) -> List[InstructionTrace]:
        """Traces of instructions that retired, in retirement order."""
        return sorted((t for t in self.traces.values()
                       if t.retire_cycle is not None),
                      key=lambda t: t.seq)

    def squashed(self) -> List[InstructionTrace]:
        return sorted((t for t in self.traces.values()
                       if t.squash_cycle is not None),
                      key=lambda t: t.seq)

    def of(self, seq: int) -> Optional[InstructionTrace]:
        return self.traces.get(seq)

    def latency_of(self, seq: int) -> Optional[int]:
        """Dispatch-to-retire latency in cycles, if the inst retired."""
        trace = self.traces.get(seq)
        if trace is None or trace.retire_cycle is None:
            return None
        return trace.retire_cycle - trace.dispatch_cycle

    # -- rendering ----------------------------------------------------------------

    HEADER = (f"{'seq':<6s} {'pc':<8s} {'instruction':<26s} "
              f"{'D':<5s} {'I':<5s} {'C':<5s} {'R':<5s} events")

    def format(self, first: int = 0, count: int = 50,
               include_squashed: bool = True) -> str:
        """Render a window of the trace as a timeline table."""
        rows = [self.HEADER, "-" * len(self.HEADER)]
        shown = 0
        for seq in sorted(self.traces):
            if seq < first:
                continue
            trace = self.traces[seq]
            if not include_squashed and trace.squash_cycle is not None:
                continue
            rows.append(trace.format_row())
            shown += 1
            if shown >= count:
                break
        return "\n".join(rows)

    # -- export ----------------------------------------------------------------

    def epochs_jsonl(self) -> str:
        """The epoch snapshots as JSON Lines (one object per epoch)."""
        return "\n".join(json.dumps(snapshot.to_dict(), sort_keys=True)
                         for snapshot in self.epochs)

    def traces_jsonl(self) -> str:
        """The instruction traces as JSON Lines, in sequence order."""
        return "\n".join(json.dumps(self.traces[seq].to_dict(),
                                    sort_keys=True)
                         for seq in sorted(self.traces))

    def write_epochs(self, path: Union[str, "object"]) -> None:
        """Write :meth:`epochs_jsonl` (plus a final newline) to a file."""
        text = self.epochs_jsonl()
        with open(path, "w") as handle:
            handle.write(text + ("\n" if text else ""))


def trace_run(processor: Processor,
              max_instructions: int = 100_000,
              ring_size: Optional[int] = None,
              epoch_cycles: Optional[int] = None) -> PipeTracer:
    """Attach a tracer, run the processor to completion, return the
    tracer (convenience for scripts and tests)."""
    tracer = PipeTracer(processor, max_instructions=max_instructions,
                        ring_size=ring_size, epoch_cycles=epoch_cycles)
    processor.run()
    return tracer
