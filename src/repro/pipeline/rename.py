"""Register renaming with per-instruction RAT checkpoints.

The paper's processors use Alpha-21264-style renaming with one checkpoint
per ROB entry (Figure 4 lists checkpoints == ROB size), enabling recovery
to an arbitrary instruction boundary.  We snapshot the 32-entry register
alias table before every rename; a flush restores the snapshot of the first
squashed instruction and returns its physical register to the free list.

Physical register 0 is permanently mapped to architectural r0 (always
zero, always ready).
"""

from __future__ import annotations

from typing import List

from ..isa.instructions import NUM_REGS


class RenameError(Exception):
    """Out of physical registers (dispatch should have stalled)."""


class RenameTable:
    """RAT + physical register file + free list."""

    def __init__(self, num_phys: int):
        if num_phys < NUM_REGS + 1:
            raise ValueError("need at least one phys reg per arch reg")
        self.num_phys = num_phys
        # arch reg i initially maps to phys i; phys 0 is the r0 anchor.
        self.rat: List[int] = list(range(NUM_REGS))
        self.values: List[int] = [0] * num_phys
        self.ready: List[bool] = [True] * NUM_REGS + \
            [False] * (num_phys - NUM_REGS)
        self._free: List[int] = list(range(NUM_REGS, num_phys))

    # -- allocation ------------------------------------------------------------

    @property
    def free_count(self) -> int:
        return len(self._free)

    def snapshot(self) -> List[int]:
        return self.rat[:]

    def restore(self, snap: List[int]) -> None:
        self.rat[:] = snap

    def lookup(self, arch: int) -> int:
        return self.rat[arch]

    def allocate(self, arch: int) -> int:
        """Map ``arch`` to a fresh physical register; returns its index."""
        if not self._free:
            raise RenameError("physical register file exhausted")
        phys = self._free.pop()
        self.ready[phys] = False
        self.rat[arch] = phys
        return phys

    def release(self, phys: int) -> None:
        """Return a physical register to the free list."""
        self.ready[phys] = False
        self._free.append(phys)

    # -- values ----------------------------------------------------------------

    def write(self, phys: int, value: int) -> None:
        self.values[phys] = value
        self.ready[phys] = True

    def read(self, phys: int) -> int:
        return self.values[phys]

    def is_ready(self, phys: int) -> bool:
        return self.ready[phys]
