"""Dynamic instruction record flowing through the out-of-order pipeline."""

from __future__ import annotations

from typing import Optional

from ..isa.instructions import Instruction


class DynInst:
    """One in-flight dynamic instruction.

    ``seq`` is the global sequence number (dispatch order, never reused --
    the total order the MDT's timestamp protocol relies on).
    ``trace_index`` is the instruction's position in the golden trace, or
    -1 for wrong-path instructions.
    """

    __slots__ = (
        "seq", "pc", "inst", "trace_index",
        # rename state (old_rd_phys doubles as the RAT undo-log record:
        # squashing this instruction re-maps its rd back to old_rd_phys)
        "rd_phys", "old_rd_phys", "rs1_phys", "rs2_phys",
        # scheduler state
        "wait_count", "stalled", "in_ready", "rob_head_bypass",
        "consumed_tag", "produced_tag", "replay_count",
        # execution state
        "issued", "completed", "squashed", "dest_value",
        "addr", "size", "store_data",
        # control flow
        "predicted_taken", "predicted_target", "actual_taken",
        "actual_target",
        # bookkeeping
        "issue_cycle", "complete_cycle",
    )

    def __init__(self, seq: int, pc: int, inst: Instruction,
                 trace_index: int):
        self.seq = seq
        self.pc = pc
        self.inst = inst
        self.trace_index = trace_index
        self.rd_phys: Optional[int] = None
        self.old_rd_phys: Optional[int] = None
        self.rs1_phys = 0
        self.rs2_phys = 0
        self.wait_count = 0
        self.stalled = False
        self.in_ready = False
        self.rob_head_bypass = False
        self.consumed_tag: Optional[int] = None
        self.produced_tag: Optional[int] = None
        self.replay_count = 0
        self.issued = False
        self.completed = False
        self.squashed = False
        self.dest_value: Optional[int] = None
        self.addr: Optional[int] = None
        self.size = 0
        self.store_data = 0
        self.predicted_taken = False
        self.predicted_target = 0
        self.actual_taken = False
        self.actual_target = 0
        self.issue_cycle = -1
        self.complete_cycle = -1

    @property
    def on_right_path(self) -> bool:
        return self.trace_index >= 0

    def __repr__(self) -> str:
        flags = "".join(c for c, cond in (
            ("I", self.issued), ("C", self.completed),
            ("S", self.squashed), ("s", self.stalled)) if cond)
        return (f"DynInst(seq={self.seq}, pc={self.pc:#x}, {self.inst!r}, "
                f"flags={flags or '-'})")
