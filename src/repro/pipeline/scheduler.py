"""Out-of-order scheduler with dependence-tag enforcement and stall bits.

Event-driven wakeup/select: each waiting instruction carries a count of
outstanding source operands (physical registers plus, for predicted
consumers, one dependence tag -- Section 2.1); producers decrement the
counts of their listeners at completion, and instructions whose count hits
zero enter an age-ordered ready heap.  Select pops the oldest ready
instructions each cycle, which both mimics age-prioritized select logic
and guarantees forward progress.

Replayed loads/stores (structural conflicts, SFC corruptions) are parked
with their *stall bit* set; per Section 2.4.3 the scheduler clears all
stall bits whenever the MDT or SFC evicts an entry.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional

from ..core.predictors import DependenceTagFile
from .dyninst import DynInst


class Scheduler:
    """Scheduling window: wakeup lists, ready heap, stalled instructions."""

    def __init__(self, capacity: int, tag_file: DependenceTagFile):
        self.capacity = capacity
        self.tag_file = tag_file
        self._ready: List = []                     # heap of (seq, DynInst)
        self._phys_waiters: Dict[int, List[DynInst]] = {}
        self._tag_waiters: Dict[int, List[DynInst]] = {}
        self._stalled: List[DynInst] = []
        self._occupancy = 0

    # -- capacity -----------------------------------------------------------------

    @property
    def occupancy(self) -> int:
        return self._occupancy

    @property
    def has_space(self) -> bool:
        return self._occupancy < self.capacity

    # -- dispatch -------------------------------------------------------------------

    def dispatch(self, inst: DynInst, unready_phys: List[int]) -> None:
        """Insert a renamed instruction into the window.

        ``unready_phys`` lists the source physical registers that are not
        yet ready (duplicates allowed -- wakeups decrement per listing).
        The consumed dependence tag, if pending, adds one more wait.
        """
        self._occupancy += 1
        wait = 0
        if unready_phys:
            phys_waiters = self._phys_waiters
            for phys in unready_phys:
                waiters = phys_waiters.get(phys)
                if waiters is None:
                    phys_waiters[phys] = [inst]
                else:
                    waiters.append(inst)
                wait += 1
        tag = inst.consumed_tag
        if tag is not None and not self.tag_file.is_ready(tag):
            waiters = self._tag_waiters.get(tag)
            if waiters is None:
                self._tag_waiters[tag] = [inst]
            else:
                waiters.append(inst)
            wait += 1
        inst.wait_count = wait
        if wait == 0:
            self._push_ready(inst)

    def dispatch_fast(self, inst: DynInst, unready1: int = -1,
                      unready2: int = -1) -> None:
        """Allocation-free dispatch for the two-source common case.

        Same semantics as :meth:`dispatch` with the unready sources passed
        as scalars (-1 = none) instead of a per-call list; the processor's
        dispatch loop calls this once per instruction.
        """
        self._occupancy += 1
        wait = 0
        if unready1 >= 0:
            phys_waiters = self._phys_waiters
            waiters = phys_waiters.get(unready1)
            if waiters is None:
                phys_waiters[unready1] = [inst]
            else:
                waiters.append(inst)
            wait = 1
        if unready2 >= 0:
            phys_waiters = self._phys_waiters
            waiters = phys_waiters.get(unready2)
            if waiters is None:
                phys_waiters[unready2] = [inst]
            else:
                waiters.append(inst)
            wait += 1
        tag = inst.consumed_tag
        if tag is not None and not self.tag_file.is_ready(tag):
            waiters = self._tag_waiters.get(tag)
            if waiters is None:
                self._tag_waiters[tag] = [inst]
            else:
                waiters.append(inst)
            wait += 1
        inst.wait_count = wait
        if wait == 0:
            self._push_ready(inst)

    # -- wakeup ---------------------------------------------------------------------

    def _push_ready(self, inst: DynInst) -> None:
        if not inst.in_ready and not inst.squashed:
            inst.in_ready = True
            heapq.heappush(self._ready, (inst.seq, inst))

    def _wake(self, waiters: Optional[List[DynInst]]) -> None:
        if not waiters:
            return
        for inst in waiters:
            if inst.squashed or inst.issued:
                continue
            inst.wait_count -= 1
            if inst.wait_count == 0 and not inst.stalled:
                self._push_ready(inst)

    def on_phys_ready(self, phys: int) -> None:
        # _wake inlined: this runs once per completing producer.
        waiters = self._phys_waiters.pop(phys, None)
        if not waiters:
            return
        ready = self._ready
        for inst in waiters:
            if inst.squashed or inst.issued:
                continue
            inst.wait_count -= 1
            if inst.wait_count == 0 and not inst.stalled and \
                    not inst.in_ready:
                inst.in_ready = True
                heapq.heappush(ready, (inst.seq, inst))

    def on_tag_ready(self, tag: int) -> None:
        self._wake(self._tag_waiters.pop(tag, None))

    # -- select ----------------------------------------------------------------------

    def select(self, width: int) -> List[DynInst]:
        """Pop up to ``width`` ready instructions, oldest first."""
        selected: List[DynInst] = []
        ready = self._ready
        while ready and len(selected) < width:
            _seq, inst = heapq.heappop(ready)
            inst.in_ready = False
            if inst.squashed or inst.issued or inst.stalled:
                continue
            selected.append(inst)
        return selected

    def mark_issued(self, inst: DynInst) -> None:
        """The instruction left the window for a function unit."""
        inst.issued = True
        self._occupancy -= 1

    @property
    def has_ready(self) -> bool:
        # The heap may hold squashed leftovers; peek conservatively.
        return bool(self._ready)

    # -- replay ----------------------------------------------------------------------

    def replay(self, inst: DynInst) -> None:
        """A load/store was dropped by the memory unit: back into the
        window with its stall bit set (Section 2.4.3)."""
        inst.issued = False
        inst.stalled = True
        inst.replay_count += 1
        self._occupancy += 1
        self._stalled.append(inst)

    def clear_stall_bits(self) -> None:
        """An MDT/SFC entry was evicted: let every parked access retry."""
        if not self._stalled:
            return
        for inst in self._stalled:
            if inst.squashed or inst.issued:
                continue
            inst.stalled = False
            if inst.wait_count == 0:
                self._push_ready(inst)
        self._stalled.clear()

    def force_ready(self, inst: DynInst) -> None:
        """ROB-head bypass: the head instruction retries immediately."""
        if inst in self._stalled:
            self._stalled.remove(inst)
        inst.stalled = False
        if inst.wait_count == 0:
            self._push_ready(inst)

    @property
    def stalled_count(self) -> int:
        return len(self._stalled)

    # -- flush -----------------------------------------------------------------------

    def squash_after(self, seq: int) -> None:
        """Drop window occupancy for squashed instructions.

        Squashed instructions are removed lazily from the heap and wakeup
        lists (their ``squashed`` flag excludes them); only the occupancy
        count and the stalled list are cleaned eagerly.
        """
        self._stalled = [i for i in self._stalled if not i.squashed]

    def note_squashed(self, inst: DynInst) -> None:
        """Account for one squashed, not-yet-issued instruction."""
        if not inst.issued:
            self._occupancy -= 1

    def flush_all(self) -> None:
        self._ready.clear()
        self._phys_waiters.clear()
        self._tag_waiters.clear()
        self._stalled.clear()
        self._occupancy = 0
