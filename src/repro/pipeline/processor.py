"""Single-core entry point over :mod:`repro.pipeline.core`.

Historically this module *was* the simulator: a ~760-line monolith that
privately constructed its branch predictor, memory subsystem, caches,
and architectural memory.  The machinery now lives in
:class:`~repro.pipeline.core.Core` (per-core pipeline state with an
injectable memory image and cache hierarchy) so that
:class:`~repro.pipeline.system.System` can run N cores over a shared
:class:`~repro.memory.system.MemorySystem`.  ``Processor`` remains the
supported single-core construction path -- a ``Core`` with its private
defaults -- and is bit-exact with the pre-split simulator (the
``manifest_digest`` gate in ``scripts/check_digest.py`` pins this).
"""

from __future__ import annotations

from .core import Core, SimResult, SimulationError


class Processor(Core):
    """One configured superscalar core bound to one program.

    Exactly a :class:`~repro.pipeline.core.Core` with its single-core
    defaults: a private :class:`~repro.memory.main_memory.MainMemory`
    image, the paper's cache hierarchy, golden-trace validation on, and
    idle-cycle fast-forwarding on.
    """


__all__ = ["Processor", "SimResult", "SimulationError"]
