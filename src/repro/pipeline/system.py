"""N-core system: lockstepped :class:`~repro.pipeline.core.Core` objects
over one shared :class:`~repro.memory.system.MemorySystem`.

The cycle loop moves up a level here: :meth:`System.step` advances every
still-running core by exactly one cycle, in ascending ``core_id`` order.
Lockstep plus that fixed round-robin order is the system's *coherence
point*: a store becomes globally visible the moment its core's retire
stage writes the shared image, and which same-cycle accesses observe it
is fully determined by core order -- so multicore runs are as
deterministic and replayable as single-core ones (idle-cycle
fast-forwarding is disabled on every core to keep their clocks equal).

Memory modes (see :class:`~repro.pipeline.config.SystemConfig`):

* ``shared`` -- every core executes over the shared architectural
  image.  Cross-core interactions (store visibility at retirement,
  speculative loads reading whatever is currently in the image, per-core
  SFC/MDT state never snooping other cores) become observable; per-core
  golden-trace *value* validation is off, because another core's store
  legitimately changes what a load returns relative to its
  single-threaded golden trace.  This is the litmus/weak-memory mode.
* ``private`` -- every core owns a private image (its own program's
  data) but timing flows through the shared L2, so ordinary benchmarks
  run N-up with full golden-trace validation intact.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..isa.interp import RetireRecord, run_program
from ..isa.program import Program
from ..memory.system import MemorySystem
from .config import SystemConfig
from .core import Core, SimResult, SimulationError


class SystemResult:
    """Outcome of one N-core system run.

    ``counters`` namespaces every per-core counter as
    ``core<N>_<name>`` and adds the system-level aggregates (``cycles``,
    ``retired_instructions``) plus the shared-L2 statistics unprefixed.
    """

    def __init__(self, config: SystemConfig,
                 core_results: List[SimResult], cycles: int,
                 counters: Dict[str, float]):
        self.config = config
        self.core_results = core_results
        self.cycles = cycles
        self.instructions = sum(result.instructions
                                for result in core_results)
        self.counters = counters
        self.program_name = "+".join(result.program_name
                                     for result in core_results)

    @property
    def ipc(self) -> float:
        """Aggregate system IPC (all cores' retirements per cycle)."""
        return self.instructions / self.cycles if self.cycles else 0.0

    def to_dict(self) -> dict:
        """JSON-serializable snapshot (result cache / run manifests)."""
        return {
            "program_name": self.program_name,
            "config": self.config.to_dict(),
            "cores": self.config.cores,
            "cycles": self.cycles,
            "instructions": self.instructions,
            "counters": dict(self.counters),
        }

    def __repr__(self) -> str:
        return (f"SystemResult({self.program_name} on "
                f"{self.config.name}: {self.config.cores} cores, "
                f"IPC={self.ipc:.3f}, {self.instructions} insts, "
                f"{self.cycles} cycles)")


class System:
    """N lockstepped cores over one shared memory system.

    ``programs`` is one :class:`~repro.isa.program.Program` per core; a
    single program is replicated across every core (the N-up throughput
    case).  Golden traces may be passed per core (``traces``) or are
    interpreted on construction -- each core's trace is its program's
    *single-threaded* architectural execution, used for fetch-path
    tracking and the branch oracle; value validation against it is
    enabled only in ``private`` memory mode.

    ``checkpoints`` (one
    :class:`~repro.checkpoint.arch.ArchCheckpoint` per core, or None
    entries for cores starting at reset) begins each core's detailed
    simulation from fast-forwarded architectural state.  Restore is
    only meaningful in ``private`` memory mode -- checkpoints are
    captured by the *single-threaded* interpreter, and a shared image
    stamped from per-core checkpoints would interleave their deltas
    nondeterministically -- so shared-memory mode rejects it.  Each
    restored core's ``traces`` entry must be the golden *suffix* from
    its checkpoint (see :class:`~repro.pipeline.core.Core`).
    """

    def __init__(self, programs: Sequence[Program], config: SystemConfig,
                 traces: Optional[Sequence[List[RetireRecord]]] = None,
                 max_instructions: int = 1_000_000,
                 checkpoints: Optional[Sequence] = None):
        programs = list(programs)
        if len(programs) == 1 and config.cores > 1:
            programs = programs * config.cores
        if len(programs) != config.cores:
            raise ValueError(
                f"got {len(programs)} program(s) for {config.cores} "
                f"core(s); pass one per core or a single program to "
                f"replicate")
        if traces is not None and len(traces) != config.cores:
            raise ValueError(
                f"got {len(traces)} trace(s) for {config.cores} core(s)")
        if checkpoints is not None:
            if config.shared_memory:
                raise ValueError(
                    "checkpoint restore requires private memory mode: "
                    "single-threaded checkpoints cannot seed a shared "
                    "architectural image")
            if len(checkpoints) != config.cores:
                raise ValueError(
                    f"got {len(checkpoints)} checkpoint(s) for "
                    f"{config.cores} core(s)")
        self.config = config
        self.programs = programs
        self.memsys = MemorySystem(config.cores,
                                   shared=config.shared_memory)
        for core_id, program in enumerate(programs):
            self.memsys.load_segments(core_id, program.data)
        shared = config.shared_memory
        self.cores: List[Core] = []
        for core_id, program in enumerate(programs):
            trace = traces[core_id] if traces is not None \
                else run_program(program, max_instructions)
            ckpt = checkpoints[core_id] if checkpoints is not None \
                else None
            memory = self.memsys.memory(core_id)
            if ckpt is not None:
                memory.apply_page_delta(ckpt.pages)
            self.cores.append(Core(
                program, config.core, trace=trace,
                memory=memory,
                hierarchy=self.memsys.hierarchy(core_id),
                core_id=core_id, validate=not shared, idle_skip=False,
                start_pc=ckpt.pc if ckpt is not None else 0,
                start_regs=ckpt.regs if ckpt is not None else None,
                warm_state=ckpt.warm if ckpt is not None else None))
        self.cycle = 0

    @property
    def done(self) -> bool:
        return all(core.done for core in self.cores)

    # ------------------------------------------------------------------ cycle

    def step(self) -> None:
        """Advance every still-running core by one cycle, in core-id
        order (the deterministic coherence order)."""
        for core in self.cores:
            if not core.done:
                core.step()
        self.cycle += 1

    # ------------------------------------------------------------------ run

    def run(self) -> SystemResult:
        """Simulate until every core's HALT retires."""
        max_cycles = self.config.core.max_cycles
        while not self.done:
            if self.cycle > max_cycles:
                stuck = [core.core_id for core in self.cores
                         if not core.done]
                raise SimulationError(
                    f"system exceeded {max_cycles} cycles with "
                    f"core(s) {stuck} still running")
            self.step()
        return self.finalize()

    def finalize(self) -> SystemResult:
        """Finalize every core and merge the per-core counters under
        ``core<N>_`` prefixes plus the system-level aggregates."""
        core_results = [core.finalize() for core in self.cores]
        cycles = max((core.cycle for core in self.cores), default=0)
        merged: Dict[str, float] = {}
        for core_id, result in enumerate(core_results):
            for name, value in result.counters.as_dict().items():
                merged[f"core{core_id}_{name}"] = value
        merged.update(self.memsys.stats())
        merged["cycles"] = cycles
        merged["retired_instructions"] = sum(result.instructions
                                             for result in core_results)
        return SystemResult(self.config, core_results, cycles, merged)

    # ------------------------------------------------------------------ views

    @property
    def shared_memory(self):
        """The shared architectural image (the coherence point)."""
        return self.memsys.shared_memory
