"""repro -- Address-Indexed Memory Disambiguation and Store-to-Load
Forwarding (MICRO 2005), reproduced.

Public API tour:

* :mod:`repro.isa` -- the 64-bit RISC ISA, assembler, and in-order ISS;
* :mod:`repro.core` -- the SFC, MDT, store FIFO, producer-set predictor,
  and the idealized LSQ baseline;
* :mod:`repro.pipeline` -- the cycle-level out-of-order superscalar;
* :mod:`repro.workloads` -- SPEC-2000-styled synthetic kernels;
* :mod:`repro.harness` -- experiment presets and figure generators;
* :mod:`repro.obs` -- metric registry and versioned run records;
* :mod:`repro.api` -- the stable programmatic surface
  (``simulate``/``compare``/``run_figure`` returning RunRecords).

Quick start::

    from repro import Assembler, Processor
    from repro.harness import baseline_sfc_mdt_config

    a = Assembler()
    a.li("r1", 0x1000)
    a.li("r2", 42)
    a.sd("r2", "r1")
    a.ld("r3", "r1")
    a.halt()
    result = Processor(a.build(), baseline_sfc_mdt_config()).run()
    print(result.ipc)
"""

from .core import (
    LSQConfig,
    LSQSubsystem,
    MDTConfig,
    MemoryDisambiguationTable,
    PredictorConfig,
    ProducerSetPredictor,
    SFCConfig,
    SfcMdtSubsystem,
    StoreFifo,
    StoreForwardingCache,
)
from .isa import Assembler, Instruction, Interpreter, Program, run_program
from .pipeline import Processor, ProcessorConfig, SimResult, SimulationError
from . import api  # noqa: E402  (needs core/pipeline imported first)
from .obs import METRICS, RunRecord

__version__ = "1.0.0"

__all__ = [
    "Assembler",
    "Instruction",
    "Interpreter",
    "LSQConfig",
    "LSQSubsystem",
    "MDTConfig",
    "METRICS",
    "MemoryDisambiguationTable",
    "PredictorConfig",
    "Processor",
    "ProcessorConfig",
    "ProducerSetPredictor",
    "Program",
    "RunRecord",
    "SFCConfig",
    "SfcMdtSubsystem",
    "SimResult",
    "SimulationError",
    "StoreFifo",
    "StoreForwardingCache",
    "api",
    "run_program",
    "__version__",
]
