"""Branch prediction: gshare with the paper's oracle fixup.

The paper's frontend uses an "8 Kbit Gshare + 80% mispredicts turned to
correct predictions by an oracle" (Figure 4).  We model exactly that: a
classic gshare (global history XOR PC indexing a table of 2-bit saturating
counters totalling 8 Kbit) whose mispredictions are overridden to the
correct outcome with probability 0.8 by a deterministic pseudo-random
oracle.

Branch *targets* are always known at prediction time in our model (direct
branches encode their target; ``jr`` uses a last-target cache), so the
predictor's job is direction prediction, as in the paper.
"""

from __future__ import annotations

import random
from typing import Dict


class GsharePredictor:
    """Gshare direction predictor with probabilistic oracle correction."""

    def __init__(self, table_bits: int = 12, history_bits: int = 12,
                 oracle_fix_rate: float = 0.8, seed: int = 0x5EED):
        # 2**12 two-bit counters == 8 Kbit, the paper's budget.
        self.table_bits = table_bits
        self.history_bits = history_bits
        self._mask = (1 << table_bits) - 1
        self._history_mask = (1 << history_bits) - 1
        self._counters = [2] * (1 << table_bits)  # weakly taken
        self._history = 0
        self.oracle_fix_rate = oracle_fix_rate
        self._rng = random.Random(seed)
        # jr target cache: last seen target per PC
        self._indirect_targets: Dict[int, int] = {}
        self.predictions = 0
        self.mispredictions = 0
        self.oracle_fixes = 0

    def _index(self, pc: int) -> int:
        return ((pc >> 2) ^ self._history) & self._mask

    def predict(self, pc: int) -> bool:
        """Predict the direction of the branch at ``pc`` (True = taken)."""
        return self._counters[self._index(pc)] >= 2

    def predict_with_oracle(self, pc: int, actual_taken: bool) -> bool:
        """Predict a direction, then let the oracle fix 80% of mistakes.

        This mirrors the paper's idealisation: the simulator knows the
        architectural outcome at fetch (from its own functional execution)
        and flips a fraction of wrong predictions to correct ones.  The
        counter table still trains on the *returned* prediction path.
        """
        self.predictions += 1
        predicted = self.predict(pc)
        if predicted != actual_taken:
            if self._rng.random() < self.oracle_fix_rate:
                self.oracle_fixes += 1
                predicted = actual_taken
        return predicted

    def update(self, pc: int, taken: bool, predicted: bool) -> None:
        """Train the counters and global history with the actual outcome."""
        index = self._index(pc)
        counter = self._counters[index]
        if taken:
            if counter < 3:
                self._counters[index] = counter + 1
        else:
            if counter > 0:
                self._counters[index] = counter - 1
        self._history = ((self._history << 1) | (1 if taken else 0)) \
            & self._history_mask
        if predicted != taken:
            self.mispredictions += 1

    # -- warm-state capsules -------------------------------------------------

    def export_state(self) -> Dict:
        """Snapshot the *trained* state (counter table, global history,
        indirect-target cache) for a checkpoint warm capsule.

        Prediction statistics and the oracle RNG are deliberately
        excluded: a restored predictor starts counting from zero so a
        sampled interval reports only its own predictions.
        """
        return {
            "counters": list(self._counters),
            "history": self._history,
            "indirect": {str(pc): target for pc, target
                         in self._indirect_targets.items()},
        }

    def import_state(self, state: Dict) -> None:
        """Restore trained state from :meth:`export_state` output."""
        counters = list(state["counters"])
        if len(counters) != len(self._counters):
            raise ValueError(
                f"warm capsule has {len(counters)} counters; this "
                f"predictor has {len(self._counters)}")
        self._counters[:] = counters
        self._history = state["history"] & self._history_mask
        self._indirect_targets = {int(pc): target for pc, target
                                  in state["indirect"].items()}

    def oracle_should_fix(self) -> bool:
        """One draw of the fixup oracle (used for indirect targets)."""
        return self._rng.random() < self.oracle_fix_rate

    # -- indirect targets ----------------------------------------------------

    def predict_indirect(self, pc: int) -> int:
        """Predict the target of an indirect jump (last-target cache)."""
        return self._indirect_targets.get(pc, 0)

    def update_indirect(self, pc: int, target: int) -> None:
        self._indirect_targets[pc] = target

    @property
    def misprediction_rate(self) -> float:
        if not self.predictions:
            return 0.0
        return self.mispredictions / self.predictions
