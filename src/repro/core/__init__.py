"""The paper's contribution: SFC, MDT, store FIFO, dependence predictors,
and the LSQ baseline, unified behind the ``MemorySubsystem`` interface."""

from . import registry
from .load_replay import LoadReplaySubsystem
from .registry import register_subsystem
from .lsq import LoadStoreQueue, LSQConfig
from .mdt import (
    MDT_CONFLICT,
    MDT_OK,
    AccessResult,
    MDTConfig,
    MemoryDisambiguationTable,
)
from .predictors import (
    ENF,
    LSQ_MODE,
    NOT_ENF,
    TOTAL,
    DependenceTagFile,
    PredictorConfig,
    ProducerSetPredictor,
)
from .sfc import (
    CORRUPTION_ENDPOINTS,
    CORRUPTION_MASK,
    SFC_CORRUPT,
    SFC_HIT,
    SFC_MISS,
    SFC_PARTIAL,
    SFCConfig,
    StoreForwardingCache,
)
from .store_fifo import StoreFifo
from .subsystem import (
    DONE,
    OUTPUT_RECOVERY_CORRUPT,
    OUTPUT_RECOVERY_FLUSH,
    REPLAY,
    LSQSubsystem,
    MemorySubsystem,
    MemOutcome,
    SfcMdtSubsystem,
)
from .violations import ANTI_DEP, OUTPUT_DEP, TRUE_DEP, Violation

__all__ = [
    "ANTI_DEP",
    "CORRUPTION_ENDPOINTS",
    "CORRUPTION_MASK",
    "AccessResult",
    "DONE",
    "DependenceTagFile",
    "ENF",
    "LSQConfig",
    "LSQSubsystem",
    "LoadReplaySubsystem",
    "LSQ_MODE",
    "LoadStoreQueue",
    "MDTConfig",
    "MDT_CONFLICT",
    "MDT_OK",
    "MemOutcome",
    "MemoryDisambiguationTable",
    "MemorySubsystem",
    "NOT_ENF",
    "OUTPUT_DEP",
    "OUTPUT_RECOVERY_CORRUPT",
    "OUTPUT_RECOVERY_FLUSH",
    "PredictorConfig",
    "ProducerSetPredictor",
    "REPLAY",
    "register_subsystem",
    "registry",
    "SFCConfig",
    "SFC_CORRUPT",
    "SFC_HIT",
    "SFC_MISS",
    "SFC_PARTIAL",
    "SfcMdtSubsystem",
    "StoreFifo",
    "StoreForwardingCache",
    "TOTAL",
    "TRUE_DEP",
    "Violation",
]
