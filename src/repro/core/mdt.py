"""Memory Disambiguation Table (MDT) -- Section 2.2 of the paper.

The MDT replaces the load queue's associative search with an
address-indexed, cache-like table that applies basic timestamp ordering
(Bernstein & Goodman) to in-flight memory accesses.  Each entry tracks the
highest sequence numbers yet seen of the loads and stores to one *granule*
of memory (8 bytes by default), plus the PCs of those instructions so that
the dependence predictor can be trained on a violation.

Protocol (per granule touched by an access):

* **load issues**: if its sequence number is older than the entry's store
  sequence number, an *anti* dependence has been violated (a younger store
  already wrote the SFC word this load should have read first).  Otherwise
  the load records itself if it is the youngest load seen.
* **store issues**: a younger load already issued means a *true* dependence
  violation (the load read stale data); a younger store already issued
  means an *output* dependence violation (this store would overwrite the
  younger store's value in the SFC).  Otherwise the store records itself.
* **retire**: the retiring instruction invalidates its own sequence number
  if it is still the recorded one; an entry with neither number valid is
  freed.

Entries may be *tagged* (set-associative; a set conflict replays the
instruction) or *untagged* (all addresses mapping to a set share it, so
aliasing produces spurious violations -- the paper's cheaper variant).

A multi-granule access is *atomic*: every granule is probed for a set
conflict before any granule is updated, so a replayed (conflicting)
access leaves no side effects behind and re-applying it is idempotent.

Partial pipeline flushes leave the recorded sequence numbers untouched;
canceled numbers make the table conservative, and watermark scrubbing
reclaims entries whose numbers are all older than the oldest in-flight
instruction.  The one exception is the Section 2.4.1 *counted-load*
state: the per-granule set of completed-but-not-retired load numbers
drops canceled numbers on a partial flush, because a canceled load never
retires and a stale member would otherwise disable counted-load recovery
for that granule forever.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..obs.metrics import declare_metric
from ..stats.counters import Counters
from .violations import ANTI_DEP, OUTPUT_DEP, TRUE_DEP, Violation

# -- declared metrics (metadata only; see repro.obs.metrics) -----------------
for _name, _unit, _desc in (
    ("mdt_load_accesses", "accesses", "loads that probed the MDT"),
    ("mdt_store_accesses", "accesses", "stores that probed the MDT"),
    ("mdt_set_conflicts", "events",
     "accesses that found no MDT way available"),
    ("mdt_anti_violations", "events",
     "anti (WAR) dependence violations the MDT detected"),
    ("mdt_true_violations", "events",
     "true (RAW) dependence violations the MDT detected"),
    ("mdt_output_violations", "events",
     "output (WAW) dependence violations the MDT detected"),
    ("mdt_true_violations_at_retire", "events",
     "true violations found by the retirement check-only scan"),
):
    declare_metric(_name, subsystem="mdt", description=_desc, unit=_unit)

MDT_OK = "ok"
MDT_CONFLICT = "conflict"


class MDTConfig:
    """Geometry and policy knobs of the memory disambiguation table."""

    __slots__ = ("num_sets", "assoc", "granularity", "tagged",
                 "counted_load_recovery")

    def __init__(self, num_sets: int = 4096, assoc: int = 2,
                 granularity: int = 8, tagged: bool = True,
                 counted_load_recovery: bool = False):
        if num_sets & (num_sets - 1):
            raise ValueError("num_sets must be a power of two")
        if granularity & (granularity - 1):
            raise ValueError("granularity must be a power of two")
        self.num_sets = num_sets
        self.assoc = assoc
        self.granularity = granularity
        self.tagged = tagged
        #: Section 2.4.1: when a true violation is detected and exactly one
        #: completed-not-retired load is tracked, flush from that load
        #: instead of from the completing store.
        self.counted_load_recovery = counted_load_recovery

    def to_dict(self) -> dict:
        """Canonical JSON-serializable view (experiment-cache keying)."""
        return {slot: getattr(self, slot) for slot in self.__slots__}

    def __repr__(self) -> str:
        return (f"MDTConfig(num_sets={self.num_sets}, assoc={self.assoc}, "
                f"granularity={self.granularity}, tagged={self.tagged})")


class _MDTEntry:
    __slots__ = ("tag", "load_seq", "store_seq", "load_pc", "store_pc",
                 "load_seqs")

    def __init__(self, tag: int, counted: bool):
        self.tag = tag
        self.load_seq = -1      # -1 encodes "invalid"
        self.store_seq = -1
        self.load_pc = 0
        self.store_pc = 0
        #: Completed-but-not-retired load sequence numbers (§2.4.1).
        #: Only maintained under counted-load recovery; a set (rather
        #: than a bare count) keeps replayed accesses idempotent and
        #: canceled loads removable.
        self.load_seqs: Optional[set] = set() if counted else None


class AccessResult:
    """Outcome of one MDT access.

    ``status`` is ``MDT_OK`` or ``MDT_CONFLICT`` (replay).  ``violations``
    is an immutable tuple of every dependence violation detected (empty
    when none) -- immutable because no-violation results are shared
    singletons.
    """

    __slots__ = ("status", "violations")

    def __init__(self, status: str, violations: Tuple[Violation, ...]):
        self.status = status
        self.violations = violations


_OK_NO_VIOLATION = AccessResult(MDT_OK, ())
_CONFLICT = AccessResult(MDT_CONFLICT, ())


class MemoryDisambiguationTable:
    """Address-indexed memory disambiguation via sequence numbers."""

    def __init__(self, config: MDTConfig, counters: Optional[Counters] = None):
        self.config = config
        self.counters = counters if counters is not None else Counters()
        self._set_mask = config.num_sets - 1
        self._granule_shift = config.granularity.bit_length() - 1
        self._tagged = config.tagged
        self._assoc = config.assoc
        self._counted = config.counted_load_recovery
        self._sets: List[List[_MDTEntry]] = [
            [] for _ in range(config.num_sets)]
        self.eviction_events = 0
        # Interned handles for the unconditional per-access counters
        # (rare events -- conflicts, violations -- stay on incr()).
        self._c_load_accesses = self.counters.cell("mdt_load_accesses")
        self._c_store_accesses = self.counters.cell("mdt_store_accesses")

    # -- internals --------------------------------------------------------------

    def _granules(self, addr: int, size: int) -> range:
        first = addr >> self._granule_shift
        last = (addr + size - 1) >> self._granule_shift
        return range(first, last + 1)

    def _lookup(self, granule: int, watermark: int,
                allocate: bool) -> Tuple[Optional[_MDTEntry], bool]:
        """Find (or allocate) the entry for one granule.

        Returns ``(entry, conflicted)``.  ``entry`` is None either when the
        set conflicts (``conflicted`` True) or when nothing is allocated and
        ``allocate`` is False.
        """
        ways = self._sets[granule & self._set_mask]
        if not self._tagged:
            # Untagged MDT: one shared entry per set; aliasing is accepted.
            if ways:
                return ways[0], False
            if not allocate:
                return None, False
            entry = _MDTEntry(granule, self._counted)
            ways.append(entry)
            return entry, False
        for entry in ways:
            if entry.tag == granule:
                return entry, False
        if not allocate:
            return None, False
        if len(ways) >= self._assoc:
            self._scrub_set(ways, watermark)
        if len(ways) >= self._assoc:
            return None, True
        entry = _MDTEntry(granule, self._counted)
        ways.append(entry)
        return entry, False

    def _resolve_atomic(self, first: int, last: int, watermark: int
                        ) -> Optional[List[_MDTEntry]]:
        """Find-or-allocate the entries of a multi-granule access.

        Probes *every* granule for set conflicts before allocating
        anything, so a conflicting access (which the memory unit will
        replay) leaves the table untouched.  Returns None on conflict.
        """
        sets = self._sets
        set_mask = self._set_mask
        counted = self._counted
        if not self._tagged:
            entries = []
            for granule in range(first, last + 1):
                ways = sets[granule & set_mask]
                if ways:
                    entries.append(ways[0])
                else:
                    entry = _MDTEntry(granule, counted)
                    ways.append(entry)
                    entries.append(entry)
            return entries
        assoc = self._assoc
        # Probe phase: count the allocations each set needs; scrub and
        # bail (all-or-nothing) if any set cannot take them.
        pending: dict = {}
        for granule in range(first, last + 1):
            ways = sets[granule & set_mask]
            for entry in ways:
                if entry.tag == granule:
                    break
            else:
                index = granule & set_mask
                needed = pending.get(index, 0) + 1
                if len(ways) + needed > assoc:
                    self._scrub_set(ways, watermark)
                    if len(ways) + needed > assoc:
                        return None
                pending[index] = needed
        # Commit phase: every allocation is now guaranteed to fit.
        entries = []
        for granule in range(first, last + 1):
            ways = sets[granule & set_mask]
            for entry in ways:
                if entry.tag == granule:
                    entries.append(entry)
                    break
            else:
                entry = _MDTEntry(granule, counted)
                ways.append(entry)
                entries.append(entry)
        return entries

    def _scrub_set(self, ways: List[_MDTEntry], watermark: int) -> None:
        alive = [e for e in ways
                 if e.load_seq >= watermark or e.store_seq >= watermark]
        if len(alive) != len(ways):
            self.eviction_events += len(ways) - len(alive)
            ways[:] = alive

    # -- issue-time accesses -------------------------------------------------------

    def access_load(self, addr: int, size: int, seq: int, pc: int,
                    watermark: int) -> AccessResult:
        """A load has computed its address and consults the MDT."""
        self._c_load_accesses.value += 1
        shift = self._granule_shift
        first = addr >> shift
        last = (addr + size - 1) >> shift
        if first == last:
            # Fast path: the access sits in one granule (the common case),
            # so one lookup commits directly -- trivially atomic.
            entry, conflicted = self._lookup(first, watermark,
                                             allocate=True)
            if conflicted:
                self.counters.incr("mdt_set_conflicts")
                return _CONFLICT
            entries = (entry,)
        else:
            resolved = self._resolve_atomic(first, last, watermark)
            if resolved is None:
                self.counters.incr("mdt_set_conflicts")
                return _CONFLICT
            entries = resolved
        counted = self._counted
        violations: List[Violation] = []
        for entry in entries:
            store_seq = entry.store_seq
            if store_seq >= 0 and seq < store_seq:
                # A younger store already completed: anti violation.  Flush
                # the load and everything after it (Section 2.2).
                self.counters.incr("mdt_anti_violations")
                violations.append(Violation(
                    ANTI_DEP, flush_after_seq=seq - 1,
                    producer_pc=pc, consumer_pc=entry.store_pc))
                continue
            if seq >= entry.load_seq:
                entry.load_seq = seq
                entry.load_pc = pc
            if counted:
                entry.load_seqs.add(seq)
        if violations:
            return AccessResult(MDT_OK, tuple(violations))
        return _OK_NO_VIOLATION

    def access_store(self, addr: int, size: int, seq: int, pc: int,
                     watermark: int) -> AccessResult:
        """A store has computed its address/data and consults the MDT."""
        self._c_store_accesses.value += 1
        shift = self._granule_shift
        first = addr >> shift
        last = (addr + size - 1) >> shift
        if first == last:
            entry, conflicted = self._lookup(first, watermark,
                                             allocate=True)
            if conflicted:
                self.counters.incr("mdt_set_conflicts")
                return _CONFLICT
            entries = (entry,)
        else:
            resolved = self._resolve_atomic(first, last, watermark)
            if resolved is None:
                self.counters.incr("mdt_set_conflicts")
                return _CONFLICT
            entries = resolved
        counted = self._counted
        violations: List[Violation] = []
        for entry in entries:
            load_seq = entry.load_seq
            if load_seq >= 0 and seq < load_seq:
                # A younger load already read stale data: true violation.
                self.counters.incr("mdt_true_violations")
                flush_after = seq
                if counted:
                    load_seqs = entry.load_seqs
                    if len(load_seqs) == 1:
                        # §2.4.1: the tracked load is the only completed
                        # conflicting one; flush from *that load's*
                        # number (the recorded load_seq may belong to a
                        # younger, canceled load) instead of from this
                        # store.
                        for only in load_seqs:
                            flush_after = only - 1
                violations.append(Violation(
                    TRUE_DEP, flush_after_seq=flush_after,
                    producer_pc=pc, consumer_pc=entry.load_pc))
            store_seq = entry.store_seq
            if store_seq >= 0 and seq < store_seq:
                # A younger store already completed: output violation.
                self.counters.incr("mdt_output_violations")
                violations.append(Violation(
                    OUTPUT_DEP, flush_after_seq=seq,
                    producer_pc=pc, consumer_pc=entry.store_pc))
            if seq >= entry.store_seq:
                entry.store_seq = seq
                entry.store_pc = pc
        if violations:
            return AccessResult(MDT_OK, tuple(violations))
        return _OK_NO_VIOLATION

    def check_store(self, addr: int, size: int, seq: int,
                    pc: int) -> List[Violation]:
        """Check-only store access: detect violations without allocating
        or updating.

        Used when a store executed through the ROB-head bypass retires:
        it never consulted the MDT at execute, but any younger load that
        completed meanwhile (possibly with a stale value) *did* record
        itself, so a scan of the matching entries at retirement finds
        every load the bypassed store could have fed.
        """
        violations: List[Violation] = []
        for granule in self._granules(addr, size):
            entry, _ = self._lookup(granule, watermark=0, allocate=False)
            if entry is None:
                continue
            if entry.load_seq >= 0 and seq < entry.load_seq:
                self.counters.incr("mdt_true_violations_at_retire")
                violations.append(Violation(
                    TRUE_DEP, flush_after_seq=seq,
                    producer_pc=pc, consumer_pc=entry.load_pc))
        return violations

    # -- retirement ---------------------------------------------------------------

    def on_load_retire(self, addr: int, size: int, seq: int) -> None:
        """A load retires: invalidate its number if still recorded."""
        shift = self._granule_shift
        set_mask = self._set_mask
        sets = self._sets
        tagged = self._tagged
        counted = self._counted
        first = addr >> shift
        last = (addr + size - 1) >> shift
        for granule in range(first, last + 1):
            ways = sets[granule & set_mask]
            for i, entry in enumerate(ways):
                if tagged and entry.tag != granule:
                    continue
                if counted:
                    # discard, not remove: a ROB-head-bypassed load never
                    # recorded itself, so its number may be absent.
                    entry.load_seqs.discard(seq)
                if entry.load_seq == seq:
                    entry.load_seq = -1
                if entry.load_seq < 0 and entry.store_seq < 0:
                    del ways[i]
                    self.eviction_events += 1
                break

    def on_store_retire(self, addr: int, size: int, seq: int) -> None:
        """A store retires: invalidate its number if still recorded."""
        shift = self._granule_shift
        set_mask = self._set_mask
        sets = self._sets
        tagged = self._tagged
        first = addr >> shift
        last = (addr + size - 1) >> shift
        for granule in range(first, last + 1):
            ways = sets[granule & set_mask]
            for i, entry in enumerate(ways):
                if tagged and entry.tag != granule:
                    continue
                if entry.store_seq == seq:
                    entry.store_seq = -1
                if entry.load_seq < 0 and entry.store_seq < 0:
                    del ways[i]
                    self.eviction_events += 1
                break

    # -- flush handling --------------------------------------------------------------

    def on_partial_flush(self, flush_after_seq: Optional[int] = None) -> None:
        """Handle a partial pipeline flush.

        Recorded sequence numbers are left untouched (Section 2.2) --
        canceled numbers merely make the table conservative.  The
        §2.4.1 completed-load sets, however, must drop every canceled
        number (``seq > flush_after_seq``): a canceled load never
        retires, and a leaked member would inflate the count and silently
        degrade counted-load recovery to store-flush recovery forever.

        ``flush_after_seq=None`` (unknown flush point) keeps the sets
        intact, which over-counts and therefore stays conservative.
        """
        if not self._counted or flush_after_seq is None:
            return
        for ways in self._sets:
            if ways:
                for entry in ways:
                    load_seqs = entry.load_seqs
                    if load_seqs:
                        entry.load_seqs = {
                            s for s in load_seqs if s <= flush_after_seq}

    def on_full_flush(self) -> None:
        """Full pipeline flush: nothing is in flight, drop everything."""
        for ways in self._sets:
            if ways:
                self.eviction_events += len(ways)
                ways.clear()

    def scrub(self, watermark: int) -> None:
        """Reclaim every dead entry."""
        for ways in self._sets:
            if ways:
                self._scrub_set(ways, watermark)

    # -- introspection -----------------------------------------------------------------

    def occupancy(self) -> int:
        return sum(len(ways) for ways in self._sets)
