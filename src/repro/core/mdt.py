"""Memory Disambiguation Table (MDT) -- Section 2.2 of the paper.

The MDT replaces the load queue's associative search with an
address-indexed, cache-like table that applies basic timestamp ordering
(Bernstein & Goodman) to in-flight memory accesses.  Each entry tracks the
highest sequence numbers yet seen of the loads and stores to one *granule*
of memory (8 bytes by default), plus the PCs of those instructions so that
the dependence predictor can be trained on a violation.

Protocol (per granule touched by an access):

* **load issues**: if its sequence number is older than the entry's store
  sequence number, an *anti* dependence has been violated (a younger store
  already wrote the SFC word this load should have read first).  Otherwise
  the load records itself if it is the youngest load seen.
* **store issues**: a younger load already issued means a *true* dependence
  violation (the load read stale data); a younger store already issued
  means an *output* dependence violation (this store would overwrite the
  younger store's value in the SFC).  Otherwise the store records itself.
* **retire**: the retiring instruction invalidates its own sequence number
  if it is still the recorded one; an entry with neither number valid is
  freed.

Entries may be *tagged* (set-associative; a set conflict replays the
instruction) or *untagged* (all addresses mapping to a set share it, so
aliasing produces spurious violations -- the paper's cheaper variant).

Partial pipeline flushes leave the MDT untouched; canceled sequence
numbers make it conservative, and watermark scrubbing reclaims entries
whose numbers are all older than the oldest in-flight instruction.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..stats.counters import Counters
from .violations import ANTI_DEP, OUTPUT_DEP, TRUE_DEP, Violation

MDT_OK = "ok"
MDT_CONFLICT = "conflict"


class MDTConfig:
    """Geometry and policy knobs of the memory disambiguation table."""

    __slots__ = ("num_sets", "assoc", "granularity", "tagged",
                 "counted_load_recovery")

    def __init__(self, num_sets: int = 4096, assoc: int = 2,
                 granularity: int = 8, tagged: bool = True,
                 counted_load_recovery: bool = False):
        if num_sets & (num_sets - 1):
            raise ValueError("num_sets must be a power of two")
        if granularity & (granularity - 1):
            raise ValueError("granularity must be a power of two")
        self.num_sets = num_sets
        self.assoc = assoc
        self.granularity = granularity
        self.tagged = tagged
        #: Section 2.4.1: when a true violation is detected and exactly one
        #: completed-not-retired load is tracked, flush from that load
        #: instead of from the completing store.
        self.counted_load_recovery = counted_load_recovery

    def to_dict(self) -> dict:
        """Canonical JSON-serializable view (experiment-cache keying)."""
        return {slot: getattr(self, slot) for slot in self.__slots__}

    def __repr__(self) -> str:
        return (f"MDTConfig(num_sets={self.num_sets}, assoc={self.assoc}, "
                f"granularity={self.granularity}, tagged={self.tagged})")


class _MDTEntry:
    __slots__ = ("tag", "load_seq", "store_seq", "load_pc", "store_pc",
                 "load_count")

    def __init__(self, tag: int):
        self.tag = tag
        self.load_seq = -1      # -1 encodes "invalid"
        self.store_seq = -1
        self.load_pc = 0
        self.store_pc = 0
        self.load_count = 0     # completed-but-not-retired loads (§2.4.1)


class AccessResult:
    """Outcome of one MDT access.

    ``status`` is ``MDT_OK`` or ``MDT_CONFLICT`` (replay).  ``violations``
    lists every dependence violation detected (empty when none).
    """

    __slots__ = ("status", "violations")

    def __init__(self, status: str, violations: List[Violation]):
        self.status = status
        self.violations = violations


_OK_NO_VIOLATION = AccessResult(MDT_OK, [])


class MemoryDisambiguationTable:
    """Address-indexed memory disambiguation via sequence numbers."""

    def __init__(self, config: MDTConfig, counters: Optional[Counters] = None):
        self.config = config
        self.counters = counters if counters is not None else Counters()
        self._set_mask = config.num_sets - 1
        self._granule_shift = config.granularity.bit_length() - 1
        self._sets: List[List[_MDTEntry]] = [
            [] for _ in range(config.num_sets)]
        self.eviction_events = 0

    # -- internals --------------------------------------------------------------

    def _granules(self, addr: int, size: int) -> List[int]:
        first = addr >> self._granule_shift
        last = (addr + size - 1) >> self._granule_shift
        return list(range(first, last + 1))

    def _lookup(self, granule: int, watermark: int,
                allocate: bool) -> Tuple[Optional[_MDTEntry], bool]:
        """Find (or allocate) the entry for one granule.

        Returns ``(entry, conflicted)``.  ``entry`` is None either when the
        set conflicts (``conflicted`` True) or when nothing is allocated and
        ``allocate`` is False.
        """
        ways = self._sets[granule & self._set_mask]
        if not self.config.tagged:
            # Untagged MDT: one shared entry per set; aliasing is accepted.
            if ways:
                return ways[0], False
            if not allocate:
                return None, False
            entry = _MDTEntry(granule)
            ways.append(entry)
            return entry, False
        for entry in ways:
            if entry.tag == granule:
                return entry, False
        if not allocate:
            return None, False
        if len(ways) >= self.config.assoc:
            self._scrub_set(ways, watermark)
        if len(ways) >= self.config.assoc:
            return None, True
        entry = _MDTEntry(granule)
        ways.append(entry)
        return entry, False

    def _scrub_set(self, ways: List[_MDTEntry], watermark: int) -> None:
        alive = [e for e in ways
                 if e.load_seq >= watermark or e.store_seq >= watermark]
        if len(alive) != len(ways):
            self.eviction_events += len(ways) - len(alive)
            ways[:] = alive

    # -- issue-time accesses -------------------------------------------------------

    def access_load(self, addr: int, size: int, seq: int, pc: int,
                    watermark: int) -> AccessResult:
        """A load has computed its address and consults the MDT."""
        self.counters.incr("mdt_load_accesses")
        violations: List[Violation] = []
        for granule in self._granules(addr, size):
            entry, conflicted = self._lookup(granule, watermark,
                                             allocate=True)
            if conflicted:
                self.counters.incr("mdt_set_conflicts")
                return AccessResult(MDT_CONFLICT, violations)
            assert entry is not None
            if entry.store_seq >= 0 and seq < entry.store_seq:
                # A younger store already completed: anti violation.  Flush
                # the load and everything after it (Section 2.2).
                self.counters.incr("mdt_anti_violations")
                violations.append(Violation(
                    ANTI_DEP, flush_after_seq=seq - 1,
                    producer_pc=pc, consumer_pc=entry.store_pc))
                continue
            if seq >= entry.load_seq:
                entry.load_seq = seq
                entry.load_pc = pc
            entry.load_count += 1
        if violations:
            return AccessResult(MDT_OK, violations)
        return _OK_NO_VIOLATION

    def access_store(self, addr: int, size: int, seq: int, pc: int,
                     watermark: int) -> AccessResult:
        """A store has computed its address/data and consults the MDT."""
        self.counters.incr("mdt_store_accesses")
        violations: List[Violation] = []
        for granule in self._granules(addr, size):
            entry, conflicted = self._lookup(granule, watermark,
                                             allocate=True)
            if conflicted:
                self.counters.incr("mdt_set_conflicts")
                return AccessResult(MDT_CONFLICT, violations)
            assert entry is not None
            if entry.load_seq >= 0 and seq < entry.load_seq:
                # A younger load already read stale data: true violation.
                self.counters.incr("mdt_true_violations")
                if self.config.counted_load_recovery and \
                        entry.load_count == 1:
                    # §2.4.1: the tracked load is the only conflicting one;
                    # flush from the load instead of from this store.
                    flush_after = entry.load_seq - 1
                else:
                    flush_after = seq
                violations.append(Violation(
                    TRUE_DEP, flush_after_seq=flush_after,
                    producer_pc=pc, consumer_pc=entry.load_pc))
            if entry.store_seq >= 0 and seq < entry.store_seq:
                # A younger store already completed: output violation.
                self.counters.incr("mdt_output_violations")
                violations.append(Violation(
                    OUTPUT_DEP, flush_after_seq=seq,
                    producer_pc=pc, consumer_pc=entry.store_pc))
            if seq >= entry.store_seq:
                entry.store_seq = seq
                entry.store_pc = pc
        if violations:
            return AccessResult(MDT_OK, violations)
        return _OK_NO_VIOLATION

    def check_store(self, addr: int, size: int, seq: int,
                    pc: int) -> List[Violation]:
        """Check-only store access: detect violations without allocating
        or updating.

        Used when a store executed through the ROB-head bypass retires:
        it never consulted the MDT at execute, but any younger load that
        completed meanwhile (possibly with a stale value) *did* record
        itself, so a scan of the matching entries at retirement finds
        every load the bypassed store could have fed.
        """
        violations: List[Violation] = []
        for granule in self._granules(addr, size):
            entry, _ = self._lookup(granule, watermark=0, allocate=False)
            if entry is None:
                continue
            if entry.load_seq >= 0 and seq < entry.load_seq:
                self.counters.incr("mdt_true_violations_at_retire")
                violations.append(Violation(
                    TRUE_DEP, flush_after_seq=seq,
                    producer_pc=pc, consumer_pc=entry.load_pc))
        return violations

    # -- retirement ---------------------------------------------------------------

    def on_load_retire(self, addr: int, size: int, seq: int) -> None:
        """A load retires: invalidate its number if still recorded."""
        for granule in self._granules(addr, size):
            ways = self._sets[granule & self._set_mask]
            for i, entry in enumerate(ways):
                if self.config.tagged and entry.tag != granule:
                    continue
                if entry.load_count > 0:
                    entry.load_count -= 1
                if entry.load_seq == seq:
                    entry.load_seq = -1
                if entry.load_seq < 0 and entry.store_seq < 0:
                    del ways[i]
                    self.eviction_events += 1
                break

    def on_store_retire(self, addr: int, size: int, seq: int) -> None:
        """A store retires: invalidate its number if still recorded."""
        for granule in self._granules(addr, size):
            ways = self._sets[granule & self._set_mask]
            for i, entry in enumerate(ways):
                if self.config.tagged and entry.tag != granule:
                    continue
                if entry.store_seq == seq:
                    entry.store_seq = -1
                if entry.load_seq < 0 and entry.store_seq < 0:
                    del ways[i]
                    self.eviction_events += 1
                break

    # -- flush handling --------------------------------------------------------------

    def on_partial_flush(self) -> None:
        """Partial flushes leave the MDT unchanged (Section 2.2)."""

    def on_full_flush(self) -> None:
        """Full pipeline flush: nothing is in flight, drop everything."""
        for ways in self._sets:
            if ways:
                self.eviction_events += len(ways)
                ways.clear()

    def scrub(self, watermark: int) -> None:
        """Reclaim every dead entry."""
        for ways in self._sets:
            if ways:
                self._scrub_set(ways, watermark)

    # -- introspection -----------------------------------------------------------------

    def occupancy(self) -> int:
        return sum(len(ways) for ways in self._sets)
