"""Value-based retirement replay (Cain & Lipasti) -- paper Section 4.

The related-work comparator the paper argues against: eliminate the load
queue's associative search by *re-executing every load at retirement* and
comparing the value obtained then (architecturally correct, since every
older store has committed) against the value obtained at execution.  A
mismatch means the load consumed stale or misordered data; recovery
flushes everything younger and retires the load with the corrected value.

The store queue and its forwarding CAM remain (forwarding still happens
at execution); only disambiguation moves to retirement.  The scheme's
costs, which the paper's Section 4 highlights for checkpointed
large-window processors, fall out of the model:

* every load pays a second data-cache access at retirement
  (``lsq_retire_replays`` / extra cache traffic);
* an ordering violation is discovered hundreds of instructions late, so
  the recovery flush empties the whole window instead of its tail.

Roth's store vulnerability window and similar filters reduce the
re-execution count; we model the unfiltered scheme the paper's argument
addresses and count every re-execution so the filtering headroom is
visible.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..memory.cache import CacheHierarchy
from ..memory.main_memory import MainMemory
from ..obs.metrics import declare_metric
from ..stats.counters import Counters
from .lsq import LoadStoreQueue, LSQConfig
from .registry import register_subsystem
from .subsystem import DONE, MemorySubsystem, MemOutcome
from .violations import TRUE_DEP, Violation

# -- declared metrics (metadata only; see repro.obs.metrics) -----------------
declare_metric("retire_replay_violations", subsystem="load_replay",
               description="loads whose retirement re-execution disagreed "
                           "with the executed value")


@register_subsystem("load_replay")
class LoadReplaySubsystem(MemorySubsystem):
    """LSQ-style forwarding, disambiguation deferred to retirement."""

    name = "load_replay"

    @classmethod
    def from_config(cls, config, memory, hierarchy, counters):
        return cls(config.lsq, memory, hierarchy, counters)

    def __init__(self, config: LSQConfig, memory: MainMemory,
                 hierarchy: CacheHierarchy, counters: Counters):
        self.config = config
        self.counters = counters
        self.hierarchy = hierarchy
        self.lsq = LoadStoreQueue(config, memory, counters,
                                  detect_at_execute=False)

    # -- dispatch -----------------------------------------------------------

    def can_dispatch_load(self) -> bool:
        return self.lsq.can_dispatch_load()

    def can_dispatch_store(self) -> bool:
        return self.lsq.can_dispatch_store()

    def dispatch_load(self, seq: int, pc: int) -> None:
        self.lsq.dispatch_load(seq, pc)

    def dispatch_store(self, seq: int, pc: int) -> None:
        self.lsq.dispatch_store(seq, pc)

    # -- execution ------------------------------------------------------------

    def execute_load(self, seq: int, pc: int, addr: int, size: int,
                     watermark: int, at_rob_head: bool = False) -> MemOutcome:
        value, forwarded = self.lsq.execute_load(seq, addr, size)
        cache_latency = self.hierarchy.data_latency(addr)
        latency = 1 if forwarded else cache_latency
        return MemOutcome(DONE, value=value, latency=latency)

    def execute_store(self, seq: int, pc: int, addr: int, size: int,
                      data: int, watermark: int,
                      at_rob_head: bool = False) -> MemOutcome:
        # No load-queue search: stores complete without any ordering check.
        self.lsq.execute_store(seq, addr, size, data)
        return MemOutcome(DONE, latency=1)

    # -- retirement -------------------------------------------------------------

    def retire_load(self, seq: int, addr: int, size: int
                    ) -> Tuple[Optional[int], List[Violation]]:
        """Re-execute the load and compare (the scheme's core step)."""
        original, current = self.lsq.reexecute_load(seq)
        # The second access really touches the data cache.
        self.hierarchy.data_latency(addr)
        self.lsq.retire_load(seq)
        if current == original:
            return None, []
        self.counters.incr("retire_replay_violations")
        return current, [Violation(TRUE_DEP, flush_after_seq=seq,
                                   producer_pc=None, consumer_pc=None)]

    def retire_store(self, seq: int, addr: int, size: int,
                     bypassed: bool = False, pc: int = 0
                     ) -> Tuple[int, int, int, List[Violation]]:
        addr, size, data = self.lsq.retire_store(seq)
        return addr, size, data, []

    # -- flush handling -------------------------------------------------------------

    def on_partial_flush(self, flush_after_seq: int,
                         youngest_seq: int = -1) -> None:
        self.lsq.flush_after(flush_after_seq)

    def on_full_flush(self) -> None:
        self.lsq.flush_all()
