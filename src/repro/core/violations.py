"""Memory-ordering violation descriptions shared by the MDT and the LSQ."""

from __future__ import annotations

from typing import Optional

TRUE_DEP = "true"
ANTI_DEP = "anti"
OUTPUT_DEP = "output"


class Violation:
    """One detected memory-ordering violation.

    ``flush_after_seq`` is the recovery point: every in-flight instruction
    with a sequence number strictly greater than it must be squashed.
    ``producer_pc``/``consumer_pc`` identify the instruction pair the
    dependence predictor should link (the earlier instruction is the
    producer, the later one the consumer, as in Section 2.1).
    """

    __slots__ = ("kind", "flush_after_seq", "producer_pc", "consumer_pc")

    def __init__(self, kind: str, flush_after_seq: int,
                 producer_pc: Optional[int], consumer_pc: Optional[int]):
        self.kind = kind
        self.flush_after_seq = flush_after_seq
        self.producer_pc = producer_pc
        self.consumer_pc = consumer_pc

    def __repr__(self) -> str:
        return (f"Violation({self.kind}, flush_after={self.flush_after_seq}, "
                f"producer={self.producer_pc:#x}, "
                f"consumer={self.consumer_pc:#x})"
                if self.producer_pc is not None and
                self.consumer_pc is not None else
                f"Violation({self.kind}, flush_after={self.flush_after_seq})")
