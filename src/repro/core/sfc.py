"""Store Forwarding Cache (SFC) -- Section 2.3 of the paper.

The SFC replaces the store queue's associative forwarding CAM with a small
tagged set-associative cache.  Each line holds the *cumulative* in-flight
value of one aligned 8-byte memory word, a per-byte valid mask, and a
per-byte corruption mask:

* stores write their bytes as they complete (setting valid, clearing
  corrupt);
* loads read with an indexed lookup -- a *full match* (all needed bytes
  valid and clean) forwards, a *partial match* or *corrupt* byte sends the
  load back to the scheduler;
* a partial pipeline flush cannot tell which bytes came from canceled
  stores, so it marks every valid byte corrupt (the paper's corruption
  mechanism);
* a full pipeline flush simply clears the SFC.

An entry is freed when the latest store to its word retires.  Canceled
stores never retire, so their entries are reclaimed by *watermark
scrubbing*: once every in-flight sequence number exceeds an entry's
``last_store_seq``, the entry's writer is certainly retired or canceled and
the entry is dead (see DESIGN.md, "Entry reclamation").

Section 3.2 sketches an alternative to the corruption masks: track the
*flush endpoints* -- the sequence-number window of each partial flush --
plus each byte's writer sequence number, and replay a load only when a
byte it needs was written by a store whose number falls inside a recorded
window (i.e. the byte really came from a canceled store).
``SFCConfig(corruption_mode="endpoints")`` selects that scheme; when the
endpoint buffer overflows it falls back to a blanket corruption marking,
keeping it conservative.

Hot-path notes: line data lives in a plain int (little-endian word value)
rather than a bytearray, byte-select masks come from precomputed tables
indexed ``[offset][nbytes]``, and the overwhelmingly common case of an
access contained in one aligned word takes a fast path that allocates
nothing.  Only accesses that straddle a word boundary walk the general
two-word loop.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..obs.metrics import declare_metric
from ..stats.counters import Counters

# -- declared metrics (metadata only; see repro.obs.metrics) -----------------
for _name, _unit, _desc in (
    ("sfc_load_lookups", "accesses", "loads that probed the SFC"),
    ("sfc_store_writes", "accesses", "stores that wrote the SFC"),
    ("sfc_forwards", "events", "loads fully satisfied from the SFC"),
    ("sfc_set_conflicts", "events",
     "stores that found no SFC way available"),
    ("sfc_corrupt_hits", "events",
     "loads that hit an SFC word marked corrupt"),
    ("sfc_partial_matches", "events",
     "loads that only partially matched SFC bytes"),
    ("sfc_partial_flushes", "events",
     "partial-flush cleanups applied to the SFC"),
    ("sfc_endpoint_overflows", "events",
     "per-word endpoint-list overflows during partial flushes"),
    ("sfc_full_flushes", "events", "full SFC invalidations"),
):
    declare_metric(_name, subsystem="sfc", description=_desc, unit=_unit)

LINE_BYTES = 8
LINE_SHIFT = 3
FULL_MASK = 0xFF

# Load lookup outcomes.
SFC_HIT = "hit"
SFC_MISS = "miss"
SFC_PARTIAL = "partial"
SFC_CORRUPT = "corrupt"


#: Corruption-handling schemes for partial pipeline flushes.
CORRUPTION_MASK = "mask"            # Section 2.3: blanket corruption bits
CORRUPTION_ENDPOINTS = "endpoints"  # Section 3.2: flush-endpoint windows

#: ``_BIT_MASKS[offset][nbytes]`` -- per-byte bit mask selecting ``nbytes``
#: bytes starting at ``offset`` (the hardware's byte-enable vector).
_BIT_MASKS = tuple(
    tuple(((1 << n) - 1) << o for n in range(LINE_BYTES - o + 1))
    for o in range(LINE_BYTES))

#: ``_DATA_MASKS[offset][nbytes]`` -- the same selection widened to data
#: bits, for masking the line's integer word value.
_DATA_MASKS = tuple(
    tuple(((1 << (8 * n)) - 1) << (8 * o)
          for n in range(LINE_BYTES - o + 1))
    for o in range(LINE_BYTES))

#: ``_SIZE_MASKS[size]`` -- low ``size`` bytes of a value.
_SIZE_MASKS = tuple((1 << (8 * n)) - 1 for n in range(LINE_BYTES + 1))


class SFCConfig:
    """Geometry and corruption policy of the store forwarding cache."""

    __slots__ = ("num_sets", "assoc", "corruption_mode",
                 "flush_endpoint_slots")

    def __init__(self, num_sets: int = 128, assoc: int = 2,
                 corruption_mode: str = CORRUPTION_MASK,
                 flush_endpoint_slots: int = 8):
        if num_sets & (num_sets - 1):
            raise ValueError("num_sets must be a power of two")
        if corruption_mode not in (CORRUPTION_MASK, CORRUPTION_ENDPOINTS):
            raise ValueError(
                f"unknown corruption mode {corruption_mode!r}")
        self.num_sets = num_sets
        self.assoc = assoc
        self.corruption_mode = corruption_mode
        #: Number of flush windows tracked before falling back to a
        #: blanket corruption marking ("the performance of this mechanism
        #: would depend on the number of flush endpoints tracked").
        self.flush_endpoint_slots = flush_endpoint_slots

    def to_dict(self) -> dict:
        """Canonical JSON-serializable view (experiment-cache keying)."""
        return {slot: getattr(self, slot) for slot in self.__slots__}

    def __repr__(self) -> str:
        return (f"SFCConfig(num_sets={self.num_sets}, assoc={self.assoc}, "
                f"corruption_mode={self.corruption_mode!r})")


class _SFCEntry:
    __slots__ = ("tag", "data", "valid_mask", "corrupt_mask",
                 "last_store_seq", "writer_seqs")

    def __init__(self, tag: int):
        self.tag = tag                      # aligned word index (addr >> 3)
        self.data = 0                       # little-endian word value
        self.valid_mask = 0
        self.corrupt_mask = 0
        self.last_store_seq = -1
        #: Per-byte writer sequence numbers (endpoints mode only).
        self.writer_seqs: Optional[List[int]] = None


def _byte_mask(offset: int, nbytes: int) -> int:
    """Bit mask selecting ``nbytes`` bytes starting at ``offset``."""
    return ((1 << nbytes) - 1) << offset


def _split_words(addr: int, size: int) -> List[Tuple[int, int, int]]:
    """Split an access into (word_index, offset_in_word, nbytes) pieces."""
    pieces = []
    remaining = size
    while remaining:
        word = addr >> LINE_SHIFT
        offset = addr & (LINE_BYTES - 1)
        nbytes = min(remaining, LINE_BYTES - offset)
        pieces.append((word, offset, nbytes))
        addr += nbytes
        remaining -= nbytes
    return pieces


class StoreForwardingCache:
    """Address-indexed store-to-load forwarding cache."""

    def __init__(self, config: SFCConfig, counters: Optional[Counters] = None):
        self.config = config
        self.counters = counters if counters is not None else Counters()
        self._set_mask = config.num_sets - 1
        self._assoc = config.assoc
        self._sets: List[List[_SFCEntry]] = [
            [] for _ in range(config.num_sets)]
        #: Monotone counter bumped on every entry free; the scheduler's
        #: stall-bit heuristic (Section 2.4.3) watches it.
        self.eviction_events = 0
        self._endpoints_mode = \
            config.corruption_mode == CORRUPTION_ENDPOINTS
        #: Active flush windows [(lo, hi)] in endpoints mode: sequence
        #: numbers of canceled instructions.
        self._flush_windows: List[Tuple[int, int]] = []
        self._c_load_lookups = self.counters.cell("sfc_load_lookups")
        self._c_store_writes = self.counters.cell("sfc_store_writes")
        self._c_forwards = self.counters.cell("sfc_forwards")

    # -- internals ------------------------------------------------------------

    def _find(self, word: int) -> Optional[_SFCEntry]:
        for entry in self._sets[word & self._set_mask]:
            if entry.tag == word:
                return entry
        return None

    def _scrub_set(self, ways: List[_SFCEntry], watermark: int) -> None:
        """Drop dead ways: their last writer retired or was canceled."""
        alive = [e for e in ways if e.last_store_seq >= watermark]
        if len(alive) != len(ways):
            self.eviction_events += len(ways) - len(alive)
            ways[:] = alive

    # -- store path -----------------------------------------------------------

    def probe_store(self, addr: int, size: int, watermark: int) -> bool:
        """Can a store of ``size`` bytes at ``addr`` allocate its entries?

        Scrubs dead ways first; returns False on a set conflict, in which
        case the memory unit replays the store (Section 2.2's structural-
        conflict rule applies to the SFC as well).
        """
        sets = self._sets
        set_mask = self._set_mask
        assoc = self._assoc
        word = addr >> LINE_SHIFT
        last_word = (addr + size - 1) >> LINE_SHIFT
        while True:
            ways = sets[word & set_mask]
            for entry in ways:
                if entry.tag == word:
                    break
            else:
                if len(ways) >= assoc:
                    self._scrub_set(ways, watermark)
                if len(ways) >= assoc:
                    self.counters.incr("sfc_set_conflicts")
                    return False
            if word == last_word:
                return True
            word += 1

    def store_write(self, addr: int, size: int, value: int, seq: int,
                    watermark: int = 0) -> None:
        """Write a completing store's bytes (caller must have probed)."""
        word = addr >> LINE_SHIFT
        offset = addr & (LINE_BYTES - 1)
        data_int = value & _SIZE_MASKS[size] if size <= LINE_BYTES \
            else value & ((1 << (8 * size)) - 1)
        remaining = size
        endpoints = self._endpoints_mode
        while remaining:
            nbytes = LINE_BYTES - offset
            if nbytes > remaining:
                nbytes = remaining
            entry = self._find(word)
            if entry is None:
                entry = _SFCEntry(word)
                self._sets[word & self._set_mask].append(entry)
            elif entry.last_store_seq < watermark:
                # The entry is dead (its writers all retired or were
                # canceled); recycle it rather than inheriting stale
                # valid/corrupt bytes.
                entry.valid_mask = 0
                entry.corrupt_mask = 0
            mask = _BIT_MASKS[offset][nbytes]
            shift = 8 * offset
            entry.data = (entry.data & ~_DATA_MASKS[offset][nbytes]) | \
                ((data_int & _SIZE_MASKS[nbytes]) << shift)
            entry.valid_mask |= mask
            entry.corrupt_mask &= ~mask
            if seq > entry.last_store_seq:
                entry.last_store_seq = seq
            if endpoints:
                writer_seqs = entry.writer_seqs
                if writer_seqs is None:
                    writer_seqs = entry.writer_seqs = [-1] * LINE_BYTES
                for i in range(offset, offset + nbytes):
                    writer_seqs[i] = seq
            data_int >>= 8 * nbytes
            remaining -= nbytes
            word += 1
            offset = 0
        self._c_store_writes.value += 1

    def on_store_retire(self, addr: int, size: int, seq: int) -> None:
        """Free entries whose latest store is the retiring one."""
        sets = self._sets
        set_mask = self._set_mask
        word = addr >> LINE_SHIFT
        last_word = (addr + size - 1) >> LINE_SHIFT
        while True:
            ways = sets[word & set_mask]
            for i, entry in enumerate(ways):
                if entry.tag == word and entry.last_store_seq == seq:
                    del ways[i]
                    self.eviction_events += 1
                    break
            if word == last_word:
                return
            word += 1

    # -- load path ------------------------------------------------------------

    def load_read(self, addr: int, size: int,
                  watermark: int = 0) -> Tuple[str, Optional[int]]:
        """Look up a load.  Returns ``(status, value)``.

        ``SFC_HIT``: every needed byte valid and clean; value forwarded.
        ``SFC_CORRUPT``: some needed byte is corrupt; replay the load.
        ``SFC_PARTIAL``: some but not all needed bytes valid; replay.
        ``SFC_MISS``: no needed byte in flight; read the cache hierarchy.

        Dead entries (last writer older than the watermark, hence retired
        or canceled) are ignored: every retired value is already in memory
        and canceled bytes must not be forwarded.
        """
        self._c_load_lookups.value += 1
        endpoints = self._endpoints_mode
        if endpoints:
            self._prune_windows(watermark)
        word = addr >> LINE_SHIFT
        offset = addr & (LINE_BYTES - 1)
        value = 0
        consumed = 0
        valid_bytes = 0
        remaining = size
        while remaining:
            nbytes = LINE_BYTES - offset
            if nbytes > remaining:
                nbytes = remaining
            entry = self._find(word)
            if entry is not None and entry.last_store_seq >= watermark:
                mask = _BIT_MASKS[offset][nbytes]
                if entry.corrupt_mask & mask:
                    self.counters.incr("sfc_corrupt_hits")
                    return SFC_CORRUPT, None
                have = entry.valid_mask & mask
                if endpoints and have and entry.writer_seqs is not None:
                    writer_seqs = entry.writer_seqs
                    for i in range(offset, offset + nbytes):
                        bit = 1 << i
                        if not have & bit:
                            continue
                        writer = writer_seqs[i]
                        if self._seq_canceled(writer):
                            # The byte came from a canceled store.
                            self.counters.incr("sfc_corrupt_hits")
                            return SFC_CORRUPT, None
                        if writer < watermark:
                            # Writer retired or aged out: the committed
                            # memory state holds the right value.
                            have &= ~bit
                if have == mask:
                    value |= ((entry.data >> (8 * offset)) &
                              _SIZE_MASKS[nbytes]) << (8 * consumed)
                    valid_bytes += nbytes
                elif have:
                    self.counters.incr("sfc_partial_matches")
                    return SFC_PARTIAL, None
            consumed += nbytes
            remaining -= nbytes
            word += 1
            offset = 0
        if valid_bytes == size:
            self._c_forwards.value += 1
            return SFC_HIT, value
        if valid_bytes:
            self.counters.incr("sfc_partial_matches")
            return SFC_PARTIAL, None
        return SFC_MISS, None

    # -- flush handling ---------------------------------------------------------

    def on_partial_flush(self, flush_lo: int = -1,
                         flush_hi: int = -1) -> None:
        """Handle a partial pipeline flush.

        In the default *mask* mode every valid byte is marked corrupt
        (Section 2.3): a partial flush may have canceled completed stores
        whose bytes are indistinguishable from live ones, so all in-flight
        bytes become suspect until overwritten or reclaimed.

        In *endpoints* mode (Section 3.2's alternative) the canceled
        sequence-number window ``[flush_lo, flush_hi]`` is recorded
        instead, and only loads whose bytes were written inside a recorded
        window replay.  If no slot is free (or the window is unknown),
        fall back to the blanket marking, staying conservative.
        """
        self.counters.incr("sfc_partial_flushes")
        if self._endpoints_mode and flush_lo >= 0 and flush_hi >= flush_lo:
            if len(self._flush_windows) < self.config.flush_endpoint_slots:
                self._flush_windows.append((flush_lo, flush_hi))
                return
            self.counters.incr("sfc_endpoint_overflows")
        for ways in self._sets:
            for entry in ways:
                entry.corrupt_mask |= entry.valid_mask

    def _seq_canceled(self, seq: int) -> bool:
        """Is ``seq`` inside a recorded flush window (endpoints mode)?"""
        for lo, hi in self._flush_windows:
            if lo <= seq <= hi:
                return True
        return False

    def _prune_windows(self, watermark: int) -> None:
        """Drop windows whose youngest canceled number has aged out.

        Bytes written inside a dropped window have writer numbers below
        the watermark and are treated as absent by ``load_read``, so
        dropping the window never lets a canceled value leak.
        """
        if self._flush_windows:
            self._flush_windows = [
                (lo, hi) for lo, hi in self._flush_windows
                if hi >= watermark]

    def on_full_flush(self) -> None:
        """Discard everything (full pipeline flush)."""
        self.counters.incr("sfc_full_flushes")
        self._flush_windows.clear()
        for ways in self._sets:
            if ways:
                self.eviction_events += len(ways)
                ways.clear()

    def mark_corrupt(self, addr: int, size: int) -> None:
        """Corrupt-mark one access range (Section 2.4.2 recovery policy)."""
        for word, offset, nbytes in _split_words(addr, size):
            entry = self._find(word)
            if entry is not None:
                entry.corrupt_mask |= _BIT_MASKS[offset][nbytes]

    def scrub(self, watermark: int) -> None:
        """Reclaim every dead entry (used by the stall-bit fallback)."""
        if self._endpoints_mode:
            self._prune_windows(watermark)
        for ways in self._sets:
            if ways:
                self._scrub_set(ways, watermark)

    # -- introspection -----------------------------------------------------------

    def occupancy(self) -> int:
        """Number of live entries (for tests and reports)."""
        return sum(len(ways) for ways in self._sets)
