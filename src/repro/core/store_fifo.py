"""Store FIFO -- in-order, non-associative store retirement buffer.

With the SFC handling forwarding and the MDT handling disambiguation, the
store queue loses its CAM and "becomes a simple FIFO that holds stores for
in-order, non-speculative retirement" (Section 2.3).  A store allocates a
slot at dispatch, fills in its address and data during execution, and
drains its slot to memory at retirement.
"""

from __future__ import annotations

from collections import deque
from typing import Deque


class _FifoSlot:
    __slots__ = ("seq", "addr", "size", "data", "filled")

    def __init__(self, seq: int):
        self.seq = seq
        self.addr = 0
        self.size = 0
        self.data = 0
        self.filled = False


class StoreFifo:
    """Bounded FIFO of in-flight stores, ordered by sequence number."""

    def __init__(self, capacity: int = 256):
        self.capacity = capacity
        self._slots: Deque[_FifoSlot] = deque()
        self._by_seq = {}

    def __len__(self) -> int:
        return len(self._slots)

    @property
    def full(self) -> bool:
        return len(self._slots) >= self.capacity

    def dispatch(self, seq: int) -> bool:
        """Allocate a slot at dispatch; False when the FIFO is full."""
        if self.full:
            return False
        slot = _FifoSlot(seq)
        self._slots.append(slot)
        self._by_seq[seq] = slot
        return True

    def fill(self, seq: int, addr: int, size: int, data: int) -> None:
        """Record the executing store's address and data."""
        slot = self._by_seq[seq]
        slot.addr = addr
        slot.size = size
        slot.data = data
        slot.filled = True

    def retire(self, seq: int) -> _FifoSlot:
        """Pop the head slot; it must belong to the retiring store.

        Never returns ``None``: a head mismatch (or empty FIFO) raises,
        so callers use the slot unconditionally.
        """
        if not self._slots or self._slots[0].seq != seq:
            raise RuntimeError(
                f"store FIFO head mismatch: expected {seq}, "
                f"head={self._slots[0].seq if self._slots else None}")
        slot = self._slots.popleft()
        del self._by_seq[seq]
        return slot

    def flush_after(self, seq: int) -> int:
        """Squash every store younger than ``seq``; returns count removed."""
        removed = 0
        while self._slots and self._slots[-1].seq > seq:
            slot = self._slots.pop()
            del self._by_seq[slot.seq]
            removed += 1
        return removed

    def flush_all(self) -> None:
        self._slots.clear()
        self._by_seq.clear()
