"""Memory dependence prediction -- Section 2.1 of the paper.

The *producer-set predictor* generalises the Chrysos/Emer store-set
predictor.  It keeps:

* a PC-indexed **producer table** (PT) and **consumer table** (CT) holding
  producer-set ids (in place of the store-set id table), and
* a **last-fetched producer table** (LFPT) holding, per producer set, the
  dependence tag produced by the set's most recently fetched producer.

When the MDT (or LSQ) reports a violation, the predictor places the earlier
instruction (producer) and the later instruction (consumer) in the same
producer set, using the store-set merge rules.  At dispatch, an instruction
whose PC hits in the PT allocates a fresh dependence tag and publishes it in
the LFPT; an instruction whose PC hits in the CT reads the LFPT and must not
issue until that tag is ready.  The scheduler tracks tag readiness exactly
like physical-register readiness (:class:`DependenceTagFile`).

Enforcement modes (Section 3):

* ``ENF`` -- insert predicted dependences for true, anti, and output
  violations.
* ``NOT_ENF`` -- insert only for true violations.
* ``TOTAL`` -- the aggressive-processor variant: every instruction involved
  in any violation becomes both producer and consumer, which totally orders
  the loads and stores of a producer set in fetch order.
* ``LSQ`` -- the conventional store-set behaviour used with the LSQ
  baseline: true violations only, and stores never consume tags (no
  store-store serialisation, since the silent-store-aware LSQ never flags
  output violations).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..obs.metrics import declare_metric
from ..stats.counters import Counters
from .violations import TRUE_DEP

# -- declared metrics (metadata only; see repro.obs.metrics) -----------------
for _name, _desc in (
    ("pred_consumes", "accesses that waited on a predicted producer set"),
    ("pred_produces", "accesses that allocated a producer tag"),
    ("pred_trainings", "violation-driven dependence-predictor updates"),
):
    declare_metric(_name, subsystem="predictor", description=_desc)

ENF = "ENF"
NOT_ENF = "NOT_ENF"
TOTAL = "TOTAL"
LSQ_MODE = "LSQ"

_MODES = (ENF, NOT_ENF, TOTAL, LSQ_MODE)


class PredictorConfig:
    """Sizes (paper Figure 4) and enforcement mode of the predictor."""

    __slots__ = ("pt_entries", "ct_entries", "num_ids", "lfpt_entries",
                 "mode")

    def __init__(self, pt_entries: int = 16384, ct_entries: int = 16384,
                 num_ids: int = 4096, lfpt_entries: int = 512,
                 mode: str = ENF):
        if mode not in _MODES:
            raise ValueError(f"unknown predictor mode {mode!r}")
        self.pt_entries = pt_entries
        self.ct_entries = ct_entries
        self.num_ids = num_ids
        self.lfpt_entries = lfpt_entries
        self.mode = mode

    def to_dict(self) -> dict:
        """Canonical JSON-serializable view (experiment-cache keying)."""
        return {slot: getattr(self, slot) for slot in self.__slots__}

    def __repr__(self) -> str:
        return f"PredictorConfig(mode={self.mode})"


class DependenceTagFile:
    """Scheduler-side readiness tracking for dependence tags.

    Tags behave like physical registers: allocated at dispatch by
    predicted producers, marked ready when the producer *successfully
    completes* (the paper's idealised scheduler "oracularly avoids
    awakening predicted consumers of loads and stores that will be
    replayed"), and force-readied when the producer is squashed so that
    later consumers never wait on a dead tag.
    """

    def __init__(self):
        self._next_tag = 0
        self._ready: Dict[int, bool] = {}

    def allocate(self) -> int:
        tag = self._next_tag
        self._next_tag += 1
        self._ready[tag] = False
        return tag

    def is_ready(self, tag: int) -> bool:
        # Tags drop out of the map once released; a missing tag is stale
        # and must not block anyone.
        return self._ready.get(tag, True)

    def mark_ready(self, tag: int) -> None:
        if tag in self._ready:
            self._ready[tag] = True

    def release(self, tag: int) -> None:
        self._ready.pop(tag, None)


class ProducerSetPredictor:
    """PC-indexed producer/consumer tables + last-fetched producer table."""

    def __init__(self, config: PredictorConfig,
                 counters: Optional[Counters] = None):
        self.config = config
        self.counters = counters if counters is not None else Counters()
        self._pt: List[int] = [-1] * config.pt_entries   # -1 == invalid
        self._ct: List[int] = [-1] * config.ct_entries
        self._lfpt: List[Optional[int]] = [None] * config.lfpt_entries
        self._next_id = 0

    # -- indexing helpers ---------------------------------------------------------

    def _pt_index(self, pc: int) -> int:
        return (pc >> 2) % self.config.pt_entries

    def _ct_index(self, pc: int) -> int:
        return (pc >> 2) % self.config.ct_entries

    def _lfpt_index(self, set_id: int) -> int:
        return set_id % self.config.lfpt_entries

    def _allocate_id(self) -> int:
        set_id = self._next_id
        self._next_id = (self._next_id + 1) % self.config.num_ids
        return set_id

    # -- dispatch ------------------------------------------------------------------

    def on_dispatch(self, pc: int, is_store: bool,
                    tag_file: DependenceTagFile
                    ) -> Tuple[Optional[int], Optional[int]]:
        """Called for each load/store entering the pipeline.

        Returns ``(consumed_tag, produced_tag)``.  Consumption is resolved
        *before* production so that an instruction that is both producer
        and consumer (TOTAL mode) chains onto the previous producer
        rather than onto itself.
        """
        consumed: Optional[int] = None
        cid = self._ct[self._ct_index(pc)]
        if cid >= 0:
            if self.config.mode == LSQ_MODE and is_store:
                # Conventional-store-set exception: no store-store
                # serialisation with the silent-store-aware LSQ.
                pass
            else:
                consumed = self._lfpt[self._lfpt_index(cid)]
                if consumed is not None:
                    self.counters.incr("pred_consumes")

        produced: Optional[int] = None
        pid = self._pt[self._pt_index(pc)]
        if pid >= 0:
            produced = tag_file.allocate()
            self._lfpt[self._lfpt_index(pid)] = produced
            self.counters.incr("pred_produces")
        return consumed, produced

    # -- training --------------------------------------------------------------------

    def _assign(self, table: List[int], index: int, set_id: int) -> None:
        table[index] = set_id

    def on_violation(self, kind: str, producer_pc: Optional[int],
                     consumer_pc: Optional[int]) -> None:
        """Train on a violation reported by the MDT or the LSQ."""
        if producer_pc is None or consumer_pc is None:
            return
        mode = self.config.mode
        if mode in (NOT_ENF, LSQ_MODE) and kind != TRUE_DEP:
            return
        self.counters.incr("pred_trainings")

        pt_index = self._pt_index(producer_pc)
        ct_index = self._ct_index(consumer_pc)
        pid = self._pt[pt_index]
        cid = self._ct[ct_index]
        if pid < 0 and cid < 0:
            set_id = self._allocate_id()
        elif pid < 0:
            set_id = cid
        elif cid < 0:
            set_id = pid
        else:
            # Merge rule: the smaller id wins (store-set convention).
            set_id = min(pid, cid)
        self._assign(self._pt, pt_index, set_id)
        self._assign(self._ct, ct_index, set_id)

        if mode == TOTAL:
            # Any instruction involved in a violation becomes both
            # producer and consumer, totally ordering the set.
            self._assign(self._ct, self._ct_index(producer_pc), set_id)
            self._assign(self._pt, self._pt_index(consumer_pc), set_id)

    # -- introspection ------------------------------------------------------------------

    def producer_set_of(self, pc: int) -> Tuple[int, int]:
        """(producer id, consumer id) trained for a PC; -1 when absent."""
        return (self._pt[self._pt_index(pc)], self._ct[self._ct_index(pc)])
