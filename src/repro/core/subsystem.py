"""Memory subsystems: the LSQ baseline and the paper's SFC/MDT design.

Both implementations sit behind :class:`MemorySubsystem`, the interface the
pipeline's memory unit drives.  Loads and stores call ``execute_*`` when
they issue (speculatively, out of order); the subsystem returns a
:class:`MemOutcome` saying whether the access completed (and with what
value/latency), must be *replayed* (structural conflict, SFC corruption or
partial match), or detected ordering violations that force a recovery
flush.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..memory.cache import CacheHierarchy
from ..memory.main_memory import MainMemory
from ..obs.metrics import declare_metric
from ..stats.counters import Counters
from .lsq import LoadStoreQueue, LSQConfig
from .registry import register_subsystem
from .mdt import MDT_CONFLICT, MDTConfig, MemoryDisambiguationTable
from .sfc import (
    SFC_CORRUPT,
    SFC_HIT,
    SFC_PARTIAL,
    SFCConfig,
    StoreForwardingCache,
)
from .store_fifo import StoreFifo
from .violations import OUTPUT_DEP, Violation

DONE = "done"
REPLAY = "replay"

# -- declared metrics (metadata only; see repro.obs.metrics) -----------------
for _name, _desc in (
    ("rob_head_bypasses", "accesses that bypassed the MDT/SFC from the "
                          "ROB head (Section 2.2)"),
    ("load_replays_mdt_conflict", "load replays due to MDT set conflicts"),
    ("load_replays_sfc_corrupt", "load replays due to SFC corruption"),
    ("load_replays_sfc_partial", "load replays due to SFC partial "
                                 "matches"),
    ("store_replays_sfc_conflict", "store replays due to SFC set "
                                   "conflicts"),
    ("store_replays_mdt_conflict", "store replays due to MDT set "
                                   "conflicts"),
    ("output_violations_corrupt_marked",
     "output violations recovered by corrupt-marking (Section 2.4.2)"),
):
    declare_metric(_name, subsystem="sfc_mdt", description=_desc)

#: Section 2.4.2 output-violation recovery policies.
OUTPUT_RECOVERY_FLUSH = "flush"
OUTPUT_RECOVERY_CORRUPT = "corrupt"


class MemOutcome:
    """Result of issuing one load or store to the memory subsystem.

    ``status``: ``DONE`` (access completed; ``latency`` cycles until the
    value is available) or ``REPLAY`` (drop the instruction back onto the
    scheduler's ready list with its stall bit set).

    ``violations``: ordering violations that require a recovery flush.
    ``train_only``: violations handled without a flush (e.g. the
    corrupt-marking output recovery) that should still train the
    dependence predictor.

    Empty violation sequences default to a shared immutable tuple, so
    violation-free outcomes can themselves be shared (see the module's
    ``_REPLAY_*`` singletons); callers must not mutate them in place.
    """

    __slots__ = ("status", "value", "latency", "violations", "train_only",
                 "replay_reason")

    def __init__(self, status: str, value: Optional[int] = None,
                 latency: int = 1,
                 violations: Optional[Sequence[Violation]] = None,
                 train_only: Optional[Sequence[Violation]] = None,
                 replay_reason: str = ""):
        self.status = status
        self.value = value
        self.latency = latency
        self.violations = violations or ()
        self.train_only = train_only or ()
        self.replay_reason = replay_reason


#: Interned replay outcomes -- every field is identical per replay cause,
#: so the execute paths hand back a shared instance instead of allocating.
_REPLAY_MDT_CONFLICT = MemOutcome(REPLAY, replay_reason="mdt_conflict")
_REPLAY_SFC_CONFLICT = MemOutcome(REPLAY, replay_reason="sfc_conflict")
_REPLAY_SFC_CORRUPT = MemOutcome(REPLAY, replay_reason="sfc_corrupt")
_REPLAY_SFC_PARTIAL = MemOutcome(REPLAY, replay_reason="sfc_partial")


class MemorySubsystem:
    """Interface between the pipeline's memory unit and the structures
    under study.  See :class:`LSQSubsystem` and :class:`SfcMdtSubsystem`."""

    name = "abstract"
    #: Extra pipeline-flush penalty in cycles charged on an ordering
    #: violation (the paper charges +1 for the MDT's tag check).
    violation_extra_penalty = 0

    @classmethod
    def from_config(cls, config, memory: MainMemory,
                    hierarchy: CacheHierarchy, counters: Counters
                    ) -> "MemorySubsystem":
        """Build this subsystem from a full ``ProcessorConfig``.

        The registry (:mod:`repro.core.registry`) calls this; subclasses
        override it to pick their knobs out of ``config``.
        """
        raise NotImplementedError

    def can_dispatch_load(self) -> bool:
        raise NotImplementedError

    def can_dispatch_store(self) -> bool:
        raise NotImplementedError

    def dispatch_load(self, seq: int, pc: int) -> None:
        raise NotImplementedError

    def dispatch_store(self, seq: int, pc: int) -> None:
        raise NotImplementedError

    def execute_load(self, seq: int, pc: int, addr: int, size: int,
                     watermark: int, at_rob_head: bool = False) -> MemOutcome:
        raise NotImplementedError

    def execute_store(self, seq: int, pc: int, addr: int, size: int,
                      data: int, watermark: int,
                      at_rob_head: bool = False) -> MemOutcome:
        raise NotImplementedError

    def retire_load(self, seq: int, addr: int, size: int
                    ) -> Tuple[Optional[int], List[Violation]]:
        """Retire one load.

        Returns ``(corrected_value, violations)``: both empty for
        schemes that disambiguate at execution; the value-based
        retirement-replay scheme may return a corrected load value and a
        recovery flush.
        """
        raise NotImplementedError

    def retire_store(self, seq: int, addr: int, size: int,
                     bypassed: bool = False, pc: int = 0
                     ) -> Tuple[int, int, int, List[Violation]]:
        """Retire one store.

        Returns ``(addr, size, data, violations)``: the memory commit and
        any ordering violations detected at retirement (only possible for
        stores that executed through the ROB-head bypass and therefore
        skipped the MDT at execute).
        """
        raise NotImplementedError

    def on_partial_flush(self, flush_after_seq: int,
                         youngest_seq: int = -1) -> None:
        """A partial flush squashed sequence numbers in
        ``(flush_after_seq, youngest_seq]``."""
        raise NotImplementedError

    def on_full_flush(self) -> None:
        raise NotImplementedError

    def scrub(self, watermark: int) -> None:
        """Reclaim dead entries; default no-op."""

    @property
    def eviction_events(self) -> int:
        """Monotone count of entry evictions (stall-bit heuristic)."""
        return 0


@register_subsystem("lsq")
class LSQSubsystem(MemorySubsystem):
    """The conventional (idealized) load/store queue."""

    name = "lsq"

    @classmethod
    def from_config(cls, config, memory, hierarchy, counters):
        return cls(config.lsq, memory, hierarchy, counters)

    def __init__(self, config: LSQConfig, memory: MainMemory,
                 hierarchy: CacheHierarchy, counters: Counters):
        self.config = config
        self.counters = counters
        self.hierarchy = hierarchy
        self.lsq = LoadStoreQueue(config, memory, counters)

    def can_dispatch_load(self) -> bool:
        return self.lsq.can_dispatch_load()

    def can_dispatch_store(self) -> bool:
        return self.lsq.can_dispatch_store()

    def dispatch_load(self, seq: int, pc: int) -> None:
        self.lsq.dispatch_load(seq, pc)

    def dispatch_store(self, seq: int, pc: int) -> None:
        self.lsq.dispatch_store(seq, pc)

    def execute_load(self, seq: int, pc: int, addr: int, size: int,
                     watermark: int, at_rob_head: bool = False) -> MemOutcome:
        value, forwarded = self.lsq.execute_load(seq, addr, size)
        cache_latency = self.hierarchy.data_latency(addr)
        # Idealized single-cycle bypass when the value came entirely from
        # in-flight stores; otherwise the cache access time governs.
        latency = 1 if forwarded else cache_latency
        return MemOutcome(DONE, value=value, latency=latency)

    def execute_store(self, seq: int, pc: int, addr: int, size: int,
                      data: int, watermark: int,
                      at_rob_head: bool = False) -> MemOutcome:
        violations = self.lsq.execute_store(seq, addr, size, data)
        return MemOutcome(DONE, latency=1, violations=violations)

    def retire_load(self, seq: int, addr: int, size: int
                    ) -> Tuple[Optional[int], List[Violation]]:
        self.lsq.retire_load(seq)
        return None, []

    def retire_store(self, seq: int, addr: int, size: int,
                     bypassed: bool = False, pc: int = 0
                     ) -> Tuple[int, int, int, List[Violation]]:
        addr, size, data = self.lsq.retire_store(seq)
        return addr, size, data, []

    def on_partial_flush(self, flush_after_seq: int,
                         youngest_seq: int = -1) -> None:
        self.lsq.flush_after(flush_after_seq)

    def on_full_flush(self) -> None:
        self.lsq.flush_all()


@register_subsystem("sfc_mdt")
class SfcMdtSubsystem(MemorySubsystem):
    """The paper's design: SFC + MDT + store FIFO (Section 2)."""

    name = "sfc_mdt"
    # "To model the tag check in the MDT, we increase the penalty for
    # memory ordering violations by one cycle" (Section 3).
    violation_extra_penalty = 1
    # "To model the tag check in the SFC, we increase the latency of store
    # instructions by one cycle."
    store_tag_check_latency = 1

    @classmethod
    def from_config(cls, config, memory, hierarchy, counters):
        return cls(config.sfc, config.mdt, memory, hierarchy, counters,
                   store_fifo_capacity=config.store_fifo_capacity,
                   output_recovery=config.output_recovery)

    def __init__(self, sfc_config: SFCConfig, mdt_config: MDTConfig,
                 memory: MainMemory, hierarchy: CacheHierarchy,
                 counters: Counters, store_fifo_capacity: int = 256,
                 output_recovery: str = OUTPUT_RECOVERY_FLUSH):
        if output_recovery not in (OUTPUT_RECOVERY_FLUSH,
                                   OUTPUT_RECOVERY_CORRUPT):
            raise ValueError(f"unknown output recovery {output_recovery!r}")
        self.counters = counters
        self.memory = memory
        self.hierarchy = hierarchy
        self.sfc = StoreForwardingCache(sfc_config, counters)
        self.mdt = MemoryDisambiguationTable(mdt_config, counters)
        self.store_fifo = StoreFifo(store_fifo_capacity)
        self.output_recovery = output_recovery

    # -- dispatch -------------------------------------------------------------

    def can_dispatch_load(self) -> bool:
        # The SFC/MDT design eliminates the load queue entirely; loads
        # never stall dispatch for memory-subsystem capacity.
        return True

    def can_dispatch_store(self) -> bool:
        return not self.store_fifo.full

    def dispatch_load(self, seq: int, pc: int) -> None:
        pass

    def dispatch_store(self, seq: int, pc: int) -> None:
        self.store_fifo.dispatch(seq)

    # -- execution --------------------------------------------------------------

    def execute_load(self, seq: int, pc: int, addr: int, size: int,
                     watermark: int, at_rob_head: bool = False) -> MemOutcome:
        # The cache is only touched by accesses that complete: a replayed
        # load must not warm the hierarchy, or the replay would act as a
        # free prefetch and turn the MDT/SFC conflict *penalty* into a
        # speedup relative to the never-replaying LSQ.
        if at_rob_head:
            # ROB-lockup avoidance (Section 2.2): the instruction at the
            # head of the ROB may bypass the MDT and SFC and read the
            # cache-memory hierarchy directly.
            self.counters.incr("rob_head_bypasses")
            value = self.memory.read_int(addr, size)
            return MemOutcome(DONE, value=value,
                              latency=self.hierarchy.data_latency(addr))

        result = self.mdt.access_load(addr, size, seq, pc, watermark)
        if result.status == MDT_CONFLICT:
            self.counters.incr("load_replays_mdt_conflict")
            return _REPLAY_MDT_CONFLICT
        if result.violations:
            # Anti violation: the load itself is squashed by the flush,
            # so no value is produced.
            return MemOutcome(DONE, violations=result.violations)

        status, value = self.sfc.load_read(addr, size, watermark)
        if status == SFC_HIT:
            # Accessed in parallel with the L1 (stats + fill), but the
            # forwarded value is available with single-cycle latency.
            self.hierarchy.data_latency(addr)
            return MemOutcome(DONE, value=value, latency=1)
        if status == SFC_CORRUPT:
            self.counters.incr("load_replays_sfc_corrupt")
            return _REPLAY_SFC_CORRUPT
        if status == SFC_PARTIAL:
            self.counters.incr("load_replays_sfc_partial")
            return _REPLAY_SFC_PARTIAL
        value = self.memory.read_int(addr, size)
        return MemOutcome(DONE, value=value,
                          latency=self.hierarchy.data_latency(addr))

    def execute_store(self, seq: int, pc: int, addr: int, size: int,
                      data: int, watermark: int,
                      at_rob_head: bool = False) -> MemOutcome:
        latency = 1 + self.store_tag_check_latency
        if at_rob_head:
            self.counters.incr("rob_head_bypasses")
            self.store_fifo.fill(seq, addr, size, data)
            return MemOutcome(DONE, latency=1)

        if not self.sfc.probe_store(addr, size, watermark):
            self.counters.incr("store_replays_sfc_conflict")
            return _REPLAY_SFC_CONFLICT

        result = self.mdt.access_store(addr, size, seq, pc, watermark)
        if result.status == MDT_CONFLICT:
            self.counters.incr("store_replays_mdt_conflict")
            return _REPLAY_MDT_CONFLICT

        flush_violations: List[Violation] = []
        train_only: List[Violation] = []
        for violation in result.violations:
            if violation.kind == OUTPUT_DEP and \
                    self.output_recovery == OUTPUT_RECOVERY_CORRUPT:
                # Section 2.4.2: rather than flushing, poison the SFC
                # range so any consumer load replays, and still train the
                # predictor on the store-store pair.
                self.counters.incr("output_violations_corrupt_marked")
                train_only.append(violation)
            else:
                flush_violations.append(violation)

        if train_only and not flush_violations:
            # Corrupt-marking recovery: the SFC word holds a *younger*
            # store's value which must not be overwritten out of order;
            # leave the data alone and poison the range instead.
            self.sfc.mark_corrupt(addr, size)
        else:
            # With flush recovery every younger instruction is squashed,
            # so this store's value is the latest architectural value for
            # its bytes and it writes the SFC normally.
            self.sfc.store_write(addr, size, data, seq, watermark)
        self.store_fifo.fill(seq, addr, size, data)
        return MemOutcome(DONE, latency=latency,
                          violations=flush_violations,
                          train_only=train_only)

    # -- retirement ----------------------------------------------------------------

    def retire_load(self, seq: int, addr: int, size: int
                    ) -> Tuple[Optional[int], List[Violation]]:
        self.mdt.on_load_retire(addr, size, seq)
        return None, []

    def retire_store(self, seq: int, addr: int, size: int,
                     bypassed: bool = False, pc: int = 0
                     ) -> Tuple[int, int, int, List[Violation]]:
        slot = self.store_fifo.retire(seq)
        violations: List[Violation] = []
        if bypassed:
            # The store skipped the MDT at execute (ROB-head bypass); any
            # younger load that completed with a stale value is recorded
            # in the MDT, so a check-only scan at retirement catches it.
            violations = self.mdt.check_store(slot.addr, slot.size, seq,
                                              pc=pc)
        self.sfc.on_store_retire(slot.addr, slot.size, seq)
        self.mdt.on_store_retire(slot.addr, slot.size, seq)
        return slot.addr, slot.size, slot.data, violations

    # -- flush handling ---------------------------------------------------------------

    def on_partial_flush(self, flush_after_seq: int,
                         youngest_seq: int = -1) -> None:
        self.store_fifo.flush_after(flush_after_seq)
        self.sfc.on_partial_flush(flush_after_seq + 1, youngest_seq)
        self.mdt.on_partial_flush(flush_after_seq)

    def on_full_flush(self) -> None:
        self.store_fifo.flush_all()
        self.sfc.on_full_flush()
        self.mdt.on_full_flush()

    def scrub(self, watermark: int) -> None:
        self.sfc.scrub(watermark)
        self.mdt.scrub(watermark)

    @property
    def eviction_events(self) -> int:
        return self.sfc.eviction_events + self.mdt.eviction_events
