"""Idealized load/store queue -- the paper's baseline (Section 3).

The comparison LSQ is deliberately generous: infinite ports, infinite
search bandwidth, single-cycle bypass, byte-accurate forwarding assembled
from any number of older in-flight stores, and value-based ordering
checks so that silent stores are never flagged as violations.  Dependence
violations recover aggressively by flushing from the *earliest conflicting
load* (Section 2.4's description of LSQ recovery).

Every load executing searches the store queue associatively
(age-prioritized, byte-granular) and every store executing searches the
load queue; the number of entries examined is tracked so the energy model
can charge CAM-search costs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..memory.main_memory import MainMemory
from ..obs.metrics import declare_metric
from ..stats.counters import Counters
from .violations import TRUE_DEP, Violation

# -- declared metrics (metadata only; see repro.obs.metrics) -----------------
for _name, _unit, _desc in (
    ("lsq_load_searches", "accesses",
     "loads that CAM-searched the store queue"),
    ("lsq_store_searches", "accesses",
     "stores that CAM-searched the load queue"),
    ("lsq_sq_entries_searched", "entries",
     "store-queue entries examined by load searches"),
    ("lsq_lq_entries_searched", "entries",
     "load-queue entries examined by store searches"),
    ("lsq_full_forwards", "events",
     "loads fully forwarded from the store queue"),
    ("lsq_true_violations", "events",
     "premature loads caught by the store's load-queue search"),
    ("lsq_retire_replays", "events",
     "loads re-executed at retirement (value-based replay)"),
):
    declare_metric(_name, subsystem="lsq", description=_desc, unit=_unit)


class LSQConfig:
    """Load-queue and store-queue capacities (e.g. 48x32, 120x80)."""

    __slots__ = ("lq_size", "sq_size")

    def __init__(self, lq_size: int = 48, sq_size: int = 32):
        self.lq_size = lq_size
        self.sq_size = sq_size

    def to_dict(self) -> dict:
        """Canonical JSON-serializable view (experiment-cache keying)."""
        return {slot: getattr(self, slot) for slot in self.__slots__}

    def __repr__(self) -> str:
        return f"LSQConfig({self.lq_size}x{self.sq_size})"


class _LoadEntry:
    __slots__ = ("seq", "pc", "addr", "size", "value", "completed")

    def __init__(self, seq: int):
        self.seq = seq
        self.pc = 0
        self.addr = 0
        self.size = 0
        self.value = 0
        self.completed = False


class _StoreEntry:
    __slots__ = ("seq", "pc", "addr", "size", "data", "completed")

    def __init__(self, seq: int):
        self.seq = seq
        self.pc = 0
        self.addr = 0
        self.size = 0
        self.data = 0
        self.completed = False


class LoadStoreQueue:
    """The conventional (idealized) LSQ."""

    def __init__(self, config: LSQConfig, memory: MainMemory,
                 counters: Optional[Counters] = None,
                 detect_at_execute: bool = True):
        self.config = config
        self.memory = memory
        self.counters = counters if counters is not None else Counters()
        #: When False, executing stores skip the load-queue violation
        #: search (used by the value-based retirement-replay scheme,
        #: which disambiguates at retirement instead).
        self.detect_at_execute = detect_at_execute
        self._loads: List[_LoadEntry] = []    # program (sequence) order
        self._stores: List[_StoreEntry] = []
        self._load_by_seq: Dict[int, _LoadEntry] = {}
        self._store_by_seq: Dict[int, _StoreEntry] = {}

    # -- dispatch -----------------------------------------------------------------

    def can_dispatch_load(self) -> bool:
        return len(self._loads) < self.config.lq_size

    def can_dispatch_store(self) -> bool:
        return len(self._stores) < self.config.sq_size

    def dispatch_load(self, seq: int, pc: int) -> None:
        entry = _LoadEntry(seq)
        entry.pc = pc
        self._loads.append(entry)
        self._load_by_seq[seq] = entry

    def dispatch_store(self, seq: int, pc: int) -> None:
        entry = _StoreEntry(seq)
        entry.pc = pc
        self._stores.append(entry)
        self._store_by_seq[seq] = entry

    # -- execution ------------------------------------------------------------------

    def _forwarded_value(self, seq: int, addr: int,
                         size: int) -> Tuple[int, bool]:
        """Assemble a load's bytes from older completed stores + memory.

        Byte-accurate, age-prioritized: for each byte the youngest older
        store wins; uncovered bytes come from architectural memory.  This
        is the idealized CAM search whose cost the SFC eliminates.
        Returns ``(value, fully_forwarded)``.
        """
        remaining = (1 << size) - 1          # bit per byte still needed
        collected = bytearray(self.memory.read_bytes(addr, size))
        searched = 0
        for store in reversed(self._stores):
            if not remaining:
                break
            if store.seq >= seq:
                continue
            searched += 1
            if not store.completed:
                continue
            overlap_lo = max(addr, store.addr)
            overlap_hi = min(addr + size, store.addr + store.size)
            if overlap_lo >= overlap_hi:
                continue
            data_bytes = store.data.to_bytes(store.size, "little")
            for byte_addr in range(overlap_lo, overlap_hi):
                bit = 1 << (byte_addr - addr)
                if remaining & bit:
                    collected[byte_addr - addr] = \
                        data_bytes[byte_addr - store.addr]
                    remaining &= ~bit
        self.counters.incr("lsq_sq_entries_searched", searched)
        return int.from_bytes(collected, "little"), remaining == 0

    def execute_load(self, seq: int, addr: int, size: int) -> Tuple[int, bool]:
        """A load executes: associative SQ search + memory fill.

        Returns ``(value, fully_forwarded)``; a fully forwarded load
        completes with the LSQ's single-cycle bypass latency.
        """
        self.counters.incr("lsq_load_searches")
        entry = self._load_by_seq[seq]
        entry.addr = addr
        entry.size = size
        entry.value, forwarded = self._forwarded_value(seq, addr, size)
        entry.completed = True
        if forwarded:
            self.counters.incr("lsq_full_forwards")
        return entry.value, forwarded

    def execute_store(self, seq: int, addr: int, size: int,
                      data: int) -> List[Violation]:
        """A store executes: record it, then search the LQ for younger
        completed loads whose value the new store changes.

        The value re-check makes the detection silent-store-aware: if the
        younger load's bytes are unchanged by this store, no violation is
        flagged (Section 2.1 / Onder & Gupta's observation).
        Recovery flushes from the earliest conflicting load.
        """
        entry = self._store_by_seq[seq]
        entry.addr = addr
        entry.size = size
        entry.data = data
        entry.completed = True
        if not self.detect_at_execute:
            return []
        self.counters.incr("lsq_store_searches")

        earliest: Optional[_LoadEntry] = None
        searched = 0
        for load in self._loads:
            if load.seq <= seq or not load.completed:
                continue
            searched += 1
            if load.addr + load.size <= addr or \
                    addr + size <= load.addr:
                continue
            correct, _ = self._forwarded_value(load.seq, load.addr,
                                               load.size)
            if correct != load.value:
                if earliest is None or load.seq < earliest.seq:
                    earliest = load
        self.counters.incr("lsq_lq_entries_searched", searched)
        if earliest is None:
            return []
        self.counters.incr("lsq_true_violations")
        return [Violation(TRUE_DEP, flush_after_seq=earliest.seq - 1,
                          producer_pc=entry.pc, consumer_pc=earliest.pc)]

    def reexecute_load(self, seq: int) -> Tuple[int, int]:
        """Value-based replay (Cain & Lipasti): recompute the load's value
        at retirement and return ``(original, current)``.

        At retirement every older store has committed, so the recomputed
        value is architecturally correct; a mismatch means the original
        execution consumed stale or misordered data.
        """
        self.counters.incr("lsq_retire_replays")
        entry = self._load_by_seq[seq]
        current, _ = self._forwarded_value(seq, entry.addr, entry.size)
        return entry.value, current

    # -- retirement -------------------------------------------------------------------

    def retire_load(self, seq: int) -> None:
        entry = self._load_by_seq.pop(seq, None)
        if entry is not None:
            self._loads.remove(entry)

    def retire_store(self, seq: int) -> Tuple[int, int, int]:
        """Pop the retiring store; returns (addr, size, data) to commit."""
        entry = self._store_by_seq.pop(seq)
        self._stores.remove(entry)
        return entry.addr, entry.size, entry.data

    # -- flush ------------------------------------------------------------------------

    def flush_after(self, seq: int) -> None:
        """Discard every entry younger than ``seq`` (tail-pointer reset)."""
        while self._loads and self._loads[-1].seq > seq:
            dead = self._loads.pop()
            del self._load_by_seq[dead.seq]
        while self._stores and self._stores[-1].seq > seq:
            dead = self._stores.pop()
            del self._store_by_seq[dead.seq]

    def flush_all(self) -> None:
        self._loads.clear()
        self._stores.clear()
        self._load_by_seq.clear()
        self._store_by_seq.clear()

    # -- introspection ------------------------------------------------------------------

    @property
    def load_occupancy(self) -> int:
        return len(self._loads)

    @property
    def store_occupancy(self) -> int:
        return len(self._stores)
