"""Pluggable memory-subsystem registry.

Subsystem implementations register themselves under a short name with the
:func:`register_subsystem` decorator; the configuration layer validates
names and the pipeline constructs subsystems exclusively through this
module, so adding a new design (a speculative-allocation LSQ, a hybrid
SFC variant, ...) needs no edits to either layer::

    from repro.core.registry import register_subsystem

    @register_subsystem("my_design")
    class MySubsystem(MemorySubsystem):
        @classmethod
        def from_config(cls, config, memory, hierarchy, counters):
            return cls(...)

A registered object may be either a class exposing a
``from_config(config, memory, hierarchy, counters)`` classmethod (the
built-in subsystems) or a bare factory callable with that signature;
``config`` is the full :class:`~repro.pipeline.config.ProcessorConfig`,
from which the factory picks the knobs it cares about.

The built-in subsystems live in :mod:`repro.core.subsystem` and
:mod:`repro.core.load_replay`; those modules are imported lazily on first
registry use so that importing this module never creates a cycle.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List

#: name -> class-or-factory, in registration order.
_REGISTRY: Dict[str, Callable] = {}

_BUILTINS_LOADED = False


def _ensure_builtins() -> None:
    """Import the modules whose import side effect registers the
    built-in subsystems (idempotent)."""
    global _BUILTINS_LOADED
    if not _BUILTINS_LOADED:
        _BUILTINS_LOADED = True
        from . import load_replay, subsystem  # noqa: F401


def register_subsystem(name: str) -> Callable:
    """Class/function decorator registering a subsystem factory under
    ``name``.  Registering an already-taken name raises ``ValueError``
    (use :func:`unregister` first to replace one deliberately)."""
    if not name or not isinstance(name, str):
        raise ValueError(f"subsystem name must be a non-empty string, "
                         f"got {name!r}")

    def _register(factory: Callable) -> Callable:
        if name in _REGISTRY and _REGISTRY[name] is not factory:
            raise ValueError(f"subsystem {name!r} is already registered")
        _REGISTRY[name] = factory
        return factory

    return _register


def unregister(name: str) -> None:
    """Remove one registration (primarily for tests of toy subsystems)."""
    _ensure_builtins()
    if name not in _REGISTRY:
        raise ValueError(f"subsystem {name!r} is not registered")
    del _REGISTRY[name]


def available() -> List[str]:
    """Sorted names of every registered subsystem."""
    _ensure_builtins()
    return sorted(_REGISTRY)


def is_registered(name: str) -> bool:
    _ensure_builtins()
    return name in _REGISTRY


def missing_coverage(covered: Iterable[str]) -> List[str]:
    """Registered subsystems absent from ``covered``, sorted.

    The differential fuzzer calls this with the subsystem names its
    configuration matrix exercises, so registering a new subsystem
    without adding it to the fuzz matrix fails loudly instead of
    silently shipping unfuzzed."""
    _ensure_builtins()
    return sorted(set(_REGISTRY) - set(covered))


def validate(name: str) -> str:
    """Return ``name`` if registered, else raise a ``ValueError`` that
    names the registered choices."""
    _ensure_builtins()
    if name not in _REGISTRY:
        raise ValueError(
            f"unknown subsystem {name!r}; registered subsystems: "
            f"{', '.join(available())}")
    return name


def build(name: str, config, memory, hierarchy, counters):
    """Construct the subsystem registered under ``name``.

    ``config`` is the full ``ProcessorConfig``; ``memory``, ``hierarchy``
    and ``counters`` are the per-processor collaborators every subsystem
    shares.
    """
    factory = _REGISTRY[validate(name)]
    from_config = getattr(factory, "from_config", None)
    if from_config is not None:
        return from_config(config, memory, hierarchy, counters)
    return factory(config, memory, hierarchy, counters)
