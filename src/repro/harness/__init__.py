"""Experiment harness: configuration presets and figure generators."""

from .configs import (
    FIGURE4_PARAMETERS,
    aggressive_load_replay_config,
    aggressive_lsq_config,
    aggressive_sfc_mdt_config,
    baseline_lsq_config,
    baseline_sfc_mdt_config,
    fuzz_config_matrix,
    litmus_system_config,
    multicore_system_config,
)

__all__ = [
    "FIGURE4_PARAMETERS",
    "aggressive_load_replay_config",
    "aggressive_lsq_config",
    "aggressive_sfc_mdt_config",
    "baseline_lsq_config",
    "baseline_sfc_mdt_config",
    "fuzz_config_matrix",
    "litmus_system_config",
    "multicore_system_config",
]
