"""Configuration presets matching the paper's Figure 4.

Two processor classes:

* **baseline** -- 4-wide, 128-entry ROB/window/checkpoints, 1 branch per
  fetch cycle, 4 function units;
* **aggressive** -- 8-wide, 1024-entry ROB/window/checkpoints, up to 8
  branches per fetch cycle, 8 function units.

Memory-subsystem variants per Figure 4 and Figures 5/6:

* baseline LSQ: 48x32 (Figure 5's normalisation baseline);
* baseline SFC/MDT: SFC 128 sets x 2-way (256 entries), MDT 4096 sets x
  2-way (8192 entries);
* aggressive LSQs: 48x32, 120x80 (normalisation baseline), 256x256;
* aggressive SFC/MDT: SFC 512 sets x 2-way (1024 entries), MDT 8192 sets
  x 2-way (16384 entries).
"""

from __future__ import annotations

from typing import Optional

from ..core.lsq import LSQConfig
from ..core.mdt import MDTConfig
from ..core.predictors import ENF, NOT_ENF, TOTAL, LSQ_MODE, PredictorConfig
from ..core.sfc import SFCConfig
from ..pipeline.config import (
    MEMORY_PRIVATE,
    MEMORY_SHARED,
    SUBSYSTEM_LOAD_REPLAY,
    SUBSYSTEM_LSQ,
    SUBSYSTEM_SFC_MDT,
    ProcessorConfig,
    SystemConfig,
)

#: Figure 4 rows, verbatim, for the configuration bench/report.
FIGURE4_PARAMETERS = [
    ("Pipeline Width", "4 instr/cycle", "8 instr/cycle"),
    ("Fetch Bandwidth", "Max 1 branch/cycle", "Up to 8 branches/cycle"),
    ("Branch Predictor",
     "8Kbit Gshare + 80% mispredicts turned to correct predictions "
     "by an oracle", "(same)"),
    ("Memory Dep. Predictor",
     "16K-entry PT and CT, 4K producer ids, 512-entry LFPT", "(same)"),
    ("Misprediction Penalty", "8 cycles", "(same)"),
    ("MDT", "4K sets, 2-way set assoc.", "8K sets, 2-way set assoc."),
    ("SFC", "128 sets, 2-way set assoc.", "512 sets, 2-way set assoc."),
    ("Renamer", "128 checkpoints", "1024 checkpoints"),
    ("Scheduling Window", "128 entries", "1024 entries"),
    ("L1 I-Cache", "8KB, 2-way, 128B lines, 10-cycle miss", "(same)"),
    ("L1 D-Cache", "8KB, 4-way, 64B lines, 10-cycle miss", "(same)"),
    ("L2 Cache", "512KB, 8-way, 128B lines, 100-cycle miss", "(same)"),
    ("Reorder Buffer", "128 entries", "1024 entries"),
    ("Function Units", "4 identical fully pipelined units", "8 units"),
]


def _predictor(mode: str) -> PredictorConfig:
    return PredictorConfig(pt_entries=16384, ct_entries=16384,
                           num_ids=4096, lfpt_entries=512, mode=mode)


def _baseline_kwargs() -> dict:
    return dict(width=4, fetch_branches_per_cycle=1, rob_size=128,
                sched_size=128, num_fus=4, mispredict_penalty=8)


def _aggressive_kwargs() -> dict:
    return dict(width=8, fetch_branches_per_cycle=8, rob_size=1024,
                sched_size=1024, num_fus=8, mispredict_penalty=8)


# -- baseline (4-wide, 128-entry window) ------------------------------------------


def baseline_lsq_config(lq_size: int = 48, sq_size: int = 32,
                        name: Optional[str] = None) -> ProcessorConfig:
    """The 4-wide baseline with an idealized LSQ (default 48x32)."""
    return ProcessorConfig(
        subsystem=SUBSYSTEM_LSQ,
        lsq=LSQConfig(lq_size=lq_size, sq_size=sq_size),
        predictor=_predictor(LSQ_MODE),
        name=name or f"baseline-lsq-{lq_size}x{sq_size}",
        **_baseline_kwargs())


def baseline_sfc_mdt_config(mode: str = ENF,
                            sfc_sets: int = 128, sfc_assoc: int = 2,
                            mdt_sets: int = 4096, mdt_assoc: int = 2,
                            mdt_granularity: int = 8,
                            name: Optional[str] = None) -> ProcessorConfig:
    """The 4-wide baseline with the paper's SFC/MDT (Figure 5 geometry)."""
    return ProcessorConfig(
        subsystem=SUBSYSTEM_SFC_MDT,
        sfc=SFCConfig(num_sets=sfc_sets, assoc=sfc_assoc),
        mdt=MDTConfig(num_sets=mdt_sets, assoc=mdt_assoc,
                      granularity=mdt_granularity),
        predictor=_predictor(mode),
        name=name or f"baseline-sfc-mdt-{mode.lower()}",
        **_baseline_kwargs())


# -- aggressive (8-wide, 1024-entry window) -----------------------------------------


def aggressive_lsq_config(lq_size: int = 120, sq_size: int = 80,
                          name: Optional[str] = None) -> ProcessorConfig:
    """The 8-wide aggressive core with an idealized LSQ (default 120x80)."""
    return ProcessorConfig(
        subsystem=SUBSYSTEM_LSQ,
        lsq=LSQConfig(lq_size=lq_size, sq_size=sq_size),
        predictor=_predictor(LSQ_MODE),
        store_fifo_capacity=1024,
        name=name or f"aggressive-lsq-{lq_size}x{sq_size}",
        **_aggressive_kwargs())


def aggressive_sfc_mdt_config(mode: str = TOTAL,
                              sfc_sets: int = 512, sfc_assoc: int = 2,
                              mdt_sets: int = 8192, mdt_assoc: int = 2,
                              mdt_granularity: int = 8,
                              name: Optional[str] = None) -> ProcessorConfig:
    """The 8-wide aggressive core with the paper's SFC/MDT.

    The default predictor mode is ``TOTAL``: Section 3.2 alters the ENF
    configuration on the aggressive core to enforce a *total ordering*
    on loads and stores within a producer set, which empirically
    outperforms plain producer-consumer enforcement there.  Pass
    ``mode=NOT_ENF`` for the true-dependences-only ablation.
    """
    return ProcessorConfig(
        subsystem=SUBSYSTEM_SFC_MDT,
        sfc=SFCConfig(num_sets=sfc_sets, assoc=sfc_assoc),
        mdt=MDTConfig(num_sets=mdt_sets, assoc=mdt_assoc,
                      granularity=mdt_granularity),
        predictor=_predictor(mode),
        store_fifo_capacity=1024,
        name=name or f"aggressive-sfc-mdt-{mode.lower()}",
        **_aggressive_kwargs())


def fuzz_config_matrix() -> list:
    """The differential fuzzer's default configuration matrix.

    One row per behaviour class worth cross-checking: the associative
    LSQ baseline, the enforcing and non-enforcing SFC/MDT designs, a
    degenerate 1x1 SFC/MDT (maximal replay pressure), the aggressive
    wide-window SFC/MDT, and value-based retirement replay.  Together
    the rows cover every subsystem in :mod:`repro.core.registry`
    (:func:`repro.verify.fuzzer.DifferentialFuzzer` asserts this, so a
    newly registered subsystem must either join this matrix or be
    fuzzed with an explicit config list).
    """
    tiny = baseline_sfc_mdt_config(sfc_sets=1, mdt_sets=1,
                                   name="fuzz-tiny-sfc-mdt")
    tiny.sfc.assoc = 1
    tiny.mdt.assoc = 1
    return [
        baseline_lsq_config(),
        baseline_sfc_mdt_config(),
        baseline_sfc_mdt_config(mode=NOT_ENF,
                                name="baseline-sfc-mdt-not_enf"),
        tiny,
        aggressive_sfc_mdt_config(),
        aggressive_load_replay_config(),
    ]


# -- multicore systems -------------------------------------------------------------


def litmus_system_config(core: Optional[ProcessorConfig] = None,
                         cores: int = 2,
                         name: Optional[str] = None) -> SystemConfig:
    """A shared-memory N-core system for litmus runs (default: two of
    the 4-wide baseline SFC/MDT cores)."""
    core = core if core is not None else baseline_sfc_mdt_config()
    return SystemConfig(core=core, cores=cores,
                        memory_mode=MEMORY_SHARED,
                        name=name or f"litmus-{core.name}")


def multicore_system_config(core: Optional[ProcessorConfig] = None,
                            cores: int = 2,
                            name: Optional[str] = None) -> SystemConfig:
    """A private-memory N-core system: the N-up throughput mode, where
    each core runs its own image but contends for the shared L2 (full
    golden-trace validation stays on)."""
    core = core if core is not None else baseline_sfc_mdt_config()
    return SystemConfig(core=core, cores=cores,
                        memory_mode=MEMORY_PRIVATE,
                        name=name or f"{core.name}-x{cores}")


def aggressive_load_replay_config(lq_size: int = 120, sq_size: int = 80,
                                  name: Optional[str] = None
                                  ) -> ProcessorConfig:
    """The 8-wide aggressive core with value-based retirement replay
    (Cain & Lipasti) -- the Section 4 comparator that disambiguates at
    retirement instead of at completion."""
    return ProcessorConfig(
        subsystem=SUBSYSTEM_LOAD_REPLAY,
        lsq=LSQConfig(lq_size=lq_size, sq_size=sq_size),
        predictor=_predictor(LSQ_MODE),
        store_fifo_capacity=1024,
        name=name or f"aggressive-load-replay-{lq_size}x{sq_size}",
        **_aggressive_kwargs())


__all__ = [
    "FIGURE4_PARAMETERS",
    "aggressive_load_replay_config",
    "aggressive_lsq_config",
    "aggressive_sfc_mdt_config",
    "baseline_lsq_config",
    "baseline_sfc_mdt_config",
    "fuzz_config_matrix",
    "litmus_system_config",
    "multicore_system_config",
    "ENF",
    "NOT_ENF",
    "TOTAL",
]
