"""Figure and table generators for every artifact in the paper's evaluation.

Each ``figure*``/``table*`` function runs the required simulations and
returns a structured result object with a ``format()`` method producing
the same rows/series the paper reports.  The benches under ``benchmarks/``
are thin wrappers over these.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..core.predictors import ENF, NOT_ENF, TOTAL
from ..pipeline.processor import SimResult
from ..power.energy import EnergyModel
from ..workloads import suites
from .configs import (
    aggressive_lsq_config,
    aggressive_sfc_mdt_config,
    baseline_lsq_config,
    baseline_sfc_mdt_config,
)
from .experiment import ExperimentRunner, geometric_mean, normalized_ipc


class FigureResult:
    """Rows of (benchmark, {series: value}) plus int/fp averages."""

    def __init__(self, title: str, series_names: Sequence[str],
                 rows: List[Tuple[str, Dict[str, float]]]):
        self.title = title
        self.series_names = list(series_names)
        self.rows = rows

    def averages(self) -> List[Tuple[str, Dict[str, float]]]:
        """Geometric-mean rows for the int and fp subsets present."""
        out = []
        for label, subset in (("int avg", suites.INT_BENCHMARKS),
                              ("fp avg", suites.FP_BENCHMARKS)):
            names = [b for b, _ in self.rows if b in subset]
            if not names:
                continue
            values = {
                series: geometric_mean(
                    dict(self.rows)[b][series] for b in names)
                for series in self.series_names
            }
            out.append((label, values))
        return out

    def value(self, benchmark: str, series: str) -> float:
        return dict(self.rows)[benchmark][series]

    def average(self, label: str, series: str) -> float:
        return dict(self.averages())[label][series]

    def format(self) -> str:
        width = max(len(name) for name in self.series_names)
        lines = [self.title,
                 "-" * len(self.title),
                 "benchmark   " + "  ".join(
                     f"{name:>{width}}" for name in self.series_names)]
        for benchmark, values in self.rows + self.averages():
            cells = "  ".join(f"{values[name]:>{width}.3f}"
                              for name in self.series_names)
            lines.append(f"{benchmark:<12s}{cells}")
        return "\n".join(lines)


def manifest_table(runner: ExperimentRunner) -> str:
    """Observability table over a runner's per-cell manifest.

    One row per completed grid cell -- IPC, cycles, simulation wall-time,
    and cache hit/miss -- plus a totals line.  The benches archive this
    (and the raw manifest JSON) instead of ad-hoc prints.
    """
    lines = ["engine manifest: per-cell runs",
             "-" * 30,
             f"{'benchmark':<12s}{'config':<30s}{'IPC':>7}  "
             f"{'cycles':>10}  {'wall(s)':>8}  cache"]
    for entry in runner.manifest:
        if entry["status"] != "ok":
            origin = (f"{entry['status'].upper()} "
                      f"(x{entry['attempts']})")
        else:
            origin = "hit" if entry["cache_hit"] else "miss"
        lines.append(
            f"{entry['benchmark']:<12s}{entry['config_name']:<30s}"
            f"{entry['ipc']:>7.3f}  {entry['cycles']:>10d}  "
            f"{entry['wall_time']:>8.2f}  {origin}")
    simulated = sum(e["wall_time"] for e in runner.manifest
                    if not e["cache_hit"])
    summary = (f"{len(runner.manifest)} cells: "
               f"{runner.cache_hits} cache hits, "
               f"{runner.cache_misses} simulated "
               f"({simulated:.2f}s simulation time)")
    if runner.failures:
        summary += f", {runner.failures} failed"
    lines.append(summary)
    return "\n".join(lines)


def figure5(scale: int = 20_000,
            benchmarks: Optional[Sequence[str]] = None,
            runner: Optional[ExperimentRunner] = None) -> FigureResult:
    """Figure 5: baseline core, MDT/SFC (ENF and NOT-ENF) vs 48x32 LSQ.

    Series are IPC normalized to the idealized 48x32 LSQ; the paper's
    headline is ENF within ~1% and NOT-ENF within ~3% of the LSQ on
    average.
    """
    benchmarks = list(benchmarks or suites.FIGURE5_BENCHMARKS)
    runner = runner or ExperimentRunner(scale)
    configs = [baseline_lsq_config(),
               baseline_sfc_mdt_config(mode=ENF, name="ENF"),
               baseline_sfc_mdt_config(mode=NOT_ENF, name="NOT-ENF")]
    results = runner.run_suite(benchmarks, configs)
    baseline_name = configs[0].name
    rows = []
    for benchmark in benchmarks:
        rows.append((benchmark, {
            "ENF": normalized_ipc(results, benchmark, "ENF", baseline_name),
            "NOT-ENF": normalized_ipc(results, benchmark, "NOT-ENF",
                                      baseline_name),
            "LSQ-IPC": results[(benchmark, baseline_name)].ipc,
        }))
    return FigureResult(
        "Figure 5: baseline (4-wide) -- normalized IPC vs 48x32 LSQ",
        ["ENF", "NOT-ENF", "LSQ-IPC"], rows)


def figure6(scale: int = 20_000,
            benchmarks: Optional[Sequence[str]] = None,
            runner: Optional[ExperimentRunner] = None) -> FigureResult:
    """Figure 6: aggressive core -- 256x256 LSQ, 48x32 LSQ, and MDT/SFC
    (ENF/total-order) normalized to the idealized 120x80 LSQ."""
    benchmarks = list(benchmarks or suites.FIGURE6_BENCHMARKS)
    runner = runner or ExperimentRunner(scale)
    configs = [aggressive_lsq_config(120, 80),
               aggressive_lsq_config(256, 256, name="lsq256x256"),
               aggressive_lsq_config(48, 32, name="lsq48x32"),
               aggressive_sfc_mdt_config(mode=TOTAL, name="ENF")]
    results = runner.run_suite(benchmarks, configs)
    baseline_name = configs[0].name
    rows = []
    for benchmark in benchmarks:
        rows.append((benchmark, {
            "lsq256x256": normalized_ipc(results, benchmark, "lsq256x256",
                                         baseline_name),
            "lsq48x32": normalized_ipc(results, benchmark, "lsq48x32",
                                       baseline_name),
            "ENF": normalized_ipc(results, benchmark, "ENF", baseline_name),
        }))
    return FigureResult(
        "Figure 6: aggressive (8-wide) -- normalized IPC vs 120x80 LSQ",
        ["lsq256x256", "lsq48x32", "ENF"], rows)


def enf_ablation(scale: int = 20_000,
                 benchmarks: Optional[Sequence[str]] = None,
                 runner: Optional[ExperimentRunner] = None) -> FigureResult:
    """Section 3.2 in-text: ENF(total order) vs NOT-ENF on the aggressive
    core.  Series: normalized IPC (NOT-ENF baseline = 1.0) and the
    memory-ordering violation rate of each configuration (violations per
    retired instruction, in %)."""
    benchmarks = list(benchmarks or suites.FIGURE6_BENCHMARKS)
    runner = runner or ExperimentRunner(scale)
    configs = [aggressive_sfc_mdt_config(mode=NOT_ENF, name="NOT-ENF"),
               aggressive_sfc_mdt_config(mode=TOTAL, name="ENF")]
    results = runner.run_suite(benchmarks, configs)
    rows = []
    for benchmark in benchmarks:
        not_enf = results[(benchmark, "NOT-ENF")]
        enf = results[(benchmark, "ENF")]

        def violation_pct(result: SimResult) -> float:
            violations = (
                result.counters.get("violation_flushes_true") +
                result.counters.get("violation_flushes_anti") +
                result.counters.get("violation_flushes_output"))
            retired = result.counters.get("retired_instructions") or 1
            return 100.0 * violations / retired

        rows.append((benchmark, {
            "ENF/NOT-ENF": enf.ipc / not_enf.ipc if not_enf.ipc else 0.0,
            "viol%-NOT-ENF": violation_pct(not_enf),
            "viol%-ENF": violation_pct(enf),
        }))
    return FigureResult(
        "Section 3.2: dependence enforcement ablation (aggressive core)",
        ["ENF/NOT-ENF", "viol%-NOT-ENF", "viol%-ENF"], rows)


def associativity_sweep(scale: int = 20_000,
                        benchmarks: Sequence[str] = ("bzip2", "mcf"),
                        assocs: Sequence[int] = (2, 4, 8, 16),
                        runner: Optional[ExperimentRunner] = None
                        ) -> FigureResult:
    """Section 3.2 in-text: SFC/MDT associativity sweep for the two
    set-conflict pathologies.  Series per associativity: IPC plus the
    replay rates that the paper quotes (replays per retired load/store)."""
    runner = runner or ExperimentRunner(scale)
    rows = []
    for benchmark in benchmarks:
        values: Dict[str, float] = {}
        for assoc in assocs:
            config = aggressive_sfc_mdt_config(
                sfc_assoc=assoc, mdt_assoc=assoc, name=f"assoc{assoc}")
            result = runner.run(benchmark, config)
            loads = result.counters.get("retired_loads") or 1
            stores = result.counters.get("retired_stores") or 1
            values[f"IPC@{assoc}"] = result.ipc
            values[f"ld-replay@{assoc}"] = \
                result.counters.get("load_replays_mdt_conflict") / loads
            values[f"st-replay@{assoc}"] = \
                result.counters.get("store_replays_sfc_conflict") / stores
        rows.append((benchmark, values))
    series = [key for key in rows[0][1]]
    return FigureResult(
        "Section 3.2: SFC/MDT associativity sweep (aggressive core)",
        series, rows)


def corruption_rates(scale: int = 20_000,
                     benchmarks: Optional[Sequence[str]] = None,
                     runner: Optional[ExperimentRunner] = None
                     ) -> FigureResult:
    """Section 3.2 in-text: SFC corruption replay rates per benchmark
    (the paper: ~20% of loads for vpr_route/ammp/equake, <=6% elsewhere)."""
    benchmarks = list(benchmarks or suites.FIGURE6_BENCHMARKS)
    runner = runner or ExperimentRunner(scale)
    config = aggressive_sfc_mdt_config()
    rows = []
    for benchmark in benchmarks:
        result = runner.run(benchmark, config)
        loads = result.counters.get("retired_loads") or 1
        rows.append((benchmark, {
            "corrupt-replays/load":
                result.counters.get("load_replays_sfc_corrupt") / loads,
            "IPC": result.ipc,
        }))
    return FigureResult(
        "Section 3.2: SFC corruption replays per retired load "
        "(aggressive core)",
        ["corrupt-replays/load", "IPC"], rows)


def granularity_sweep(scale: int = 20_000,
                      benchmarks: Sequence[str] = ("gzip", "parser",
                                                   "equake"),
                      granularities: Sequence[int] = (4, 8, 16, 32),
                      runner: Optional[ExperimentRunner] = None
                      ) -> FigureResult:
    """Section 2.2 trade-off: MDT granularity (bytes per entry).

    Coarser granules cut tag conflicts but create false sharing among
    distinct addresses in one granule, raising spurious violations; the
    paper settles on 8 bytes for a 64-bit machine.
    """
    runner = runner or ExperimentRunner(scale)
    rows = []
    for benchmark in benchmarks:
        values: Dict[str, float] = {}
        for granularity in granularities:
            config = baseline_sfc_mdt_config(
                mdt_granularity=granularity, name=f"gran{granularity}")
            result = runner.run(benchmark, config)
            retired = result.counters.get("retired_instructions") or 1
            violations = (
                result.counters.get("violation_flushes_true") +
                result.counters.get("violation_flushes_anti") +
                result.counters.get("violation_flushes_output"))
            values[f"IPC@{granularity}B"] = result.ipc
            values[f"viol%@{granularity}B"] = 100.0 * violations / retired
        rows.append((benchmark, values))
    series = [key for key in rows[0][1]]
    return FigureResult("Section 2.2: MDT granularity sweep (baseline core)",
                        series, rows)


def power_comparison(scale: int = 20_000,
                     benchmarks: Optional[Sequence[str]] = None,
                     lsq_sizes: Sequence[Tuple[int, int]] = ((48, 32),
                                                             (120, 80),
                                                             (256, 256)),
                     runner: Optional[ExperimentRunner] = None
                     ) -> FigureResult:
    """Dynamic-energy comparison: LSQ CAM searches vs SFC/MDT indexed
    accesses, per LSQ size (the paper's scalability/power argument)."""
    benchmarks = list(benchmarks or ["gzip", "parser", "equake", "swim"])
    runner = runner or ExperimentRunner(scale)
    model = EnergyModel()
    sfc_config = aggressive_sfc_mdt_config()
    rows = []
    for benchmark in benchmarks:
        sfc_result = runner.run(benchmark, sfc_config)
        sfc_energy = model.sfc_mdt_energy(
            sfc_result.counters)["total_energy"]
        values: Dict[str, float] = {}
        for lq, sq in lsq_sizes:
            lsq_result = runner.run(
                benchmark, aggressive_lsq_config(lq, sq))
            lsq_energy = model.lsq_energy(
                lsq_result.counters)["total_energy"]
            values[f"LSQ{lq}x{sq}/SFC"] = \
                lsq_energy / sfc_energy if sfc_energy else float("inf")
        rows.append((benchmark, values))
    series = [key for key in rows[0][1]]
    return FigureResult(
        "Dynamic energy of forwarding+disambiguation: LSQ relative to "
        "SFC/MDT", series, rows)


def window_scaling(scale: int = 20_000,
                   benchmark: str = "swim",
                   windows: Sequence[int] = (32, 64, 128, 256, 512, 1024),
                   runner: Optional[ExperimentRunner] = None
                   ) -> FigureResult:
    """Scalability claim: SFC/MDT IPC tracks the (size-matched) LSQ as the
    instruction window grows."""
    runner = runner or ExperimentRunner(scale)
    rows = []
    for window in windows:
        lsq = aggressive_lsq_config(window, window,
                                    name=f"lsq-w{window}")
        lsq.rob_size = lsq.sched_size = window
        sfc = aggressive_sfc_mdt_config(name=f"sfc-w{window}")
        sfc.rob_size = sfc.sched_size = window
        lsq_result = runner.run(benchmark, lsq)
        sfc_result = runner.run(benchmark, sfc)
        rows.append((f"window {window}", {
            "LSQ-IPC": lsq_result.ipc,
            "SFC/MDT-IPC": sfc_result.ipc,
            "ratio": sfc_result.ipc / lsq_result.ipc
            if lsq_result.ipc else 0.0,
        }))
    return FigureResult(
        f"Window scaling on {benchmark}: SFC/MDT vs size-matched LSQ",
        ["LSQ-IPC", "SFC/MDT-IPC", "ratio"], rows)


def recovery_policies(scale: int = 20_000,
                      benchmarks: Sequence[str] = ("gzip", "mesa",
                                                   "vpr_route"),
                      runner: Optional[ExperimentRunner] = None
                      ) -> FigureResult:
    """Section 2.4 ablations: conservative vs optimized recovery.

    Policies: conservative flush (paper default), counted true-dependence
    recovery (Section 2.4.1), and corrupt-marking output recovery
    (Section 2.4.2).  Measured on the aggressive core, where ordering
    violations are frequent enough for the recovery policy to matter.
    """
    runner = runner or ExperimentRunner(scale)
    rows = []
    for benchmark in benchmarks:
        conservative = aggressive_sfc_mdt_config(name="conservative")
        counted = aggressive_sfc_mdt_config(name="counted")
        counted.mdt.counted_load_recovery = True
        corrupt = aggressive_sfc_mdt_config(name="corrupt")
        corrupt.output_recovery = "corrupt"
        values = {}
        for config in (conservative, counted, corrupt):
            values[config.name] = runner.run(benchmark, config).ipc
        rows.append((benchmark, values))
    return FigureResult(
        "Section 2.4: recovery-policy ablation (aggressive core, IPC)",
        ["conservative", "counted", "corrupt"], rows)
