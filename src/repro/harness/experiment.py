"""Experiment runner: simulate benchmark suites across configurations.

One :class:`ExperimentRunner` caches the golden trace per (benchmark,
scale) so each workload's architectural execution happens once no matter
how many processor configurations are measured against it.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

from ..isa.interp import RetireRecord, run_program
from ..isa.program import Program
from ..pipeline.config import ProcessorConfig
from ..pipeline.processor import Processor, SimResult
from ..workloads import suites

#: Default dynamic instruction budget per benchmark run.  Small enough for
#: a pure-Python cycle-level simulator, large enough for the rates the
#: paper reports to stabilise.
DEFAULT_SCALE = 20_000

#: Upper bound on architectural execution (guards against kernel bugs).
TRACE_LIMIT = 5_000_000


class ExperimentRunner:
    """Runs (benchmark x configuration) grids with golden-trace caching."""

    def __init__(self, scale: int = DEFAULT_SCALE, verbose: bool = False):
        self.scale = scale
        self.verbose = verbose
        self._programs: Dict[str, Program] = {}
        self._traces: Dict[str, List[RetireRecord]] = {}

    def program(self, benchmark: str) -> Program:
        if benchmark not in self._programs:
            self._programs[benchmark] = suites.build(benchmark, self.scale)
        return self._programs[benchmark]

    def trace(self, benchmark: str) -> List[RetireRecord]:
        if benchmark not in self._traces:
            self._traces[benchmark] = run_program(self.program(benchmark),
                                                  TRACE_LIMIT)
        return self._traces[benchmark]

    def run(self, benchmark: str, config: ProcessorConfig) -> SimResult:
        """Simulate one benchmark under one configuration."""
        result = Processor(self.program(benchmark), config,
                           trace=self.trace(benchmark)).run()
        if self.verbose:
            print(f"  {benchmark:<10s} {config.name:<28s} "
                  f"IPC={result.ipc:.3f}")
        return result

    def run_suite(self, benchmarks: Iterable[str],
                  configs: Iterable[ProcessorConfig]
                  ) -> Dict[Tuple[str, str], SimResult]:
        """Run the full grid; keys are ``(benchmark, config.name)``."""
        configs = list(configs)
        results: Dict[Tuple[str, str], SimResult] = {}
        for benchmark in benchmarks:
            for config in configs:
                results[(benchmark, config.name)] = self.run(benchmark,
                                                             config)
        return results


def normalized_ipc(results: Dict[Tuple[str, str], SimResult],
                   benchmark: str, config_name: str,
                   baseline_name: str) -> float:
    """IPC of one run normalized to the baseline configuration's run."""
    baseline = results[(benchmark, baseline_name)].ipc
    if not baseline:
        return 0.0
    return results[(benchmark, config_name)].ipc / baseline


def geometric_mean(values: Iterable[float]) -> float:
    values = [v for v in values if v > 0]
    if not values:
        return 0.0
    product = 1.0
    for value in values:
        product *= value
    return product ** (1.0 / len(values))


def suite_average(results: Dict[Tuple[str, str], SimResult],
                  benchmarks: Iterable[str], config_name: str,
                  baseline_name: str) -> float:
    """Geometric mean of normalized IPCs over a benchmark list."""
    return geometric_mean(
        normalized_ipc(results, benchmark, config_name, baseline_name)
        for benchmark in benchmarks)
