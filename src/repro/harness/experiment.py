"""Experiment engine: (benchmark x configuration) grids, in parallel,
with golden-trace reuse, a persistent on-disk result cache, and a
fault-tolerant, resumable scheduler.

One :class:`ExperimentRunner` owns three layers of reuse:

* **golden traces** -- each workload's architectural execution happens
  once per (benchmark, scale) no matter how many processor
  configurations are measured against it, and is shipped to worker
  processes so they never re-interpret the program;
* **process-pool scheduling** -- ``run_suite`` farms uncached grid cells
  out to a ``ProcessPoolExecutor`` (``jobs`` workers, default
  ``os.cpu_count()``; ``jobs=1`` preserves the serial in-process path
  for determinism tests and debugging);
* **persistent result cache** -- completed cells are stored as JSON
  under ``.repro_cache/`` (override with ``cache_dir`` or the
  ``REPRO_CACHE_DIR`` environment variable), keyed by a content hash of
  the benchmark name, the scale, and the full canonical
  ``ProcessorConfig.to_dict()``, so identical cells are never
  re-simulated across runs, benches, or processes.

The simulator is fully deterministic, so all three paths (serial,
parallel, cached) produce identical :class:`SimResult` grids.

Fault tolerance (``run_suite``)
-------------------------------

Long sweeps must survive worker crashes, hangs, and restarts instead of
losing every completed-but-unreported cell.  ``run_suite`` therefore
dispatches cells with ``submit``/``wait`` instead of an eager ordered
``pool.map``:

* completed cells **checkpoint to the persistent cache as they finish**,
  so an interrupted sweep resumes from the cache (``repro suite
  --resume``) instead of re-simulating everything;
* each failing cell is retried with exponential backoff up to
  ``max_retries`` extra attempts; a worker crash
  (``BrokenProcessPool``) triggers pool re-creation and requeues every
  in-flight cell, re-running ambiguous crash victims solo so the crash
  is attributed to exactly one cell;
* an optional per-cell wall-clock timeout (``cell_timeout``) reclaims
  hung workers by tearing the pool down and rescheduling the innocent
  in-flight cells;
* when the pool repeatedly fails without making progress
  (``max_pool_rebuilds``), the engine degrades gracefully to serial
  in-process execution of the remaining cells;
* cells that exhaust their budget land in the manifest as structured
  failure entries (``status`` failed/timeout, ``attempts``, ``error``)
  instead of raising away the rest of the grid.

Every cell additionally appends one versioned
:class:`~repro.obs.runrecord.RunRecord` dict to :attr:`ExperimentRunner.
manifest` -- schema version, config dict, cycles, IPC, metric snapshot,
wall-time, engine/cache provenance, and the fault-tolerance outcome --
which the figure layer, the benches, ``repro.api``, and the CLI's
``--format json`` all consume instead of ad-hoc prints (see
:func:`repro.harness.figures.manifest_table` and
:meth:`ExperimentRunner.records`).
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from pathlib import Path
from typing import Deque, Dict, Iterable, List, Optional, Tuple, Union

from ..checkpoint.sampling import sample_run
from ..checkpoint.store import CheckpointStore
from ..isa.interp import RetireRecord, run_program
from ..isa.program import Program
from ..obs.runrecord import (
    STATUS_FAILED,
    STATUS_OK,
    STATUS_TIMEOUT,
    RunRecord,
)
from ..pipeline.config import ProcessorConfig, SystemConfig
from ..pipeline.processor import Processor, SimResult
from ..pipeline.system import System
from ..stats.counters import Counters
from ..workloads import litmus, suites

#: Default dynamic instruction budget per benchmark run.  Small enough for
#: a pure-Python cycle-level simulator, large enough for the rates the
#: paper reports to stabilise.
DEFAULT_SCALE = 20_000

#: Upper bound on architectural execution (guards against kernel bugs).
TRACE_LIMIT = 5_000_000

#: Bump whenever the simulator's observable behaviour or the cached
#: payload layout changes; every existing cache entry is invalidated.
CACHE_FORMAT = 1

#: Default on-disk cache location (relative to the working directory).
DEFAULT_CACHE_DIR = ".repro_cache"

#: Default retry budget: extra attempts after the first per grid cell.
DEFAULT_MAX_RETRIES = 2

#: First retry delay in seconds; doubles per attempt, capped at 4s.
DEFAULT_RETRY_BACKOFF = 0.25

#: Consecutive pool failures without a completed cell before the engine
#: degrades to serial in-process execution.
DEFAULT_MAX_POOL_REBUILDS = 6

#: Age (seconds) past which an orphaned ``*.tmp.*`` cache file from a
#: crashed writer is swept on cache open.  Younger temps may belong to a
#: concurrent writer and are left alone.
STALE_TEMP_SECONDS = 3600.0

#: Conservative floor on the effective age for *timed* temp sweeps.  A
#: caller asking for a shorter horizon still only sweeps temps at least
#: this old: cross-host caches see each other's clocks, and mtimes can
#: jump under clock adjustment, so a "fresh" temp another writer is
#: mid-way through must never be swept by an age heuristic.  Explicit
#: remove-everything sweeps (``max_age <= 0``, e.g. :meth:`ResultCache.
#: gc`) bypass the floor.
MIN_STALE_TEMP_SECONDS = 300.0

_CRASH_ERROR = "worker process crashed (BrokenProcessPool)"


def cache_key(benchmark: str, scale: int, config,
              sampling: Optional[dict] = None) -> str:
    """Content hash identifying one grid cell.

    The hash covers the benchmark name, the scale, the cache format
    version, and the full canonical config dict *except* ``name``:
    the name is a display label, so two differently named but otherwise
    identical configurations share one cache entry.  ``config`` is a
    :class:`~repro.pipeline.config.CoreConfig` for single-core cells or
    a :class:`~repro.pipeline.config.SystemConfig` for multicore ones
    (whose dict nests the core config, so the two namespaces can never
    collide).

    ``sampling`` (the sampled-mode parameter dict) is folded in only
    when present, so every pre-existing exact-mode key is byte-stable
    and sampled cells can never collide with exact cells.
    """
    payload = config.to_dict()
    payload.pop("name", None)
    body = {"format": CACHE_FORMAT, "benchmark": benchmark,
            "scale": scale, "config": payload}
    if sampling is not None:
        body["sampling"] = sampling
    canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class ResultCache:
    """One-JSON-file-per-result cache under a directory.

    Files are written atomically (collision-proof temp file + rename) so
    concurrent runners sharing a cache directory -- even across hosts --
    can only ever observe complete entries; unreadable or corrupt
    entries read as misses.  Opening the cache sweeps temp files
    orphaned by crashed writers; :meth:`gc` additionally drops entries
    this build can never read (foreign ``CACHE_FORMAT`` or corrupt
    JSON).
    """

    def __init__(self, directory: Union[str, Path]):
        self.directory = Path(directory)
        self.sweep_stale_temps()

    def path(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    def load(self, key: str) -> Optional[dict]:
        try:
            payload = json.loads(self.path(key).read_text())
        except (OSError, ValueError):
            return None
        if not isinstance(payload, dict) or \
                payload.get("format") != CACHE_FORMAT:
            return None
        return payload

    def store(self, key: str, payload: dict) -> None:
        self.directory.mkdir(parents=True, exist_ok=True)
        final = self.path(key)
        # pid alone collides across hosts sharing REPRO_CACHE_DIR; add
        # random bytes so two writers can never race on one temp name.
        tmp = final.with_name(
            f"{final.name}.tmp.{os.getpid()}.{os.urandom(6).hex()}")
        try:
            tmp.write_text(json.dumps(payload, sort_keys=True))
            tmp.replace(final)
        except OSError:
            try:
                tmp.unlink()
            except OSError:
                pass
            raise

    def sweep_stale_temps(self,
                          max_age: float = STALE_TEMP_SECONDS) -> int:
        """Delete ``*.tmp.*`` files older than ``max_age`` seconds
        (orphans of crashed writers); returns the number removed.

        Timed sweeps (``max_age > 0``) are defensive about clocks: a
        temp whose mtime lies in the *future* (clock adjustment, or a
        cross-host cache whose writer's clock runs ahead) gets a clamped
        age of zero -- it reads as brand new, never as ancient -- and
        the effective horizon is floored at ``MIN_STALE_TEMP_SECONDS``
        so a concurrent writer's seconds-old temp cannot be swept
        mid-write by an aggressive caller.  ``max_age <= 0`` is the
        explicit remove-everything form (used by :meth:`gc`) and skips
        both protections.
        """
        removed = 0
        now = time.time()
        effective = max(max_age, MIN_STALE_TEMP_SECONDS) \
            if max_age > 0 else 0.0
        try:
            candidates = list(self.directory.glob("*.tmp.*"))
        except OSError:
            return 0
        for tmp in candidates:
            try:
                age = max(0.0, now - tmp.stat().st_mtime)
                if age >= effective:
                    tmp.unlink()
                    removed += 1
            except OSError:
                continue
        return removed

    def gc(self) -> int:
        """Drop every entry this build cannot read -- corrupt JSON or a
        foreign ``CACHE_FORMAT`` -- plus all temp files; returns the
        number of files removed."""
        removed = self.sweep_stale_temps(max_age=0.0)
        try:
            entries = list(self.directory.glob("*.json"))
        except OSError:
            return removed
        for entry in entries:
            try:
                payload = json.loads(entry.read_text())
                readable = isinstance(payload, dict) and \
                    payload.get("format") == CACHE_FORMAT
            except (OSError, ValueError):
                readable = False
            if not readable:
                try:
                    entry.unlink()
                    removed += 1
                except OSError:
                    continue
        return removed


class _MemoCheckpointStore:
    """In-process memo over an optional on-disk
    :class:`~repro.checkpoint.store.CheckpointStore`.

    Grid cells sharing a benchmark fast-forward once per *process* even
    with the disk cache disabled, and the disk train is deserialized at
    most once per process when it is enabled.
    """

    def __init__(self, inner: Optional[CheckpointStore]):
        self.inner = inner
        self._memo: Dict[str, dict] = {}

    def load(self, key: str) -> Optional[dict]:
        train = self._memo.get(key)
        if train is not None:
            return train
        if self.inner is None:
            return None
        train = self.inner.load(key)
        if train is not None:
            self._memo[key] = train
        return train

    def store(self, key: str, checkpoints, total_instructions: int,
              complete: bool = True, stride: int = 0) -> None:
        self._memo[key] = {"total_instructions": total_instructions,
                           "checkpoints": list(checkpoints),
                           "complete": complete, "stride": stride}
        if self.inner is not None:
            self.inner.store(key, checkpoints, total_instructions,
                             complete=complete, stride=stride)


def _simulate_cell(program: Program, trace: List[RetireRecord],
                   config: ProcessorConfig) -> dict:
    """Simulate one grid cell; returns the cacheable payload dict.

    Module-level so ``ProcessPoolExecutor`` can pickle it; the golden
    trace arrives prebuilt from the parent process.
    """
    started = time.perf_counter()
    result = Processor(program, config, trace=trace).run()
    return {
        "format": CACHE_FORMAT,
        "program_name": result.program_name,
        "cycles": result.cycles,
        "instructions": result.instructions,
        "counters": result.counters.as_dict(),
        "wall_time": time.perf_counter() - started,
    }


def _simulate_system_cell(programs, traces, config: SystemConfig) -> dict:
    """Simulate one N-core system cell; returns the cacheable payload."""
    started = time.perf_counter()
    result = System(programs, config, traces=traces).run()
    return {
        "format": CACHE_FORMAT,
        "program_name": result.program_name,
        "cycles": result.cycles,
        "instructions": result.instructions,
        "counters": dict(result.counters),
        "wall_time": time.perf_counter() - started,
        "cores": config.cores,
    }


class _Cell:
    """One uncached grid cell: a unique cache key plus every
    (benchmark, config) alias that hashes to it, and its retry state."""

    __slots__ = ("benchmark", "configs", "key", "attempts", "timeouts",
                 "error")

    def __init__(self, benchmark: str, config: ProcessorConfig, key: str):
        self.benchmark = benchmark
        self.configs = [config]  # aliases sharing one cache entry
        self.key = key
        self.attempts = 0        # submissions charged to this cell
        self.timeouts = 0        # how many of those hit the timeout
        self.error = ""

    @property
    def primary(self) -> ProcessorConfig:
        return self.configs[0]


class _PoolUnusable(Exception):
    """The process pool failed repeatedly without completing any cell;
    the caller should degrade to serial execution."""


class ExperimentRunner:
    """Runs (benchmark x configuration) grids with golden-trace reuse,
    fault-tolerant process-pool parallelism, and persistent result
    caching."""

    def __init__(self, scale: int = DEFAULT_SCALE, verbose: bool = False,
                 jobs: Optional[int] = None,
                 cache_dir: Optional[Union[str, Path]] = None,
                 use_cache: bool = True,
                 cell_timeout: Optional[float] = None,
                 max_retries: Optional[int] = None,
                 retry_backoff: float = DEFAULT_RETRY_BACKOFF,
                 max_pool_rebuilds: int = DEFAULT_MAX_POOL_REBUILDS):
        self.scale = scale
        self.verbose = verbose
        self.jobs = jobs if jobs is not None else (os.cpu_count() or 1)
        #: Per-cell wall-clock timeout in seconds (None/0 disables).
        self.cell_timeout = cell_timeout
        #: Extra attempts per failing cell beyond the first.
        self.max_retries = DEFAULT_MAX_RETRIES if max_retries is None \
            else max_retries
        self.retry_backoff = retry_backoff
        self.max_pool_rebuilds = max_pool_rebuilds
        if use_cache:
            self.cache: Optional[ResultCache] = ResultCache(
                cache_dir or os.environ.get("REPRO_CACHE_DIR",
                                            DEFAULT_CACHE_DIR))
        else:
            self.cache = None
        #: One dict per completed cell, in completion order.
        self.manifest: List[dict] = []
        self._programs: Dict[str, Program] = {}
        self._traces: Dict[str, List[RetireRecord]] = {}
        #: Checkpoint trains for sampled mode, memoized in-process and
        #: (when the result cache is enabled) persisted next to it.
        self._checkpoints = _MemoCheckpointStore(
            CheckpointStore(self.cache.directory / "checkpoints")
            if self.cache else None)
        #: Injection points for failure testing: the per-cell worker
        #: function (must stay picklable) and the pool constructor.
        self._cell_fn = _simulate_cell
        self._pool_factory = lambda workers: ProcessPoolExecutor(
            max_workers=workers)

    # ------------------------------------------------------------ workloads

    def program(self, benchmark: str) -> Program:
        if benchmark not in self._programs:
            self._programs[benchmark] = suites.build(benchmark, self.scale)
        return self._programs[benchmark]

    def trace(self, benchmark: str) -> List[RetireRecord]:
        if benchmark not in self._traces:
            self._traces[benchmark] = run_program(self.program(benchmark),
                                                  TRACE_LIMIT)
        return self._traces[benchmark]

    # ------------------------------------------------------------ single cell

    def run(self, benchmark: str, config: ProcessorConfig) -> SimResult:
        """Simulate one benchmark under one configuration (serial,
        in-process), consulting and filling the result cache."""
        key = cache_key(benchmark, self.scale, config)
        payload = self.cache.load(key) if self.cache else None
        hit = payload is not None
        if payload is None:
            payload = _simulate_cell(self.program(benchmark),
                                     self.trace(benchmark), config)
            if self.cache:
                self.cache.store(key, payload)
        self._record(benchmark, config, payload, key, hit)
        return self._rehydrate(config, payload)

    def run_system(self, benchmark: str,
                   config: SystemConfig) -> RunRecord:
        """Simulate one N-core system cell (serial, in-process) and
        return its versioned record (schema v3 when ``cores > 1``).

        ``benchmark`` is either a regular suite benchmark -- replicated
        across every core in ``private`` memory mode for N-up
        throughput -- or a litmus name (``litmus-mp``, ...), whose
        per-thread programs run over shared memory.  Cells consult and
        fill the same persistent result cache as single-core runs (the
        key hashes the full nested system config)."""
        key = cache_key(benchmark, self.scale, config)
        payload = self.cache.load(key) if self.cache else None
        hit = payload is not None
        if payload is None:
            if litmus.is_litmus(benchmark):
                test = litmus.get_litmus(benchmark)
                if config.cores != test.cores:
                    raise ValueError(
                        f"litmus test {test.name!r} needs exactly "
                        f"{test.cores} cores, got {config.cores}")
                if not config.shared_memory:
                    raise ValueError(
                        f"litmus test {test.name!r} requires shared "
                        f"memory mode, got {config.memory_mode!r}")
                programs = test.programs()
                traces = None
            else:
                programs = [self.program(benchmark)] * config.cores
                traces = [self.trace(benchmark)] * config.cores
            payload = _simulate_system_cell(programs, traces, config)
            if self.cache:
                self.cache.store(key, payload)
        self._record(benchmark, config, payload, key, hit,
                     cores=config.cores)
        return self.last_record()

    def run_sampled(self, benchmark: str, config: ProcessorConfig, *,
                    intervals: int = 10, warmup_insts: int = 1_000,
                    interval_insts: int = 5_000,
                    checkpoint_every: Optional[int] = None,
                    warm: bool = True,
                    horizon: Optional[int] = None) -> RunRecord:
        """Sampled simulation of one cell: checkpointed fast-forward
        with ``intervals`` detailed windows (see
        :func:`repro.checkpoint.sampling.sample_run`).

        The record's ``ipc`` is the per-interval mean; its ``sampling``
        block carries the confidence interval and the interval table.
        Sampled cells get their own cache keys (the sampling parameters
        are folded into the key), so they can never shadow or be
        shadowed by exact-mode entries, and the checkpoint train is
        shared content-addressed across every config of a benchmark --
        and, when ``horizon`` limits the sampled span, across horizons
        too (prefix reuse / in-place extension, so different scales
        never recapture).
        """
        params = {"intervals": intervals, "warmup_insts": warmup_insts,
                  "interval_insts": interval_insts,
                  "checkpoint_every": checkpoint_every or 0,
                  "warm": warm}
        if horizon is not None:
            # Folded in only when present so pre-existing sampled-cell
            # cache keys stay byte-stable.
            params["horizon"] = horizon
        key = cache_key(benchmark, self.scale, config, sampling=params)
        payload = self.cache.load(key) if self.cache else None
        hit = payload is not None
        if payload is None:
            program = self.program(benchmark)
            started = time.perf_counter()
            sampled = sample_run(
                program, config, intervals=intervals,
                warmup_insts=warmup_insts, interval_insts=interval_insts,
                checkpoint_every=checkpoint_every, warm=warm,
                store=self._checkpoints, limit=TRACE_LIMIT,
                horizon=horizon)
            payload = {
                "format": CACHE_FORMAT,
                "program_name": program.name,
                "cycles": sampled.cycles,
                "instructions": sampled.instructions,
                "counters": dict(sampled.counters),
                "wall_time": time.perf_counter() - started,
                "sampling": sampled.sampling_dict(),
            }
            if self.cache:
                self.cache.store(key, payload)
        self._record(benchmark, config, payload, key, hit,
                     sampling=payload.get("sampling"))
        return self.last_record()

    # ------------------------------------------------------------ grids

    def run_suite(self, benchmarks: Iterable[str],
                  configs: Iterable[ProcessorConfig],
                  jobs: Optional[int] = None,
                  cell_timeout: Optional[float] = None,
                  max_retries: Optional[int] = None
                  ) -> Dict[Tuple[str, str], SimResult]:
        """Run the full grid; keys are ``(benchmark, config.name)``.

        Cached cells are resolved up front; the remainder is simulated
        serially (``jobs=1``) or farmed out to a fault-tolerant process
        pool.  The returned grid is identical in all modes.  Cells that
        exhaust their retry budget are *omitted* from the returned grid
        and appear in :attr:`manifest` as structured failure entries
        (``status`` failed/timeout, ``attempts``, ``error``) -- one
        crashed or hung worker no longer discards every other cell.

        Duplicate configurations are deduplicated by cache key within
        the batch (each unique cell simulates once); reusing a
        ``config.name`` for a *different* parameterisation raises
        ``ValueError``, since grid keys would silently collide.
        """
        benchmarks = list(benchmarks)
        configs = self._dedup_configs(configs)
        jobs = self.jobs if jobs is None else jobs
        cell_timeout = self.cell_timeout if cell_timeout is None \
            else cell_timeout
        max_retries = self.max_retries if max_retries is None \
            else max_retries
        results: Dict[Tuple[str, str], SimResult] = {}
        cells: Dict[str, _Cell] = {}
        order: List[_Cell] = []
        for benchmark in benchmarks:
            for config in configs:
                key = cache_key(benchmark, self.scale, config)
                payload = self.cache.load(key) if self.cache else None
                if payload is not None:
                    self._record(benchmark, config, payload, key, True,
                                 jobs=jobs)
                    results[(benchmark, config.name)] = \
                        self._rehydrate(config, payload)
                    continue
                cell = cells.get(key)
                if cell is None:
                    cells[key] = cell = _Cell(benchmark, config, key)
                    order.append(cell)
                else:
                    # identical payload under another display name:
                    # simulate once, record per alias
                    cell.configs.append(config)

        if not order:
            return results
        if len(order) <= 1 or jobs <= 1:
            self._run_cells_serial(order, results, jobs, max_retries)
            return results
        self._run_cells_pool(order, results, jobs, cell_timeout,
                             max_retries)
        return results

    @staticmethod
    def _dedup_configs(configs: Iterable[ProcessorConfig]
                       ) -> List[ProcessorConfig]:
        out: List[ProcessorConfig] = []
        seen: Dict[str, dict] = {}
        for config in configs:
            payload = config.to_dict()
            prior = seen.get(config.name)
            if prior is None:
                seen[config.name] = payload
                out.append(config)
            elif prior != payload:
                raise ValueError(
                    f"duplicate config name {config.name!r} with "
                    f"differing parameters; grid cells are keyed by "
                    f"(benchmark, config.name) and would silently "
                    f"overwrite each other")
            # else: exact duplicate occurrence -- run once, not twice
        return out

    # ------------------------------------------------------------ execution

    def _run_cells_serial(self, cells: List[_Cell],
                          results: Dict[Tuple[str, str], SimResult],
                          jobs: int, max_retries: int) -> None:
        """In-process execution with the same retry/failure-record
        semantics as the pool path (no timeout enforcement: a hang
        cannot be reclaimed in-process, so cells that already timed out
        in a worker are recorded as timeouts instead of re-run)."""
        for cell in cells:
            if cell.timeouts:
                self._fail_cell(cell, STATUS_TIMEOUT, jobs)
                continue
            program = self.program(cell.benchmark)
            trace = self.trace(cell.benchmark)
            while True:
                cell.attempts += 1
                try:
                    payload = self._cell_fn(program, trace, cell.primary)
                except Exception as exc:  # noqa: BLE001 -- isolate cells
                    cell.error = f"{type(exc).__name__}: {exc}"
                    if cell.attempts > max_retries:
                        self._fail_cell(cell, STATUS_FAILED, jobs)
                        break
                    self._sleep_backoff(cell.attempts)
                else:
                    self._finish_cell(cell, payload, results, jobs)
                    break

    def _run_cells_pool(self, cells: List[_Cell],
                        results: Dict[Tuple[str, str], SimResult],
                        jobs: int, cell_timeout: Optional[float],
                        max_retries: int) -> None:
        """Fault-tolerant ``submit``/``wait`` scheduler over a process
        pool; degrades to :meth:`_run_cells_serial` when the pool
        repeatedly fails without progress."""
        workers = min(jobs, len(cells))
        # Build every needed golden trace once, in the parent, before
        # the pool forks, so workers inherit/receive them instead of
        # re-interpreting the program per cell.
        for cell in cells:
            self.program(cell.benchmark)
            self.trace(cell.benchmark)

        queue: Deque[_Cell] = deque(cells)
        # Cells re-run strictly solo: crash victims awaiting
        # attribution and cells between retry attempts.
        quarantine: Deque[_Cell] = deque()
        inflight: Dict[object, Tuple[_Cell, Optional[float]]] = {}
        pool: Optional[ProcessPoolExecutor] = None
        rebuilds = 0  # consecutive pool deaths with no completed cell

        def kill_pool() -> None:
            """Tear down a poisoned pool (hung or crashed workers)."""
            nonlocal pool
            if pool is None:
                return
            procs = getattr(pool, "_processes", None) or {}
            for proc in list(procs.values()):
                try:
                    proc.terminate()
                except Exception:  # noqa: BLE001 -- already dying
                    pass
            try:
                pool.shutdown(wait=False, cancel_futures=True)
            except TypeError:  # Python < 3.9 signature
                pool.shutdown(wait=False)
            pool = None

        def recover_inflight() -> None:
            """The pool died under these cells through no proven fault
            of their own: refund the charged attempt and reschedule
            solo so any repeat offender is unambiguous."""
            for cell, _ in inflight.values():
                cell.attempts -= 1
                quarantine.append(cell)
            inflight.clear()

        def submit_one(cell: _Cell) -> bool:
            nonlocal rebuilds
            try:
                fut = pool.submit(self._cell_fn,
                                  self._programs[cell.benchmark],
                                  self._traces[cell.benchmark],
                                  cell.primary)
            except Exception:  # noqa: BLE001 -- pool already broken
                quarantine.appendleft(cell)
                recover_inflight()
                kill_pool()
                rebuilds += 1
                return False
            cell.attempts += 1
            deadline = (time.monotonic() + cell_timeout) \
                if cell_timeout else None
            inflight[fut] = (cell, deadline)
            return True

        def retry_or_fail(cell: _Cell, status: str) -> None:
            if cell.attempts > max_retries:
                self._fail_cell(cell, status, jobs)
            else:
                self._sleep_backoff(cell.attempts)
                quarantine.append(cell)

        try:
            while queue or quarantine or inflight:
                if pool is None:
                    if rebuilds > self.max_pool_rebuilds:
                        raise _PoolUnusable()
                    try:
                        pool = self._pool_factory(workers)
                    except Exception:  # noqa: BLE001 -- env failure
                        rebuilds += 1
                        self._sleep_backoff(rebuilds)
                        continue
                submitted = True
                if quarantine:
                    if not inflight:
                        submitted = submit_one(quarantine.popleft())
                else:
                    while submitted and queue and len(inflight) < workers:
                        submitted = submit_one(queue.popleft())
                if not submitted or not inflight:
                    continue

                timeout = None
                deadlines = [dl for _, dl in inflight.values()
                             if dl is not None]
                if deadlines:
                    timeout = max(0.0, min(deadlines) - time.monotonic())
                done, _ = wait(list(inflight), timeout=timeout,
                               return_when=FIRST_COMPLETED)

                if not done:
                    # A deadline elapsed with the worker still running.
                    now = time.monotonic()
                    overdue = [fut for fut, (_, dl) in inflight.items()
                               if dl is not None and now >= dl]
                    if not overdue:
                        continue
                    for fut in overdue:
                        cell, _ = inflight.pop(fut)
                        cell.timeouts += 1
                        cell.error = (f"cell exceeded the "
                                      f"{cell_timeout:g}s timeout "
                                      f"(attempt {cell.attempts})")
                        retry_or_fail(cell, STATUS_TIMEOUT)
                    # The hung worker cannot be reclaimed: tear the
                    # pool down and recover the innocent cells.
                    recover_inflight()
                    kill_pool()
                    rebuilds += 1
                    continue

                crashed: List[_Cell] = []
                for fut in done:
                    cell, _ = inflight.pop(fut)
                    try:
                        payload = fut.result()
                    except BrokenProcessPool:
                        crashed.append(cell)
                    except Exception as exc:  # noqa: BLE001
                        cell.error = f"{type(exc).__name__}: {exc}"
                        retry_or_fail(cell, STATUS_FAILED)
                    else:
                        self._finish_cell(cell, payload, results, jobs)
                        rebuilds = 0
                if crashed:
                    if len(crashed) == 1 and not inflight:
                        # Sole running cell: the crash is its.
                        cell = crashed[0]
                        cell.error = _CRASH_ERROR
                        retry_or_fail(cell, STATUS_FAILED)
                    else:
                        # Ambiguous: nobody is charged; every victim
                        # re-runs solo so a crasher convicts itself.
                        for cell in crashed:
                            cell.attempts -= 1
                            quarantine.append(cell)
                    recover_inflight()
                    kill_pool()
                    rebuilds += 1
        except _PoolUnusable:
            remaining = list(queue) + list(quarantine) + \
                [cell for cell, _ in inflight.values()]
            inflight.clear()
            self._run_cells_serial(remaining, results, jobs, max_retries)
        finally:
            if pool is not None:
                try:
                    pool.shutdown(wait=False, cancel_futures=True)
                except TypeError:
                    pool.shutdown(wait=False)

    def _sleep_backoff(self, attempt: int) -> None:
        delay = self.retry_backoff * (2 ** (attempt - 1))
        if delay > 0:
            time.sleep(min(delay, 4.0))

    # ------------------------------------------------------------ manifest

    def write_manifest(self, path: Union[str, Path]) -> Path:
        """Archive the run manifest (a list of versioned
        :class:`~repro.obs.runrecord.RunRecord` dicts) as JSON; returns
        the path written."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.manifest, indent=2,
                                   sort_keys=True) + "\n")
        return path

    def records(self) -> List[RunRecord]:
        """Every completed cell as a validated :class:`RunRecord`."""
        return [RunRecord.from_dict(entry) for entry in self.manifest]

    def last_record(self) -> RunRecord:
        """The most recently completed cell as a :class:`RunRecord`."""
        if not self.manifest:
            raise IndexError("no cells have completed yet")
        return RunRecord.from_dict(self.manifest[-1])

    @property
    def cache_hits(self) -> int:
        return sum(1 for entry in self.manifest if entry["cache_hit"])

    @property
    def cache_misses(self) -> int:
        """Cells that simulated successfully (no cache entry)."""
        return sum(1 for entry in self.manifest
                   if not entry["cache_hit"]
                   and entry["status"] == STATUS_OK)

    @property
    def failures(self) -> int:
        """Cells recorded as failed/timed-out (no result produced)."""
        return sum(1 for entry in self.manifest
                   if entry["status"] != STATUS_OK)

    # ------------------------------------------------------------ internals

    def _finish_cell(self, cell: _Cell, payload: dict,
                     results: Dict[Tuple[str, str], SimResult],
                     jobs: int) -> None:
        """Checkpoint one completed cell immediately: persist to cache,
        then record/rehydrate every (benchmark, config) alias."""
        if self.cache:
            self.cache.store(cell.key, payload)
        for config in cell.configs:
            self._record(cell.benchmark, config, payload, cell.key, False,
                         jobs=jobs, attempts=max(cell.attempts, 1))
            results[(cell.benchmark, config.name)] = \
                self._rehydrate(config, payload)

    def _fail_cell(self, cell: _Cell, status: str, jobs: int) -> None:
        """Record a structured failure entry for every alias of a cell
        that exhausted its retry budget."""
        for config in cell.configs:
            record = RunRecord.failure(
                benchmark=cell.benchmark, config_name=config.name,
                config=config.to_dict(), scale=self.scale, key=cell.key,
                status=status, attempts=max(cell.attempts, 1),
                error=cell.error,
                engine=self._engine_provenance(jobs))
            self.manifest.append(record.to_dict())
            if self.verbose:
                print(f"  {cell.benchmark:<10s} {config.name:<28s} "
                      f"{status.upper()} after {record.attempts} "
                      f"attempt(s): {cell.error}")

    def _rehydrate(self, config: ProcessorConfig,
                   payload: dict) -> SimResult:
        return SimResult(payload["program_name"], config,
                         payload["cycles"], payload["instructions"],
                         Counters.from_dict(payload["counters"]))

    def _engine_provenance(self, jobs: Optional[int]) -> dict:
        return {"jobs": self.jobs if jobs is None else jobs,
                "cache_enabled": self.cache is not None}

    def _record(self, benchmark: str, config,
                payload: dict, key: str, hit: bool,
                jobs: Optional[int] = None, attempts: int = 1,
                cores: int = 1, sampling: Optional[dict] = None) -> None:
        cycles = payload["cycles"]
        instructions = payload["instructions"]
        if sampling is not None:
            # Sampled cell: the headline IPC is the per-interval mean
            # (the estimator the confidence interval is stated for),
            # not the ratio of summed measured spans.
            ipc = sampling["ipc_mean"]
        else:
            ipc = instructions / cycles if cycles else 0.0
        record = RunRecord(
            benchmark=benchmark,
            config_name=config.name,
            config=config.to_dict(),
            scale=self.scale,
            key=key,
            cycles=cycles,
            instructions=instructions,
            ipc=ipc,
            counters=dict(payload["counters"]),
            wall_time=payload["wall_time"],
            cache_hit=hit,
            engine=self._engine_provenance(jobs),
            status=STATUS_OK,
            attempts=attempts,
            cores=cores,
            sampling=sampling)
        entry = record.to_dict()
        self.manifest.append(entry)
        if self.verbose:
            origin = "cache" if hit else f"{entry['wall_time']:.2f}s"
            print(f"  {benchmark:<10s} {config.name:<28s} "
                  f"IPC={entry['ipc']:.3f} [{origin}]")


def normalized_ipc(results: Dict[Tuple[str, str], SimResult],
                   benchmark: str, config_name: str,
                   baseline_name: str) -> float:
    """IPC of one run normalized to the baseline configuration's run."""
    baseline = results[(benchmark, baseline_name)].ipc
    if not baseline:
        return 0.0
    return results[(benchmark, config_name)].ipc / baseline


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean; 0.0 for an empty sequence *or* any non-positive
    value.  Silently dropping non-positive values would let a failed or
    zero-IPC cell *inflate* a suite average, so a poisoned input
    poisons the mean instead."""
    values = list(values)
    if not values or any(v <= 0 for v in values):
        return 0.0
    product = 1.0
    for value in values:
        product *= value
    return product ** (1.0 / len(values))


def suite_average(results: Dict[Tuple[str, str], SimResult],
                  benchmarks: Iterable[str], config_name: str,
                  baseline_name: str) -> float:
    """Geometric mean of normalized IPCs over a benchmark list (0.0 if
    any cell is missing-equivalent, i.e. normalizes non-positive)."""
    return geometric_mean(
        normalized_ipc(results, benchmark, config_name, baseline_name)
        for benchmark in benchmarks)
