"""Experiment engine: (benchmark x configuration) grids, in parallel,
with golden-trace reuse and a persistent on-disk result cache.

One :class:`ExperimentRunner` owns three layers of reuse:

* **golden traces** -- each workload's architectural execution happens
  once per (benchmark, scale) no matter how many processor
  configurations are measured against it, and is shipped to worker
  processes so they never re-interpret the program;
* **process-pool scheduling** -- ``run_suite`` farms uncached grid cells
  out to a ``ProcessPoolExecutor`` (``jobs`` workers, default
  ``os.cpu_count()``; ``jobs=1`` preserves the serial in-process path
  for determinism tests and debugging);
* **persistent result cache** -- completed cells are stored as JSON
  under ``.repro_cache/`` (override with ``cache_dir`` or the
  ``REPRO_CACHE_DIR`` environment variable), keyed by a content hash of
  the benchmark name, the scale, and the full canonical
  ``ProcessorConfig.to_dict()``, so identical cells are never
  re-simulated across runs, benches, or processes.

The simulator is fully deterministic, so all three paths (serial,
parallel, cached) produce identical :class:`SimResult` grids.

Every cell additionally appends one versioned
:class:`~repro.obs.runrecord.RunRecord` dict to :attr:`ExperimentRunner.
manifest` -- schema version, config dict, cycles, IPC, metric snapshot,
wall-time, and engine/cache provenance -- which the figure layer, the
benches, ``repro.api``, and the CLI's ``--format json`` all consume
instead of ad-hoc prints (see :func:`repro.harness.figures.
manifest_table` and :meth:`ExperimentRunner.records`).
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple, Union

from ..isa.interp import RetireRecord, run_program
from ..isa.program import Program
from ..obs.runrecord import RunRecord
from ..pipeline.config import ProcessorConfig
from ..pipeline.processor import Processor, SimResult
from ..stats.counters import Counters
from ..workloads import suites

#: Default dynamic instruction budget per benchmark run.  Small enough for
#: a pure-Python cycle-level simulator, large enough for the rates the
#: paper reports to stabilise.
DEFAULT_SCALE = 20_000

#: Upper bound on architectural execution (guards against kernel bugs).
TRACE_LIMIT = 5_000_000

#: Bump whenever the simulator's observable behaviour or the cached
#: payload layout changes; every existing cache entry is invalidated.
CACHE_FORMAT = 1

#: Default on-disk cache location (relative to the working directory).
DEFAULT_CACHE_DIR = ".repro_cache"


def cache_key(benchmark: str, scale: int, config: ProcessorConfig) -> str:
    """Content hash identifying one grid cell.

    The hash covers the benchmark name, the scale, the cache format
    version, and the full canonical config dict *except* ``name``:
    the name is a display label, so two differently named but otherwise
    identical configurations share one cache entry.
    """
    payload = config.to_dict()
    payload.pop("name", None)
    canonical = json.dumps(
        {"format": CACHE_FORMAT, "benchmark": benchmark, "scale": scale,
         "config": payload},
        sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class ResultCache:
    """One-JSON-file-per-result cache under a directory.

    Files are written atomically (temp file + rename) so concurrent
    runners sharing a cache directory can only ever observe complete
    entries; unreadable or corrupt entries read as misses.
    """

    def __init__(self, directory: Union[str, Path]):
        self.directory = Path(directory)

    def path(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    def load(self, key: str) -> Optional[dict]:
        try:
            payload = json.loads(self.path(key).read_text())
        except (OSError, ValueError):
            return None
        if not isinstance(payload, dict) or \
                payload.get("format") != CACHE_FORMAT:
            return None
        return payload

    def store(self, key: str, payload: dict) -> None:
        self.directory.mkdir(parents=True, exist_ok=True)
        final = self.path(key)
        tmp = final.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(json.dumps(payload, sort_keys=True))
        tmp.replace(final)


def _simulate_cell(program: Program, trace: List[RetireRecord],
                   config: ProcessorConfig) -> dict:
    """Simulate one grid cell; returns the cacheable payload dict.

    Module-level so ``ProcessPoolExecutor`` can pickle it; the golden
    trace arrives prebuilt from the parent process.
    """
    started = time.perf_counter()
    result = Processor(program, config, trace=trace).run()
    return {
        "format": CACHE_FORMAT,
        "program_name": result.program_name,
        "cycles": result.cycles,
        "instructions": result.instructions,
        "counters": result.counters.as_dict(),
        "wall_time": time.perf_counter() - started,
    }


def _simulate_task(task: Tuple[Program, List[RetireRecord],
                               ProcessorConfig]) -> dict:
    """Single-argument adapter for ``ProcessPoolExecutor.map``."""
    return _simulate_cell(*task)


class ExperimentRunner:
    """Runs (benchmark x configuration) grids with golden-trace reuse,
    process-pool parallelism, and persistent result caching."""

    def __init__(self, scale: int = DEFAULT_SCALE, verbose: bool = False,
                 jobs: Optional[int] = None,
                 cache_dir: Optional[Union[str, Path]] = None,
                 use_cache: bool = True):
        self.scale = scale
        self.verbose = verbose
        self.jobs = jobs if jobs is not None else (os.cpu_count() or 1)
        if use_cache:
            self.cache: Optional[ResultCache] = ResultCache(
                cache_dir or os.environ.get("REPRO_CACHE_DIR",
                                            DEFAULT_CACHE_DIR))
        else:
            self.cache = None
        #: One dict per completed cell, in completion order.
        self.manifest: List[dict] = []
        self._programs: Dict[str, Program] = {}
        self._traces: Dict[str, List[RetireRecord]] = {}

    # ------------------------------------------------------------ workloads

    def program(self, benchmark: str) -> Program:
        if benchmark not in self._programs:
            self._programs[benchmark] = suites.build(benchmark, self.scale)
        return self._programs[benchmark]

    def trace(self, benchmark: str) -> List[RetireRecord]:
        if benchmark not in self._traces:
            self._traces[benchmark] = run_program(self.program(benchmark),
                                                  TRACE_LIMIT)
        return self._traces[benchmark]

    # ------------------------------------------------------------ single cell

    def run(self, benchmark: str, config: ProcessorConfig) -> SimResult:
        """Simulate one benchmark under one configuration (serial,
        in-process), consulting and filling the result cache."""
        key = cache_key(benchmark, self.scale, config)
        payload = self.cache.load(key) if self.cache else None
        hit = payload is not None
        if payload is None:
            payload = _simulate_cell(self.program(benchmark),
                                     self.trace(benchmark), config)
            if self.cache:
                self.cache.store(key, payload)
        self._record(benchmark, config, payload, key, hit)
        return self._rehydrate(config, payload)

    # ------------------------------------------------------------ grids

    def run_suite(self, benchmarks: Iterable[str],
                  configs: Iterable[ProcessorConfig],
                  jobs: Optional[int] = None
                  ) -> Dict[Tuple[str, str], SimResult]:
        """Run the full grid; keys are ``(benchmark, config.name)``.

        Cached cells are resolved up front; the remainder is simulated
        serially (``jobs=1``) or farmed out to a process pool.  The
        returned grid is identical in all modes.
        """
        benchmarks = list(benchmarks)
        configs = list(configs)
        jobs = self.jobs if jobs is None else jobs
        results: Dict[Tuple[str, str], SimResult] = {}
        pending: List[Tuple[str, ProcessorConfig, str]] = []
        for benchmark in benchmarks:
            for config in configs:
                key = cache_key(benchmark, self.scale, config)
                payload = self.cache.load(key) if self.cache else None
                if payload is not None:
                    self._record(benchmark, config, payload, key, True)
                    results[(benchmark, config.name)] = \
                        self._rehydrate(config, payload)
                else:
                    pending.append((benchmark, config, key))

        if len(pending) <= 1 or jobs <= 1:
            for benchmark, config, key in pending:
                payload = _simulate_cell(self.program(benchmark),
                                         self.trace(benchmark), config)
                results[(benchmark, config.name)] = self._finish(
                    benchmark, config, key, payload)
            return results

        # Build every needed golden trace once, in the parent, before the
        # pool forks, so workers inherit/receive them instead of
        # re-interpreting the program per cell.
        tasks = [(self.program(benchmark), self.trace(benchmark), config)
                 for benchmark, config, _ in pending]
        with ProcessPoolExecutor(
                max_workers=min(jobs, len(pending))) as pool:
            for (benchmark, config, key), payload in zip(
                    pending, pool.map(_simulate_task, tasks)):
                results[(benchmark, config.name)] = self._finish(
                    benchmark, config, key, payload)
        return results

    # ------------------------------------------------------------ manifest

    def write_manifest(self, path: Union[str, Path]) -> Path:
        """Archive the run manifest (a list of versioned
        :class:`~repro.obs.runrecord.RunRecord` dicts) as JSON; returns
        the path written."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.manifest, indent=2,
                                   sort_keys=True) + "\n")
        return path

    def records(self) -> List[RunRecord]:
        """Every completed cell as a validated :class:`RunRecord`."""
        return [RunRecord.from_dict(entry) for entry in self.manifest]

    def last_record(self) -> RunRecord:
        """The most recently completed cell as a :class:`RunRecord`."""
        if not self.manifest:
            raise IndexError("no cells have completed yet")
        return RunRecord.from_dict(self.manifest[-1])

    @property
    def cache_hits(self) -> int:
        return sum(1 for entry in self.manifest if entry["cache_hit"])

    @property
    def cache_misses(self) -> int:
        return sum(1 for entry in self.manifest if not entry["cache_hit"])

    # ------------------------------------------------------------ internals

    def _finish(self, benchmark: str, config: ProcessorConfig, key: str,
                payload: dict) -> SimResult:
        if self.cache:
            self.cache.store(key, payload)
        self._record(benchmark, config, payload, key, False)
        return self._rehydrate(config, payload)

    def _rehydrate(self, config: ProcessorConfig,
                   payload: dict) -> SimResult:
        return SimResult(payload["program_name"], config,
                         payload["cycles"], payload["instructions"],
                         Counters.from_dict(payload["counters"]))

    def _record(self, benchmark: str, config: ProcessorConfig,
                payload: dict, key: str, hit: bool) -> None:
        cycles = payload["cycles"]
        instructions = payload["instructions"]
        record = RunRecord(
            benchmark=benchmark,
            config_name=config.name,
            config=config.to_dict(),
            scale=self.scale,
            key=key,
            cycles=cycles,
            instructions=instructions,
            ipc=instructions / cycles if cycles else 0.0,
            counters=dict(payload["counters"]),
            wall_time=payload["wall_time"],
            cache_hit=hit,
            engine={"jobs": self.jobs,
                    "cache_enabled": self.cache is not None})
        entry = record.to_dict()
        self.manifest.append(entry)
        if self.verbose:
            origin = "cache" if hit else f"{entry['wall_time']:.2f}s"
            print(f"  {benchmark:<10s} {config.name:<28s} "
                  f"IPC={entry['ipc']:.3f} [{origin}]")


def normalized_ipc(results: Dict[Tuple[str, str], SimResult],
                   benchmark: str, config_name: str,
                   baseline_name: str) -> float:
    """IPC of one run normalized to the baseline configuration's run."""
    baseline = results[(benchmark, baseline_name)].ipc
    if not baseline:
        return 0.0
    return results[(benchmark, config_name)].ipc / baseline


def geometric_mean(values: Iterable[float]) -> float:
    values = [v for v in values if v > 0]
    if not values:
        return 0.0
    product = 1.0
    for value in values:
        product *= value
    return product ** (1.0 / len(values))


def suite_average(results: Dict[Tuple[str, str], SimResult],
                  benchmarks: Iterable[str], config_name: str,
                  baseline_name: str) -> float:
    """Geometric mean of normalized IPCs over a benchmark list."""
    return geometric_mean(
        normalized_ipc(results, benchmark, config_name, baseline_name)
        for benchmark in benchmarks)
