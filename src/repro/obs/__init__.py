"""Structured observability layer: metric registry + versioned run records.

* :mod:`repro.obs.metrics` -- declared metrics (kind, owning subsystem,
  description, unit) behind every counter name the simulator increments;
* :mod:`repro.obs.runrecord` -- the versioned :class:`RunRecord` results
  schema emitted by the experiment engine, ``repro.api``, and the CLI's
  ``--format json``.

Trace sampling (bounded ring buffer + per-epoch snapshots) lives with
the tracer it extends, :mod:`repro.pipeline.pipetrace`.
"""

from .metrics import (
    COUNTER,
    GAUGE,
    HISTOGRAM,
    METRICS,
    Metric,
    MetricRegistry,
    RATE,
    UnknownMetricError,
    declare_metric,
)
from .runrecord import (
    KIND_FUZZ,
    KIND_LITMUS,
    KIND_RUN,
    STATUS_FAILED,
    STATUS_OK,
    STATUS_TIMEOUT,
    RunRecord,
    SCHEMA_VERSION,
    SCHEMA_VERSION_MULTICORE,
    SchemaError,
    records_from_manifest,
    validate_record,
)

__all__ = [
    "COUNTER",
    "GAUGE",
    "HISTOGRAM",
    "KIND_FUZZ",
    "KIND_LITMUS",
    "KIND_RUN",
    "METRICS",
    "Metric",
    "MetricRegistry",
    "RATE",
    "RunRecord",
    "SCHEMA_VERSION",
    "SCHEMA_VERSION_MULTICORE",
    "STATUS_FAILED",
    "STATUS_OK",
    "STATUS_TIMEOUT",
    "SchemaError",
    "UnknownMetricError",
    "declare_metric",
    "records_from_manifest",
    "validate_record",
]
