"""Metric registry: declared, typed metrics behind the counter names.

Every counter the simulator increments is *declared* here-adjacent (each
component declares its own metrics at import time via
:func:`declare_metric`), turning the previously stringly-typed counter
namespace into a checkable schema:

* a :class:`Metric` records the counter's kind (counter / gauge / rate /
  histogram), the subsystem that owns it, a human description, and a
  unit;
* reports and exporters look names up through :meth:`MetricRegistry.get`,
  so a typo'd counter string raises :class:`UnknownMetricError` instead
  of silently rendering a blank;
* ``scripts/check_metrics.py`` lints the source tree: every counter name
  incremented anywhere in ``src/`` must resolve to a declaration.

The registry is *metadata only*.  The runtime value store remains
:class:`repro.stats.counters.Counters` -- declaring a metric allocates
nothing, costs nothing per event, and cannot perturb simulation results
(the ``manifest_digest`` bit-exactness gate holds across this layer).
"""

from __future__ import annotations

import re
from typing import Dict, Iterator, List, Optional

#: Multicore runs namespace per-core values as ``core<N>_<name>`` (see
#: :meth:`repro.pipeline.system.System.finalize`); the registry resolves
#: such names to the base declaration -- the metadata is identical for
#: every core.
CORE_PREFIX = re.compile(r"^core\d+_")

#: Metric kinds.
COUNTER = "counter"      #: monotonically increasing event count
GAUGE = "gauge"          #: point-in-time value set once per run (e.g. cycles)
RATE = "rate"            #: derived ratio of two other metrics
HISTOGRAM = "histogram"  #: distribution sample (trace/epoch exports)

_KINDS = frozenset({COUNTER, GAUGE, RATE, HISTOGRAM})


class UnknownMetricError(KeyError):
    """A counter name was used that no component ever declared."""


class Metric:
    """Declaration of one named metric."""

    __slots__ = ("name", "kind", "subsystem", "description", "unit")

    def __init__(self, name: str, kind: str, subsystem: str,
                 description: str, unit: str):
        if kind not in _KINDS:
            raise ValueError(f"unknown metric kind {kind!r}")
        self.name = name
        self.kind = kind
        self.subsystem = subsystem
        self.description = description
        self.unit = unit

    def to_dict(self) -> dict:
        return {"name": self.name, "kind": self.kind,
                "subsystem": self.subsystem,
                "description": self.description, "unit": self.unit}

    def __repr__(self) -> str:
        return (f"Metric({self.name}: {self.kind}/{self.subsystem}, "
                f"unit={self.unit!r})")


class MetricRegistry:
    """All declared metrics, keyed by counter name.

    Redeclaring a name with identical parameters is a no-op (safe under
    re-imports); redeclaring with *different* parameters raises, so two
    components can never silently claim one counter name for different
    meanings.
    """

    def __init__(self):
        self._metrics: Dict[str, Metric] = {}

    def declare(self, name: str, kind: str = COUNTER, subsystem: str = "",
                description: str = "", unit: str = "events") -> Metric:
        if CORE_PREFIX.match(name):
            raise ValueError(
                f"metric {name!r} collides with the reserved per-core "
                f"namespace 'core<N>_'; declare the base name instead")
        metric = Metric(name, kind, subsystem, description, unit)
        existing = self._metrics.get(name)
        if existing is not None:
            if (existing.kind, existing.subsystem, existing.unit) != \
                    (metric.kind, metric.subsystem, metric.unit):
                raise ValueError(
                    f"metric {name!r} already declared by "
                    f"{existing.subsystem!r} as {existing.kind}"
                    f"/{existing.unit!r}, redeclared as {metric.kind}"
                    f"/{metric.unit!r} by {metric.subsystem!r}")
            return existing
        self._metrics[name] = metric
        return metric

    @staticmethod
    def base_name(name: str) -> str:
        """Strip the per-core ``core<N>_`` namespace, if present."""
        return CORE_PREFIX.sub("", name, count=1)

    def get(self, name: str) -> Metric:
        metric = self.lookup(name)
        if metric is None:
            raise UnknownMetricError(
                f"counter {name!r} is not declared in the metric "
                f"registry (typo? see repro.obs.metrics)")
        return metric

    def lookup(self, name: str) -> Optional[Metric]:
        metric = self._metrics.get(name)
        if metric is None:
            metric = self._metrics.get(self.base_name(name))
        return metric

    def __contains__(self, name: str) -> bool:
        return self.lookup(name) is not None

    def __iter__(self) -> Iterator[Metric]:
        return iter(self._metrics.values())

    def __len__(self) -> int:
        return len(self._metrics)

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def by_subsystem(self, subsystem: str) -> List[Metric]:
        return [m for _, m in sorted(self._metrics.items())
                if m.subsystem == subsystem]

    def to_dict(self) -> dict:
        """JSON-serializable dump of every declaration (tooling)."""
        return {name: metric.to_dict()
                for name, metric in sorted(self._metrics.items())}


#: The process-wide registry every component declares into.
METRICS = MetricRegistry()


def declare_metric(name: str, kind: str = COUNTER, subsystem: str = "",
                   description: str = "", unit: str = "events") -> Metric:
    """Declare one metric in the global registry (import-time use)."""
    return METRICS.declare(name, kind=kind, subsystem=subsystem,
                           description=description, unit=unit)
