"""Versioned, structured run records -- the stable results schema.

A :class:`RunRecord` is the machine-readable outcome of one simulated
(benchmark, configuration) cell: schema version, full canonical config,
workload identity (benchmark + scale), every metric value, wall-time,
and engine/cache provenance.  The experiment engine emits one per cell
into its manifest, ``repro.api`` returns them, and the CLI's
``--format json`` prints them -- all the same document.

Versioning policy
-----------------

``SCHEMA_VERSION`` is bumped whenever a required field is added,
removed, renamed, or changes type.  :meth:`RunRecord.from_dict` refuses
payloads from any other version, so tooling fails loudly instead of
misreading old dumps; the golden-file test in ``tests/test_obs.py``
pins the current shape and forces the bump to be deliberate.

The metric values are serialized under the key ``"counters"`` -- the
name the result cache and the ``manifest_digest`` bit-exactness gate
have always hashed -- so introducing the schema changed no digests.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

#: Bump on any incompatible change to the record shape (see module doc).
#: v2 added the fault-tolerance fields ``status``/``attempts``/``error``
#: so the experiment engine can record failed and timed-out grid cells
#: structurally instead of raising away the whole sweep.
SCHEMA_VERSION = 2

#: Multicore records (``cores > 1``) serialize under this version: they
#: add the required ``cores`` field and namespace per-core metric values
#: as ``core<N>_<name>`` in ``counters``.  Single-core records keep
#: emitting v2 byte-for-byte, so existing dumps, goldens, and the
#: manifest digest are untouched.
SCHEMA_VERSION_MULTICORE = 3

#: ``kind`` discriminator for a single-cell record.  Multi-run CLI
#: envelopes (compare/figure/bench/list) carry their own kinds but share
#: the ``schema_version`` field.
KIND_RUN = "run"

#: ``kind`` discriminator for a differential-fuzz campaign summary
#: (:meth:`repro.verify.fuzzer.FuzzReport.to_dict`); same
#: ``schema_version`` field as every other envelope.
KIND_FUZZ = "fuzz"

#: ``kind`` discriminator for a litmus campaign summary
#: (:meth:`repro.verify.litmus_oracle.LitmusReport.to_dict`).
KIND_LITMUS = "litmus"

#: ``status`` values: a cell that simulated successfully, one whose
#: worker kept failing (exception or crash) past the retry budget, and
#: one that exceeded the per-cell wall-clock timeout.
STATUS_OK = "ok"
STATUS_FAILED = "failed"
STATUS_TIMEOUT = "timeout"
VALID_STATUSES = (STATUS_OK, STATUS_FAILED, STATUS_TIMEOUT)


class SchemaError(ValueError):
    """A payload does not conform to the RunRecord schema."""


#: Required fields and their accepted types (the schema, in code).
_FIELDS = {
    "schema_version": int,
    "kind": str,
    "benchmark": str,
    "config_name": str,
    "config": dict,
    "scale": int,
    "key": str,
    "cycles": int,
    "instructions": int,
    "ipc": (int, float),
    "counters": dict,
    "wall_time": (int, float),
    "cache_hit": bool,
    "engine": dict,
    "status": str,
    "attempts": int,
    "error": str,
}


def validate_record(payload: dict) -> None:
    """Raise :class:`SchemaError` unless ``payload`` is a valid record."""
    if not isinstance(payload, dict):
        raise SchemaError(f"record payload must be a dict, "
                          f"got {type(payload).__name__}")
    version = payload.get("schema_version")
    if version not in (SCHEMA_VERSION, SCHEMA_VERSION_MULTICORE):
        raise SchemaError(
            f"unsupported schema_version {version!r} "
            f"(this build reads versions {SCHEMA_VERSION} and "
            f"{SCHEMA_VERSION_MULTICORE})")
    if version == SCHEMA_VERSION_MULTICORE:
        cores = payload.get("cores")
        if not isinstance(cores, int) or isinstance(cores, bool) \
                or cores < 1:
            raise SchemaError(
                f"v{SCHEMA_VERSION_MULTICORE} record field 'cores' must "
                f"be a positive int, got {cores!r}")
    elif "cores" in payload:
        raise SchemaError(
            f"v{SCHEMA_VERSION} records must not carry a 'cores' field "
            f"(multicore records are v{SCHEMA_VERSION_MULTICORE})")
    for field, types in _FIELDS.items():
        if field not in payload:
            raise SchemaError(f"record is missing required field "
                              f"{field!r}")
        if not isinstance(payload[field], types):
            raise SchemaError(
                f"record field {field!r} has type "
                f"{type(payload[field]).__name__}, expected "
                f"{types if isinstance(types, type) else types[0].__name__}")
    if payload["status"] not in VALID_STATUSES:
        raise SchemaError(f"record status {payload['status']!r} must be "
                          f"one of {VALID_STATUSES}")
    for name, value in payload["counters"].items():
        if not isinstance(name, str) or \
                not isinstance(value, (int, float)):
            raise SchemaError(f"counter {name!r} must map a string to "
                              f"a number")
    if "sampling" in payload and \
            not isinstance(payload["sampling"], dict):
        raise SchemaError(
            f"record field 'sampling' must be a dict when present, got "
            f"{type(payload['sampling']).__name__}")


class RunRecord:
    """One simulated cell's structured, versioned outcome."""

    __slots__ = ("benchmark", "config_name", "config", "scale", "key",
                 "cycles", "instructions", "ipc", "counters", "wall_time",
                 "cache_hit", "engine", "status", "attempts", "error",
                 "cores", "sampling")

    def __init__(self, benchmark: str, config_name: str, config: dict,
                 scale: int, key: str, cycles: int, instructions: int,
                 ipc: float, counters: Dict[str, float],
                 wall_time: float = 0.0, cache_hit: bool = False,
                 engine: Optional[dict] = None, status: str = STATUS_OK,
                 attempts: int = 1, error: str = "", cores: int = 1,
                 sampling: Optional[dict] = None):
        self.benchmark = benchmark
        self.config_name = config_name
        self.config = config
        self.scale = scale
        self.key = key
        self.cycles = cycles
        self.instructions = instructions
        self.ipc = ipc
        self.counters = counters
        self.wall_time = wall_time
        self.cache_hit = cache_hit
        self.engine = engine if engine is not None else {}
        self.status = status
        self.attempts = attempts
        self.error = error
        self.cores = cores
        # Sampled-mode metadata (IPC mean/CI, interval table); None for
        # exact-mode records, and serialized only when present so exact
        # records -- and the manifest digest over them -- stay
        # byte-identical.
        self.sampling = sampling

    # -- alternate constructors ------------------------------------------------

    @classmethod
    def from_dict(cls, payload: dict) -> "RunRecord":
        """Rebuild (and validate) a record from its serialized form."""
        validate_record(payload)
        return cls(benchmark=payload["benchmark"],
                   config_name=payload["config_name"],
                   config=payload["config"], scale=payload["scale"],
                   key=payload["key"], cycles=payload["cycles"],
                   instructions=payload["instructions"],
                   ipc=payload["ipc"],
                   counters=dict(payload["counters"]),
                   wall_time=payload["wall_time"],
                   cache_hit=payload["cache_hit"],
                   engine=dict(payload["engine"]),
                   status=payload["status"],
                   attempts=payload["attempts"],
                   error=payload["error"],
                   cores=payload.get("cores", 1),
                   sampling=payload.get("sampling"))

    @classmethod
    def from_sim_result(cls, result, benchmark: Optional[str] = None,
                        scale: int = 0, wall_time: float = 0.0
                        ) -> "RunRecord":
        """Wrap a bare :class:`~repro.pipeline.processor.SimResult`
        (direct ``Processor`` use, outside the experiment engine)."""
        return cls(benchmark=benchmark or result.program_name,
                   config_name=result.config.name,
                   config=result.config.to_dict(), scale=scale, key="",
                   cycles=result.cycles, instructions=result.instructions,
                   ipc=result.ipc, counters=result.counters.as_dict(),
                   wall_time=wall_time, cache_hit=False, engine={})

    @classmethod
    def from_system_result(cls, result, benchmark: Optional[str] = None,
                           scale: int = 0, wall_time: float = 0.0,
                           key: str = "") -> "RunRecord":
        """Wrap an N-core :class:`~repro.pipeline.system.SystemResult`
        (serializes as schema v3 when ``cores > 1``)."""
        return cls(benchmark=benchmark or result.program_name,
                   config_name=result.config.name,
                   config=result.config.to_dict(), scale=scale, key=key,
                   cycles=result.cycles, instructions=result.instructions,
                   ipc=result.ipc, counters=dict(result.counters),
                   wall_time=wall_time, cache_hit=False, engine={},
                   cores=result.config.cores)

    @classmethod
    def failure(cls, benchmark: str, config_name: str, config: dict,
                scale: int, key: str, status: str, attempts: int,
                error: str, wall_time: float = 0.0,
                engine: Optional[dict] = None) -> "RunRecord":
        """A structured failure entry for a cell that never produced a
        result (worker crash, persistent exception, or timeout)."""
        return cls(benchmark=benchmark, config_name=config_name,
                   config=config, scale=scale, key=key, cycles=0,
                   instructions=0, ipc=0.0, counters={},
                   wall_time=wall_time, cache_hit=False, engine=engine,
                   status=status, attempts=attempts, error=error)

    # -- views -----------------------------------------------------------------

    @property
    def ok(self) -> bool:
        """True iff the cell simulated successfully."""
        return self.status == STATUS_OK

    @property
    def metrics(self) -> Dict[str, float]:
        """The metric values (alias of :attr:`counters`; the serialized
        key stays ``"counters"`` for digest stability)."""
        return self.counters

    def metric(self, name: str, default: float = 0.0) -> float:
        return self.counters.get(name, default)

    def rate(self, numerator: str, denominator: str) -> float:
        denom = self.counters.get(denominator, 0.0)
        if not denom:
            return 0.0
        return self.counters.get(numerator, 0.0) / denom

    # -- serialization ---------------------------------------------------------

    def to_dict(self) -> dict:
        payload = {
            "schema_version": SCHEMA_VERSION,
            "kind": KIND_RUN,
            "benchmark": self.benchmark,
            "config_name": self.config_name,
            "config": self.config,
            "scale": self.scale,
            "key": self.key,
            "cycles": self.cycles,
            "instructions": self.instructions,
            "ipc": self.ipc,
            "counters": self.counters,
            "wall_time": self.wall_time,
            "cache_hit": self.cache_hit,
            "engine": self.engine,
            "status": self.status,
            "attempts": self.attempts,
            "error": self.error,
        }
        if self.cores > 1:
            # Multicore is the only v3 shape; single-core records keep
            # serializing as v2 byte-for-byte (digest/golden stability).
            payload["schema_version"] = SCHEMA_VERSION_MULTICORE
            payload["cores"] = self.cores
        if self.sampling is not None:
            # Optional block, same pattern as ``cores``: exact-mode
            # records never emit the key, so their bytes (and the
            # manifest digest) are unchanged by the sampling feature.
            payload["sampling"] = self.sampling
        return payload

    def to_json(self, indent: Optional[int] = None) -> str:
        """Canonical JSON (sorted keys; compact unless ``indent``)."""
        if indent is None:
            return json.dumps(self.to_dict(), sort_keys=True,
                              separators=(",", ":"))
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)

    def __repr__(self) -> str:
        if self.status != STATUS_OK:
            return (f"RunRecord({self.benchmark} on {self.config_name}: "
                    f"{self.status} after {self.attempts} attempt(s))")
        version = SCHEMA_VERSION_MULTICORE if self.cores > 1 \
            else SCHEMA_VERSION
        return (f"RunRecord({self.benchmark} on {self.config_name}: "
                f"IPC={self.ipc:.3f}, schema v{version})")


def records_from_manifest(manifest: List[dict]) -> List["RunRecord"]:
    """Validate and wrap every entry of an engine manifest."""
    return [RunRecord.from_dict(entry) for entry in manifest]
