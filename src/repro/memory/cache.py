"""Set-associative timing caches.

These caches model *latency only*; architectural data lives in
:class:`~repro.memory.main_memory.MainMemory`.  Keeping function and timing
separate makes every memory-subsystem configuration read identical data and
confines all value divergence to the structures under study (LSQ vs
SFC/MDT), as the paper's methodology requires.
"""

from __future__ import annotations

from typing import Dict, List

from ..obs.metrics import GAUGE, RATE, declare_metric

# -- declared metrics (metadata only; see repro.obs.metrics) -----------------
for _level in ("l1i", "l1d", "l2"):
    declare_metric(f"{_level}_accesses", kind=GAUGE, subsystem="cache",
                   description=f"{_level} cache accesses",
                   unit="accesses")
    declare_metric(f"{_level}_misses", kind=GAUGE, subsystem="cache",
                   description=f"{_level} cache misses", unit="accesses")
    declare_metric(f"{_level}_miss_rate", kind=RATE, subsystem="cache",
                   description=f"{_level} miss rate (misses/accesses)",
                   unit="ratio")


class CacheConfig:
    """Geometry and latencies of one cache level."""

    __slots__ = ("name", "size_bytes", "assoc", "line_bytes", "hit_latency",
                 "miss_penalty")

    def __init__(self, name: str, size_bytes: int, assoc: int,
                 line_bytes: int, hit_latency: int, miss_penalty: int):
        if not isinstance(assoc, int) or assoc < 1:
            raise ValueError(
                f"{name}: assoc must be a positive integer, "
                f"got {assoc!r}")
        if not isinstance(line_bytes, int) or line_bytes < 1 or \
                line_bytes & (line_bytes - 1):
            raise ValueError(
                f"{name}: line_bytes must be a power of two, "
                f"got {line_bytes!r}")
        if size_bytes % (assoc * line_bytes):
            raise ValueError(
                f"{name}: size {size_bytes} not divisible by "
                f"assoc*line ({assoc}*{line_bytes})")
        sets = size_bytes // (assoc * line_bytes)
        if sets < 1 or sets & (sets - 1):
            raise ValueError(
                f"{name}: number of sets must be a positive power of "
                f"two, computed {sets} sets from size {size_bytes} / "
                f"(assoc {assoc} * line {line_bytes})")
        self.name = name
        self.size_bytes = size_bytes
        self.assoc = assoc
        self.line_bytes = line_bytes
        self.hit_latency = hit_latency
        self.miss_penalty = miss_penalty

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.assoc * self.line_bytes)


class Cache:
    """One level of set-associative cache with LRU replacement.

    ``lookup`` probes and fills on miss, returning whether the access hit.
    Accesses and hit/miss counts are tracked for the statistics report.
    """

    def __init__(self, config: CacheConfig):
        self.config = config
        self._line_shift = config.line_bytes.bit_length() - 1
        if (1 << self._line_shift) != config.line_bytes:
            raise ValueError("line size must be a power of two")
        self._set_mask = config.num_sets - 1
        if config.num_sets & self._set_mask:
            raise ValueError("number of sets must be a power of two")
        # Each set is an LRU-ordered list of line tags (MRU last).
        self._sets: List[List[int]] = [[] for _ in range(config.num_sets)]
        self.accesses = 0
        self.misses = 0

    def lookup(self, addr: int) -> bool:
        """Probe the cache for ``addr``; fill on miss.  Returns hit?"""
        self.accesses += 1
        line = addr >> self._line_shift
        ways = self._sets[line & self._set_mask]
        if ways and ways[-1] == line:
            # Already MRU (sequential fetch / repeated access): the LRU
            # reorder would be a no-op, skip the remove/append churn.
            return True
        if line in ways:
            ways.remove(line)
            ways.append(line)
            return True
        self.misses += 1
        if len(ways) >= self.config.assoc:
            ways.pop(0)
        ways.append(line)
        return False

    def flush(self) -> None:
        """Invalidate every line (statistics are preserved)."""
        for ways in self._sets:
            ways.clear()

    # -- warm-state capsules -------------------------------------------------

    def export_lines(self) -> List[List[int]]:
        """Snapshot the tag arrays (per-set LRU-ordered line lists) for a
        checkpoint warm capsule.  Access statistics are excluded: a
        restored cache starts counting from zero so a sampled interval's
        miss rates cover only the interval itself."""
        return [list(ways) for ways in self._sets]

    def import_lines(self, sets: List[List[int]]) -> None:
        """Restore tag arrays from :meth:`export_lines` output."""
        if len(sets) != len(self._sets):
            raise ValueError(
                f"warm capsule has {len(sets)} sets; this cache has "
                f"{len(self._sets)} (geometry mismatch)")
        assoc = self.config.assoc
        for index, ways in enumerate(sets):
            self._sets[index] = list(ways)[-assoc:]

    @property
    def hits(self) -> int:
        return self.accesses - self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class CacheHierarchy:
    """Two-level hierarchy matching the paper's Figure 4 parameters.

    ``data_latency``/``inst_latency`` return the total access latency in
    cycles, filling lines along the way: an L1 hit costs ``hit_latency``,
    an L1 miss that hits in L2 adds the L1 miss penalty, and an L2 miss
    adds the L2 miss penalty on top.

    ``l2`` may be an already-constructed :class:`Cache` instead of a
    :class:`CacheConfig`: a :class:`~repro.memory.system.MemorySystem`
    hands every core's hierarchy the *same* L2 instance, so cross-core
    L2 sharing (capacity contention, constructive prefetching) is
    modeled while each core keeps private L1s.
    """

    def __init__(self, l1i: CacheConfig, l1d: CacheConfig,
                 l2: "CacheConfig | Cache"):
        self.l1i = Cache(l1i)
        self.l1d = Cache(l1d)
        self.l2 = l2 if isinstance(l2, Cache) else Cache(l2)
        # Latency constants folded once; the per-access paths below are on
        # the simulator's critical path (every fetch and every data access).
        self._l1i_hit = l1i.hit_latency
        self._l1i_miss = l1i.hit_latency + l1i.miss_penalty
        self._l1d_hit = l1d.hit_latency
        self._l1d_miss = l1d.hit_latency + l1d.miss_penalty
        self._l2_penalty = self.l2.config.miss_penalty

    def data_latency(self, addr: int) -> int:
        """Latency of a data access (load or store commit) to ``addr``."""
        if self.l1d.lookup(addr):
            return self._l1d_hit
        latency = self._l1d_miss
        if not self.l2.lookup(addr):
            latency += self._l2_penalty
        return latency

    def inst_latency(self, addr: int) -> int:
        """Latency of an instruction fetch from ``addr``."""
        l1i = self.l1i
        line = addr >> l1i._line_shift
        ways = l1i._sets[line & l1i._set_mask]
        if ways and ways[-1] == line:
            # Sequential-fetch fast path: line is already MRU.
            l1i.accesses += 1
            return self._l1i_hit
        if l1i.lookup(addr):
            return self._l1i_hit
        latency = self._l1i_miss
        if not self.l2.lookup(addr):
            latency += self._l2_penalty
        return latency

    def export_state(self) -> Dict[str, List[List[int]]]:
        """Warm capsule of every level's tag arrays (no statistics)."""
        return {"l1i": self.l1i.export_lines(),
                "l1d": self.l1d.export_lines(),
                "l2": self.l2.export_lines()}

    def import_state(self, state: Dict[str, List[List[int]]]) -> None:
        """Restore every level's tag arrays from :meth:`export_state`."""
        self.l1i.import_lines(state["l1i"])
        self.l1d.import_lines(state["l1d"])
        self.l2.import_lines(state["l2"])

    def stats(self) -> Dict[str, float]:
        """Hit/miss counts for every level, keyed for the report."""
        out: Dict[str, float] = {}
        for cache in (self.l1i, self.l1d, self.l2):
            name = cache.config.name
            out[f"{name}_accesses"] = cache.accesses
            out[f"{name}_misses"] = cache.misses
            out[f"{name}_miss_rate"] = cache.miss_rate
        return out


def paper_l1i_config() -> CacheConfig:
    """The paper's Figure 4 L1 instruction cache geometry."""
    return CacheConfig("l1i", size_bytes=8 * 1024, assoc=2, line_bytes=128,
                       hit_latency=1, miss_penalty=10)


def paper_l1d_config() -> CacheConfig:
    """The paper's Figure 4 L1 data cache geometry."""
    return CacheConfig("l1d", size_bytes=8 * 1024, assoc=4, line_bytes=64,
                       hit_latency=1, miss_penalty=10)


def paper_l2_config() -> CacheConfig:
    """The paper's Figure 4 unified L2 geometry."""
    return CacheConfig("l2", size_bytes=512 * 1024, assoc=8, line_bytes=128,
                       hit_latency=1, miss_penalty=100)


def paper_hierarchy() -> CacheHierarchy:
    """The exact cache geometry of the paper's Figure 4."""
    return CacheHierarchy(l1i=paper_l1i_config(), l1d=paper_l1d_config(),
                          l2=paper_l2_config())
