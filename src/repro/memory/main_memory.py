"""Flat functional memory.

The simulator splits *function* from *timing*: architectural data lives in
this flat, sparse, byte-addressable memory (updated only when stores
retire), while the cache hierarchy (:mod:`repro.memory.cache`) models access
latency only.  Reads of untouched addresses return zero, which keeps
wrong-path loads harmless.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, Tuple

PAGE_SHIFT = 12
PAGE_SIZE = 1 << PAGE_SHIFT
PAGE_MASK = PAGE_SIZE - 1


class MainMemory:
    """Sparse paged byte-addressable memory with little-endian integers."""

    def __init__(self):
        self._pages: Dict[int, bytearray] = {}

    def _page(self, page_index: int) -> bytearray:
        page = self._pages.get(page_index)
        if page is None:
            page = bytearray(PAGE_SIZE)
            self._pages[page_index] = page
        return page

    def write_bytes(self, addr: int, payload: bytes) -> None:
        """Write raw bytes starting at ``addr`` (may span pages)."""
        offset = 0
        remaining = len(payload)
        while remaining:
            page = self._page(addr >> PAGE_SHIFT)
            start = addr & PAGE_MASK
            chunk = min(remaining, PAGE_SIZE - start)
            page[start:start + chunk] = payload[offset:offset + chunk]
            addr += chunk
            offset += chunk
            remaining -= chunk

    def read_bytes(self, addr: int, size: int) -> bytes:
        """Read ``size`` raw bytes starting at ``addr`` (may span pages)."""
        parts = []
        remaining = size
        while remaining:
            page = self._pages.get(addr >> PAGE_SHIFT)
            start = addr & PAGE_MASK
            chunk = min(remaining, PAGE_SIZE - start)
            if page is None:
                parts.append(bytes(chunk))
            else:
                parts.append(bytes(page[start:start + chunk]))
            addr += chunk
            remaining -= chunk
        return b"".join(parts)

    def read_int(self, addr: int, size: int) -> int:
        """Read a little-endian unsigned integer of ``size`` bytes."""
        page = self._pages.get(addr >> PAGE_SHIFT)
        start = addr & PAGE_MASK
        if page is not None and start + size <= PAGE_SIZE:
            return int.from_bytes(page[start:start + size], "little")
        return int.from_bytes(self.read_bytes(addr, size), "little")

    def write_int(self, addr: int, size: int, value: int) -> None:
        """Write a little-endian unsigned integer of ``size`` bytes."""
        value &= (1 << (8 * size)) - 1
        start = addr & PAGE_MASK
        if start + size <= PAGE_SIZE:
            page = self._page(addr >> PAGE_SHIFT)
            page[start:start + size] = value.to_bytes(size, "little")
        else:
            self.write_bytes(addr, value.to_bytes(size, "little"))

    def load_segments(self, segments: Dict[int, bytes]) -> None:
        """Initialise memory from a ``{addr: payload}`` map."""
        for addr, payload in segments.items():
            self.write_bytes(addr, payload)

    def copy(self) -> "MainMemory":
        """Deep copy; each simulator run owns its memory image."""
        clone = MainMemory()
        clone._pages = {idx: bytearray(page)
                        for idx, page in self._pages.items()}
        return clone

    def page_delta(self, base: "MainMemory") -> Dict[int, bytes]:
        """Pages of this image that differ from ``base``, keyed by page
        index.

        A page present here but absent (or all-zero) in ``base`` counts
        as different only if it has nonzero content; pages of ``base``
        that this image never touched are never reported (reads of
        untouched addresses return zero either way).  The result is the
        compact serialization unit of an architectural checkpoint: the
        program image is reconstructible from the program itself, so only
        the delta needs to travel.
        """
        delta: Dict[int, bytes] = {}
        zero_page = bytes(PAGE_SIZE)
        for idx, page in self._pages.items():
            other = base._pages.get(idx)
            reference = bytes(other) if other is not None else zero_page
            if bytes(page) != reference:
                delta[idx] = bytes(page)
        return delta

    def apply_page_delta(self, delta: Dict[int, bytes]) -> None:
        """Overwrite whole pages from a :meth:`page_delta` map."""
        for idx, payload in delta.items():
            if len(payload) != PAGE_SIZE:
                raise ValueError(
                    f"page delta for index {idx} has {len(payload)} "
                    f"bytes; expected {PAGE_SIZE}")
            self._pages[idx] = bytearray(payload)

    def touched_pages(self) -> Iterable[Tuple[int, bytes]]:
        """Yield ``(base_address, contents)`` for every allocated page."""
        for idx in sorted(self._pages):
            yield idx << PAGE_SHIFT, bytes(self._pages[idx])

    def digest(self) -> str:
        """Content hash (sha256 hex) of the architectural memory image.

        All-zero pages hash identically to absent pages, so an image is
        compared by *contents*, not by which pages happened to be
        allocated (a wrong-path load allocates pages without changing
        any byte).  The differential fuzzer uses this to cross-check
        final memory between the interpreter oracle and every pipeline
        configuration."""
        hasher = hashlib.sha256()
        zero_page = bytes(PAGE_SIZE)
        for idx in sorted(self._pages):
            page = self._pages[idx]
            if page == zero_page:
                continue
            hasher.update(repr(idx).encode())
            hasher.update(bytes(page))
        return hasher.hexdigest()
