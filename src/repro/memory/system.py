"""Shared memory system for N-core simulation.

One :class:`MemorySystem` owns what the cores share and hands out what
they keep private:

* a **shared architectural image** (:class:`~repro.memory.main_memory.
  MainMemory`) -- the coherence point.  Stores become globally visible
  when they *retire* (the pipeline writes the image at retirement, as it
  always has), so any core's subsequently *executing* load observes
  them.  Loads execute speculatively and out of order against the image
  with no cross-core snooping, which is exactly what makes weak-memory
  outcomes (store buffering, load reordering) observable and what the
  litmus oracle (:mod:`repro.verify.litmus_oracle`) models;
* a **shared L2** timing cache -- one :class:`~repro.memory.cache.Cache`
  instance threaded into every core's hierarchy, so cores contend for
  (and constructively share) L2 capacity;
* **private L1 hierarchies** -- each core gets its own L1I/L1D over the
  shared L2, in the paper's Figure 4 geometry.

In ``private`` mode (see :class:`~repro.pipeline.config.SystemConfig`)
each core additionally owns a private architectural image, so regular
single-threaded benchmarks can run N-up with full golden-trace
validation while still sharing L2 timing.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .cache import (
    Cache,
    CacheHierarchy,
    paper_l1d_config,
    paper_l1i_config,
    paper_l2_config,
)
from .main_memory import MainMemory


class MemorySystem:
    """The shared half of an N-core machine: one architectural image (or
    one per core in ``private`` mode), one L2, and per-core L1s."""

    def __init__(self, cores: int, shared: bool = True):
        if cores < 1:
            raise ValueError(f"cores must be >= 1, got {cores!r}")
        self.num_cores = cores
        self.shared = shared
        #: The shared architectural image (the coherence point).  In
        #: private mode it still exists but no core is bound to it.
        self.shared_memory = MainMemory()
        self._private_memories: List[Optional[MainMemory]] = \
            [None] * cores
        self.l2 = Cache(paper_l2_config())
        self._hierarchies = [
            CacheHierarchy(l1i=paper_l1i_config(), l1d=paper_l1d_config(),
                           l2=self.l2)
            for _ in range(cores)
        ]

    # ------------------------------------------------------------ per-core views

    def hierarchy(self, core_id: int) -> CacheHierarchy:
        """Core ``core_id``'s cache hierarchy (private L1s, shared L2)."""
        return self._hierarchies[core_id]

    def memory(self, core_id: int) -> MainMemory:
        """The architectural image core ``core_id`` executes against."""
        if self.shared:
            return self.shared_memory
        image = self._private_memories[core_id]
        if image is None:
            image = self._private_memories[core_id] = MainMemory()
        return image

    def load_segments(self, core_id: int, segments: Dict[int, bytes]
                      ) -> None:
        """Initialise core ``core_id``'s image from a program's data
        segments (the shared image, in shared mode)."""
        self.memory(core_id).load_segments(segments)

    # ------------------------------------------------------------ statistics

    def stats(self) -> Dict[str, float]:
        """Shared-level cache statistics (the L2 every core flows
        through).  Per-core L1 statistics come out of each core's
        hierarchy via :meth:`~repro.pipeline.core.Core.finalize`."""
        return {
            "l2_accesses": self.l2.accesses,
            "l2_misses": self.l2.misses,
            "l2_miss_rate": self.l2.miss_rate,
        }
