"""Functional memory and timing caches."""

from .cache import Cache, CacheConfig, CacheHierarchy, paper_hierarchy
from .main_memory import MainMemory

__all__ = [
    "Cache",
    "CacheConfig",
    "CacheHierarchy",
    "MainMemory",
    "paper_hierarchy",
]
