"""Functional memory and timing caches."""

from .cache import (
    Cache,
    CacheConfig,
    CacheHierarchy,
    paper_hierarchy,
    paper_l1d_config,
    paper_l1i_config,
    paper_l2_config,
)
from .main_memory import MainMemory
from .system import MemorySystem

__all__ = [
    "Cache",
    "CacheConfig",
    "CacheHierarchy",
    "MainMemory",
    "MemorySystem",
    "paper_hierarchy",
    "paper_l1d_config",
    "paper_l1i_config",
    "paper_l2_config",
]
