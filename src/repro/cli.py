"""Command-line interface: ``python -m repro``.

Subcommands
-----------

``list``
    Show the available benchmarks, subsystems, configurations, and
    figures.
``run BENCHMARK``
    Simulate one benchmark under one configuration and print a report.
    ``--cores N`` runs an N-core system instead: a regular benchmark is
    replicated N-up over private memories with a shared L2; a litmus
    name (``litmus-mp``/``litmus-sb``/``litmus-lb``) runs its threads
    over shared memory and judges the observed outcome against the
    operational-model oracle (nonzero exit on a forbidden outcome).
    ``run --riscv FILE`` loads a real RV32 image (``.hex`` text or raw
    little-endian binary) through the RISC-V frontend instead of a
    named benchmark, golden-trace-checked against the interpreter
    oracle, e.g. ``repro run --riscv examples/hazard.hex``.
``compare BENCHMARK``
    Run one benchmark under several configurations side by side.
``figure NAME``
    Regenerate one of the paper's figures/tables.
``suite``
    Run a full (benchmark x configuration) grid through the
    fault-tolerant engine and archive the manifest.  Failed/timed-out
    cells are recorded structurally (status, attempts, error) instead
    of aborting the sweep; ``--resume`` restarts an interrupted sweep,
    restoring completed cells from the persistent cache so only
    missing/failed cells are simulated.  ``--timeout``/``--retries``
    tune the per-cell fault-tolerance knobs; ``--gc-cache`` sweeps
    unreadable/foreign-format cache entries first.  Exits nonzero when
    any cell remains failed.  ``--suite NAME`` runs a declared suite
    (e.g. ``riscv-conformance``) instead of an explicit benchmark list.
``conformance``
    Execute every program of the ``riscv-conformance`` suite on the
    interpreter oracle and on every configuration of the differential
    matrix, asserting identical final register/memory digests;
    ``--manifest FILE`` archives the per-cell RunRecords.  Exits
    nonzero on any nonconforming cell.
``bench``
    Measure simulator throughput (instructions/sec); ``--profile`` adds
    the top-N hot functions from cProfile.
``fuzz``
    Differentially fuzz every memory subsystem against the in-order
    interpreter oracle (``--iterations``/``--seconds`` budgets,
    ``--seed``); failures are minimized and written to ``--corpus DIR``
    as replayable JSON cases.  ``--replay`` re-checks an existing corpus
    instead of fuzzing.  Exits nonzero on any mismatch.
``litmus``
    Run the litmus suite (MP/SB/LB) on the shared-memory multicore
    machine and check every observed outcome against the
    operational-model oracle.  Exits nonzero on any forbidden outcome.

Every subcommand takes ``--format text|json`` and ``--out FILE``.  JSON
output is the versioned results schema (schema_version |SCHEMA|): ``run``
emits one :class:`~repro.obs.runrecord.RunRecord`; ``compare``,
``figure``, and ``bench`` emit an envelope with the same
``schema_version`` field and a ``kind`` discriminator, carrying the
underlying RunRecords where applicable.  ``--out`` writes the document
to a file instead of stdout.

``run``, ``compare``, and ``figure`` share the experiment-engine flags:
``--jobs N`` simulates uncached grid cells on N worker processes
(default: all cores), ``--cache-dir`` relocates the persistent result
cache (default ``.repro_cache/``), and ``--no-cache`` disables it.

``run`` can additionally export a sampled pipetrace:
``--epoch-cycles N --trace-out FILE`` writes per-epoch snapshots
(occupancy, stall breakdown, violation/replay rates) as JSON Lines.

``run BENCHMARK --sample-intervals K`` switches to *sampled mode*:
instead of simulating every instruction in detail, the run
fast-forwards through the in-order interpreter (checkpointing as it
goes) and simulates K detailed intervals of ``--warmup-insts`` warm-up
(counters discarded) plus ``--interval-insts`` measured instructions,
reporting the per-interval IPC mean with a 95% confidence interval.
``--checkpoint-every C`` tunes the capture stride.  See DESIGN.md
"Sampling methodology" for the error model and when exact mode is
required.
"""

from __future__ import annotations

import argparse
import json
import sys
import warnings
from pathlib import Path
from typing import List, Optional

from . import api, perf
from .core import registry
from .harness.experiment import ExperimentRunner
from .obs.runrecord import SCHEMA_VERSION
from .stats.report import format_report
from .workloads import (ALL_BENCHMARKS, RISCV_BENCHMARKS,
                        litmus_benchmark_names, suite as workload_suite,
                        suite_names)
from .workloads.litmus import get_litmus, is_litmus

_DEPRECATED_ATTRS = ("CONFIGS", "FIGURES")


def __getattr__(name: str):
    """Deprecation shims: the CONFIGS/FIGURES registries moved to
    :mod:`repro.api`; importing them from here still works but warns."""
    if name in _DEPRECATED_ATTRS:
        warnings.warn(
            f"repro.cli.{name} is deprecated; use repro.api.{name}",
            DeprecationWarning, stacklevel=2)
        return getattr(api, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def _add_engine_flags(parser: argparse.ArgumentParser) -> None:
    """Experiment-engine knobs shared by run/compare/figure."""
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes for uncached grid cells "
                             "(default: all cores; 1 = serial)")
    parser.add_argument("--cache-dir", default=None,
                        help="persistent result-cache directory "
                             "(default .repro_cache/)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the persistent result cache")


def _add_output_flags(parser: argparse.ArgumentParser) -> None:
    """Structured-output knobs shared by every subcommand."""
    parser.add_argument("--format", choices=("text", "json"),
                        default="text", dest="format",
                        help="output format: human-readable text "
                             "(default) or versioned RunRecord JSON")
    parser.add_argument("--out", default=None, metavar="FILE",
                        help="write the output to FILE instead of stdout")


def _build_runner(args) -> ExperimentRunner:
    return ExperimentRunner(scale=args.scale, jobs=args.jobs,
                            cache_dir=args.cache_dir,
                            use_cache=not args.no_cache)


def _emit(text: str, args) -> None:
    """Print or write one finished document (text or JSON)."""
    if args.out:
        path = Path(args.out)
        if path.parent != Path(""):
            path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text + "\n")
        print(f"wrote {path}")
    else:
        print(text)


def _envelope(kind: str, **fields) -> str:
    payload = {"schema_version": SCHEMA_VERSION, "kind": kind}
    payload.update(fields)
    return json.dumps(payload, sort_keys=True, indent=2)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Address-Indexed Memory "
                    "Disambiguation and Store-to-Load Forwarding' "
                    "(MICRO 2005)")
    sub = parser.add_subparsers(dest="command", required=True)

    list_cmd = sub.add_parser(
        "list", help="list benchmarks, subsystems, configs, and figures")
    _add_output_flags(list_cmd)

    run = sub.add_parser("run", help="simulate one benchmark")
    run.add_argument("benchmark", nargs="?", default=None,
                     choices=sorted(ALL_BENCHMARKS)
                     + sorted(RISCV_BENCHMARKS)
                     + litmus_benchmark_names())
    run.add_argument("--riscv", default=None, metavar="FILE",
                     help="simulate a real RV32 image (.hex text or raw "
                          "binary) through the RISC-V frontend instead "
                          "of a named benchmark")
    run.add_argument("--config", default="baseline-sfc-mdt",
                     choices=sorted(api.CONFIGS))
    run.add_argument("--scale", type=int, default=20_000,
                     help="dynamic instruction budget (default 20000)")
    run.add_argument("--cores", type=int, default=1, metavar="N",
                     help="simulate an N-core system (default 1: the "
                          "plain single-core pipeline)")
    run.add_argument("--memory-mode", default=None,
                     choices=("shared", "private"),
                     help="multicore memory mode (default: shared for "
                          "litmus tests, private for benchmarks)")
    run.add_argument("--epoch-cycles", type=int, default=None,
                     metavar="N",
                     help="sample a pipetrace epoch snapshot every N "
                          "cycles (requires --trace-out)")
    run.add_argument("--trace-out", default=None, metavar="FILE",
                     help="write epoch snapshots as JSON Lines to FILE")
    run.add_argument("--sample-intervals", type=int, default=None,
                     metavar="K",
                     help="sampled mode: fast-forward via checkpoints "
                          "and measure K detailed intervals instead of "
                          "simulating every instruction (reports IPC "
                          "mean with a confidence interval)")
    run.add_argument("--warmup-insts", type=int, default=1_000,
                     metavar="W",
                     help="sampled mode: detailed warm-up instructions "
                          "per interval, counters discarded "
                          "(default 1000)")
    run.add_argument("--interval-insts", type=int, default=5_000,
                     metavar="L",
                     help="sampled mode: measured instructions per "
                          "interval (default 5000)")
    run.add_argument("--checkpoint-every", type=int, default=None,
                     metavar="C",
                     help="sampled mode: capture a checkpoint every C "
                          "fast-forwarded instructions (default: one "
                          "window, warm-up + interval)")
    run.add_argument("--horizon", type=int, default=None, metavar="N",
                     help="sampled mode: sample only the first N "
                          "retired instructions; checkpoint trains are "
                          "reused across horizons (prefix) or extended "
                          "in place instead of recaptured")
    _add_engine_flags(run)
    _add_output_flags(run)

    compare = sub.add_parser(
        "compare", help="one benchmark under several configurations")
    compare.add_argument("benchmark", choices=sorted(ALL_BENCHMARKS))
    compare.add_argument("--configs", nargs="+",
                         default=["baseline-lsq", "baseline-sfc-mdt"],
                         choices=sorted(api.CONFIGS))
    compare.add_argument("--scale", type=int, default=20_000)
    _add_engine_flags(compare)
    _add_output_flags(compare)

    figure = sub.add_parser("figure",
                            help="regenerate a paper figure/table")
    figure.add_argument("name", choices=sorted(api.FIGURES))
    figure.add_argument("--scale", type=int, default=8_000,
                        help="dynamic instruction budget per run "
                             "(default 8000; the archived results use "
                             "20000)")
    _add_engine_flags(figure)
    _add_output_flags(figure)

    suite = sub.add_parser(
        "suite", help="run a fault-tolerant, resumable (benchmark x "
                      "config) grid and archive its manifest")
    suite.add_argument("--benchmarks", nargs="+", default=None,
                       choices=sorted(ALL_BENCHMARKS)
                       + sorted(RISCV_BENCHMARKS),
                       help="explicit benchmark list (default: every "
                            "native benchmark; mutually exclusive with "
                            "--suite)")
    suite.add_argument("--suite", default=None, dest="suite_name",
                       choices=suite_names(),
                       help="run a declared suite instead of an "
                            "explicit --benchmarks list")
    suite.add_argument("--configs", nargs="+",
                       default=sorted(api.CONFIGS),
                       choices=sorted(api.CONFIGS))
    suite.add_argument("--scale", type=int, default=20_000,
                       help="dynamic instruction budget per cell "
                            "(default 20000)")
    suite.add_argument("--manifest", default="suite_manifest.json",
                       metavar="FILE",
                       help="manifest archive path (default "
                            "suite_manifest.json); refuses to "
                            "overwrite unless --resume is given")
    suite.add_argument("--resume", action="store_true",
                       help="continue an interrupted sweep: completed "
                            "cells are restored from the result cache "
                            "and only missing/failed cells simulate")
    suite.add_argument("--timeout", type=float, default=None,
                       metavar="S",
                       help="per-cell wall-clock timeout in seconds "
                            "(default: none)")
    suite.add_argument("--retries", type=int, default=None, metavar="N",
                       help="extra attempts per failing cell "
                            "(default 2)")
    suite.add_argument("--gc-cache", action="store_true",
                       help="drop unreadable/foreign-format cache "
                            "entries and stale temp files first")
    _add_engine_flags(suite)
    _add_output_flags(suite)

    bench = sub.add_parser(
        "bench", help="measure simulator throughput (insts/sec)")
    bench.add_argument("--benchmarks", nargs="+",
                       default=sorted(ALL_BENCHMARKS),
                       choices=sorted(ALL_BENCHMARKS))
    bench.add_argument("--configs", nargs="+",
                       default=["baseline-lsq", "baseline-sfc-mdt"],
                       choices=sorted(api.CONFIGS))
    bench.add_argument("--scale", type=int, default=4_000,
                       help="dynamic instruction budget per cell "
                            "(default 4000)")
    bench.add_argument("--profile", action="store_true",
                       help="also run the grid under cProfile and show "
                            "the hottest functions")
    bench.add_argument("--top", type=int, default=15,
                       help="hot functions to show with --profile "
                            "(default 15)")
    _add_output_flags(bench)

    fuzz = sub.add_parser(
        "fuzz", help="differentially fuzz the memory subsystems "
                     "against the interpreter oracle")
    fuzz.add_argument("--iterations", type=int, default=None,
                      metavar="N",
                      help="number of random programs to check "
                           "(default 100 when --seconds is not given)")
    fuzz.add_argument("--seconds", type=float, default=None,
                      metavar="S",
                      help="wall-clock budget; stops at whichever of "
                           "--iterations/--seconds is hit first")
    fuzz.add_argument("--seed", type=int, default=0,
                      help="first generator seed; iteration i uses "
                           "seed+i (default 0)")
    fuzz.add_argument("--corpus", default=None, metavar="DIR",
                      help="write minimized failing cases into DIR "
                           "(also the directory --replay reads)")
    fuzz.add_argument("--configs", nargs="+", default=None,
                      choices=sorted(api.CONFIGS),
                      help="fuzz only these presets instead of the "
                           "registry-covering default matrix")
    fuzz.add_argument("--no-minimize", action="store_true",
                      help="archive failing programs without "
                           "delta-debugging them first")
    fuzz.add_argument("--replay", action="store_true",
                      help="replay the corpus in --corpus instead of "
                           "generating new programs")
    _add_output_flags(fuzz)

    conformance = sub.add_parser(
        "conformance", help="run the RV32 conformance suite on the "
                            "oracle and every subsystem configuration")
    conformance.add_argument("--suite", default="riscv-conformance",
                             dest="suite_name", choices=suite_names(),
                             help="declared suite to sweep "
                                  "(default riscv-conformance)")
    conformance.add_argument("--configs", nargs="+", default=None,
                             choices=sorted(api.CONFIGS),
                             help="run only these presets instead of "
                                  "the registry-covering default "
                                  "matrix")
    conformance.add_argument("--manifest", default=None, metavar="FILE",
                             help="also archive the per-cell "
                                  "RunRecords as a JSON manifest")
    _add_output_flags(conformance)

    litmus = sub.add_parser(
        "litmus", help="run the litmus suite against the "
                       "operational-model oracle")
    litmus.add_argument("--tests", nargs="+", default=None,
                        choices=litmus_benchmark_names(),
                        help="litmus tests to run (default: all)")
    litmus.add_argument("--configs", nargs="+",
                        default=["baseline-sfc-mdt"],
                        choices=sorted(api.CONFIGS),
                        help="core presets to run each test on "
                             "(default baseline-sfc-mdt)")
    _add_output_flags(litmus)
    return parser


def _cmd_list(args) -> int:
    if args.format == "json":
        _emit(_envelope("list",
                        benchmarks=list(ALL_BENCHMARKS),
                        riscv_benchmarks=sorted(RISCV_BENCHMARKS),
                        litmus_tests=litmus_benchmark_names(),
                        subsystems=list(registry.available()),
                        frontends=api.list_frontends(),
                        suites=suite_names(),
                        configurations=sorted(api.CONFIGS),
                        figures=sorted(api.FIGURES)), args)
        return 0
    lines = ["benchmarks:"]
    lines += [f"  {name}" for name in ALL_BENCHMARKS]
    lines.append("\nriscv benchmarks:")
    lines += [f"  {name}" for name in sorted(RISCV_BENCHMARKS)]
    lines.append("\nlitmus tests:")
    lines += [f"  {name}" for name in litmus_benchmark_names()]
    lines.append("\nsubsystems:")
    lines += [f"  {name}" for name in registry.available()]
    lines.append("\nfrontends:")
    lines += [f"  {name}" for name in api.list_frontends()]
    lines.append("\nsuites:")
    lines += [f"  {name}" for name in suite_names()]
    lines.append("\nconfigurations:")
    lines += [f"  {name}" for name in sorted(api.CONFIGS)]
    lines.append("\nfigures:")
    lines += [f"  {name}" for name in sorted(api.FIGURES)]
    _emit("\n".join(lines), args)
    return 0


def _cmd_run(args) -> int:
    if args.riscv is not None:
        return _cmd_run_riscv(args)
    if args.benchmark is None:
        print("error: give a benchmark name or --riscv FILE",
              file=sys.stderr)
        return 2
    if is_litmus(args.benchmark):
        return _cmd_run_litmus(args)
    if args.cores > 1:
        return _cmd_run_multicore(args)
    if args.sample_intervals:
        return _cmd_run_sampled(args)
    record = api.simulate(args.benchmark, args.config,
                          runner=_build_runner(args))
    if args.epoch_cycles or args.trace_out:
        if not (args.epoch_cycles and args.trace_out):
            print("--epoch-cycles and --trace-out must be given together",
                  file=sys.stderr)
            return 2
        tracer = api.trace(args.benchmark, args.config, scale=args.scale,
                           ring_size=1024,
                           epoch_cycles=args.epoch_cycles)
        tracer.write_epochs(args.trace_out)
        print(f"wrote {len(tracer.epochs)} epoch snapshots to "
              f"{args.trace_out}", file=sys.stderr)
    if args.format == "json":
        _emit(record.to_json(indent=2), args)
    else:
        _emit(format_report(record), args)
    return 0


def _cmd_run_riscv(args) -> int:
    """``run --riscv FILE``: a real RV32 image through the frontend."""
    if args.benchmark is not None:
        print("error: --riscv FILE replaces the benchmark name; give "
              "one or the other", file=sys.stderr)
        return 2
    if args.cores > 1 or args.sample_intervals or args.epoch_cycles \
            or args.trace_out:
        print("error: --riscv runs single-core exact mode; drop "
              "--cores/--sample-intervals/--epoch-cycles/--trace-out",
              file=sys.stderr)
        return 2
    try:
        record = api.simulate_riscv(args.riscv, args.config)
    except (FileNotFoundError, ValueError) as exc:
        # DecodeError subclasses ValueError: bad images exit with a
        # message, not a traceback.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        _emit(record.to_json(indent=2), args)
    else:
        _emit(format_report(record), args)
    return 0


def _cmd_run_sampled(args) -> int:
    """``run BENCHMARK --sample-intervals K``: checkpointed
    fast-forward with K detailed measurement intervals."""
    if args.epoch_cycles or args.trace_out:
        print("pipetrace export (--epoch-cycles/--trace-out) requires "
              "exact mode; drop --sample-intervals", file=sys.stderr)
        return 2
    record = api.simulate_sampled(
        args.benchmark, args.config, intervals=args.sample_intervals,
        warmup_insts=args.warmup_insts,
        interval_insts=args.interval_insts,
        checkpoint_every=args.checkpoint_every,
        horizon=args.horizon,
        runner=_build_runner(args))
    if args.format == "json":
        _emit(record.to_json(indent=2), args)
        return 0
    info = record.sampling or {}
    lines = [
        f"{args.benchmark} on {record.config_name} "
        f"(scale {args.scale}, sampled)",
        f"  IPC: {record.ipc:.4f} +/- {info.get('ipc_ci95', 0.0):.4f} "
        f"(95% CI over {len(info.get('intervals', []))} intervals)",
        f"  program: {info.get('total_instructions', 0)} insts; "
        f"detailed: {info.get('detailed_instructions', 0)} "
        f"({info.get('warmup_insts', 0)} warm-up + "
        f"{info.get('interval_insts', 0)} measured per interval)",
        f"  measured spans: {record.instructions} insts in "
        f"{record.cycles} cycles",
    ]
    _emit("\n".join(lines), args)
    return 0


def _require_no_trace_flags(args) -> bool:
    if args.epoch_cycles or args.trace_out:
        print("pipetrace export (--epoch-cycles/--trace-out) is "
              "single-core only; drop --cores", file=sys.stderr)
        return False
    if getattr(args, "sample_intervals", None):
        print("sampled mode (--sample-intervals) is single-core "
              "benchmark only; drop --cores", file=sys.stderr)
        return False
    return True


def _cmd_run_litmus(args) -> int:
    """``run litmus-* [--cores N]``: one litmus test end-to-end, with
    the oracle's verdict on the observed outcome."""
    from .obs.runrecord import RunRecord
    from .verify import run_litmus_test

    test = get_litmus(args.benchmark)
    if args.cores not in (1, test.cores):
        # --cores 1 is the flag's default: take the test's own count.
        print(f"error: {args.benchmark} has {test.cores} threads and "
              f"needs --cores {test.cores}", file=sys.stderr)
        return 2
    if args.memory_mode == "private":
        print("error: litmus tests require shared memory",
              file=sys.stderr)
        return 2
    if not _require_no_trace_flags(args):
        return 2
    result = run_litmus_test(test, api.resolve_config(args.config))
    record = RunRecord.from_system_result(result.system_result,
                                          benchmark=args.benchmark,
                                          scale=args.scale)
    if args.format == "json":
        _emit(_envelope("litmus-run", litmus=result.to_dict(),
                        run=record.to_dict()), args)
    else:
        verdict = "allowed" if result.allowed else "FORBIDDEN"
        sysres = result.system_result
        lines = [
            f"{args.benchmark} on {result.config_name} "
            f"({test.cores} cores, shared memory)",
            f"  {test.description}",
            f"  outcome: {result.outcome} -- {verdict}",
            f"  model allows: {sorted(result.allowed_outcomes)}",
            f"  cycles: {sysres.cycles}, instructions: "
            f"{sysres.instructions}, aggregate IPC: {sysres.ipc:.3f}",
        ]
        _emit("\n".join(lines), args)
    return 0 if result.allowed else 1


def _cmd_run_multicore(args) -> int:
    """``run BENCHMARK --cores N``: an N-up multicore system cell."""
    if not _require_no_trace_flags(args):
        return 2
    record = api.simulate_system(args.benchmark, args.config,
                                 cores=args.cores,
                                 memory_mode=args.memory_mode,
                                 runner=_build_runner(args))
    if args.format == "json":
        _emit(record.to_json(indent=2), args)
        return 0
    lines = [
        f"{args.benchmark} x{record.cores} on {record.config_name} "
        f"(scale {args.scale})",
        f"  cycles: {record.cycles}, instructions: "
        f"{record.instructions}, aggregate IPC: {record.ipc:.3f}",
    ]
    for core_id in range(record.cores):
        cycles = record.metric(f"core{core_id}_cycles")
        insts = record.metric(f"core{core_id}_retired_instructions")
        ipc = insts / cycles if cycles else 0.0
        lines.append(f"  core{core_id}: {int(insts)} insts in "
                     f"{int(cycles)} cycles, IPC {ipc:.3f}")
    lines.append(f"  shared L2: {int(record.metric('l2_accesses'))} "
                 f"accesses, miss rate "
                 f"{record.metric('l2_miss_rate'):.3f}")
    _emit("\n".join(lines), args)
    return 0


def _cmd_litmus(args) -> int:
    report = api.run_litmus(tests=args.tests, configs=args.configs)
    if args.format == "json":
        _emit(json.dumps(report.to_dict(), sort_keys=True, indent=2),
              args)
    else:
        _emit(report.format(), args)
    return 0 if report.ok else 1


def _cmd_compare(args) -> int:
    records = api.compare(args.benchmark, args.configs,
                          runner=_build_runner(args))
    if args.format == "json":
        _emit(_envelope("compare", benchmark=args.benchmark,
                        scale=args.scale,
                        runs=[record.to_dict() for record in records]),
              args)
        return 0
    width = max(len(name) for name in args.configs)
    lines = [f"{args.benchmark} (scale {args.scale})",
             f"{'configuration':<{width}}  {'IPC':>7}  {'cycles':>9}"]
    for name, record in zip(args.configs, records):
        lines.append(f"{name:<{width}}  {record.ipc:>7.3f}  "
                     f"{record.cycles:>9d}")
    _emit("\n".join(lines), args)
    return 0


def _cmd_figure(args) -> int:
    runner = _build_runner(args)
    figure = api.run_figure(args.name, scale=args.scale, runner=runner)
    if args.format == "json":
        _emit(_envelope("figure", name=args.name, title=figure.title,
                        scale=args.scale, series=figure.series_names,
                        rows=[{"benchmark": benchmark, "values": values}
                              for benchmark, values in figure.rows],
                        averages=[{"label": label, "values": values}
                                  for label, values in figure.averages()],
                        runs=list(runner.manifest)), args)
        return 0
    _emit(figure.format(), args)
    return 0


def _cmd_suite(args) -> int:
    if args.suite_name and args.benchmarks:
        print("error: --suite and --benchmarks are mutually exclusive",
              file=sys.stderr)
        return 2
    if args.suite_name:
        benchmarks = workload_suite(args.suite_name)
    else:
        benchmarks = args.benchmarks or sorted(ALL_BENCHMARKS)
    manifest_path = Path(args.manifest)
    if manifest_path.exists() and not args.resume:
        print(f"error: manifest {manifest_path} already exists; pass "
              f"--resume to continue the sweep (completed cells are "
              f"restored from the result cache) or pick another "
              f"--manifest path", file=sys.stderr)
        return 2
    if args.resume and args.no_cache:
        print("error: --resume needs the persistent result cache "
              "(drop --no-cache)", file=sys.stderr)
        return 2
    runner = ExperimentRunner(scale=args.scale, jobs=args.jobs,
                              cache_dir=args.cache_dir,
                              use_cache=not args.no_cache,
                              cell_timeout=args.timeout,
                              max_retries=args.retries)
    if args.gc_cache and runner.cache:
        removed = runner.cache.gc()
        print(f"cache gc: removed {removed} unreadable/stale files",
              file=sys.stderr)
    configs = [api.CONFIGS[name]() for name in args.configs]
    runner.run_suite(benchmarks, configs)
    runner.write_manifest(manifest_path)
    failed = [entry for entry in runner.manifest
              if entry["status"] != "ok"]
    if args.format == "json":
        _emit(_envelope("suite", scale=args.scale,
                        suite=args.suite_name,
                        benchmarks=list(benchmarks),
                        configs=list(args.configs),
                        resumed=bool(args.resume),
                        cells=len(runner.manifest),
                        cache_hits=runner.cache_hits,
                        simulated=runner.cache_misses,
                        failures=len(failed),
                        manifest=str(manifest_path),
                        runs=list(runner.manifest)), args)
    else:
        lines = [f"suite: {len(benchmarks)} benchmarks x "
                 f"{len(configs)} configs = {len(runner.manifest)} "
                 f"cells (scale {args.scale})",
                 f"  ok: {len(runner.manifest) - len(failed)} "
                 f"({runner.cache_hits} from cache, "
                 f"{runner.cache_misses} simulated)",
                 f"  failed: {len(failed)}"]
        for entry in failed:
            lines.append(f"    {entry['benchmark']}/"
                         f"{entry['config_name']}: {entry['status']} "
                         f"after {entry['attempts']} attempt(s): "
                         f"{entry['error']}")
        lines.append(f"manifest: {manifest_path}")
        _emit("\n".join(lines), args)
    return 1 if failed else 0


def _cmd_bench(args) -> int:
    configs = [api.CONFIGS[name]() for name in args.configs]
    report = perf.measure_throughput(args.benchmarks, configs,
                                     scale=args.scale)
    if args.format == "json":
        _emit(_envelope(
            "bench", scale=args.scale,
            samples=[{"benchmark": s.benchmark,
                      "config_name": s.config_name,
                      "instructions": s.instructions,
                      "cycles": s.cycles,
                      "wall_seconds": s.wall_seconds,
                      "insts_per_sec": s.insts_per_sec}
                     for s in report.samples],
            total_instructions=report.total_instructions,
            total_wall_seconds=report.total_wall_seconds,
            insts_per_sec=report.insts_per_sec,
            manifest_digest=report.manifest_digest), args)
        return 0
    text = report.format()
    if args.profile:
        profile = perf.profile_suite(args.benchmarks, configs,
                                     scale=args.scale)
        text += "\n\n" + profile.format(top_n=args.top)
    _emit(text, args)
    return 0


def _cmd_conformance(args) -> int:
    report = api.run_riscv_conformance(suite=args.suite_name,
                                       configs=args.configs)
    if args.manifest:
        from .verify import conformance_records

        path = Path(args.manifest)
        if path.parent != Path(""):
            path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(
            [record.to_dict() for record in conformance_records(report)],
            sort_keys=True, indent=2) + "\n")
        print(f"wrote manifest {path}", file=sys.stderr)
    if args.format == "json":
        _emit(json.dumps(report.to_dict(), sort_keys=True, indent=2),
              args)
    else:
        _emit(report.format(), args)
    return 0 if report.ok else 1


def _cmd_fuzz(args) -> int:
    if args.replay:
        if not args.corpus:
            print("--replay requires --corpus DIR", file=sys.stderr)
            return 2
        report = api.replay_corpus(args.corpus)
        if args.format == "json":
            _emit(_envelope("fuzz-replay", **report.to_dict()), args)
        else:
            _emit(report.format(), args)
        return 0 if report.ok else 1
    report = api.fuzz(iterations=args.iterations, seconds=args.seconds,
                      seed=args.seed, configs=args.configs,
                      corpus_dir=args.corpus,
                      minimize=not args.no_minimize)
    if args.format == "json":
        _emit(json.dumps(report.to_dict(), sort_keys=True, indent=2),
              args)
    else:
        _emit(report.format(), args)
    return 0 if report.ok else 1


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "list":
            return _cmd_list(args)
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "compare":
            return _cmd_compare(args)
        if args.command == "figure":
            return _cmd_figure(args)
        if args.command == "suite":
            return _cmd_suite(args)
        if args.command == "bench":
            return _cmd_bench(args)
        if args.command == "fuzz":
            return _cmd_fuzz(args)
        if args.command == "conformance":
            return _cmd_conformance(args)
        if args.command == "litmus":
            return _cmd_litmus(args)
    except OSError as exc:
        # Malformed --out / --corpus / --trace-out paths and the like
        # should exit with a message, not a traceback.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 2


if __name__ == "__main__":
    sys.exit(main())
