"""Command-line interface: ``python -m repro``.

Subcommands
-----------

``list``
    Show the available benchmarks, subsystems, configurations, and
    figures.
``run BENCHMARK``
    Simulate one benchmark under one configuration and print a report.
``compare BENCHMARK``
    Run one benchmark under several configurations side by side.
``figure NAME``
    Regenerate one of the paper's figures/tables.
``bench``
    Measure simulator throughput (instructions/sec); ``--profile`` adds
    the top-N hot functions from cProfile.

``run``, ``compare``, and ``figure`` share the experiment-engine flags:
``--jobs N`` simulates uncached grid cells on N worker processes
(default: all cores), ``--cache-dir`` relocates the persistent result
cache (default ``.repro_cache/``), and ``--no-cache`` disables it.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional

from . import perf
from .core import registry
from .harness import configs as config_presets
from .harness import figures
from .harness.experiment import ExperimentRunner
from .pipeline.config import ProcessorConfig
from .stats.report import format_report
from .workloads import ALL_BENCHMARKS

#: Named configuration presets exposed on the command line.
CONFIGS: Dict[str, Callable[[], ProcessorConfig]] = {
    "baseline-lsq": config_presets.baseline_lsq_config,
    "baseline-sfc-mdt": config_presets.baseline_sfc_mdt_config,
    "aggressive-lsq": config_presets.aggressive_lsq_config,
    "aggressive-sfc-mdt": config_presets.aggressive_sfc_mdt_config,
    "aggressive-load-replay": config_presets.aggressive_load_replay_config,
}

#: Figure/table generators exposed on the command line.
FIGURES: Dict[str, Callable[..., "figures.FigureResult"]] = {
    "fig5": figures.figure5,
    "fig6": figures.figure6,
    "enf-ablation": figures.enf_ablation,
    "associativity": figures.associativity_sweep,
    "corruption": figures.corruption_rates,
    "granularity": figures.granularity_sweep,
    "power": figures.power_comparison,
    "window-scaling": figures.window_scaling,
    "recovery": figures.recovery_policies,
}


def _add_engine_flags(parser: argparse.ArgumentParser) -> None:
    """Experiment-engine knobs shared by run/compare/figure."""
    parser.add_argument("--jobs", type=int, default=None,
                        help="worker processes for uncached grid cells "
                             "(default: all cores; 1 = serial)")
    parser.add_argument("--cache-dir", default=None,
                        help="persistent result-cache directory "
                             "(default .repro_cache/)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the persistent result cache")


def _build_runner(args) -> ExperimentRunner:
    return ExperimentRunner(scale=args.scale, jobs=args.jobs,
                            cache_dir=args.cache_dir,
                            use_cache=not args.no_cache)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Address-Indexed Memory "
                    "Disambiguation and Store-to-Load Forwarding' "
                    "(MICRO 2005)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list benchmarks, subsystems, configs, "
                                "and figures")

    run = sub.add_parser("run", help="simulate one benchmark")
    run.add_argument("benchmark", choices=sorted(ALL_BENCHMARKS))
    run.add_argument("--config", default="baseline-sfc-mdt",
                     choices=sorted(CONFIGS))
    run.add_argument("--scale", type=int, default=20_000,
                     help="dynamic instruction budget (default 20000)")
    _add_engine_flags(run)

    compare = sub.add_parser(
        "compare", help="one benchmark under several configurations")
    compare.add_argument("benchmark", choices=sorted(ALL_BENCHMARKS))
    compare.add_argument("--configs", nargs="+",
                         default=["baseline-lsq", "baseline-sfc-mdt"],
                         choices=sorted(CONFIGS))
    compare.add_argument("--scale", type=int, default=20_000)
    _add_engine_flags(compare)

    figure = sub.add_parser("figure",
                            help="regenerate a paper figure/table")
    figure.add_argument("name", choices=sorted(FIGURES))
    figure.add_argument("--scale", type=int, default=8_000,
                        help="dynamic instruction budget per run "
                             "(default 8000; the archived results use "
                             "20000)")
    _add_engine_flags(figure)

    bench = sub.add_parser(
        "bench", help="measure simulator throughput (insts/sec)")
    bench.add_argument("--benchmarks", nargs="+",
                       default=sorted(ALL_BENCHMARKS),
                       choices=sorted(ALL_BENCHMARKS))
    bench.add_argument("--configs", nargs="+",
                       default=["baseline-lsq", "baseline-sfc-mdt"],
                       choices=sorted(CONFIGS))
    bench.add_argument("--scale", type=int, default=4_000,
                       help="dynamic instruction budget per cell "
                            "(default 4000)")
    bench.add_argument("--profile", action="store_true",
                       help="also run the grid under cProfile and show "
                            "the hottest functions")
    bench.add_argument("--top", type=int, default=15,
                       help="hot functions to show with --profile "
                            "(default 15)")
    return parser


def _cmd_list() -> int:
    print("benchmarks:")
    for name in ALL_BENCHMARKS:
        print(f"  {name}")
    print("\nsubsystems:")
    for name in registry.available():
        print(f"  {name}")
    print("\nconfigurations:")
    for name in sorted(CONFIGS):
        print(f"  {name}")
    print("\nfigures:")
    for name in sorted(FIGURES):
        print(f"  {name}")
    return 0


def _cmd_run(args) -> int:
    runner = _build_runner(args)
    result = runner.run(args.benchmark, CONFIGS[args.config]())
    print(format_report(result))
    return 0


def _cmd_compare(args) -> int:
    runner = _build_runner(args)
    configs = [CONFIGS[name]() for name in args.configs]
    grid = runner.run_suite([args.benchmark], configs)
    width = max(len(name) for name in args.configs)
    print(f"{args.benchmark} (scale {args.scale})")
    print(f"{'configuration':<{width}}  {'IPC':>7}  {'cycles':>9}")
    for name, config in zip(args.configs, configs):
        result = grid[(args.benchmark, config.name)]
        print(f"{name:<{width}}  {result.ipc:>7.3f}  "
              f"{result.cycles:>9d}")
    return 0


def _cmd_figure(args) -> int:
    figure = FIGURES[args.name](scale=args.scale,
                                runner=_build_runner(args))
    print(figure.format())
    return 0


def _cmd_bench(args) -> int:
    configs = [CONFIGS[name]() for name in args.configs]
    report = perf.measure_throughput(args.benchmarks, configs,
                                     scale=args.scale)
    print(report.format())
    if args.profile:
        profile = perf.profile_suite(args.benchmarks, configs,
                                     scale=args.scale)
        print()
        print(profile.format(top_n=args.top))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "compare":
        return _cmd_compare(args)
    if args.command == "figure":
        return _cmd_figure(args)
    if args.command == "bench":
        return _cmd_bench(args)
    return 2


if __name__ == "__main__":
    sys.exit(main())
