"""Command-line interface: ``python -m repro``.

Subcommands
-----------

``list``
    Show the available benchmarks, configurations, and figures.
``run BENCHMARK``
    Simulate one benchmark under one configuration and print a report.
``compare BENCHMARK``
    Run one benchmark under several configurations side by side.
``figure NAME``
    Regenerate one of the paper's figures/tables.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional

from .harness import configs as config_presets
from .harness import figures
from .harness.experiment import ExperimentRunner
from .pipeline.config import ProcessorConfig
from .stats.report import format_report
from .workloads import ALL_BENCHMARKS

#: Named configuration presets exposed on the command line.
CONFIGS: Dict[str, Callable[[], ProcessorConfig]] = {
    "baseline-lsq": config_presets.baseline_lsq_config,
    "baseline-sfc-mdt": config_presets.baseline_sfc_mdt_config,
    "aggressive-lsq": config_presets.aggressive_lsq_config,
    "aggressive-sfc-mdt": config_presets.aggressive_sfc_mdt_config,
    "aggressive-load-replay": config_presets.aggressive_load_replay_config,
}

#: Figure/table generators exposed on the command line.
FIGURES: Dict[str, Callable[..., "figures.FigureResult"]] = {
    "fig5": figures.figure5,
    "fig6": figures.figure6,
    "enf-ablation": figures.enf_ablation,
    "associativity": figures.associativity_sweep,
    "corruption": figures.corruption_rates,
    "granularity": figures.granularity_sweep,
    "power": figures.power_comparison,
    "window-scaling": figures.window_scaling,
    "recovery": figures.recovery_policies,
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Address-Indexed Memory "
                    "Disambiguation and Store-to-Load Forwarding' "
                    "(MICRO 2005)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list benchmarks, configs, and figures")

    run = sub.add_parser("run", help="simulate one benchmark")
    run.add_argument("benchmark", choices=sorted(ALL_BENCHMARKS))
    run.add_argument("--config", default="baseline-sfc-mdt",
                     choices=sorted(CONFIGS))
    run.add_argument("--scale", type=int, default=20_000,
                     help="dynamic instruction budget (default 20000)")

    compare = sub.add_parser(
        "compare", help="one benchmark under several configurations")
    compare.add_argument("benchmark", choices=sorted(ALL_BENCHMARKS))
    compare.add_argument("--configs", nargs="+",
                         default=["baseline-lsq", "baseline-sfc-mdt"],
                         choices=sorted(CONFIGS))
    compare.add_argument("--scale", type=int, default=20_000)

    figure = sub.add_parser("figure",
                            help="regenerate a paper figure/table")
    figure.add_argument("name", choices=sorted(FIGURES))
    figure.add_argument("--scale", type=int, default=8_000,
                        help="dynamic instruction budget per run "
                             "(default 8000; the archived results use "
                             "20000)")
    return parser


def _cmd_list() -> int:
    print("benchmarks:")
    for name in ALL_BENCHMARKS:
        print(f"  {name}")
    print("\nconfigurations:")
    for name in sorted(CONFIGS):
        print(f"  {name}")
    print("\nfigures:")
    for name in sorted(FIGURES):
        print(f"  {name}")
    return 0


def _cmd_run(args) -> int:
    runner = ExperimentRunner(scale=args.scale)
    result = runner.run(args.benchmark, CONFIGS[args.config]())
    print(format_report(result))
    return 0


def _cmd_compare(args) -> int:
    runner = ExperimentRunner(scale=args.scale)
    results = [(name, runner.run(args.benchmark, CONFIGS[name]()))
               for name in args.configs]
    width = max(len(name) for name, _ in results)
    print(f"{args.benchmark} (scale {args.scale})")
    print(f"{'configuration':<{width}}  {'IPC':>7}  {'cycles':>9}")
    for name, result in results:
        print(f"{name:<{width}}  {result.ipc:>7.3f}  "
              f"{result.cycles:>9d}")
    return 0


def _cmd_figure(args) -> int:
    figure = FIGURES[args.name](scale=args.scale)
    print(figure.format())
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "compare":
        return _cmd_compare(args)
    if args.command == "figure":
        return _cmd_figure(args)
    return 2


if __name__ == "__main__":
    sys.exit(main())
