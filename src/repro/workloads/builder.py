"""Shared helpers for writing workload kernels.

Kernels are small assembly programs whose *memory behaviour* mimics the
SPEC CPU2000 benchmark they are named after (see DESIGN.md for the
substitution rationale).  The helpers here keep kernel code focused on the
access pattern: counted loops, deterministic data-segment initialisation,
and register conventions.

Register conventions used by every kernel:

* ``r1``--``r13``: data values,
* ``r14``/``r15``: scratch/address computation,
* ``r16``--``r19``: loop counters,
* ``r20``--``r27``: base pointers (set up once in the prologue),
* ``r28``--``r30``: accumulators carried across the whole run.
"""

from __future__ import annotations

import random
from typing import Callable, Optional

from ..isa.assembler import Assembler


class KernelBuilder:
    """An assembler plus loop/data conveniences for kernel authors."""

    def __init__(self, name: str, seed: int = 1234):
        self.name = name
        self.asm = Assembler()
        self.rng = random.Random(seed)
        self._label_counter = 0

    def fresh_label(self, prefix: str = "l") -> str:
        self._label_counter += 1
        return f"{prefix}{self._label_counter}"

    def loop(self, counter: str, iterations: int,
             body: Callable[[], None]) -> None:
        """Emit ``for (counter = iterations; counter != 0; counter--)``."""
        top = self.fresh_label("loop")
        self.asm.li(counter, iterations)
        self.asm.label(top)
        body()
        self.asm.addi(counter, counter, -1)
        self.asm.bne(counter, "r0", top)

    def indexed_loop(self, counter: str, index: str, iterations: int,
                     body: Callable[[], None]) -> None:
        """Counted loop that also maintains an ascending index register."""
        top = self.fresh_label("loop")
        self.asm.li(counter, iterations)
        self.asm.li(index, 0)
        self.asm.label(top)
        body()
        self.asm.addi(index, index, 1)
        self.asm.addi(counter, counter, -1)
        self.asm.bne(counter, "r0", top)

    # -- data segments ---------------------------------------------------------

    def random_words(self, addr: int, count: int, width: int = 8,
                     lo: int = 0, hi: Optional[int] = None) -> None:
        """Fill ``count`` integers of ``width`` bytes at ``addr``."""
        if hi is None:
            hi = (1 << (8 * width)) - 1
        self.asm.data_words(
            addr, (self.rng.randint(lo, hi) for _ in range(count)),
            width=width)

    def random_bytes(self, addr: int, count: int) -> None:
        self.asm.data(addr, bytes(self.rng.getrandbits(8)
                                  for _ in range(count)))

    def permutation_words(self, addr: int, count: int, stride: int,
                          base: int) -> None:
        """A random cyclic pointer chain: entry i holds the address of the
        next element (``base + perm[i] * stride``), for pointer-chasing
        kernels."""
        order = list(range(count))
        self.rng.shuffle(order)
        next_addr = [0] * count
        for position in range(count):
            src = order[position]
            dst = order[(position + 1) % count]
            next_addr[src] = base + dst * stride
        self.asm.data_words(addr, next_addr, width=8)

    def build(self):
        return self.asm.build(name=self.name)
