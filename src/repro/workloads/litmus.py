"""Litmus-test workloads for the multicore shared-memory mode.

A litmus test is a tiny multi-threaded program probing one memory-model
question: each thread is a short, *branch-free* sequence of stores and
loads over a couple of shared locations, and the "outcome" is the tuple
of values the loads observed.  The classic trio shipped here:

* **MP** (message passing) -- T0 publishes data then a flag; T1 reads
  the flag then the data.  Observing the flag set but the data stale
  means T1's loads were reordered.
* **SB** (store buffering) -- each thread stores to its own location
  then loads the other's.  Both loads reading 0 means stores were
  buffered past the loads (neither store was visible when the other
  thread's load executed).
* **LB** (load buffering) -- each thread loads one location then stores
  the other.  Both loads reading 1 would require each load to observe a
  store that is program-order *after* the other load -- a causal cycle.

Each abstract thread compiles (:meth:`LitmusTest.programs`) to a
straight-line assembly program: loaded values are written to per-thread
*result locations* in shared memory, so the outcome of a run is read
back from the final shared image with :meth:`LitmusTest.outcome`.
Shared locations and result slots all live on distinct cache lines.

Threads are branch-free on purpose: each core's golden trace (its
single-threaded architectural execution) then matches the fetch path
exactly, so the pipeline's right-path tracking stays intact even though
cross-core stores change the *values* loads return (value validation is
off in shared mode; the operational-model oracle in
:mod:`repro.verify.litmus_oracle` judges the observed outcomes instead).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..isa.assembler import Assembler
from ..isa.program import Program

#: Shared locations, one per 256-byte stride so no two share an L1D
#: (64B) or L2 (128B) line.
LOCATIONS: Dict[str, int] = {
    "X": 0x4000,
    "Y": 0x4100,
    "Z": 0x4200,
}

#: Per-thread result areas (thread t, load slot k -> address).
RESULT_BASE = 0x8000
RESULT_THREAD_STRIDE = 0x100
RESULT_SLOT_STRIDE = 8

#: Thread-op discriminators.
ST = "st"
LD = "ld"

#: One abstract op: ``(ST, location, value)`` or ``(LD, location)``.
Op = Tuple
ThreadSpec = Sequence[Op]


def result_address(thread: int, slot: int) -> int:
    return RESULT_BASE + thread * RESULT_THREAD_STRIDE \
        + slot * RESULT_SLOT_STRIDE


class LitmusTest:
    """One named litmus test: N abstract threads over shared locations."""

    def __init__(self, name: str, description: str,
                 threads: Sequence[ThreadSpec]):
        self.name = name
        self.description = description
        self.threads = [list(thread) for thread in threads]
        for thread in self.threads:
            for op in thread:
                if op[0] not in (ST, LD) or op[1] not in LOCATIONS:
                    raise ValueError(f"{name}: malformed op {op!r}")

    @property
    def cores(self) -> int:
        return len(self.threads)

    def load_slots(self) -> List[Tuple[int, int]]:
        """Every ``(thread, slot)`` load position, outcome order."""
        slots = []
        for tid, thread in enumerate(self.threads):
            slot = 0
            for op in thread:
                if op[0] == LD:
                    slots.append((tid, slot))
                    slot += 1
        return slots

    # ------------------------------------------------------------ compile

    def programs(self) -> List[Program]:
        """One straight-line assembly program per thread.

        Loads land in ``r10+slot``; an epilogue stores every loaded
        value to the thread's private result slot so the outcome
        survives in the final shared image."""
        programs = []
        for tid, thread in enumerate(self.threads):
            asm = Assembler()
            slot = 0
            for op in thread:
                if op[0] == ST:
                    _, loc, value = op
                    asm.li("r1", LOCATIONS[loc])
                    asm.li("r2", value)
                    asm.sd("r2", "r1")
                else:
                    _, loc = op
                    asm.li("r1", LOCATIONS[loc])
                    asm.ld(f"r{10 + slot}", "r1")
                    slot += 1
            for k in range(slot):
                asm.li("r1", result_address(tid, k))
                asm.sd(f"r{10 + k}", "r1")
            asm.halt()
            programs.append(asm.build(name=f"{self.name}-t{tid}"))
        return programs

    # ------------------------------------------------------------ observe

    def outcome(self, memory) -> Tuple[int, ...]:
        """Read the observed outcome tuple back from a final memory
        image (loads in thread order, program order within a thread)."""
        return tuple(
            memory.read_int(result_address(tid, slot), 8)
            for tid, slot in self.load_slots())

    def __repr__(self) -> str:
        return f"LitmusTest({self.name}: {self.cores} threads)"


def _mp() -> LitmusTest:
    return LitmusTest(
        "mp", "message passing: data then flag vs flag then data",
        threads=[
            [(ST, "X", 1), (ST, "Y", 1)],
            [(LD, "Y"), (LD, "X")],
        ])


def _sb() -> LitmusTest:
    return LitmusTest(
        "sb", "store buffering: each thread stores then loads the other",
        threads=[
            [(ST, "X", 1), (LD, "Y")],
            [(ST, "Y", 1), (LD, "X")],
        ])


def _lb() -> LitmusTest:
    return LitmusTest(
        "lb", "load buffering: each thread loads then stores the other",
        threads=[
            [(LD, "X"), (ST, "Y", 1)],
            [(LD, "Y"), (ST, "X", 1)],
        ])


#: The shipped suite, keyed by short name.
LITMUS_TESTS: Dict[str, LitmusTest] = {
    "mp": _mp(),
    "sb": _sb(),
    "lb": _lb(),
}

#: Prefix under which litmus tests appear next to benchmark names.
LITMUS_PREFIX = "litmus-"


def litmus_benchmark_names() -> List[str]:
    """Litmus tests under benchmark-style names (``litmus-mp``, ...)."""
    return sorted(LITMUS_PREFIX + name for name in LITMUS_TESTS)


def is_litmus(name: str) -> bool:
    return name in LITMUS_TESTS or (
        name.startswith(LITMUS_PREFIX)
        and name[len(LITMUS_PREFIX):] in LITMUS_TESTS)


def get_litmus(name: str) -> LitmusTest:
    """Look a test up by short (``mp``) or benchmark (``litmus-mp``)
    name."""
    key = name[len(LITMUS_PREFIX):] if name.startswith(LITMUS_PREFIX) \
        else name
    try:
        return LITMUS_TESTS[key]
    except KeyError:
        raise KeyError(
            f"unknown litmus test {name!r}; choose from "
            f"{litmus_benchmark_names()}") from None
