"""SPECint-2000-styled integer kernels.

Each kernel reproduces the *memory behaviour* that drives its namesake's
results in the paper (see DESIGN.md):

* ``gzip`` -- LZ77 hash-chain updates: repeated stores to the same hash
  head entries (out-of-order same-address stores -> output-dependence
  violations; the paper singles out gzip as an ENF winner).
* ``bzip2`` -- block transform walking a matrix column at a 4 KiB stride:
  every store maps to one SFC set, so in-flight stores overwhelm a 2-way
  SFC when the window is deep (the paper's ">50% of dynamic stores
  replayed" pathology).
* ``mcf`` -- network-simplex arc scan at a 64 KiB stride: every load maps
  to one MDT set (the paper's ">16% of dynamic loads replayed" pathology).
* ``vpr_route`` -- maze-router cost updates behind unpredictable branches:
  frequent partial flushes over dense in-flight store state -> high SFC
  corruption replay rates, plus slow/fast store pairs to the same cell ->
  output violations.
* the rest model their namesakes' broad character (branchy dispatch for
  gcc/perlbmk, stack traffic for parser, annealing swaps for twolf and
  vpr_place, bitboard arithmetic for crafty, multiword arithmetic for gap,
  object-field traffic for vortex).
"""

from __future__ import annotations

from ..isa.program import Program
from .builder import KernelBuilder

#: Base addresses of kernel data segments, clear of the code image.
#: Staggered modulo the MDT/SFC index range so unrelated regions do not
#: alias; _MATRIX stays 64 KiB-aligned because bzip2/mcf rely on aligned
#: strides for their intended set-conflict pathologies.
_TEXT = 0x0010_0200
_TABLE = 0x0020_0400
_MATRIX = 0x0040_0000
_STACK = 0x0060_0600
_GRID = 0x0070_0800
_AUX = 0x0080_0A00


def build_gzip(scale: int = 20_000) -> Program:
    """LZ77-style hash-chain compressor inner loop."""
    k = KernelBuilder("gzip", seed=11)
    a = k.asm
    # Low-entropy text: hash values recur within the window, so head-table
    # entries are rewritten while older stores are still in flight.
    k.asm.data(_TEXT, bytes(k.rng.choice((65, 97))
                            for _ in range(4096)))
    k.random_words(_TABLE, 256, width=8, lo=0, hi=4000)
    a.li("r20", _TEXT)
    a.li("r21", _TABLE)
    a.li("r22", _AUX)           # lazy-match history (cold region)
    a.li("r28", 0)              # match-length heuristic accumulator
    iterations = max(1, scale // 16)

    def body() -> None:
        a.andi("r14", "r17", 0xFFF)
        a.add("r14", "r14", "r20")
        a.lbu("r1", "r14", 0)               # text[i]
        a.lbu("r2", "r14", 1)               # text[i+1]
        a.slli("r3", "r1", 5)
        a.add("r3", "r3", "r1")             # r1 * 33
        a.add("r3", "r3", "r2")
        a.andi("r3", "r3", 0xFF)            # hash
        a.slli("r15", "r3", 3)
        a.add("r15", "r15", "r21")
        a.ld("r4", "r15", 0)                # chain head (previous pos)
        a.andi("r5", "r17", 7)
        a.xori("r5", "r5", 1)
        skip = k.fresh_label("slow")
        done = k.fresh_label("hash")
        a.bne("r5", "r0", skip)
        # Every 8th iteration takes the lazy-match path: the head update data
        # waits on a cold history read (a fresh cache line per visit), so
        # the (older) slow store completes after the next (younger) fast
        # store to a recurring hash bucket -- the output-violation shape
        # that makes gzip an ENF winner in the paper.
        a.slli("r6", "r17", 6)
        a.andi("r6", "r6", 0xFFF8)
        a.add("r6", "r6", "r22")
        a.ld("r6", "r6", 0)                 # cold lazy-match history
        a.add("r6", "r6", "r17")
        a.andi("r6", "r6", 0xFFF)
        a.sd("r6", "r15", 0)
        a.j(done)
        a.label(skip)
        a.sd("r17", "r15", 0)               # fast head update
        a.label(done)
        a.sub("r7", "r17", "r4")            # distance to previous match
        a.add("r28", "r28", "r7")

    k.indexed_loop("r16", "r17", iterations, body)
    a.halt()
    return k.build()


def build_bzip2(scale: int = 20_000) -> Program:
    """Block-sorting transform writing a matrix column (4 KiB stride).

    The output stream walks a column of a matrix whose rows are exactly
    4096 bytes: the SFC set index is ``(addr >> 3) & (sets - 1)``, so with
    128- or 512-set SFCs the whole column maps to a couple of sets.  How
    many of those stores are simultaneously in flight -- hence whether a
    2-way set overflows -- is set by the window depth: roughly 5 stores in
    the 128-entry baseline (mild), roughly 40 in the 1024-entry aggressive
    core (the paper's ">50% of stores replayed").  The column is written,
    never re-read, so no ordering violations (and no predictor
    serialisation) dilute the structural-conflict effect.
    """
    k = KernelBuilder("bzip2", seed=12)
    a = k.asm
    rows = 16
    stream_words = 1 << 15                  # 256 KiB source block
    k.random_words(_TEXT, stream_words, width=8)
    a.li("r20", _MATRIX)
    a.li("r21", _TEXT)
    a.li("r28", 0)
    iterations = max(1, scale // 13)

    def body() -> None:
        # Streaming source read: misses the 8 KiB L1 every 8th word, so
        # retirement lags behind completion and the window fills with
        # completed-but-unretired column stores (~5 in the baseline
        # window, ~70 in the aggressive one).
        a.slli("r14", "r17", 3)
        a.andi("r14", "r14", (stream_words - 1) * 8)
        a.add("r14", "r14", "r21")
        a.ld("r1", "r14", 0)                # source word
        a.add("r28", "r28", "r1")           # block checksum
        # Rank computed from the index alone: the store's data never
        # waits on the missing load, so stores complete far ahead of
        # retirement.
        a.xor("r2", "r17", "r16")
        a.slli("r3", "r2", 1)
        a.add("r2", "r2", "r3")
        # Column store at a 4 KiB stride: row = i % 32, plus a slowly
        # advancing word slot keeping in-window addresses distinct.
        a.andi("r15", "r17", rows - 1)
        a.slli("r15", "r15", 12)
        a.srli("r4", "r17", 5)              # i / 32
        a.andi("r4", "r4", 0x78)            # 16 word slots, 8B apart
        a.add("r15", "r15", "r4")
        a.add("r15", "r15", "r20")
        a.sd("r2", "r15", 0)

    k.indexed_loop("r16", "r17", iterations, body)
    a.halt()
    return k.build()


def build_crafty(scale: int = 20_000) -> Program:
    """Bitboard move generation: shift/mask chains over a small board."""
    k = KernelBuilder("crafty", seed=13)
    a = k.asm
    k.random_words(_TABLE, 64, width=8)
    a.li("r20", _TABLE)
    a.li("r28", 0)
    iterations = max(1, scale // 18)

    def body() -> None:
        a.andi("r14", "r17", 63)
        a.slli("r14", "r14", 3)
        a.add("r14", "r14", "r20")
        a.ld("r1", "r14", 0)                # occupancy bitboard
        a.slli("r2", "r1", 9)               # knight-ish attack spreads
        a.srli("r3", "r1", 7)
        a.or_("r4", "r2", "r3")
        a.slli("r5", "r1", 17)
        a.srli("r6", "r1", 15)
        a.or_("r7", "r5", "r6")
        a.xor("r8", "r4", "r7")
        a.and_("r9", "r8", "r1")
        skip = k.fresh_label("quiet")
        a.beq("r9", "r0", skip)             # any capture? (data-dependent)
        a.add("r28", "r28", "r9")
        a.sd("r9", "r14", 0)                # update board
        a.label(skip)
        a.srai("r10", "r8", 3)
        a.add("r28", "r28", "r10")

    k.indexed_loop("r16", "r17", iterations, body)
    a.halt()
    return k.build()


def build_gap(scale: int = 20_000) -> Program:
    """Multiword (bignum) addition with carry propagation."""
    k = KernelBuilder("gap", seed=14)
    a = k.asm
    words = 64
    k.random_words(_TABLE, words, width=8)
    k.random_words(_TABLE + 0x1000, words, width=8)
    a.li("r20", _TABLE)                     # operand A
    a.li("r21", _TABLE + 0x1000)            # operand B
    a.li("r22", _TABLE + 0x2000)            # result C
    a.li("r28", 0)                          # carry
    iterations = max(1, scale // 14)

    def body() -> None:
        a.andi("r14", "r17", (words - 1) * 8)
        a.add("r1", "r14", "r20")
        a.add("r2", "r14", "r21")
        a.add("r3", "r14", "r22")
        a.ld("r4", "r1", 0)
        a.ld("r5", "r2", 0)
        a.add("r6", "r4", "r5")
        a.add("r6", "r6", "r28")            # + carry (serial chain)
        a.sltu("r28", "r6", "r4")           # carry out
        a.sd("r6", "r3", 0)
        a.xor("r7", "r6", "r4")

    k.indexed_loop("r16", "r17", iterations, body)
    a.halt()
    return k.build()


def build_gcc(scale: int = 20_000) -> Program:
    """Token-stream dispatch: a branch tree per token, symbol-table traffic."""
    k = KernelBuilder("gcc", seed=15)
    a = k.asm
    k.asm.data(_TEXT, bytes(k.rng.randrange(8) for _ in range(4096)))
    k.random_words(_TABLE, 64, width=8, lo=0, hi=1 << 20)
    a.li("r20", _TEXT)
    a.li("r21", _TABLE)
    a.li("r28", 0)
    iterations = max(1, scale // 17)

    def body() -> None:
        a.andi("r14", "r17", 0xFFF)
        a.add("r14", "r14", "r20")
        a.lbu("r1", "r14", 0)               # token
        ident = k.fresh_label("ident")
        lit = k.fresh_label("lit")
        out = k.fresh_label("out")
        a.slti("r2", "r1", 4)
        a.bne("r2", "r0", ident)            # token < 4: identifier
        a.slti("r2", "r1", 6)
        a.bne("r2", "r0", lit)              # token < 6: literal
        a.addi("r28", "r28", 7)             # punctuation
        a.j(out)
        a.label(ident)
        a.slli("r3", "r1", 3)
        a.add("r3", "r3", "r21")
        a.ld("r4", "r3", 0)                 # symbol lookup
        a.add("r4", "r4", "r1")
        a.sd("r4", "r3", 0)                 # reference count update
        a.j(out)
        a.label(lit)
        a.mul("r5", "r1", "r17")            # constant folding
        a.add("r28", "r28", "r5")
        a.label(out)

    k.indexed_loop("r16", "r17", iterations, body)
    a.halt()
    return k.build()


def build_mcf(scale: int = 20_000) -> Program:
    """Network-simplex arc scan whose node lookups stride by 64 KiB.

    Most loads stream through the arc array (well distributed over MDT
    sets), but each iteration also prices one *node*, and node records sit
    exactly 64 KiB apart: with an 8-byte-granular MDT of 4K or 8K sets the
    node loads all fall into a handful of sets.  A 128-entry window keeps
    ~2 of them in flight (no conflict); a 1024-entry window keeps ~15+ in
    flight, overrunning the 2-way sets -- the paper's ">16% of loads
    replayed" pathology.  The node region is read-only, so no ordering
    violations dilute the effect.
    """
    k = KernelBuilder("mcf", seed=16)
    a = k.asm
    nodes = 8
    stride = 65536
    stream_words = 1 << 15                  # 256 KiB arc array
    for node in range(nodes):
        k.random_words(_MATRIX + node * stride, 64, width=8, lo=1, hi=1000)
    k.random_words(_TABLE, stream_words, width=8, lo=1, hi=1000)
    a.li("r20", _MATRIX)
    a.li("r21", _TABLE)
    a.li("r28", 0)
    iterations = max(1, scale // 18)

    def body() -> None:
        # Streaming arc scan: L1 misses keep retirement behind completion
        # so the window fills with in-flight node loads.
        a.slli("r14", "r17", 3)
        a.andi("r14", "r14", (stream_words - 1) * 8)
        a.add("r14", "r14", "r21")
        a.ld("r1", "r14", 0)                # arc cost (well distributed)
        a.mul("r3", "r1", "r17")            # reduced cost
        a.srai("r4", "r3", 6)
        a.add("r28", "r28", "r4")
        # Node potential lookup on every 4th arc: at a 64 KiB stride all
        # node addresses share one MDT set, but the 4-iteration spacing
        # keeps only ~1 in flight in the 128-entry window versus ~12 in
        # the 1024-entry window.
        a.andi("r5", "r17", 3)
        skip = k.fresh_label("no_node")
        a.bne("r5", "r0", skip)
        a.srli("r6", "r17", 2)              # node scan counter
        a.andi("r7", "r6", nodes - 1)
        a.slli("r7", "r7", 16)
        a.srli("r8", "r6", 3)
        a.andi("r8", "r8", 0x1F8)           # 64 word slots
        a.add("r7", "r7", "r8")
        a.add("r7", "r7", "r20")
        a.ld("r9", "r7", 0)                 # node potential (hot MDT set)
        a.sub("r10", "r9", "r1")
        a.add("r28", "r28", "r10")
        a.label(skip)
        # Pricing bookkeeping pads the body.
        a.xor("r11", "r4", "r3")
        a.slli("r12", "r11", 1)
        a.add("r13", "r12", "r11")
        a.add("r28", "r28", "r13")

    k.indexed_loop("r16", "r17", iterations, body)
    a.halt()
    return k.build()


def build_parser(scale: int = 20_000) -> Program:
    """Link-grammar parse stack: push/pop traffic with byte compares."""
    k = KernelBuilder("parser", seed=17)
    a = k.asm
    k.asm.data(_TEXT, bytes(k.rng.randrange(26) + 97
                            for _ in range(2048)))
    a.li("r20", _TEXT)
    a.li("r21", _STACK + 512)               # stack pointer (grows down)
    a.li("r28", 0)
    iterations = max(1, scale // 19)

    def body() -> None:
        a.andi("r14", "r17", 0x7FF)
        a.add("r14", "r14", "r20")
        a.lbu("r1", "r14", 0)               # word character
        a.lbu("r2", "r14", 1)
        push = k.fresh_label("push")
        out = k.fresh_label("out")
        a.blt("r1", "r2", push)             # open link: push
        a.ld("r3", "r21", 0)                # close link: pop + match
        a.addi("r21", "r21", 8)
        a.sub("r4", "r3", "r1")
        a.add("r28", "r28", "r4")
        a.j(out)
        a.label(push)
        a.addi("r21", "r21", -8)
        a.sd("r1", "r21", 0)                # push (load follows soon)
        a.label(out)
        a.andi("r5", "r21", 0x1FF)          # keep the stack in its page
        a.li("r15", _STACK)
        a.add("r21", "r15", "r5")

    k.indexed_loop("r16", "r17", iterations, body)
    a.halt()
    return k.build()


def build_perlbmk(scale: int = 20_000) -> Program:
    """Bytecode-interpreter dispatch over an operand stack."""
    k = KernelBuilder("perlbmk", seed=18)
    a = k.asm
    k.asm.data(_TEXT, bytes(k.rng.randrange(4) for _ in range(4096)))
    k.random_words(_TABLE, 16, width=8, lo=0, hi=1000)   # lexical pad
    a.li("r20", _TEXT)
    a.li("r21", _STACK)
    a.li("r22", _TABLE)
    a.li("r23", 0)                          # stack depth
    a.li("r28", 0)
    iterations = max(1, scale // 20)

    def body() -> None:
        a.andi("r14", "r17", 0xFFF)
        a.add("r14", "r14", "r20")
        a.lbu("r1", "r14", 0)               # opcode
        op_add = k.fresh_label("op_add")
        op_load = k.fresh_label("op_load")
        op_store = k.fresh_label("op_store")
        out = k.fresh_label("dispatch_out")
        a.beq("r1", "r0", op_add)
        a.slti("r2", "r1", 2)
        a.bne("r2", "r0", op_load)
        a.slti("r2", "r1", 3)
        a.bne("r2", "r0", op_store)
        # push immediate
        a.slli("r3", "r23", 3)
        a.add("r3", "r3", "r21")
        a.sd("r17", "r3", 0)
        a.addi("r23", "r23", 1)
        a.j(out)
        a.label(op_add)                     # pop two, push sum
        a.slli("r3", "r23", 3)
        a.add("r3", "r3", "r21")
        a.ld("r4", "r3", -8)
        a.ld("r5", "r3", -16)
        a.add("r6", "r4", "r5")
        a.sd("r6", "r3", -16)
        a.j(out)
        a.label(op_load)                    # load pad variable, push
        a.andi("r7", "r17", 0x78)
        a.add("r7", "r7", "r22")
        a.ld("r8", "r7", 0)
        a.add("r28", "r28", "r8")
        a.j(out)
        a.label(op_store)                   # store accumulator to pad
        a.andi("r7", "r17", 0x78)
        a.add("r7", "r7", "r22")
        a.sd("r28", "r7", 0)
        a.label(out)
        a.andi("r23", "r23", 15)            # bound the stack depth

    k.indexed_loop("r16", "r17", iterations, body)
    a.halt()
    return k.build()


def _annealing_kernel(name: str, seed: int, scale: int, cells: int,
                      accept_bias: int, body_padding: int) -> Program:
    """Shared shape for twolf / vpr_place: conditional cell swaps.

    ``accept_bias`` skews the accept branch (0 = 50/50, larger = more
    predictable); ``body_padding`` adds ALU work per iteration.
    """
    k = KernelBuilder(name, seed=seed)
    a = k.asm
    k.random_words(_TABLE, cells, width=8, lo=0, hi=1 << 16)
    a.li("r20", _TABLE)
    a.li("r1", seed * 2654435761 % (1 << 32))   # LCG state
    a.li("r28", 0)
    iterations = max(1, scale // (20 + body_padding))

    def body() -> None:
        # LCG advance; pick two pseudo-random cells.
        a.li("r15", 6364136223846793005)
        a.mul("r1", "r1", "r15")
        a.addi("r1", "r1", 1442695040888963407)
        a.srli("r2", "r1", 33)
        a.andi("r3", "r2", (cells - 1) * 8)
        a.srli("r4", "r1", 17)
        a.andi("r5", "r4", (cells - 1) * 8)
        a.add("r3", "r3", "r20")
        a.add("r5", "r5", "r20")
        a.ld("r6", "r3", 0)                 # cell A
        a.ld("r7", "r5", 0)                 # cell B
        a.sub("r8", "r6", "r7")             # delta cost
        for pad in range(body_padding):
            a.xor("r9", "r8", "r2")
            a.add("r8", "r8", "r9")
            a.srai("r8", "r8", 1)
        reject = k.fresh_label("reject")
        a.addi("r9", "r8", accept_bias)
        a.blt("r9", "r0", reject)           # accept? (data-dependent)
        a.sd("r7", "r3", 0)                 # swap: two stores behind an
        a.sd("r6", "r5", 0)                 # unpredictable branch
        a.addi("r28", "r28", 1)
        a.label(reject)

    k.indexed_loop("r16", "r17", iterations, body)
    a.halt()
    return k.build()


def build_twolf(scale: int = 20_000) -> Program:
    """Standard-cell placement annealing (conditional swaps)."""
    return _annealing_kernel("twolf", seed=19, scale=scale, cells=256,
                             accept_bias=0, body_padding=2)


def build_vortex(scale: int = 20_000) -> Program:
    """Object-database field traffic with one level of indirection."""
    k = KernelBuilder("vortex", seed=20)
    a = k.asm
    objects = 128
    obj_bytes = 64
    base = _TABLE
    # Field 0 of each object holds a reference to another object.
    for index in range(objects):
        ref = k.rng.randrange(objects)
        fields = [base + ref * obj_bytes] + \
            [k.rng.randint(0, 1 << 16) for _ in range(7)]
        a.data_words(base + index * obj_bytes, fields, 8)
    a.li("r20", base)
    a.li("r28", 0)
    iterations = max(1, scale // 17)

    def body() -> None:
        a.andi("r14", "r17", objects - 1)
        a.slli("r14", "r14", 6)
        a.add("r14", "r14", "r20")
        a.ld("r1", "r14", 0)                # reference field
        a.ld("r2", "r14", 8)                # attribute
        a.ld("r3", "r1", 16)                # referenced object's attribute
        a.add("r4", "r2", "r3")
        a.sd("r4", "r14", 24)               # memoised result
        a.addi("r5", "r2", 1)
        a.sd("r5", "r14", 8)                # access count
        a.add("r28", "r28", "r4")

    k.indexed_loop("r16", "r17", iterations, body)
    a.halt()
    return k.build()


def build_vpr_place(scale: int = 20_000) -> Program:
    """FPGA placement annealing (more compute, more predictable accepts)."""
    return _annealing_kernel("vpr_place", seed=21, scale=scale, cells=512,
                             accept_bias=1 << 14, body_padding=4)


def build_vpr_route(scale: int = 20_000) -> Program:
    """Maze-router cost propagation: unpredictable branches over dense
    in-flight store state (the paper's SFC-corruption pathology), plus
    slow/fast store pairs to the same heap cell (output violations)."""
    k = KernelBuilder("vpr_route", seed=22)
    a = k.asm
    cells = 1024
    k.random_words(_GRID, cells, width=8, lo=0, hi=1 << 12)
    k.random_words(_AUX, 64, width=8, lo=0, hi=1 << 12)
    a.li("r20", _GRID)
    a.li("r21", _AUX)                       # routing heap
    a.li("r1", 88172645463325252)           # xorshift state
    a.li("r28", 0)
    iterations = max(1, scale // 24)

    def body() -> None:
        # Wavefront cell chosen pseudo-randomly.
        a.slli("r2", "r1", 13)
        a.xor("r1", "r1", "r2")
        a.srli("r2", "r1", 7)
        a.xor("r1", "r1", "r2")
        a.andi("r3", "r1", (cells - 1) * 8)
        a.add("r3", "r3", "r20")
        a.ld("r4", "r3", 0)                 # this cell's cost
        a.ld("r5", "r3", 8)                 # east neighbour
        a.ld("r6", "r3", 256)               # south neighbour
        better = k.fresh_label("better")
        out = k.fresh_label("out")
        a.add("r7", "r5", "r6")
        a.srli("r7", "r7", 1)               # candidate cost
        a.blt("r7", "r4", better)           # improve? (unpredictable)
        a.addi("r28", "r28", 1)
        a.j(out)
        a.label(better)
        a.sd("r7", "r3", 0)                 # relax the cell
        # Heap decrease-key: read-modify-write of one of 16 buckets whose
        # reuse distance (~16 accepted iterations) sits inside the
        # aggressive window but beyond the baseline one.  After any
        # partial flush the bucket's in-flight bytes are corruption-
        # marked, so the read replays until the writer retires (often
        # only via the ROB-head bypass) -- the paper's ~20%-of-loads
        # corruption pathology, and the slow multiply-fed store racing a
        # later fast store gives the output violations that make
        # vpr_route an ENF winner.
        a.andi("r8", "r1", 0x78)
        a.add("r8", "r8", "r21")
        a.ld("r9", "r8", 0)
        a.mul("r9", "r9", "r4")
        a.sd("r9", "r8", 0)
        a.label(out)

    k.indexed_loop("r16", "r17", iterations, body)
    a.halt()
    return k.build()
