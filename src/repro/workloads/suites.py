"""Benchmark-suite registry.

The paper simulates 19 of the 26 SPEC CPU2000 benchmarks (11 specint, with
vpr run on both its *place* and *route* inputs, and 8 specfp).  Figure 5
reports all of them on the baseline core; Figure 6 drops mesa on the
aggressive core ("results for mesa were not available due to a performance
bug in the simulator's handling of system calls").
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..isa.program import Program
from . import kernels_fp, kernels_int

KernelBuilderFn = Callable[[int], Program]

#: specint workloads in the paper's Figure 5 order.
INT_BENCHMARKS: Dict[str, KernelBuilderFn] = {
    "bzip2": kernels_int.build_bzip2,
    "crafty": kernels_int.build_crafty,
    "gap": kernels_int.build_gap,
    "gcc": kernels_int.build_gcc,
    "gzip": kernels_int.build_gzip,
    "mcf": kernels_int.build_mcf,
    "parser": kernels_int.build_parser,
    "perlbmk": kernels_int.build_perlbmk,
    "twolf": kernels_int.build_twolf,
    "vortex": kernels_int.build_vortex,
    "vpr_place": kernels_int.build_vpr_place,
    "vpr_route": kernels_int.build_vpr_route,
}

#: specfp workloads in the paper's Figure 5 order.
FP_BENCHMARKS: Dict[str, KernelBuilderFn] = {
    "ammp": kernels_fp.build_ammp,
    "applu": kernels_fp.build_applu,
    "apsi": kernels_fp.build_apsi,
    "art": kernels_fp.build_art,
    "equake": kernels_fp.build_equake,
    "mesa": kernels_fp.build_mesa,
    "mgrid": kernels_fp.build_mgrid,
    "swim": kernels_fp.build_swim,
}

ALL_BENCHMARKS: Dict[str, KernelBuilderFn] = {**INT_BENCHMARKS,
                                              **FP_BENCHMARKS}

#: Benchmarks appearing in Figure 5 (baseline core).
FIGURE5_BENCHMARKS: List[str] = list(ALL_BENCHMARKS)

#: Benchmarks appearing in Figure 6 (aggressive core; no mesa).
FIGURE6_BENCHMARKS: List[str] = [name for name in ALL_BENCHMARKS
                                 if name != "mesa"]


def build(name: str, scale: int = 20_000) -> Program:
    """Build one benchmark kernel by name at the given dynamic-size scale."""
    try:
        builder = ALL_BENCHMARKS[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; choose from "
            f"{sorted(ALL_BENCHMARKS)}") from None
    return builder(scale)


def is_fp(name: str) -> bool:
    return name in FP_BENCHMARKS
