"""Synthetic SPEC-2000-styled workloads and a random program generator."""

from .builder import KernelBuilder
from .randprog import (
    FuzzProgramBuilder,
    RandomProgramBuilder,
    fuzz_program,
    random_program,
)
from .suites import (
    ALL_BENCHMARKS,
    FIGURE5_BENCHMARKS,
    FIGURE6_BENCHMARKS,
    FP_BENCHMARKS,
    INT_BENCHMARKS,
    build,
    is_fp,
)

__all__ = [
    "ALL_BENCHMARKS",
    "FIGURE5_BENCHMARKS",
    "FIGURE6_BENCHMARKS",
    "FP_BENCHMARKS",
    "FuzzProgramBuilder",
    "INT_BENCHMARKS",
    "KernelBuilder",
    "RandomProgramBuilder",
    "build",
    "fuzz_program",
    "is_fp",
    "random_program",
]
