"""Synthetic SPEC-2000-styled workloads, litmus tests, and a random
program generator."""

from .builder import KernelBuilder
from .litmus import (
    LITMUS_TESTS,
    LitmusTest,
    get_litmus,
    is_litmus,
    litmus_benchmark_names,
)
from .randprog import (
    FuzzProgramBuilder,
    RandomProgramBuilder,
    fuzz_program,
    random_program,
)
from .suites import (
    ALL_BENCHMARKS,
    FIGURE5_BENCHMARKS,
    FIGURE6_BENCHMARKS,
    FP_BENCHMARKS,
    INT_BENCHMARKS,
    RISCV_BENCHMARKS,
    build,
    is_fp,
    register_suite,
    suite,
    suite_names,
)

__all__ = [
    "ALL_BENCHMARKS",
    "FIGURE5_BENCHMARKS",
    "FIGURE6_BENCHMARKS",
    "FP_BENCHMARKS",
    "FuzzProgramBuilder",
    "INT_BENCHMARKS",
    "KernelBuilder",
    "LITMUS_TESTS",
    "LitmusTest",
    "RISCV_BENCHMARKS",
    "RandomProgramBuilder",
    "build",
    "fuzz_program",
    "get_litmus",
    "is_fp",
    "is_litmus",
    "litmus_benchmark_names",
    "random_program",
    "register_suite",
    "suite",
    "suite_names",
]
