"""Random structured program generator for property-based testing.

Generates programs that always halt (loops are counted, branches are
forward-skips) while exercising the hazards the memory subsystems must
handle: loads and stores of every width to a small shared arena (dense
aliasing), store data fed by long-latency chains (late-executing stores ->
true-dependence violations), and data-dependent branches (wrong-path
execution and partial flushes).

The property under test: for any generated program, the out-of-order
pipeline retires exactly the architectural trace, under every memory
subsystem configuration.  The pipeline itself enforces this (retirement
validation raises :class:`~repro.pipeline.processor.SimulationError`), so
the property test only needs to run programs to completion.
"""

from __future__ import annotations

import random
from ..isa.assembler import Assembler
from ..isa.program import Program

#: Register conventions inside generated programs.
DATA_REGS = [f"r{i}" for i in range(1, 14)]
LOOP_REGS = ["r16", "r17", "r18"]
BASE_REG = "r20"
SCRATCH = "r15"

ARENA_BASE = 0x10000
ARENA_BYTES = 256          # small arena => dense aliasing

_LOAD_EMITTERS = ["lb", "lbu", "lh", "lhu", "lw", "lwu", "ld"]
_STORE_EMITTERS = ["sb", "sh", "sw", "sd"]
_SIZE_OF = {"lb": 1, "lbu": 1, "lh": 2, "lhu": 2, "lw": 4, "lwu": 4,
            "ld": 8, "sb": 1, "sh": 2, "sw": 4, "sd": 8}
_ALU_OPS = ["add", "sub", "and_", "or_", "xor", "slt", "sltu"]
_IMM_OPS = ["addi", "andi", "ori", "xori"]
_LONG_OPS = ["mul", "fadd", "fmul"]


class RandomProgramBuilder:
    """Builds one random, always-halting program from a seed."""

    def __init__(self, seed: int, max_blocks: int = 12,
                 loop_depth_limit: int = 2):
        self.rng = random.Random(seed)
        self.seed = seed
        self.max_blocks = max_blocks
        self.loop_depth_limit = loop_depth_limit
        self.asm = Assembler()
        self._label_counter = 0
        self._loop_regs_in_use = 0

    def _fresh_label(self, prefix: str) -> str:
        self._label_counter += 1
        return f"{prefix}_{self._label_counter}"

    def _reg(self) -> str:
        return self.rng.choice(DATA_REGS)

    def _offset(self, size: int) -> int:
        # Aligned offsets within the arena; alignment keeps accesses
        # inside one SFC word except for deliberate 8-byte accesses.
        slots = ARENA_BYTES // size
        return self.rng.randrange(slots) * size

    # -- block emitters -------------------------------------------------------

    def _emit_alu(self) -> None:
        rng = self.rng
        for _ in range(rng.randint(1, 4)):
            kind = rng.random()
            if kind < 0.5:
                getattr(self.asm, rng.choice(_ALU_OPS))(
                    self._reg(), self._reg(), self._reg())
            elif kind < 0.8:
                getattr(self.asm, rng.choice(_IMM_OPS))(
                    self._reg(), self._reg(), rng.randint(-64, 64))
            else:
                getattr(self.asm, rng.choice(_LONG_OPS))(
                    self._reg(), self._reg(), self._reg())

    def _emit_memory(self) -> None:
        rng = self.rng
        for _ in range(rng.randint(1, 5)):
            if rng.random() < 0.5:
                op = rng.choice(_LOAD_EMITTERS)
                getattr(self.asm, op)(self._reg(), BASE_REG,
                                      self._offset(_SIZE_OF[op]))
            else:
                op = rng.choice(_STORE_EMITTERS)
                getattr(self.asm, op)(self._reg(), BASE_REG,
                                      self._offset(_SIZE_OF[op]))

    def _emit_indexed_memory(self) -> None:
        """Register-computed (possibly word-straddling) addressing."""
        rng = self.rng
        index = self._reg()
        # SCRATCH = base + (index & (ARENA_BYTES/2 - 1)): always in the
        # arena, any byte alignment, so 4/8-byte accesses can straddle
        # SFC words and MDT granules.
        self.asm.andi(SCRATCH, index, ARENA_BYTES // 2 - 1)
        self.asm.add(SCRATCH, SCRATCH, BASE_REG)
        if rng.random() < 0.5:
            op = rng.choice(_LOAD_EMITTERS)
            getattr(self.asm, op)(self._reg(), SCRATCH, 0)
        else:
            op = rng.choice(_STORE_EMITTERS)
            data = self._reg()
            if data == SCRATCH:
                data = DATA_REGS[0]
            getattr(self.asm, op)(data, SCRATCH, 0)

    def _emit_late_store_pattern(self) -> None:
        """Store fed by a long chain, then a load of the same address --
        the canonical true-dependence-violation shape."""
        rng = self.rng
        src = self._reg()
        dst = self._reg()
        op = rng.choice(_STORE_EMITTERS)
        size = _SIZE_OF[op]
        offset = self._offset(size)
        self.asm.mul(src, src, src)
        if rng.random() < 0.5:
            self.asm.mul(src, src, src)
        getattr(self.asm, op)(src, BASE_REG, offset)
        load_op = {1: "lbu", 2: "lhu", 4: "lwu", 8: "ld"}[size]
        getattr(self.asm, load_op)(dst, BASE_REG, offset)

    def _emit_branch(self, depth: int) -> None:
        """A data-dependent forward skip (wrong-path fodder)."""
        rng = self.rng
        skip = self._fresh_label("skip")
        reg = self._reg()
        self.asm.andi(SCRATCH, reg, rng.choice([1, 3, 7]))
        if rng.random() < 0.5:
            self.asm.beq(SCRATCH, "r0", skip)
        else:
            self.asm.bne(SCRATCH, "r0", skip)
        self._emit_body(depth + 1)  # the skippable side
        self.asm.label(skip)

    def _emit_loop(self, depth: int) -> None:
        rng = self.rng
        counter = LOOP_REGS[self._loop_regs_in_use]
        self._loop_regs_in_use += 1
        top = self._fresh_label("loop")
        self.asm.li(counter, rng.randint(2, 6))
        self.asm.label(top)
        self._emit_body(depth + 1)
        self.asm.addi(counter, counter, -1)
        self.asm.bne(counter, "r0", top)
        self._loop_regs_in_use -= 1

    def _emit_body(self, depth: int) -> None:
        rng = self.rng
        choice = rng.random()
        if choice < 0.25:
            self._emit_alu()
        elif choice < 0.5:
            self._emit_memory()
        elif choice < 0.6:
            self._emit_indexed_memory()
        elif choice < 0.75:
            self._emit_late_store_pattern()
        elif choice < 0.9 and depth < self.loop_depth_limit and \
                self._loop_regs_in_use < len(LOOP_REGS):
            self._emit_loop(depth)
        elif depth < 4:
            self._emit_branch(depth)
        else:
            self._emit_alu()

    # -- top level ---------------------------------------------------------------

    def build(self) -> Program:
        rng = self.rng
        asm = self.asm
        asm.li(BASE_REG, ARENA_BASE)
        for reg in DATA_REGS:
            asm.li(reg, rng.getrandbits(16))
        arena = bytes(rng.getrandbits(8) for _ in range(ARENA_BYTES))
        asm.data(ARENA_BASE, arena)
        for _ in range(rng.randint(3, self.max_blocks)):
            self._emit_body(depth=0)
        asm.halt()
        return asm.build(name=f"random-{self.seed}")


def random_program(seed: int, max_blocks: int = 12) -> Program:
    """Generate one random, always-halting hazard-rich program."""
    return RandomProgramBuilder(seed, max_blocks=max_blocks).build()


class FuzzProgramBuilder(RandomProgramBuilder):
    """Adversarial variant of the generator for differential fuzzing.

    Extends :class:`RandomProgramBuilder` with the access shapes most
    likely to expose memory-subsystem divergence:

    * **unaligned offsets** -- immediate-addressed accesses at any byte
      offset, so 2/4/8-byte accesses straddle SFC words and MDT granules
      without going through the register-indexed path;
    * **byte-granularity partial forwarding** -- a wide store followed by
      narrow loads of its interior bytes (forwardable sub-ranges) and a
      narrow store followed by a wide load over it (a partial match the
      SFC must *refuse* to forward);
    * **overlapping stores** -- differently sized stores over the same
      bytes, then a load of the overlap (output-dependence and
      merge-order fodder);
    * **deeper loop nests** -- loop depth 3 (every loop register), so
      stores retire while aliasing loads from the next iteration are
      already in flight.
    """

    def __init__(self, seed: int, max_blocks: int = 12,
                 loop_depth_limit: int = 3):
        super().__init__(seed, max_blocks=max_blocks,
                         loop_depth_limit=loop_depth_limit)

    def _offset(self, size: int) -> int:
        # One access in four lands on an arbitrary byte boundary.
        if self.rng.random() < 0.25:
            return self.rng.randrange(ARENA_BYTES - size)
        return super()._offset(size)

    def _emit_partial_forward(self) -> None:
        rng = self.rng
        wide_op, wide_size = rng.choice([("sw", 4), ("sd", 8)])
        offset = rng.randrange(ARENA_BYTES - wide_size)
        getattr(self.asm, wide_op)(self._reg(), BASE_REG, offset)
        if rng.random() < 0.5:
            # Narrow loads of the wide store's interior bytes.
            for _ in range(rng.randint(1, 3)):
                narrow_op, narrow_size = rng.choice(
                    [("lbu", 1), ("lb", 1), ("lhu", 2), ("lh", 2)])
                inner = rng.randrange(wide_size - narrow_size + 1)
                getattr(self.asm, narrow_op)(self._reg(), BASE_REG,
                                             offset + inner)
        else:
            # A narrow store inside the range, then a wide load over it:
            # the load partially matches in-flight store data.
            narrow_op, narrow_size = rng.choice([("sb", 1), ("sh", 2)])
            inner = rng.randrange(wide_size - narrow_size + 1)
            getattr(self.asm, narrow_op)(self._reg(), BASE_REG,
                                         offset + inner)
            load_op = {4: "lwu", 8: "ld"}[wide_size]
            getattr(self.asm, load_op)(self._reg(), BASE_REG, offset)

    def _emit_overlapping_stores(self) -> None:
        rng = self.rng
        offset = rng.randrange(ARENA_BYTES - 16)
        ops = rng.sample(_STORE_EMITTERS, 2)
        for op in ops:
            shift = rng.randrange(4)
            getattr(self.asm, op)(self._reg(), BASE_REG, offset + shift)
        load_op = rng.choice(_LOAD_EMITTERS)
        getattr(self.asm, load_op)(self._reg(), BASE_REG, offset)

    def _emit_body(self, depth: int) -> None:
        choice = self.rng.random()
        if choice < 0.12:
            self._emit_partial_forward()
        elif choice < 0.2:
            self._emit_overlapping_stores()
        else:
            super()._emit_body(depth)


def fuzz_program(seed: int, max_blocks: int = 12) -> Program:
    """Generate one adversarial program for the differential fuzzer."""
    return FuzzProgramBuilder(seed, max_blocks=max_blocks).build()
