"""Random RV32 machine-code generator: fuzz coverage for the RISC-V
frontend.

The native random generators (:mod:`repro.workloads.randprog`) build
internal-ISA programs directly; this one builds *real RV32 words* with
:class:`repro.isa.riscv.RVAssembler` and runs them through the full
decode -> translate path, so a fuzz campaign exercises the frontend
itself (encodings, W-op semantics, jal/jalr links, sign-extension
invariant) and not just the pipeline behind it.

Same structural guarantees as the native generator: programs always
halt (forward skips and counted loops only), and all memory traffic
lands in a small arena for dense aliasing.
"""

from __future__ import annotations

import random

from ..isa.program import Program
from ..isa.riscv import RVAssembler

#: Arena base: lui-friendly (low 12 bits zero), positive 32-bit.
ARENA_BASE = 0x10000
ARENA_BYTES = 256

#: Register conventions: x1 = arena base, x5..x13 data, x14 scratch,
#: x6 link register for generated calls, x28..x30 loop counters.
BASE_REG = 1
DATA_REGS = list(range(5, 14))
SCRATCH = 14
LINK_REG = 6
LOOP_REGS = [28, 29, 30]

_R_OPS = ["add", "sub", "sll", "srl", "sra", "slt", "sltu", "xor", "or",
          "and", "mul", "mulh", "mulhsu", "mulhu", "div", "divu", "rem",
          "remu"]
_I_OPS = ["addi", "slti", "sltiu", "xori", "ori", "andi"]
_SHIFT_OPS = ["slli", "srli", "srai"]
_LOADS = ["lb", "lbu", "lh", "lhu", "lw"]
_STORES = ["sb", "sh", "sw"]
_SIZE_OF = {"lb": 1, "lbu": 1, "lh": 2, "lhu": 2, "lw": 4,
            "sb": 1, "sh": 2, "sw": 4}
_BRANCHES = ["beq", "bne", "blt", "bge", "bltu", "bgeu"]


class RiscvFuzzProgramBuilder:
    """Builds one random, always-halting RV32 program from a seed."""

    def __init__(self, seed: int, max_blocks: int = 12,
                 loop_depth_limit: int = 2):
        self.rng = random.Random(seed ^ 0x52563332)  # decorrelate: "RV32"
        self.seed = seed
        self.max_blocks = max_blocks
        self.loop_depth_limit = loop_depth_limit
        self.asm = RVAssembler()
        self._label_counter = 0
        self._loop_regs_in_use = 0
        self._calls_emitted = 0

    def _fresh_label(self, prefix: str) -> str:
        self._label_counter += 1
        return f"{prefix}_{self._label_counter}"

    def _reg(self) -> int:
        return self.rng.choice(DATA_REGS)

    def _offset(self, size: int) -> int:
        # Mostly aligned; one access in four at an arbitrary byte
        # boundary so wide accesses straddle SFC words / MDT granules.
        if self.rng.random() < 0.25:
            return self.rng.randrange(ARENA_BYTES - size)
        return self.rng.randrange(ARENA_BYTES // size) * size

    # -- block emitters ------------------------------------------------------

    def _emit_alu(self) -> None:
        rng = self.rng
        for _ in range(rng.randint(1, 4)):
            kind = rng.random()
            if kind < 0.5:
                self.asm.emit(rng.choice(_R_OPS), rd=self._reg(),
                              rs1=self._reg(), rs2=self._reg())
            elif kind < 0.8:
                self.asm.emit(rng.choice(_I_OPS), rd=self._reg(),
                              rs1=self._reg(), imm=rng.randint(-2048, 2047))
            else:
                self.asm.emit(rng.choice(_SHIFT_OPS), rd=self._reg(),
                              rs1=self._reg(), imm=rng.randrange(32))

    def _emit_memory(self) -> None:
        rng = self.rng
        for _ in range(rng.randint(1, 5)):
            if rng.random() < 0.5:
                op = rng.choice(_LOADS)
                self.asm.emit(op, rd=self._reg(), rs1=BASE_REG,
                              imm=self._offset(_SIZE_OF[op]))
            else:
                op = rng.choice(_STORES)
                self.asm.emit(op, rs1=BASE_REG, rs2=self._reg(),
                              imm=self._offset(_SIZE_OF[op]))

    def _emit_indexed_memory(self) -> None:
        """Register-computed addressing (any alignment inside the arena)."""
        rng = self.rng
        self.asm.emit("andi", rd=SCRATCH, rs1=self._reg(),
                      imm=ARENA_BYTES // 2 - 1)
        self.asm.emit("add", rd=SCRATCH, rs1=SCRATCH, rs2=BASE_REG)
        if rng.random() < 0.5:
            op = rng.choice(_LOADS)
            self.asm.emit(op, rd=self._reg(), rs1=SCRATCH)
        else:
            op = rng.choice(_STORES)
            data = self._reg()
            self.asm.emit(op, rs1=SCRATCH, rs2=data)

    def _emit_partial_forward(self) -> None:
        """A wide store under narrow loads, or a narrow store under a
        wide load -- the SFC partial-forwarding corners, in RV32 form."""
        rng = self.rng
        offset = rng.randrange(ARENA_BYTES - 4)
        self.asm.emit("sw", rs1=BASE_REG, rs2=self._reg(), imm=offset)
        if rng.random() < 0.5:
            for _ in range(rng.randint(1, 3)):
                op = rng.choice(["lb", "lbu", "lh", "lhu"])
                inner = rng.randrange(4 - _SIZE_OF[op] + 1)
                self.asm.emit(op, rd=self._reg(), rs1=BASE_REG,
                              imm=offset + inner)
        else:
            op = rng.choice(["sb", "sh"])
            inner = rng.randrange(4 - _SIZE_OF[op] + 1)
            self.asm.emit(op, rs1=BASE_REG, rs2=self._reg(),
                          imm=offset + inner)
            self.asm.emit("lw", rd=self._reg(), rs1=BASE_REG, imm=offset)

    def _emit_late_store(self) -> None:
        """A store fed by a multiply chain, then a load of the same
        address: the canonical true-dependence-violation shape."""
        rng = self.rng
        src = self._reg()
        op = rng.choice(_STORES)
        offset = self._offset(_SIZE_OF[op])
        self.asm.emit("mul", rd=src, rs1=src, rs2=src)
        if rng.random() < 0.5:
            self.asm.emit("mul", rd=src, rs1=src, rs2=src)
        self.asm.emit(op, rs1=BASE_REG, rs2=src, imm=offset)
        load = {1: "lbu", 2: "lhu", 4: "lw"}[_SIZE_OF[op]]
        self.asm.emit(load, rd=self._reg(), rs1=BASE_REG, imm=offset)

    def _emit_branch(self, depth: int) -> None:
        """A data-dependent forward skip (wrong-path fodder)."""
        rng = self.rng
        skip = self._fresh_label("skip")
        self.asm.emit("andi", rd=SCRATCH, rs1=self._reg(),
                      imm=rng.choice([1, 3, 7]))
        self.asm.branch(rng.choice(["beq", "bne"]), SCRATCH, 0, skip)
        self._emit_body(depth + 1)
        self.asm.label(skip)

    def _emit_loop(self, depth: int) -> None:
        rng = self.rng
        counter = LOOP_REGS[self._loop_regs_in_use]
        self._loop_regs_in_use += 1
        top = self._fresh_label("loop")
        self.asm.emit("addi", rd=counter, rs1=0, imm=rng.randint(2, 6))
        self.asm.label(top)
        self._emit_body(depth + 1)
        self.asm.emit("addi", rd=counter, rs1=counter, imm=-1)
        self.asm.branch("bne", counter, 0, top)
        self._loop_regs_in_use -= 1

    def _emit_call(self) -> None:
        """A jal/jalr call-return pair through the shared leaf function."""
        self._calls_emitted += 1
        self.asm.jal(LINK_REG, "leaf_func")

    def _emit_body(self, depth: int) -> None:
        choice = self.rng.random()
        if choice < 0.22:
            self._emit_alu()
        elif choice < 0.44:
            self._emit_memory()
        elif choice < 0.54:
            self._emit_indexed_memory()
        elif choice < 0.64:
            self._emit_partial_forward()
        elif choice < 0.74:
            self._emit_late_store()
        elif choice < 0.8 and depth == 0 and self._calls_emitted < 4:
            self._emit_call()
        elif choice < 0.9 and depth < self.loop_depth_limit and \
                self._loop_regs_in_use < len(LOOP_REGS):
            self._emit_loop(depth)
        elif depth < 4:
            self._emit_branch(depth)
        else:
            self._emit_alu()

    # -- top level -----------------------------------------------------------

    def build(self) -> Program:
        rng = self.rng
        asm = self.asm
        asm.emit("lui", rd=BASE_REG, imm=ARENA_BASE)
        for reg in DATA_REGS:
            asm.li32(reg, rng.getrandbits(32))
        # Seed the arena with stores (an RV32 image has no data segment).
        for slot in range(0, ARENA_BYTES, 4):
            if rng.random() < 0.5:
                asm.emit("sw", rs1=BASE_REG, rs2=rng.choice(DATA_REGS),
                         imm=slot)
        for _ in range(rng.randint(3, self.max_blocks)):
            self._emit_body(depth=0)
        asm.emit("ecall")
        # The shared leaf function: a little arithmetic on x10, then an
        # indirect return.  x6 is never clobbered between call and return.
        asm.label("leaf_func")
        asm.emit("addi", rd=10, rs1=10, imm=rng.randint(-8, 8))
        asm.emit("xor", rd=10, rs1=10, rs2=rng.choice(DATA_REGS))
        asm.emit("jalr", rd=0, rs1=LINK_REG)
        return asm.build(name=f"rv-random-{self.seed}")


def riscv_fuzz_program(seed: int, max_blocks: int = 12) -> Program:
    """Generate one random RV32 program via the full frontend path."""
    return RiscvFuzzProgramBuilder(seed, max_blocks=max_blocks).build()
