"""SPECfp-2000-styled kernels.

FP arithmetic is modelled with the ISA's FP-latency opcodes (``fadd``,
``fmul``, ...): integer semantics, floating-point latencies.  What matters
for the paper's evaluation is the *memory* behaviour:

* ``ammp``/``equake`` -- indirected read-modify-write accumulation behind
  data-dependent branches: the two benchmarks the paper singles out
  (together with vpr_route) for ~20% SFC-corruption load replays;
* ``mesa`` -- z-buffer test-and-set with frequent silent stores: the
  baseline benchmark whose output-dependence violations make it an ENF
  winner in Figure 5;
* ``applu``/``apsi``/``mgrid``/``swim`` -- regular stencil/streaming
  sweeps: well-predicted, well-behaved, the specfp backbone on which the
  SFC/MDT slightly beats the 120x80 LSQ in Figure 6;
* ``art`` -- dot-product streaming with an accumulation tail.
"""

from __future__ import annotations

from ..isa.program import Program
from .builder import KernelBuilder

# Base addresses are staggered (distinct offsets modulo the MDT/SFC index
# range) so that unrelated regions do not collide in the address-indexed
# structures; only kernels that *intend* set aliasing (bzip2, mcf) use
# aligned strides.
_ATOMS = 0x0100_0000
_FORCES = 0x0110_0200
_PAIRS = 0x0120_0400
_GRID_A = 0x0130_0600
_GRID_B = 0x0140_0800
_GRID_C = 0x0150_0A00
_SPARSE = 0x0160_0C00


def build_ammp(scale: int = 20_000) -> Program:
    """Molecular-dynamics neighbour forces: indirected RMW accumulation."""
    k = KernelBuilder("ammp", seed=31)
    a = k.asm
    atoms = 128
    pairs = 512
    k.random_words(_ATOMS, atoms, width=8, lo=1, hi=(1 << 15) - 1)
    k.random_words(_FORCES, atoms, width=8, lo=0, hi=1 << 10)
    # Pair list: packed (i, j) atom indices.
    pair_words = [(k.rng.randrange(atoms) << 32) | k.rng.randrange(atoms)
                  for _ in range(pairs)]
    a.data_words(_PAIRS, pair_words, 8)
    a.li("r20", _ATOMS)
    a.li("r21", _FORCES)
    a.li("r22", _PAIRS)
    a.li("r28", 0)
    iterations = max(1, scale // 26)

    def body() -> None:
        a.andi("r14", "r17", (pairs - 1) * 8)
        a.add("r14", "r14", "r22")
        a.ld("r1", "r14", 0)                # packed pair
        a.andi("r2", "r1", (atoms - 1))     # j
        a.srli("r3", "r1", 32)
        a.andi("r3", "r3", (atoms - 1))     # i
        a.slli("r2", "r2", 3)
        a.slli("r3", "r3", 3)
        a.add("r4", "r2", "r20")
        a.add("r5", "r3", "r20")
        a.ld("r6", "r4", 0)                 # position j
        a.ld("r7", "r5", 0)                 # position i
        a.fsub("r8", "r7", "r6")            # distance
        a.fmul("r9", "r8", "r8")            # r^2
        cutoff = k.fresh_label("cutoff")
        a.slti("r10", "r9", 1 << 28)
        a.beq("r10", "r0", cutoff)          # outside cutoff? (data-dep)
        a.add("r11", "r2", "r21")
        a.add("r12", "r3", "r21")
        a.ld("r13", "r11", 0)               # force[j] read-modify-write
        a.fadd("r13", "r13", "r9")
        a.sd("r13", "r11", 0)
        a.ld("r13", "r12", 0)               # force[i] read-modify-write
        a.fsub("r13", "r13", "r9")
        a.sd("r13", "r12", 0)
        a.label(cutoff)
        a.add("r28", "r28", "r9")

    k.indexed_loop("r16", "r17", iterations, body)
    a.halt()
    return k.build()


def _stencil_kernel(name: str, seed: int, scale: int, span: int,
                    second_stride: int, chain: int) -> Program:
    """Shared regular-sweep shape for applu / apsi / mgrid / swim.

    ``span`` is the grid size in words; the sweep revisits (re-stores)
    each word every ``span`` iterations.  This is the paper's key
    window-depth effect: with a 128-entry window (~7 iterations in
    flight) same-word stores from consecutive sweeps never coexist, but a
    1024-entry window holds more than one full sweep, so the slow
    per-sweep boundary store (a long divide) races the next sweep's fast
    store to the same word -- output-dependence violations that appear
    *only* on the aggressive core, which is why enforcing predicted anti
    and output dependences matters most there (Section 3.2's +43% specfp).

    ``second_stride`` is the second neighbour offset in elements;
    ``chain`` is the FP-chain depth per point.
    """
    k = KernelBuilder(name, seed=seed)
    a = k.asm
    span_shift = span.bit_length() - 1
    k.random_words(_GRID_A, span + second_stride + 2, width=8,
                   lo=0, hi=1 << 24)
    k.random_words(_GRID_B, span + second_stride + 2, width=8,
                   lo=0, hi=1 << 24)
    a.li("r20", _GRID_A)
    a.li("r21", _GRID_B)
    a.li("r22", _GRID_C)                        # boundary-condition table
    a.li("r28", 0)
    iterations = max(1, scale // (14 + 2 * chain))

    def body() -> None:
        a.andi("r14", "r17", span - 1)          # grid point of this sweep
        a.slli("r14", "r14", 3)
        a.add("r15", "r14", "r20")
        a.ld("r1", "r15", 0)                    # centre
        a.ld("r2", "r15", 8)                    # east
        a.ld("r3", "r15", second_stride * 8)    # south
        a.fadd("r4", "r1", "r2")
        a.fadd("r4", "r4", "r3")
        for _ in range(chain):
            a.fmul("r4", "r4", "r1")
            a.fadd("r4", "r4", "r2")
        a.add("r5", "r14", "r21")
        # One boundary point per sweep folds in a boundary condition
        # loaded from a cold table (a fresh cache line per sweep, so an
        # L2-latency load).  The boundary rotates with the sweep number,
        # so the next sweep stores the same word through the fast path:
        # when both sweeps fit in the instruction window the late slow
        # store races the younger fast store -- output violations that
        # exist only on the deep-window core (Section 3.2).
        a.srli("r6", "r17", span_shift)
        a.xor("r7", "r6", "r17")
        a.andi("r7", "r7", span - 1)
        interior = k.fresh_label("interior")
        done = k.fresh_label("stored")
        a.bne("r7", "r0", interior)
        a.slli("r8", "r6", 7)                   # one cold line per sweep
        a.add("r8", "r8", "r22")
        a.ld("r9", "r8", 0)                     # boundary condition (cold)
        a.fadd("r9", "r9", "r4")
        a.sd("r9", "r5", 0)                     # slow boundary store
        a.j(done)
        a.label(interior)
        a.sd("r4", "r5", 0)                     # fast interior store
        a.label(done)
        a.add("r28", "r28", "r4")

    k.indexed_loop("r16", "r17", iterations, body)
    a.halt()
    return k.build()


def build_applu(scale: int = 20_000) -> Program:
    """SSOR-style sweep with deep FP chains."""
    return _stencil_kernel("applu", seed=32, scale=scale, span=16,
                           second_stride=32, chain=3)


def build_apsi(scale: int = 20_000) -> Program:
    """Mesoscale-model sweep with a long second stride."""
    return _stencil_kernel("apsi", seed=33, scale=scale, span=32,
                           second_stride=128, chain=2)


def build_art(scale: int = 20_000) -> Program:
    """Adaptive-resonance F1 pass: streaming dot products."""
    k = KernelBuilder("art", seed=34)
    a = k.asm
    weights = 1024
    k.random_words(_GRID_A, weights, width=8, lo=0, hi=1 << 16)
    k.random_words(_GRID_B, 64, width=8, lo=0, hi=1 << 16)
    a.li("r20", _GRID_A)
    a.li("r21", _GRID_B)
    a.li("r22", _GRID_C)
    a.li("r28", 0)
    iterations = max(1, scale // 13)

    def body() -> None:
        a.andi("r14", "r17", (weights - 1) * 8)
        a.add("r1", "r14", "r20")
        a.ld("r2", "r1", 0)                 # weight
        a.andi("r15", "r17", 63 * 8)
        a.add("r3", "r15", "r21")
        a.ld("r4", "r3", 0)                 # input activation
        a.fmul("r5", "r2", "r4")
        a.fadd("r28", "r28", "r5")          # accumulate
        a.andi("r6", "r17", 63 * 8)
        a.add("r6", "r6", "r22")
        a.sd("r28", "r6", 0)                # write output neuron

    k.indexed_loop("r16", "r17", iterations, body)
    a.halt()
    return k.build()


def build_equake(scale: int = 20_000) -> Program:
    """Sparse mat-vec with scatter accumulation (corruption-prone)."""
    k = KernelBuilder("equake", seed=35)
    a = k.asm
    nonzeros = 1024
    nodes = 64
    k.random_words(_SPARSE, nonzeros, width=8, lo=1, hi=1 << 16)  # values
    a.data_words(_SPARSE + 0x10200,
                 [k.rng.randrange(nodes) for _ in range(nonzeros)], 8)
    k.random_words(_GRID_A, nodes, width=8, lo=0, hi=1 << 16)     # x
    k.random_words(_GRID_B, nodes, width=8, lo=0, hi=1 << 10)     # y
    a.li("r20", _SPARSE)
    a.li("r21", _SPARSE + 0x10200)
    a.li("r22", _GRID_A)
    a.li("r23", _GRID_B)
    a.li("r28", 0)
    iterations = max(1, scale // 20)

    def body() -> None:
        a.andi("r14", "r17", (nonzeros - 1) * 8)
        a.add("r1", "r14", "r20")
        a.ld("r2", "r1", 0)                 # matrix value
        a.add("r3", "r14", "r21")
        a.ld("r4", "r3", 0)                 # column index
        a.slli("r5", "r4", 3)
        a.add("r6", "r5", "r22")
        a.ld("r7", "r6", 0)                 # x[col]
        a.fmul("r8", "r2", "r7")
        # Row advances irregularly: a data-dependent branch decides
        # whether this contribution closes the row (partial flushes while
        # scatter stores are in flight -> SFC corruptions).
        a.andi("r9", "r2", 3)
        same = k.fresh_label("same_row")
        a.bne("r9", "r0", same)
        a.addi("r28", "r28", 1)
        a.label(same)
        a.andi("r10", "r28", (nodes - 1))
        a.slli("r10", "r10", 3)
        a.add("r11", "r10", "r23")
        a.ld("r12", "r11", 0)               # y[row] read-modify-write
        a.fadd("r12", "r12", "r8")
        a.sd("r12", "r11", 0)

    k.indexed_loop("r16", "r17", iterations, body)
    a.halt()
    return k.build()


def build_mesa(scale: int = 20_000) -> Program:
    """Z-buffered rasterisation: depth test-and-set with silent stores."""
    k = KernelBuilder("mesa", seed=36)
    a = k.asm
    pixels = 512
    # Shallow depth range: incoming fragments often carry a depth equal
    # to the stored one (silent stores), and the test is unpredictable.
    k.random_words(_GRID_A, pixels, width=8, lo=0, hi=7)   # z-buffer
    k.random_words(_GRID_B, pixels, width=8)               # colour buffer
    a.li("r20", _GRID_A)
    a.li("r21", _GRID_B)
    a.li("r1", 123456789)                   # xorshift state
    a.li("r28", 0)
    iterations = max(1, scale // 19)

    def body() -> None:
        a.slli("r2", "r1", 13)
        a.xor("r1", "r1", "r2")
        a.srli("r2", "r1", 7)
        a.xor("r1", "r1", "r2")
        a.andi("r3", "r1", (pixels - 1) * 8)    # pixel address offset
        a.andi("r4", "r1", 7)                   # fragment depth (0..7)
        a.add("r5", "r3", "r20")
        a.ld("r6", "r5", 0)                     # stored depth
        fail = k.fresh_label("zfail")
        a.blt("r6", "r4", fail)                 # depth test (data-dep)
        a.sd("r4", "r5", 0)          # depth write -- often silent (z==z')
        a.add("r7", "r3", "r21")
        a.fmul("r8", "r4", "r1")                # shade
        a.sd("r8", "r7", 0)                     # colour write
        a.label(fail)
        a.addi("r28", "r28", 1)

    k.indexed_loop("r16", "r17", iterations, body)
    a.halt()
    return k.build()


def build_mgrid(scale: int = 20_000) -> Program:
    """Multigrid restriction sweep (regular, unit + plane strides)."""
    return _stencil_kernel("mgrid", seed=37, scale=scale, span=64,
                           second_stride=64, chain=1)


def build_swim(scale: int = 20_000) -> Program:
    """Shallow-water 2-D stencil (streaming, highly regular)."""
    return _stencil_kernel("swim", seed=38, scale=scale, span=32,
                           second_stride=96, chain=2)
