"""Architectural checkpoints.

An :class:`ArchCheckpoint` freezes the *architectural* state of a
program mid-run -- registers, PC, retired-instruction count, and the
functional-memory image expressed as a page delta against the pristine
program image -- so detailed simulation can begin there instead of at
reset.  Checkpoints are produced by the in-order interpreter acting as a
fast-forward engine (:meth:`~repro.isa.interp.Interpreter.fast_forward`)
and consumed by :class:`~repro.pipeline.core.Core` via ``start_pc`` /
``start_regs`` / ``memory``.

A checkpoint may also carry a *warm capsule*: trained branch-predictor
state and cache tag arrays accumulated during the fast-forward.  Warm
capsules reduce the warm-up window a sampled interval needs, but are
never part of architectural correctness -- restoring without one only
changes timing, never values.
"""

from __future__ import annotations

import base64
from typing import Dict, List, Optional

from ..isa import instructions as ops
from ..isa.interp import Interpreter
from ..isa.program import Program
from ..memory.main_memory import MainMemory

#: Bump when the serialized checkpoint layout changes; old entries in a
#: :class:`~repro.checkpoint.store.CheckpointStore` become unreadable.
#: Format 2 added the train-level ``complete``/``stride`` fields that
#: cross-scale prefix reuse depends on; because ``train_key`` folds the
#: format in, v1 trains simply never match a v2 key (explicit
#: compatibility handling -- no in-place migration).
CHECKPOINT_FORMAT = 2


class ArchCheckpoint:
    """Serializable snapshot of architectural state at one retire point.

    ``pages`` maps page index -> full page bytes for every page whose
    contents differ from the pristine program image; the image itself is
    reconstructible from the :class:`~repro.isa.program.Program`, so the
    delta is all that needs to travel.  ``warm`` is the optional warm
    capsule ``{"bpred": ..., "caches": ...}`` (see
    :meth:`~repro.branch.gshare.GsharePredictor.export_state` and
    :meth:`~repro.memory.cache.CacheHierarchy.export_state`).
    """

    __slots__ = ("program_digest", "retired", "pc", "regs", "pages",
                 "warm", "halted")

    def __init__(self, program_digest: str, retired: int, pc: int,
                 regs: List[int], pages: Dict[int, bytes],
                 warm: Optional[dict] = None, halted: bool = False):
        self.program_digest = program_digest
        self.retired = retired
        self.pc = pc
        self.regs = list(regs)
        self.pages = dict(pages)
        self.warm = warm
        self.halted = halted

    # -- capture -------------------------------------------------------------

    @classmethod
    def capture(cls, interp: Interpreter, base_image: MainMemory,
                warm: Optional[dict] = None) -> "ArchCheckpoint":
        """Snapshot a (paused) interpreter's architectural state.

        ``base_image`` is the pristine program image used to compute the
        memory page delta; build it once per program and reuse it across
        captures.
        """
        return cls(program_digest=interp.program.digest(),
                   retired=interp.instructions_retired,
                   pc=interp.pc,
                   regs=list(interp.regs),
                   pages=interp.memory.page_delta(base_image),
                   warm=warm, halted=interp.halted)

    # -- restore -------------------------------------------------------------

    def _check_program(self, program: Program) -> None:
        if program.digest() != self.program_digest:
            raise ValueError(
                f"checkpoint was captured from program digest "
                f"{self.program_digest[:12]}..; got program "
                f"{program.name!r} with digest "
                f"{program.digest()[:12]}..")

    def restore_memory(self, program: Program) -> MainMemory:
        """Rebuild the functional-memory image at the checkpoint."""
        self._check_program(program)
        memory = MainMemory()
        memory.load_segments(program.data)
        memory.apply_page_delta(self.pages)
        return memory

    def resume_interpreter(self, program: Program) -> Interpreter:
        """An :class:`~repro.isa.interp.Interpreter` positioned exactly
        at this checkpoint, ready to ``step()``/``fast_forward()`` on."""
        self._check_program(program)
        interp = Interpreter(program, memory=self.restore_memory(program),
                             load_segments=False)
        interp.regs = list(self.regs)
        interp.pc = self.pc
        interp.instructions_retired = self.retired
        interp.halted = self.halted
        return interp

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> dict:
        payload = {
            "program_digest": self.program_digest,
            "retired": self.retired,
            "pc": self.pc,
            "regs": list(self.regs),
            "pages": {str(idx): base64.b64encode(page).decode("ascii")
                      for idx, page in sorted(self.pages.items())},
            "halted": self.halted,
        }
        if self.warm is not None:
            payload["warm"] = self.warm
        return payload

    @classmethod
    def from_dict(cls, payload: dict) -> "ArchCheckpoint":
        regs = [int(v) for v in payload["regs"]]
        if len(regs) != ops.NUM_REGS:
            raise ValueError(
                f"checkpoint has {len(regs)} registers; expected "
                f"{ops.NUM_REGS}")
        pages = {int(idx): base64.b64decode(blob)
                 for idx, blob in payload["pages"].items()}
        return cls(program_digest=payload["program_digest"],
                   retired=int(payload["retired"]),
                   pc=int(payload["pc"]),
                   regs=regs, pages=pages,
                   warm=payload.get("warm"),
                   halted=bool(payload.get("halted", False)))
