"""Content-addressed on-disk checkpoint store.

Checkpoint trains live under ``<cache-dir>/checkpoints/`` (by default
inside the same ``.repro_cache/`` the result cache uses), keyed by a
hash of the program content digest and the capture parameters.  Grid
cells that share a benchmark therefore fast-forward once: the first
cell captures and persists the train, every later cell -- in the same
process or a later one -- restores it.

Writes are atomic (collision-proof temp + rename), mirroring
:class:`~repro.harness.experiment.ResultCache`, so concurrent runners
sharing a cache directory only ever observe complete trains.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import List, Optional, Union

from .arch import CHECKPOINT_FORMAT, ArchCheckpoint


def train_key(program_digest: str, every: int, warm: bool) -> str:
    """Content hash identifying one checkpoint train.

    Covers the program's content digest (not its name -- two identically
    built programs share a train), the capture interval, whether warm
    capsules were collected, and the serialization format version.
    """
    canonical = json.dumps(
        {"format": CHECKPOINT_FORMAT, "program": program_digest,
         "every": every, "warm": warm},
        sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class CheckpointStore:
    """One-JSON-file-per-train store under a directory."""

    def __init__(self, directory: Union[str, Path]):
        self.directory = Path(directory)

    def path(self, key: str) -> Path:
        return self.directory / f"{key}.ckpt.json"

    def load(self, key: str) -> Optional[dict]:
        """Load a train payload: ``{"total_instructions": int,
        "checkpoints": [ArchCheckpoint, ...], "complete": bool,
        "stride": int}``; None on miss/corrupt.

        ``complete`` is True when the capture ran the program to halt;
        an incomplete train covers exactly ``total_instructions``
        retired instructions and can be *extended in place* by resuming
        from its last checkpoint (see
        :func:`repro.checkpoint.sampling.ensure_train`).  ``stride`` is
        the capture interval in effect at the end of the train (it grows
        past ``every`` whenever the train was thinned); 0 means unknown
        and is re-inferred from checkpoint positions on resume.
        """
        try:
            payload = json.loads(self.path(key).read_text())
        except (OSError, ValueError):
            return None
        if not isinstance(payload, dict) or \
                payload.get("format") != CHECKPOINT_FORMAT:
            return None
        try:
            checkpoints = [ArchCheckpoint.from_dict(entry)
                           for entry in payload["checkpoints"]]
            total = int(payload["total_instructions"])
            complete = bool(payload.get("complete", True))
            stride = int(payload.get("stride", 0))
        except (KeyError, TypeError, ValueError):
            return None
        return {"total_instructions": total, "checkpoints": checkpoints,
                "complete": complete, "stride": stride}

    def store(self, key: str, checkpoints: List[ArchCheckpoint],
              total_instructions: int, complete: bool = True,
              stride: int = 0) -> None:
        self.directory.mkdir(parents=True, exist_ok=True)
        final = self.path(key)
        payload = {
            "format": CHECKPOINT_FORMAT,
            "total_instructions": total_instructions,
            "complete": bool(complete),
            "stride": int(stride),
            "checkpoints": [ckpt.to_dict() for ckpt in checkpoints],
        }
        tmp = final.with_name(
            f"{final.name}.tmp.{os.getpid()}.{os.urandom(6).hex()}")
        try:
            tmp.write_text(json.dumps(payload, sort_keys=True))
            tmp.replace(final)
        except BaseException:
            # Any mid-write failure -- not just OSError: a TypeError from
            # an unserializable warm capsule must not leak the temp file.
            try:
                tmp.unlink()
            except OSError:
                pass
            raise
