"""Checkpointed fast-forward and interval sampling.

See :mod:`repro.checkpoint.arch` for architectural checkpoints,
:mod:`repro.checkpoint.store` for the content-addressed on-disk store,
and :mod:`repro.checkpoint.sampling` for the SMARTS-style interval
sampler built on top of them.
"""

from .arch import CHECKPOINT_FORMAT, ArchCheckpoint
from .sampling import (SampledResult, SamplingError, capture_train,
                       ensure_train, sample_run, select_checkpoints,
                       simulate_interval)
from .store import CheckpointStore, train_key

__all__ = [
    "ArchCheckpoint", "CHECKPOINT_FORMAT", "CheckpointStore",
    "SampledResult", "SamplingError", "capture_train", "ensure_train",
    "sample_run", "select_checkpoints", "simulate_interval", "train_key",
]
