"""Interval sampling over checkpointed fast-forward.

SMARTS/SimPoint-style sampling for the detailed simulator: partition an
N-instruction run into K detailed intervals separated by fast-forward
gaps.  One interpreter pass captures a train of architectural
checkpoints (optionally with warm branch-predictor/cache capsules); K of
them, evenly spaced, seed detailed windows of ``warmup_insts +
interval_insts`` instructions each.  Warm-up counters are discarded;
per-interval IPC and counter deltas over the measured span aggregate
into a mean with a confidence interval.

Error model (see DESIGN.md "Sampling methodology"): the reported
confidence half-width is the t-distribution sampling term
``t_{0.95,K-1} * s / sqrt(K)`` plus a fixed 2%-of-mean systematic
allowance covering non-sampling bias (finite warm-up, cold structures
the capsule does not capture, interval-boundary effects).  With a single
interval no variance estimate exists and a conservative 10% half-width
is reported instead.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from ..branch.gshare import GsharePredictor
from ..isa.interp import ExecutionLimitExceeded, Interpreter
from ..isa.program import Program
from ..memory.cache import paper_hierarchy
from ..memory.main_memory import MainMemory
from ..pipeline.config import ProcessorConfig
from ..pipeline.core import Core
from .arch import ArchCheckpoint
from .store import CheckpointStore, train_key

#: Fixed relative allowance for non-sampling (systematic) error, added
#: to the statistical term of every reported confidence interval.
SYSTEMATIC_ERROR = 0.02

#: Relative half-width reported when only one interval was measured.
SINGLE_INTERVAL_ERROR = 0.10

#: Cap on checkpoints kept per train; the capture pass thins the train
#: (dropping every other checkpoint, doubling the stride) beyond this.
MAX_TRAIN_CHECKPOINTS = 128

#: Dispatch slack appended to each interval's golden suffix trace: fetch
#: may run ``rob_size`` ahead of retirement plus a fetch-width margin.
TRACE_SLACK = 256

#: Two-sided 95% Student-t critical values by degrees of freedom.
_T95 = {1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571, 6: 2.447,
        7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228, 11: 2.201, 12: 2.179,
        13: 2.160, 14: 2.145, 15: 2.131, 20: 2.086, 25: 2.060, 30: 2.042}


def t95(df: int) -> float:
    """95% two-sided Student-t critical value (1.96 asymptote)."""
    if df in _T95:
        return _T95[df]
    for bound in (30, 25, 20, 15):
        if df >= bound:
            return _T95[bound] if df < 60 else 1.96
    return _T95[max(1, min(df, 15))]


class SamplingError(Exception):
    """Sampling could not produce a usable estimate."""


class SampledResult:
    """Aggregate of K measured intervals of one (program, config) run."""

    __slots__ = ("program_name", "config_name", "ipc_mean", "ipc_std",
                 "ipc_ci95", "intervals", "counters", "cycles",
                 "instructions", "total_instructions",
                 "detailed_instructions", "warmup_insts", "interval_insts",
                 "checkpoint_every", "warm")

    def __init__(self, program_name: str, config_name: str,
                 ipc_mean: float, ipc_std: float, ipc_ci95: float,
                 intervals: List[dict], counters: Dict[str, float],
                 cycles: int, instructions: int, total_instructions: int,
                 detailed_instructions: int, warmup_insts: int,
                 interval_insts: int, checkpoint_every: int, warm: bool):
        self.program_name = program_name
        self.config_name = config_name
        self.ipc_mean = ipc_mean
        self.ipc_std = ipc_std
        self.ipc_ci95 = ipc_ci95
        self.intervals = intervals
        self.counters = counters
        self.cycles = cycles
        self.instructions = instructions
        self.total_instructions = total_instructions
        self.detailed_instructions = detailed_instructions
        self.warmup_insts = warmup_insts
        self.interval_insts = interval_insts
        self.checkpoint_every = checkpoint_every
        self.warm = warm

    def sampling_dict(self) -> dict:
        """The ``sampling`` metadata block of a sampled RunRecord."""
        return {
            "ipc_mean": self.ipc_mean,
            "ipc_std": self.ipc_std,
            "ipc_ci95": self.ipc_ci95,
            "intervals": [
                {"position": iv["position"], "retired": iv["retired"],
                 "cycles": iv["cycles"], "ipc": iv["ipc"]}
                for iv in self.intervals],
            "total_instructions": self.total_instructions,
            "detailed_instructions": self.detailed_instructions,
            "warmup_insts": self.warmup_insts,
            "interval_insts": self.interval_insts,
            "checkpoint_every": self.checkpoint_every,
            "warm": self.warm,
        }


def _warm_capsule(bpred: Optional[GsharePredictor],
                  hierarchy) -> Optional[dict]:
    if bpred is None and hierarchy is None:
        return None
    capsule: dict = {}
    if bpred is not None:
        capsule["bpred"] = bpred.export_state()
    if hierarchy is not None:
        capsule["caches"] = hierarchy.export_state()
    return capsule


def _advance_capture(program: Program, interp: Interpreter,
                     checkpoints: List[ArchCheckpoint], stride: int,
                     bpred, hierarchy, horizon: Optional[int],
                     limit: int, max_checkpoints: int):
    """Drive a (fresh or resumed) capture forward.

    Fast-forwards ``interp`` in ``stride``-sized chunks, appending a
    checkpoint at every chunk boundary, until the program halts or --
    when ``horizon`` is given -- the first boundary at or past
    ``horizon``.  Thinning (drop every other checkpoint, double the
    stride) keeps the train under ``max_checkpoints`` while always
    preserving the *last* checkpoint, so an incomplete train can later
    be resumed from exactly the position its ``total_instructions``
    reports.

    Returns ``(checkpoints, total_instructions, complete, stride)``.
    The whole advance is a deterministic function of its starting state,
    which is what makes in-place extension bit-identical to a fresh
    capture at the longer horizon.
    """
    base_image = MainMemory()
    base_image.load_segments(program.data)
    while not interp.halted:
        position = interp.instructions_retired
        if horizon is not None and position >= horizon:
            return checkpoints, position, False, stride
        budget = min(stride, limit - position)
        if budget <= 0:
            raise ExecutionLimitExceeded(
                f"program {program.name!r} did not halt within "
                f"{limit} instructions")
        executed = interp.fast_forward(budget, bpred, hierarchy)
        if interp.halted or executed < budget:
            break
        checkpoints.append(ArchCheckpoint.capture(
            interp, base_image, warm=_warm_capsule(bpred, hierarchy)))
        while len(checkpoints) > max_checkpoints:
            thinned = checkpoints[::2]
            if thinned[-1] is not checkpoints[-1]:
                thinned.append(checkpoints[-1])
            checkpoints = thinned
            stride *= 2
    if not interp.halted:
        raise ExecutionLimitExceeded(
            f"program {program.name!r} did not halt within "
            f"{limit} instructions")
    return checkpoints, interp.instructions_retired, True, stride


def capture_train(program: Program, every: int, warm: bool = True,
                  limit: int = 5_000_000,
                  max_checkpoints: int = MAX_TRAIN_CHECKPOINTS,
                  horizon: Optional[int] = None):
    """One fast-forward pass over ``program``, checkpointing every
    ``every`` retired instructions.

    Returns ``(checkpoints, total_instructions)``.  The train always
    starts with a position-0 checkpoint and is thinned (every other
    checkpoint dropped, stride doubled) whenever it exceeds
    ``max_checkpoints``, so long programs stay bounded in memory and on
    disk.  ``horizon`` stops the capture at the first checkpoint
    boundary at or past that many retired instructions instead of
    running to halt (see :func:`ensure_train` for the reuse protocol
    built on this).
    """
    if every < 1:
        raise ValueError(f"checkpoint interval must be >= 1, got {every}")
    interp = Interpreter(program)
    base_image = MainMemory()
    base_image.load_segments(program.data)
    bpred = GsharePredictor() if warm else None
    hierarchy = paper_hierarchy() if warm else None
    checkpoints = [ArchCheckpoint.capture(
        interp, base_image, warm=_warm_capsule(bpred, hierarchy))]
    checkpoints, total, _complete, _stride = _advance_capture(
        program, interp, checkpoints, every, bpred, hierarchy,
        horizon, limit, max_checkpoints)
    return checkpoints, total


def _resume_warm_state(checkpoint: ArchCheckpoint, warm: bool):
    """Rebuild the (bpred, hierarchy) training pair a capture had when it
    captured ``checkpoint``.  Capsules restore predictor counters and
    cache tag arrays exactly, so training resumed from them is
    bit-identical to training that never stopped."""
    if not warm:
        return None, None
    bpred = GsharePredictor()
    hierarchy = paper_hierarchy()
    capsule = checkpoint.warm or {}
    if "bpred" in capsule:
        bpred.import_state(capsule["bpred"])
    if "caches" in capsule:
        hierarchy.import_state(capsule["caches"])
    return bpred, hierarchy


def ensure_train(program: Program, every: int, warm: bool = True, *,
                 horizon: Optional[int] = None, store=None,
                 limit: int = 5_000_000,
                 max_checkpoints: int = MAX_TRAIN_CHECKPOINTS) -> dict:
    """Return a train payload covering ``horizon`` retired instructions
    (the full run when None), reusing or extending any persisted train.

    The cross-scale reuse protocol:

    * :func:`~repro.checkpoint.store.train_key` deliberately excludes
      the horizon, so every request for the same ``(program, every,
      warm)`` triple shares one stored train regardless of scale;
    * a stored train that is ``complete`` (ran to halt) or already
      reaches ``horizon`` is served as-is -- a train captured at a
      longer horizon satisfies any shorter request as a position
      prefix;
    * a shorter stored train is **extended in place**: capture resumes
      from its last checkpoint (architectural state from the page
      delta, predictor/cache training from the warm capsule), runs
      forward to the new horizon, and atomically replaces the stored
      train.  Extension is bit-identical to a fresh capture at the
      longer horizon, so mixing scales never recaptures and never
      changes results.

    Returns ``{"checkpoints", "total_instructions", "complete",
    "stride"}``.
    """
    if every < 1:
        raise ValueError(f"checkpoint interval must be >= 1, got {every}")
    if horizon is not None and horizon < 1:
        raise ValueError(f"horizon must be >= 1, got {horizon}")
    key = train_key(program.digest(), every, warm) \
        if store is not None else None
    train = store.load(key) if store is not None else None
    if train is not None:
        if train["complete"] or (horizon is not None
                                 and train["total_instructions"] >= horizon):
            return train
        # Extend in place from the last checkpoint.
        checkpoints = list(train["checkpoints"])
        stride = train["stride"]
        if stride <= 0:  # legacy/unknown: infer from positions
            stride = (checkpoints[1].retired - checkpoints[0].retired
                      if len(checkpoints) > 1 else every)
        last = checkpoints[-1]
        interp = last.resume_interpreter(program)
        bpred, hierarchy = _resume_warm_state(last, warm)
    else:
        interp = Interpreter(program)
        bpred = GsharePredictor() if warm else None
        hierarchy = paper_hierarchy() if warm else None
        base_image = MainMemory()
        base_image.load_segments(program.data)
        checkpoints = [ArchCheckpoint.capture(
            interp, base_image, warm=_warm_capsule(bpred, hierarchy))]
        stride = every
    checkpoints, total, complete, stride = _advance_capture(
        program, interp, checkpoints, stride, bpred, hierarchy,
        horizon, limit, max_checkpoints)
    payload = {"checkpoints": checkpoints, "total_instructions": total,
               "complete": complete, "stride": stride}
    if store is not None and key is not None:
        store.store(key, checkpoints, total, complete=complete,
                    stride=stride)
    return payload


def select_checkpoints(checkpoints: List[ArchCheckpoint], total: int,
                       intervals: int,
                       window: int) -> List[ArchCheckpoint]:
    """Pick up to ``intervals`` evenly spaced checkpoints whose detailed
    window of ``window`` instructions fits before the program halts."""
    if intervals < 1:
        raise ValueError(f"intervals must be >= 1, got {intervals}")
    eligible = [ckpt for ckpt in checkpoints
                if ckpt.retired + window <= total]
    if not eligible:
        # Program shorter than one window: a single from-the-start
        # interval degenerates to (truncated) full detailed simulation.
        return [checkpoints[0]]
    count = min(intervals, len(eligible))
    if count == 1:
        return [eligible[len(eligible) // 2]]
    span = len(eligible) - 1
    picked = []
    seen = set()
    for i in range(count):
        index = round(i * span / (count - 1))
        if index not in seen:
            seen.add(index)
            picked.append(eligible[index])
    return picked


def simulate_interval(program: Program, config: ProcessorConfig,
                      ckpt: ArchCheckpoint, warmup_insts: int,
                      interval_insts: int) -> Optional[dict]:
    """Detailed-simulate one window from ``ckpt``: warm up
    ``warmup_insts`` (counters discarded), measure ``interval_insts``.

    Returns the per-interval measurement dict, or None when the program
    halts inside the warm-up (nothing measurable).
    """
    resumed = ckpt.resume_interpreter(program)
    # Suffix golden trace: record 0 must be the first instruction the
    # restored core retires (trace indices are validated against the
    # core's own retire count).
    resumed.instructions_retired = 0
    needed = warmup_insts + interval_insts + config.rob_size + TRACE_SLACK
    records = []
    append = records.append
    step = resumed.step
    for _ in range(needed):
        record = step()
        if record is None:
            break
        append(record)
        if resumed.halted:
            break
    core = Core(program, config, trace=records,
                memory=ckpt.restore_memory(program),
                start_pc=ckpt.pc, start_regs=ckpt.regs,
                warm_state=ckpt.warm)
    core.run_until(min(warmup_insts, len(records)))
    warm_cycle = core.cycle
    warm_retired = core.retired
    warm_counters = core.counters.as_dict()
    core.run_until(min(warmup_insts + interval_insts, len(records)))
    retired = core.retired - warm_retired
    cycles = core.cycle - warm_cycle
    if retired <= 0 or cycles <= 0:
        return None
    end_counters = core.counters.as_dict()
    deltas = {key: value - warm_counters.get(key, 0)
              for key, value in end_counters.items()}
    return {"position": ckpt.retired, "retired": retired,
            "cycles": cycles, "ipc": retired / cycles,
            "detailed_retired": core.retired, "counters": deltas}


def sample_run(program: Program, config: ProcessorConfig, *,
               intervals: int = 10, warmup_insts: int = 1_000,
               interval_insts: int = 5_000,
               checkpoint_every: Optional[int] = None, warm: bool = True,
               store: Optional[CheckpointStore] = None,
               limit: int = 5_000_000,
               horizon: Optional[int] = None) -> SampledResult:
    """Sampled detailed simulation of ``program`` under ``config``.

    When a :class:`~repro.checkpoint.store.CheckpointStore` is supplied
    the checkpoint train is persisted content-addressed, so grid cells
    sharing a benchmark (any config) fast-forward once -- and, with
    ``horizon``, once across *scales*: a longer stored train serves any
    shorter horizon as a prefix, a shorter one is extended in place
    (see :func:`ensure_train`).

    ``horizon`` restricts sampling to the first ``horizon`` retired
    instructions instead of the whole run.  Accounting is clamped to
    ``min(horizon, total)``: instructions the train happens to cover
    past the requested horizon (checkpoint-boundary overshoot, a longer
    reused train, the post-halt tail) never widen the sampled span or
    the eligibility window.
    """
    window = warmup_insts + interval_insts
    every = checkpoint_every if checkpoint_every else max(window, 500)
    train = ensure_train(program, every, warm, horizon=horizon,
                         store=store, limit=limit)
    checkpoints = train["checkpoints"]
    total = train["total_instructions"]
    span = total if horizon is None else min(horizon, total)
    selected = select_checkpoints(checkpoints, span, intervals, window)
    measured = []
    for ckpt in selected:
        result = simulate_interval(program, config, ckpt, warmup_insts,
                                   interval_insts)
        if result is not None:
            measured.append(result)
    if not measured:
        raise SamplingError(
            f"no measurable interval for {program.name!r}: program "
            f"halts inside every warm-up window (sampled span "
            f"{span} instructions, warm-up {warmup_insts})")

    ipcs = [iv["ipc"] for iv in measured]
    count = len(ipcs)
    mean = sum(ipcs) / count
    if count > 1:
        variance = sum((x - mean) ** 2 for x in ipcs) / (count - 1)
        std = math.sqrt(variance)
        half = t95(count - 1) * std / math.sqrt(count) \
            + SYSTEMATIC_ERROR * mean
    else:
        std = 0.0
        half = SINGLE_INTERVAL_ERROR * mean

    counters: Dict[str, float] = {}
    for iv in measured:
        for key_, value in iv["counters"].items():
            counters[key_] = counters.get(key_, 0) + value
    cycles = sum(iv["cycles"] for iv in measured)
    instructions = sum(iv["retired"] for iv in measured)
    counters["cycles"] = cycles
    counters["retired_instructions"] = instructions
    detailed = sum(iv["detailed_retired"] for iv in measured)
    return SampledResult(
        program_name=program.name, config_name=config.name,
        ipc_mean=mean, ipc_std=std, ipc_ci95=half, intervals=measured,
        counters=counters, cycles=cycles, instructions=instructions,
        total_instructions=span, detailed_instructions=detailed,
        warmup_insts=warmup_insts, interval_insts=interval_insts,
        checkpoint_every=every, warm=warm)
