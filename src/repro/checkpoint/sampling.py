"""Interval sampling over checkpointed fast-forward.

SMARTS/SimPoint-style sampling for the detailed simulator: partition an
N-instruction run into K detailed intervals separated by fast-forward
gaps.  One interpreter pass captures a train of architectural
checkpoints (optionally with warm branch-predictor/cache capsules); K of
them, evenly spaced, seed detailed windows of ``warmup_insts +
interval_insts`` instructions each.  Warm-up counters are discarded;
per-interval IPC and counter deltas over the measured span aggregate
into a mean with a confidence interval.

Error model (see DESIGN.md "Sampling methodology"): the reported
confidence half-width is the t-distribution sampling term
``t_{0.95,K-1} * s / sqrt(K)`` plus a fixed 2%-of-mean systematic
allowance covering non-sampling bias (finite warm-up, cold structures
the capsule does not capture, interval-boundary effects).  With a single
interval no variance estimate exists and a conservative 10% half-width
is reported instead.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from ..branch.gshare import GsharePredictor
from ..isa.interp import ExecutionLimitExceeded, Interpreter
from ..isa.program import Program
from ..memory.cache import paper_hierarchy
from ..memory.main_memory import MainMemory
from ..pipeline.config import ProcessorConfig
from ..pipeline.core import Core
from .arch import ArchCheckpoint
from .store import CheckpointStore, train_key

#: Fixed relative allowance for non-sampling (systematic) error, added
#: to the statistical term of every reported confidence interval.
SYSTEMATIC_ERROR = 0.02

#: Relative half-width reported when only one interval was measured.
SINGLE_INTERVAL_ERROR = 0.10

#: Cap on checkpoints kept per train; the capture pass thins the train
#: (dropping every other checkpoint, doubling the stride) beyond this.
MAX_TRAIN_CHECKPOINTS = 128

#: Dispatch slack appended to each interval's golden suffix trace: fetch
#: may run ``rob_size`` ahead of retirement plus a fetch-width margin.
TRACE_SLACK = 256

#: Two-sided 95% Student-t critical values by degrees of freedom.
_T95 = {1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571, 6: 2.447,
        7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228, 11: 2.201, 12: 2.179,
        13: 2.160, 14: 2.145, 15: 2.131, 20: 2.086, 25: 2.060, 30: 2.042}


def t95(df: int) -> float:
    """95% two-sided Student-t critical value (1.96 asymptote)."""
    if df in _T95:
        return _T95[df]
    for bound in (30, 25, 20, 15):
        if df >= bound:
            return _T95[bound] if df < 60 else 1.96
    return _T95[max(1, min(df, 15))]


class SamplingError(Exception):
    """Sampling could not produce a usable estimate."""


class SampledResult:
    """Aggregate of K measured intervals of one (program, config) run."""

    __slots__ = ("program_name", "config_name", "ipc_mean", "ipc_std",
                 "ipc_ci95", "intervals", "counters", "cycles",
                 "instructions", "total_instructions",
                 "detailed_instructions", "warmup_insts", "interval_insts",
                 "checkpoint_every", "warm")

    def __init__(self, program_name: str, config_name: str,
                 ipc_mean: float, ipc_std: float, ipc_ci95: float,
                 intervals: List[dict], counters: Dict[str, float],
                 cycles: int, instructions: int, total_instructions: int,
                 detailed_instructions: int, warmup_insts: int,
                 interval_insts: int, checkpoint_every: int, warm: bool):
        self.program_name = program_name
        self.config_name = config_name
        self.ipc_mean = ipc_mean
        self.ipc_std = ipc_std
        self.ipc_ci95 = ipc_ci95
        self.intervals = intervals
        self.counters = counters
        self.cycles = cycles
        self.instructions = instructions
        self.total_instructions = total_instructions
        self.detailed_instructions = detailed_instructions
        self.warmup_insts = warmup_insts
        self.interval_insts = interval_insts
        self.checkpoint_every = checkpoint_every
        self.warm = warm

    def sampling_dict(self) -> dict:
        """The ``sampling`` metadata block of a sampled RunRecord."""
        return {
            "ipc_mean": self.ipc_mean,
            "ipc_std": self.ipc_std,
            "ipc_ci95": self.ipc_ci95,
            "intervals": [
                {"position": iv["position"], "retired": iv["retired"],
                 "cycles": iv["cycles"], "ipc": iv["ipc"]}
                for iv in self.intervals],
            "total_instructions": self.total_instructions,
            "detailed_instructions": self.detailed_instructions,
            "warmup_insts": self.warmup_insts,
            "interval_insts": self.interval_insts,
            "checkpoint_every": self.checkpoint_every,
            "warm": self.warm,
        }


def _warm_capsule(bpred: Optional[GsharePredictor],
                  hierarchy) -> Optional[dict]:
    if bpred is None and hierarchy is None:
        return None
    capsule: dict = {}
    if bpred is not None:
        capsule["bpred"] = bpred.export_state()
    if hierarchy is not None:
        capsule["caches"] = hierarchy.export_state()
    return capsule


def capture_train(program: Program, every: int, warm: bool = True,
                  limit: int = 5_000_000,
                  max_checkpoints: int = MAX_TRAIN_CHECKPOINTS):
    """One fast-forward pass over ``program``, checkpointing every
    ``every`` retired instructions.

    Returns ``(checkpoints, total_instructions)``.  The train always
    starts with a position-0 checkpoint and is thinned (every other
    checkpoint dropped, stride doubled) whenever it exceeds
    ``max_checkpoints``, so long programs stay bounded in memory and on
    disk.
    """
    if every < 1:
        raise ValueError(f"checkpoint interval must be >= 1, got {every}")
    interp = Interpreter(program)
    base_image = MainMemory()
    base_image.load_segments(program.data)
    bpred = GsharePredictor() if warm else None
    hierarchy = paper_hierarchy() if warm else None
    checkpoints = [ArchCheckpoint.capture(
        interp, base_image, warm=_warm_capsule(bpred, hierarchy))]
    stride = every
    while not interp.halted:
        budget = min(stride, limit - interp.instructions_retired)
        if budget <= 0:
            raise ExecutionLimitExceeded(
                f"program {program.name!r} did not halt within "
                f"{limit} instructions")
        executed = interp.fast_forward(budget, bpred, hierarchy)
        if interp.halted or executed < budget:
            break
        checkpoints.append(ArchCheckpoint.capture(
            interp, base_image, warm=_warm_capsule(bpred, hierarchy)))
        if len(checkpoints) > max_checkpoints:
            checkpoints = checkpoints[::2]
            stride *= 2
    if not interp.halted:
        raise ExecutionLimitExceeded(
            f"program {program.name!r} did not halt within "
            f"{limit} instructions")
    return checkpoints, interp.instructions_retired


def select_checkpoints(checkpoints: List[ArchCheckpoint], total: int,
                       intervals: int,
                       window: int) -> List[ArchCheckpoint]:
    """Pick up to ``intervals`` evenly spaced checkpoints whose detailed
    window of ``window`` instructions fits before the program halts."""
    if intervals < 1:
        raise ValueError(f"intervals must be >= 1, got {intervals}")
    eligible = [ckpt for ckpt in checkpoints
                if ckpt.retired + window <= total]
    if not eligible:
        # Program shorter than one window: a single from-the-start
        # interval degenerates to (truncated) full detailed simulation.
        return [checkpoints[0]]
    count = min(intervals, len(eligible))
    if count == 1:
        return [eligible[len(eligible) // 2]]
    span = len(eligible) - 1
    picked = []
    seen = set()
    for i in range(count):
        index = round(i * span / (count - 1))
        if index not in seen:
            seen.add(index)
            picked.append(eligible[index])
    return picked


def simulate_interval(program: Program, config: ProcessorConfig,
                      ckpt: ArchCheckpoint, warmup_insts: int,
                      interval_insts: int) -> Optional[dict]:
    """Detailed-simulate one window from ``ckpt``: warm up
    ``warmup_insts`` (counters discarded), measure ``interval_insts``.

    Returns the per-interval measurement dict, or None when the program
    halts inside the warm-up (nothing measurable).
    """
    resumed = ckpt.resume_interpreter(program)
    # Suffix golden trace: record 0 must be the first instruction the
    # restored core retires (trace indices are validated against the
    # core's own retire count).
    resumed.instructions_retired = 0
    needed = warmup_insts + interval_insts + config.rob_size + TRACE_SLACK
    records = []
    append = records.append
    step = resumed.step
    for _ in range(needed):
        record = step()
        if record is None:
            break
        append(record)
        if resumed.halted:
            break
    core = Core(program, config, trace=records,
                memory=ckpt.restore_memory(program),
                start_pc=ckpt.pc, start_regs=ckpt.regs,
                warm_state=ckpt.warm)
    core.run_until(min(warmup_insts, len(records)))
    warm_cycle = core.cycle
    warm_retired = core.retired
    warm_counters = core.counters.as_dict()
    core.run_until(min(warmup_insts + interval_insts, len(records)))
    retired = core.retired - warm_retired
    cycles = core.cycle - warm_cycle
    if retired <= 0 or cycles <= 0:
        return None
    end_counters = core.counters.as_dict()
    deltas = {key: value - warm_counters.get(key, 0)
              for key, value in end_counters.items()}
    return {"position": ckpt.retired, "retired": retired,
            "cycles": cycles, "ipc": retired / cycles,
            "detailed_retired": core.retired, "counters": deltas}


def sample_run(program: Program, config: ProcessorConfig, *,
               intervals: int = 10, warmup_insts: int = 1_000,
               interval_insts: int = 5_000,
               checkpoint_every: Optional[int] = None, warm: bool = True,
               store: Optional[CheckpointStore] = None,
               limit: int = 5_000_000) -> SampledResult:
    """Sampled detailed simulation of ``program`` under ``config``.

    When a :class:`~repro.checkpoint.store.CheckpointStore` is supplied
    the checkpoint train is persisted content-addressed, so grid cells
    sharing a benchmark (any config) fast-forward once.
    """
    window = warmup_insts + interval_insts
    every = checkpoint_every if checkpoint_every else max(window, 500)
    train = None
    key = None
    if store is not None:
        key = train_key(program.digest(), every, warm)
        train = store.load(key)
    if train is None:
        checkpoints, total = capture_train(program, every, warm=warm,
                                           limit=limit)
        if store is not None and key is not None:
            store.store(key, checkpoints, total)
    else:
        checkpoints, total = train["checkpoints"], \
            train["total_instructions"]
    selected = select_checkpoints(checkpoints, total, intervals, window)
    measured = []
    for ckpt in selected:
        result = simulate_interval(program, config, ckpt, warmup_insts,
                                   interval_insts)
        if result is not None:
            measured.append(result)
    if not measured:
        raise SamplingError(
            f"no measurable interval for {program.name!r}: program "
            f"halts inside every warm-up window (total "
            f"{total} instructions, warm-up {warmup_insts})")

    ipcs = [iv["ipc"] for iv in measured]
    count = len(ipcs)
    mean = sum(ipcs) / count
    if count > 1:
        variance = sum((x - mean) ** 2 for x in ipcs) / (count - 1)
        std = math.sqrt(variance)
        half = t95(count - 1) * std / math.sqrt(count) \
            + SYSTEMATIC_ERROR * mean
    else:
        std = 0.0
        half = SINGLE_INTERVAL_ERROR * mean

    counters: Dict[str, float] = {}
    for iv in measured:
        for key_, value in iv["counters"].items():
            counters[key_] = counters.get(key_, 0) + value
    cycles = sum(iv["cycles"] for iv in measured)
    instructions = sum(iv["retired"] for iv in measured)
    counters["cycles"] = cycles
    counters["retired_instructions"] = instructions
    detailed = sum(iv["detailed_retired"] for iv in measured)
    return SampledResult(
        program_name=program.name, config_name=config.name,
        ipc_mean=mean, ipc_std=std, ipc_ci95=half, intervals=measured,
        counters=counters, cycles=cycles, instructions=instructions,
        total_instructions=total, detailed_instructions=detailed,
        warmup_insts=warmup_insts, interval_insts=interval_insts,
        checkpoint_every=every, warm=warm)
