"""Simulation statistics."""

from .counters import Counters

__all__ = ["Counters"]
