"""Human-readable reports for simulation results."""

from __future__ import annotations

from typing import List


def format_report(result) -> str:
    """Render a :class:`~repro.pipeline.processor.SimResult` as a
    sectioned text report (used by the CLI and the examples)."""
    c = result.counters
    lines: List[str] = []

    def section(title: str) -> None:
        lines.append("")
        lines.append(title)
        lines.append("-" * len(title))

    def row(label: str, value, fmt: str = "{:.0f}") -> None:
        if isinstance(value, float):
            value = fmt.format(value)
        lines.append(f"  {label:<30} {value}")

    lines.append(f"{result.program_name} on {result.config.name}")
    lines.append("=" * len(lines[0]))

    section("performance")
    row("IPC", result.ipc, "{:.3f}")
    row("cycles", result.cycles)
    row("instructions retired", result.instructions)
    row("idle cycles skipped", c.get("idle_cycles_skipped"))

    section("front end")
    row("branch predictions", c.get("branch_predictions"))
    row("branch mispredictions", c.get("branch_mispredictions"))
    row("mispredict flushes", c.get("branch_mispredict_flushes"))
    row("squashed instructions", c.get("squashed_instructions"))
    row("dispatch stalls (ROB full)", c.get("dispatch_stalls_rob"))
    row("dispatch stalls (window)", c.get("dispatch_stalls_sched"))
    row("dispatch stalls (LQ/SQ)",
        c.get("dispatch_stalls_lq") + c.get("dispatch_stalls_sq"))

    section("memory subsystem")
    row("retired loads", c.get("retired_loads"))
    row("retired stores", c.get("retired_stores"))
    if c.get("sfc_load_lookups"):
        row("SFC forwards", c.get("sfc_forwards"))
        row("SFC partial-match replays", c.get("load_replays_sfc_partial"))
        row("SFC corruption replays", c.get("load_replays_sfc_corrupt"))
        row("SFC set-conflict replays",
            c.get("store_replays_sfc_conflict"))
        row("MDT set-conflict replays", c.get("load_replays_mdt_conflict")
            + c.get("store_replays_mdt_conflict"))
        row("ROB-head bypasses", c.get("rob_head_bypasses"))
    if c.get("lsq_load_searches"):
        row("LSQ full forwards", c.get("lsq_full_forwards"))
        row("SQ entries CAM-searched", c.get("lsq_sq_entries_searched"))
        row("LQ entries CAM-searched", c.get("lsq_lq_entries_searched"))
    if c.get("lsq_retire_replays"):
        row("retirement re-executions", c.get("lsq_retire_replays"))
        row("late violations", c.get("retire_replay_violations"))

    section("ordering violations")
    row("true-dependence flushes", c.get("violation_flushes_true")
        + c.get("lsq_true_violations"))
    row("anti-dependence flushes", c.get("violation_flushes_anti"))
    row("output-dependence flushes", c.get("violation_flushes_output"))
    row("predictor trainings", c.get("pred_trainings"))
    row("predicted deps enforced", c.get("pred_consumes"))

    section("caches")
    for level in ("l1i", "l1d", "l2"):
        accesses = c.get(f"{level}_accesses")
        misses = c.get(f"{level}_misses")
        rate = 100.0 * misses / accesses if accesses else 0.0
        row(f"{level} accesses / misses",
            f"{accesses:.0f} / {misses:.0f}  ({rate:.1f}%)")

    return "\n".join(lines)
