"""Human-readable reports rendered from structured run records.

``format_report`` renders a :class:`~repro.obs.runrecord.RunRecord` as a
sectioned text report (used by the CLI's default ``--format text`` and
the examples).  Every counter name the report touches is resolved
through the metric registry (:data:`repro.obs.metrics.METRICS`):

* a *missing* metric (never incremented in this run) renders as ``0``
  followed by the metric's declared unit, instead of a silent blank;
* an *undeclared* metric name -- a typo'd counter string -- raises
  :class:`~repro.obs.metrics.UnknownMetricError` immediately, so report
  drift is caught by the test suite rather than shipped as empty rows.

Passing a legacy :class:`~repro.pipeline.processor.SimResult` still
works through a thin deprecation shim (it is wrapped with
:meth:`RunRecord.from_sim_result` after a :class:`DeprecationWarning`).
"""

from __future__ import annotations

import warnings
from typing import List, Union

from ..obs.metrics import METRICS
from ..obs.runrecord import RunRecord


def _coerce(result: Union[RunRecord, object]) -> RunRecord:
    if isinstance(result, RunRecord):
        return result
    warnings.warn(
        "format_report(SimResult) is deprecated; pass a RunRecord "
        "(e.g. from repro.api.simulate) instead",
        DeprecationWarning, stacklevel=3)
    return RunRecord.from_sim_result(result)


def format_report(result: Union[RunRecord, object]) -> str:
    """Render a run record as a sectioned text report."""
    record = _coerce(result)
    metrics = record.counters
    lines: List[str] = []

    def section(title: str) -> None:
        lines.append("")
        lines.append(title)
        lines.append("-" * len(title))

    def row(label: str, value, fmt: str = "{:.0f}") -> None:
        if isinstance(value, float):
            value = fmt.format(value)
        lines.append(f"  {label:<30} {value}")

    def get(name: str) -> float:
        """Declared-metric lookup: typos raise, absent values read 0."""
        METRICS.get(name)
        return metrics.get(name, 0.0)

    def metric_row(label: str, name: str, fmt: str = "{:.0f}") -> None:
        metric = METRICS.get(name)
        if name in metrics:
            row(label, metrics[name], fmt)
        else:
            unit = f" {metric.unit}" if metric.unit else ""
            row(label, f"0{unit}")

    lines.append(f"{record.benchmark} on {record.config_name}")
    lines.append("=" * len(lines[0]))

    section("performance")
    row("IPC", record.ipc, "{:.3f}")
    row("cycles", float(record.cycles))
    row("instructions retired", float(record.instructions))
    metric_row("idle cycles skipped", "idle_cycles_skipped")

    section("front end")
    metric_row("branch predictions", "branch_predictions")
    metric_row("branch mispredictions", "branch_mispredictions")
    metric_row("mispredict flushes", "branch_mispredict_flushes")
    metric_row("squashed instructions", "squashed_instructions")
    metric_row("dispatch stalls (ROB full)", "dispatch_stalls_rob")
    metric_row("dispatch stalls (window)", "dispatch_stalls_sched")
    row("dispatch stalls (LQ/SQ)",
        get("dispatch_stalls_lq") + get("dispatch_stalls_sq"))

    section("memory subsystem")
    metric_row("retired loads", "retired_loads")
    metric_row("retired stores", "retired_stores")
    if get("sfc_load_lookups"):
        metric_row("SFC forwards", "sfc_forwards")
        metric_row("SFC partial-match replays", "load_replays_sfc_partial")
        metric_row("SFC corruption replays", "load_replays_sfc_corrupt")
        metric_row("SFC set-conflict replays", "store_replays_sfc_conflict")
        row("MDT set-conflict replays", get("load_replays_mdt_conflict")
            + get("store_replays_mdt_conflict"))
        metric_row("ROB-head bypasses", "rob_head_bypasses")
    if get("lsq_load_searches"):
        metric_row("LSQ full forwards", "lsq_full_forwards")
        metric_row("SQ entries CAM-searched", "lsq_sq_entries_searched")
        metric_row("LQ entries CAM-searched", "lsq_lq_entries_searched")
    if get("lsq_retire_replays"):
        metric_row("retirement re-executions", "lsq_retire_replays")
        metric_row("late violations", "retire_replay_violations")

    section("ordering violations")
    row("true-dependence flushes", get("violation_flushes_true")
        + get("lsq_true_violations"))
    metric_row("anti-dependence flushes", "violation_flushes_anti")
    metric_row("output-dependence flushes", "violation_flushes_output")
    metric_row("predictor trainings", "pred_trainings")
    metric_row("predicted deps enforced", "pred_consumes")

    section("caches")
    for level in ("l1i", "l1d", "l2"):
        accesses = get(f"{level}_accesses")
        misses = get(f"{level}_misses")
        rate = 100.0 * misses / accesses if accesses else 0.0
        row(f"{level} accesses / misses",
            f"{accesses:.0f} / {misses:.0f}  ({rate:.1f}%)")

    return "\n".join(lines)
