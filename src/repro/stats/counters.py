"""Lightweight counter registry shared by every simulator component.

Two access styles:

* ``counters.incr("mdt_true_violations")`` -- by-name increment, for
  rare events (violations, conflicts, stalls).  One dict lookup per
  event.
* ``cell = counters.cell("sfc_forwards")`` then ``cell.value += 1`` -- an
  *interned counter handle* for per-instruction / per-access hot paths.
  The dict lookup happens once, at component construction; every event
  afterwards is a plain attribute add.

A counter becomes *visible* (``as_dict``/``items``/``in``) once it has
been touched through ``incr``/``set``/``merge``/``from_dict`` or once its
value is nonzero.  A cell that was interned but never bumped therefore
never leaks a spurious zero entry into reports or result manifests --
interning handles is observationally free.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Set, Tuple


class CounterCell:
    """Mutable holder for one counter value.

    Hot paths bind the cell once and bump ``cell.value`` directly,
    replacing a per-event dict lookup with an attribute add.
    """

    __slots__ = ("value",)

    def __init__(self, value: float = 0.0):
        self.value = value

    def __repr__(self) -> str:
        return f"CounterCell({self.value!r})"


class Counters:
    """A named-counter bag with safe rate computation.

    Components increment counters by name
    (``counters.incr("sfc_set_conflicts")``)
    and the harness reads them back for reports.  Missing counters read as
    zero, so report code never needs existence checks.
    """

    __slots__ = ("_cells", "_explicit")

    def __init__(self):
        self._cells: Dict[str, CounterCell] = {}
        #: Names touched through incr/set (visible even at value zero,
        #: matching the behaviour of a plain dict of values).
        self._explicit: Set[str] = set()

    # -- handles ---------------------------------------------------------------

    def cell(self, name: str) -> CounterCell:
        """Intern a counter handle for allocation-free hot-path bumps.

        The cell stays invisible until its value is nonzero, so interning
        never changes reported output.
        """
        cell = self._cells.get(name)
        if cell is None:
            cell = self._cells[name] = CounterCell()
        return cell

    # -- by-name access --------------------------------------------------------

    def incr(self, name: str, amount: float = 1.0) -> None:
        cell = self._cells.get(name)
        if cell is None:
            cell = self._cells[name] = CounterCell()
        cell.value += amount
        self._explicit.add(name)

    def set(self, name: str, value: float) -> None:
        cell = self._cells.get(name)
        if cell is None:
            cell = self._cells[name] = CounterCell()
        cell.value = value
        self._explicit.add(name)

    def get(self, name: str) -> float:
        cell = self._cells.get(name)
        return cell.value if cell is not None else 0.0

    def __getitem__(self, name: str) -> float:
        return self.get(name)

    def __contains__(self, name: str) -> bool:
        cell = self._cells.get(name)
        if cell is None:
            return False
        return name in self._explicit or cell.value != 0

    def rate(self, numerator: str, denominator: str) -> float:
        """``numerator / denominator`` with zero-denominator safety."""
        denom = self.get(denominator)
        if not denom:
            return 0.0
        return self.get(numerator) / denom

    def merge(self, other: "Counters") -> None:
        """Add every counter from ``other`` into this registry."""
        for name, value in other._visible():
            self.incr(name, value)

    # -- export ----------------------------------------------------------------

    def _visible(self) -> List[Tuple[str, float]]:
        explicit = self._explicit
        return [(name, cell.value) for name, cell in self._cells.items()
                if name in explicit or cell.value != 0]

    def items(self) -> Iterator[Tuple[str, float]]:
        return iter(sorted(self._visible()))

    def as_dict(self) -> Dict[str, float]:
        return dict(self._visible())

    @classmethod
    def from_dict(cls, values: Dict[str, float]) -> "Counters":
        """Rebuild a registry from :meth:`as_dict` output (result cache,
        cross-process experiment results)."""
        counters = cls()
        for name, value in values.items():
            counters.set(name, value)
        return counters

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v:g}" for k, v in sorted(self._visible()))
        return f"Counters({inner})"
