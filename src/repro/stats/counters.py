"""Lightweight counter registry shared by every simulator component."""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterator, Tuple


class Counters:
    """A named-counter bag with safe rate computation.

    Components increment counters by name (``counters.incr("sfc_conflicts")``)
    and the harness reads them back for reports.  Missing counters read as
    zero, so report code never needs existence checks.
    """

    def __init__(self):
        self._values: Dict[str, float] = defaultdict(float)

    def incr(self, name: str, amount: float = 1.0) -> None:
        self._values[name] += amount

    def set(self, name: str, value: float) -> None:
        self._values[name] = value

    def get(self, name: str) -> float:
        return self._values.get(name, 0.0)

    def __getitem__(self, name: str) -> float:
        return self.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._values

    def rate(self, numerator: str, denominator: str) -> float:
        """``numerator / denominator`` with zero-denominator safety."""
        denom = self.get(denominator)
        if not denom:
            return 0.0
        return self.get(numerator) / denom

    def merge(self, other: "Counters") -> None:
        """Add every counter from ``other`` into this registry."""
        for name, value in other._values.items():
            self._values[name] += value

    def items(self) -> Iterator[Tuple[str, float]]:
        return iter(sorted(self._values.items()))

    def as_dict(self) -> Dict[str, float]:
        return dict(self._values)

    @classmethod
    def from_dict(cls, values: Dict[str, float]) -> "Counters":
        """Rebuild a registry from :meth:`as_dict` output (result cache,
        cross-process experiment results)."""
        counters = cls()
        counters._values.update(values)
        return counters

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v:g}" for k, v in sorted(
            self._values.items()))
        return f"Counters({inner})"
