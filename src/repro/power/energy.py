"""Event-based dynamic-energy model for the memory subsystems.

The paper's power argument is structural: every LSQ access performs a
fully-associative, age-prioritized CAM search whose dynamic energy grows
linearly with queue occupancy, while the SFC and MDT perform small indexed
RAM accesses of constant cost.  This model charges per-event energies to
the counters each subsystem already maintains and reports the totals, so
the benches can show the energy gap and how it scales with LSQ size.

Energy unit: the cost of reading one 8-byte RAM entry (1.0).  Relative
costs follow the common CACTI-style observation that a CAM match line plus
priority encode costs several times an equivalent RAM read; the default
ratio is configurable so the conclusion can be stress-tested.
"""

from __future__ import annotations

from typing import Dict

from ..stats.counters import Counters


class EnergyModel:
    """Charges per-event energy costs against a simulation's counters."""

    def __init__(self, ram_read_energy: float = 1.0,
                 ram_write_energy: float = 1.0,
                 cam_entry_search_energy: float = 2.0):
        self.ram_read_energy = ram_read_energy
        self.ram_write_energy = ram_write_energy
        #: Energy per queue entry examined during one associative search
        #: (tag compare + match line + its share of priority encoding).
        self.cam_entry_search_energy = cam_entry_search_energy

    def lsq_energy(self, counters: Counters) -> Dict[str, float]:
        """Energy of LSQ forwarding + disambiguation for one run."""
        search = (counters.get("lsq_sq_entries_searched") +
                  counters.get("lsq_lq_entries_searched")) \
            * self.cam_entry_search_energy
        writes = (counters.get("lsq_load_searches") +
                  counters.get("lsq_store_searches")) \
            * self.ram_write_energy
        total = search + writes
        return {"search_energy": search, "write_energy": writes,
                "total_energy": total}

    def sfc_mdt_energy(self, counters: Counters) -> Dict[str, float]:
        """Energy of SFC + MDT forwarding + disambiguation for one run."""
        # Each SFC/MDT access touches one set: ``assoc`` tag compares plus
        # one data read/write; we charge one RAM read per way probed plus
        # one RAM write per update.  Way counts are folded into the event
        # counters by using 2 probes per access (the paper's 2-way
        # configurations).
        probes_per_access = 2.0
        reads = (counters.get("sfc_load_lookups") +
                 counters.get("mdt_load_accesses") +
                 counters.get("mdt_store_accesses")) \
            * probes_per_access * self.ram_read_energy
        writes = (counters.get("sfc_store_writes") +
                  counters.get("mdt_load_accesses") +
                  counters.get("mdt_store_accesses")) \
            * self.ram_write_energy
        total = reads + writes
        return {"search_energy": reads, "write_energy": writes,
                "total_energy": total}

    def compare(self, lsq_counters: Counters,
                sfc_mdt_counters: Counters) -> Dict[str, float]:
        """Energy ratio LSQ / (SFC+MDT) for paired runs of one workload."""
        lsq = self.lsq_energy(lsq_counters)["total_energy"]
        sfc_mdt = self.sfc_mdt_energy(sfc_mdt_counters)["total_energy"]
        ratio = lsq / sfc_mdt if sfc_mdt else float("inf")
        return {"lsq_energy": lsq, "sfc_mdt_energy": sfc_mdt,
                "ratio": ratio}
