"""Dynamic-energy accounting."""

from .energy import EnergyModel

__all__ = ["EnergyModel"]
