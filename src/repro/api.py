"""Stable, versioned public API: ``repro.api``.

The supported programmatic surface of the reproduction.  Everything here
returns structured, schema-versioned results
(:class:`~repro.obs.runrecord.RunRecord`) instead of simulator-internal
objects, so callers no longer import from ``repro.pipeline.processor``
or ``repro.harness`` internals:

* :func:`simulate` -- one (benchmark, configuration) cell -> RunRecord;
* :func:`simulate_sampled` -- the same cell under checkpointed
  fast-forward + interval sampling -> RunRecord with a ``sampling``
  block (IPC mean, confidence interval, interval table);
* :func:`simulate_system` -- one N-core system cell (N-up private-memory
  replication, or a shared-memory litmus test) -> RunRecord (schema v3);
* :func:`run_litmus` -- a litmus campaign over the shared-memory
  machine, every observed outcome judged by the operational-model
  oracle (:class:`~repro.verify.litmus_oracle.LitmusReport`);
* :func:`compare` -- one benchmark under several configurations;
* :func:`run_suite` -- a fault-tolerant (benchmark x configuration)
  grid -> RunRecords, including structured failure entries for cells
  whose workers crashed, hung, or kept raising;
* :func:`run_figure` -- regenerate one of the paper's figures/tables;
* :func:`trace` -- a sampled pipetrace run (ring buffer + epoch
  snapshots) for time-series analysis;
* :func:`fuzz` -- a differential fuzz campaign cross-checking every
  memory subsystem against the interpreter oracle
  (:class:`~repro.verify.fuzzer.FuzzReport`); seeds round-robin across
  every registered program frontend (native generator, RV32);
* :func:`simulate_riscv` -- load a real RV32 image (``.hex`` text, raw
  binary, or word list) through the :mod:`repro.isa.riscv` frontend and
  simulate it golden-trace-checked against the interpreter oracle;
* :func:`run_riscv_conformance` -- execute the committed RV32 corpus on
  the oracle and on every configuration of the differential matrix,
  asserting identical final register/memory digests
  (:class:`~repro.verify.conformance.ConformanceReport`);
* :func:`list_benchmarks` / :func:`list_configs` / :func:`list_figures`
  / :func:`list_suites` / :func:`list_frontends` -- the name spaces the
  other calls accept.

Example::

    from repro import api

    record = api.simulate("gzip", "baseline-sfc-mdt", scale=5000)
    print(record.ipc, record.metric("sfc_forwards"))
    print(record.to_json(indent=2))   # schema_version included

The old entry points (``repro.cli.CONFIGS``/``FIGURES``, and
``format_report`` over a raw ``SimResult``) keep working through thin
shims that emit :class:`DeprecationWarning`.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Union

from .harness import configs as config_presets
from .harness import figures
from .harness.experiment import DEFAULT_SCALE, ExperimentRunner
from .obs.runrecord import RunRecord
from .pipeline.config import ProcessorConfig, SystemConfig
from .pipeline.pipetrace import PipeTracer, trace_run
from .pipeline.processor import Processor
from .workloads import ALL_BENCHMARKS, litmus_benchmark_names, suites

#: Named configuration presets (the CLI exposes exactly these).
CONFIGS: Dict[str, Callable[[], ProcessorConfig]] = {
    "baseline-lsq": config_presets.baseline_lsq_config,
    "baseline-sfc-mdt": config_presets.baseline_sfc_mdt_config,
    "aggressive-lsq": config_presets.aggressive_lsq_config,
    "aggressive-sfc-mdt": config_presets.aggressive_sfc_mdt_config,
    "aggressive-load-replay": config_presets.aggressive_load_replay_config,
}

#: Figure/table generators (the CLI exposes exactly these).
FIGURES: Dict[str, Callable[..., "figures.FigureResult"]] = {
    "fig5": figures.figure5,
    "fig6": figures.figure6,
    "enf-ablation": figures.enf_ablation,
    "associativity": figures.associativity_sweep,
    "corruption": figures.corruption_rates,
    "granularity": figures.granularity_sweep,
    "power": figures.power_comparison,
    "window-scaling": figures.window_scaling,
    "recovery": figures.recovery_policies,
}

ConfigLike = Union[str, ProcessorConfig]


def resolve_config(config: ConfigLike) -> ProcessorConfig:
    """A :class:`ProcessorConfig` from a preset name or a ready config."""
    if isinstance(config, ProcessorConfig):
        return config
    try:
        return CONFIGS[config]()
    except KeyError:
        raise KeyError(
            f"unknown configuration {config!r}; available presets: "
            f"{', '.join(sorted(CONFIGS))}") from None


def list_benchmarks() -> List[str]:
    """Names accepted by :func:`simulate`/:func:`compare`/:func:`trace`."""
    return sorted(ALL_BENCHMARKS)


def list_litmus_tests() -> List[str]:
    """Litmus-test names accepted by :func:`simulate_system` and
    :func:`run_litmus` (and by ``repro run`` with ``--cores``)."""
    return litmus_benchmark_names()


def list_configs() -> List[str]:
    """Named configuration presets."""
    return sorted(CONFIGS)


def list_suites() -> List[str]:
    """Declared benchmark suites (``repro suite --suite NAME``)."""
    return suites.suite_names()


def list_frontends() -> List[str]:
    """Registered program frontends (all fuzzed by default)."""
    from .verify import frontend_names

    return frontend_names()


def list_figures() -> List[str]:
    """Figure/table generators accepted by :func:`run_figure`."""
    return sorted(FIGURES)


def _runner(scale: int, runner: Optional[ExperimentRunner],
            **runner_kwargs) -> ExperimentRunner:
    if runner is not None:
        return runner
    return ExperimentRunner(scale=scale, **runner_kwargs)


def simulate(benchmark: str, config: ConfigLike = "baseline-sfc-mdt",
             scale: int = DEFAULT_SCALE,
             runner: Optional[ExperimentRunner] = None,
             **runner_kwargs) -> RunRecord:
    """Simulate one benchmark under one configuration.

    Returns the versioned :class:`RunRecord` of the cell (also appended
    to the runner's manifest).  ``runner_kwargs`` (``jobs``,
    ``cache_dir``, ``use_cache``) configure a fresh
    :class:`ExperimentRunner` when none is supplied.
    """
    engine = _runner(scale, runner, **runner_kwargs)
    engine.run(benchmark, resolve_config(config))
    return engine.last_record()


def simulate_sampled(benchmark: str,
                     config: ConfigLike = "baseline-sfc-mdt",
                     scale: int = DEFAULT_SCALE, intervals: int = 10,
                     warmup_insts: int = 1_000,
                     interval_insts: int = 5_000,
                     checkpoint_every: Optional[int] = None,
                     warm: bool = True,
                     horizon: Optional[int] = None,
                     runner: Optional[ExperimentRunner] = None,
                     **runner_kwargs) -> RunRecord:
    """Sampled simulation of one cell: checkpointed fast-forward with
    ``intervals`` detailed windows of ``warmup_insts + interval_insts``
    instructions each (warm-up counters discarded).

    The record's ``ipc`` is the per-interval mean; ``record.sampling``
    carries ``ipc_ci95`` (confidence half-width), the interval table,
    and the fast-forward/detailed instruction split.  ``horizon``
    restricts sampling to the first N retired instructions; checkpoint
    trains are shared across horizons (a longer train serves shorter
    requests as a prefix, a shorter one is extended in place).  See
    DESIGN.md "Sampling methodology" for the error model and when exact
    mode is required instead.
    """
    engine = _runner(scale, runner, **runner_kwargs)
    return engine.run_sampled(
        benchmark, resolve_config(config), intervals=intervals,
        warmup_insts=warmup_insts, interval_insts=interval_insts,
        checkpoint_every=checkpoint_every, warm=warm, horizon=horizon)


def simulate_system(benchmark: str,
                    config: ConfigLike = "baseline-sfc-mdt",
                    cores: int = 2, memory_mode: Optional[str] = None,
                    scale: int = DEFAULT_SCALE,
                    runner: Optional[ExperimentRunner] = None,
                    **runner_kwargs) -> RunRecord:
    """Simulate one N-core system cell; returns its :class:`RunRecord`
    (schema v3 when ``cores > 1``, with per-core counters namespaced as
    ``core<N>_<name>``).

    ``benchmark`` is a regular suite benchmark -- replicated N-up over
    private memory with a shared L2 -- or a litmus name
    (:func:`list_litmus_tests`), which runs its per-thread programs over
    shared memory.  ``config`` names the *core* recipe; ``memory_mode``
    defaults to ``shared`` for litmus tests and ``private`` otherwise.
    ``config`` may also be a ready :class:`SystemConfig`, in which case
    ``cores``/``memory_mode`` are ignored.
    """
    from .workloads.litmus import is_litmus

    if isinstance(config, SystemConfig):
        system_config = config
    else:
        core = resolve_config(config)
        if memory_mode is None:
            memory_mode = config_presets.MEMORY_SHARED \
                if is_litmus(benchmark) else config_presets.MEMORY_PRIVATE
        system_config = SystemConfig(core=core, cores=cores,
                                     memory_mode=memory_mode)
    engine = _runner(scale, runner, **runner_kwargs)
    return engine.run_system(benchmark, system_config)


def run_litmus(tests: Optional[Sequence[str]] = None,
               configs: Optional[Sequence[ConfigLike]] = None):
    """Run a litmus campaign on the shared-memory machine; returns a
    :class:`~repro.verify.litmus_oracle.LitmusReport` whose ``.ok`` is
    True iff the operational-model oracle accepts every observed
    outcome.

    ``tests=None`` runs the full shipped suite (MP, SB, LB);
    ``configs=None`` uses the baseline SFC/MDT core.  Config names are
    resolved through :func:`resolve_config` (they name the *core*; each
    test supplies its own core count)."""
    from .verify import run_litmus_suite

    resolved = None
    if configs is not None:
        resolved = [resolve_config(config) for config in configs]
    return run_litmus_suite(tests=tests, core_configs=resolved)


def compare(benchmark: str,
            configs: Sequence[ConfigLike] = ("baseline-lsq",
                                             "baseline-sfc-mdt"),
            scale: int = DEFAULT_SCALE,
            runner: Optional[ExperimentRunner] = None,
            **runner_kwargs) -> List[RunRecord]:
    """One benchmark under several configurations, as RunRecords
    (grid-parallel and cache-aware through the experiment engine)."""
    engine = _runner(scale, runner, **runner_kwargs)
    resolved = [resolve_config(config) for config in configs]
    grid = engine.run_suite([benchmark], resolved)
    by_name = {record.config_name: record for record in engine.records()
               if record.benchmark == benchmark}
    return [by_name[config.name] for config in resolved if
            (benchmark, config.name) in grid]


def run_suite(benchmarks: Optional[Sequence[str]] = None,
              configs: Optional[Sequence[ConfigLike]] = None,
              scale: int = DEFAULT_SCALE,
              jobs: Optional[int] = None,
              cell_timeout: Optional[float] = None,
              max_retries: Optional[int] = None,
              runner: Optional[ExperimentRunner] = None,
              **runner_kwargs) -> List[RunRecord]:
    """Run a fault-tolerant (benchmark x configuration) grid.

    Returns one :class:`RunRecord` per grid cell *including* structured
    failure entries (``status`` failed/timeout, ``attempts``,
    ``error``) for cells that exhausted their retry budget -- a crashed
    or hung worker never discards the rest of the grid.  Completed
    cells checkpoint to the persistent cache as they finish, so calling
    again with the same runner settings resumes an interrupted sweep
    (only missing/failed cells are re-simulated).

    ``benchmarks`` defaults to every benchmark and ``configs`` to every
    named preset.  ``cell_timeout`` (seconds) and ``max_retries``
    override the engine's fault-tolerance knobs for this call.
    """
    engine = _runner(scale, runner, **runner_kwargs)
    names = list(benchmarks) if benchmarks else list_benchmarks()
    resolved = [resolve_config(config)
                for config in (configs if configs is not None
                               else list_configs())]
    start = len(engine.manifest)
    engine.run_suite(names, resolved, jobs=jobs,
                     cell_timeout=cell_timeout, max_retries=max_retries)
    return [RunRecord.from_dict(entry)
            for entry in engine.manifest[start:]]


def run_figure(name: str, scale: int = 8_000,
               runner: Optional[ExperimentRunner] = None,
               **runner_kwargs) -> "figures.FigureResult":
    """Regenerate one of the paper's figures/tables."""
    try:
        generator = FIGURES[name]
    except KeyError:
        raise KeyError(
            f"unknown figure {name!r}; available: "
            f"{', '.join(sorted(FIGURES))}") from None
    return generator(scale=scale, runner=_runner(scale, runner,
                                                 **runner_kwargs))


def fuzz(iterations: Optional[int] = None,
         seconds: Optional[float] = None, seed: int = 0,
         configs: Optional[Sequence[ConfigLike]] = None,
         corpus_dir: Optional[str] = None, minimize: bool = True):
    """Run a differential fuzz campaign; returns a
    :class:`~repro.verify.fuzzer.FuzzReport`.

    With neither ``iterations`` nor ``seconds`` the campaign runs 100
    programs.  ``configs=None`` uses the registry-covering default
    matrix (:func:`repro.harness.configs.fuzz_config_matrix`); names are
    resolved through :func:`resolve_config`.  When ``corpus_dir`` is
    given, each failure is minimized (unless ``minimize=False``) and
    written there as a replayable JSON crash case.
    """
    from .verify import DifferentialFuzzer

    resolved = None
    if configs is not None:
        resolved = [resolve_config(config) for config in configs]
    fuzzer = DifferentialFuzzer(configs=resolved)
    return fuzzer.run(iterations=iterations, seconds=seconds, seed=seed,
                      corpus_dir=corpus_dir, minimize=minimize)


def simulate_riscv(source, config: ConfigLike = "baseline-sfc-mdt",
                   name: Optional[str] = None,
                   max_instructions: int = 2_000_000) -> RunRecord:
    """Simulate one real RV32 program end to end.

    ``source`` is anything the frontend loads: a ``.hex`` text file, a
    raw little-endian binary image, or a list of 32-bit words.  The
    program runs on the in-order interpreter first (the architectural
    oracle), then on the pipeline with golden-trace validation against
    that trace -- a divergence raises
    :class:`~repro.pipeline.processor.SimulationError` rather than
    returning a record.
    """
    from .isa.interp import Interpreter
    from .isa.program import Program

    program = Program.from_riscv(source, name=name)
    resolved = resolve_config(config)
    trace = Interpreter(program).run(max_instructions)
    result = Processor(program, resolved, trace=trace).run()
    return RunRecord(
        benchmark=program.name, config_name=resolved.name,
        config=resolved.to_dict(), scale=0, key="",
        cycles=result.cycles, instructions=result.instructions,
        ipc=result.instructions / result.cycles if result.cycles else 0.0,
        counters=dict(result.counters.as_dict()))


def run_riscv_conformance(suite: str = "riscv-conformance",
                          configs: Optional[Sequence[ConfigLike]] = None):
    """Run the RV32 conformance sweep; returns a
    :class:`~repro.verify.conformance.ConformanceReport` whose ``.ok``
    is True iff every (program, configuration) cell retires to the
    oracle's exact register and memory digests.

    ``configs=None`` uses the registry-covering differential matrix
    (one configuration per registered memory subsystem); names are
    resolved through :func:`resolve_config`.  The suite membership is
    declared in :mod:`repro.workloads.suites` -- no cherry-picking.
    """
    from .verify import run_conformance

    resolved = None
    if configs is not None:
        resolved = [resolve_config(config) for config in configs]
    return run_conformance(suite_name=suite, configs=resolved)


def replay_corpus(corpus_dir: str):
    """Replay every committed corpus case under ``corpus_dir``; returns
    a :class:`~repro.verify.corpus.ReplayReport` (``.ok`` iff every
    case passes the full differential check)."""
    from .verify import replay_corpus as _replay

    return _replay(corpus_dir)


def trace(benchmark: str, config: ConfigLike = "baseline-sfc-mdt",
          scale: int = 2_000, ring_size: Optional[int] = None,
          epoch_cycles: Optional[int] = None,
          max_instructions: int = 100_000) -> PipeTracer:
    """Run one benchmark under a sampled pipetrace.

    Builds the workload, attaches a :class:`PipeTracer` (optionally with
    a bounded ring buffer and per-``epoch_cycles`` snapshots), runs to
    completion, and returns the tracer.  ``tracer.epochs_jsonl()`` /
    ``tracer.write_epochs(path)`` export the epoch time series.
    """
    program = suites.build(benchmark, scale)
    processor = Processor(program, resolve_config(config))
    return trace_run(processor, max_instructions=max_instructions,
                     ring_size=ring_size, epoch_cycles=epoch_cycles)


__all__ = [
    "CONFIGS",
    "FIGURES",
    "compare",
    "fuzz",
    "list_benchmarks",
    "list_configs",
    "list_figures",
    "list_frontends",
    "list_litmus_tests",
    "list_suites",
    "replay_corpus",
    "resolve_config",
    "run_figure",
    "run_litmus",
    "run_riscv_conformance",
    "run_suite",
    "simulate",
    "simulate_riscv",
    "simulate_sampled",
    "simulate_system",
    "trace",
]
