"""Profiling and throughput instrumentation for the simulator.

The ROADMAP's north star is a simulator that "runs as fast as the
hardware allows"; this module supplies the measurement half of that
loop.  ``measure_throughput`` times each (benchmark, configuration)
grid cell through the experiment engine and reports simulated
instructions per wall-clock second; ``profile_suite`` wraps the same
grid in ``cProfile`` and extracts the top-N hot functions.  Both drive
the public ``repro bench [--profile]`` CLI subcommand.

The companion correctness gate is ``manifest_digest``: a SHA-256 over
the runner's canonical result manifest (config + cycles + IPC + every
counter).  Two simulator builds that disagree on *any* architected
outcome produce different digests, so an optimization pass is accepted
only when the digest is unchanged while instructions/sec improves (see
DESIGN.md, "Hot-path optimization methodology").
"""

from __future__ import annotations

import cProfile
import hashlib
import json
import pstats
import time
from typing import Iterable, List, Optional, Sequence, Tuple

from .harness.experiment import ExperimentRunner
from .pipeline.config import ProcessorConfig

#: Manifest fields that must be bit-exact across optimization passes.
_MANIFEST_FIELDS = ("benchmark", "config_name", "config", "scale",
                    "cycles", "instructions", "ipc", "counters")


class ThroughputSample:
    """Wall-clock timing of one simulated (benchmark, config) cell."""

    __slots__ = ("benchmark", "config_name", "instructions", "cycles",
                 "wall_seconds")

    def __init__(self, benchmark: str, config_name: str, instructions: int,
                 cycles: int, wall_seconds: float):
        self.benchmark = benchmark
        self.config_name = config_name
        self.instructions = instructions
        self.cycles = cycles
        self.wall_seconds = wall_seconds

    @property
    def insts_per_sec(self) -> float:
        return self.instructions / self.wall_seconds \
            if self.wall_seconds else 0.0

    def __repr__(self) -> str:
        return (f"ThroughputSample({self.benchmark}/{self.config_name}: "
                f"{self.insts_per_sec:.0f} insts/s)")


class ThroughputReport:
    """Aggregate of one timed sweep over a simulation grid.

    ``cache_hits`` is the number of timed cells that were served from
    the result cache and must always be zero: a cache lookup's wall
    time is not simulation throughput (see ``measure_throughput``).
    """

    def __init__(self, samples: List[ThroughputSample], scale: int,
                 manifest_digest: str, cache_hits: int = 0):
        self.samples = samples
        self.scale = scale
        self.manifest_digest = manifest_digest
        self.cache_hits = cache_hits

    @property
    def total_instructions(self) -> int:
        return sum(s.instructions for s in self.samples)

    @property
    def total_wall_seconds(self) -> float:
        return sum(s.wall_seconds for s in self.samples)

    @property
    def insts_per_sec(self) -> float:
        wall = self.total_wall_seconds
        return self.total_instructions / wall if wall else 0.0

    @property
    def usec_per_inst(self) -> float:
        insts = self.total_instructions
        return 1e6 * self.total_wall_seconds / insts if insts else 0.0

    def format(self) -> str:
        lines = [
            f"{'benchmark':<10} {'configuration':<24} {'insts':>8} "
            f"{'wall(s)':>8} {'insts/s':>9}",
        ]
        for s in self.samples:
            lines.append(
                f"{s.benchmark:<10} {s.config_name:<24} "
                f"{s.instructions:>8d} {s.wall_seconds:>8.3f} "
                f"{s.insts_per_sec:>9.0f}")
        lines += [
            "",
            f"total: {self.total_instructions} simulated insts in "
            f"{self.total_wall_seconds:.3f}s = "
            f"{self.insts_per_sec:.0f} insts/s "
            f"({self.usec_per_inst:.2f} us/inst)",
            f"manifest sha256: {self.manifest_digest}",
        ]
        return "\n".join(lines)


class HotFunction:
    """One row of a profile: a function and its aggregate costs."""

    __slots__ = ("name", "ncalls", "tottime", "cumtime")

    def __init__(self, name: str, ncalls: int, tottime: float,
                 cumtime: float):
        self.name = name
        self.ncalls = ncalls
        self.tottime = tottime
        self.cumtime = cumtime


class ProfileReport:
    """cProfile summary of one simulation sweep."""

    def __init__(self, functions: List[HotFunction], total_seconds: float,
                 total_instructions: int):
        self.functions = functions
        self.total_seconds = total_seconds
        self.total_instructions = total_instructions

    def top(self, n: int) -> List[HotFunction]:
        return self.functions[:n]

    def format(self, top_n: int = 15) -> str:
        insts = self.total_instructions
        usec = 1e6 * self.total_seconds / insts if insts else 0.0
        lines = [
            f"profiled {insts} simulated insts in "
            f"{self.total_seconds:.3f}s ({usec:.2f} us/inst under "
            f"cProfile)",
            "",
            f"{'ncalls':>9} {'tottime':>8} {'cumtime':>8}  function",
        ]
        for fn in self.top(top_n):
            lines.append(f"{fn.ncalls:>9d} {fn.tottime:>8.3f} "
                         f"{fn.cumtime:>8.3f}  {fn.name}")
        return "\n".join(lines)


def manifest_digest(manifest: Iterable[dict]) -> str:
    """SHA-256 over the canonical JSON of a runner's result manifest.

    Only the architected-outcome fields participate (wall-clock and
    cache-hit bookkeeping vary run to run); any change to a counter,
    cycle count, or IPC changes the digest.
    """
    canonical = [
        {field: entry[field] for field in _MANIFEST_FIELDS}
        for entry in manifest
    ]
    text = json.dumps(canonical, sort_keys=True)
    return hashlib.sha256(text.encode()).hexdigest()


def _grid(benchmarks: Sequence[str],
          configs: Sequence[ProcessorConfig]) -> List[Tuple[str,
                                                            ProcessorConfig]]:
    return [(b, c) for b in benchmarks for c in configs]


def measure_throughput(benchmarks: Sequence[str],
                       configs: Sequence[ProcessorConfig],
                       scale: int = 4000,
                       runner: Optional[ExperimentRunner] = None
                       ) -> ThroughputReport:
    """Time every grid cell, single-process and always cache-bypassed.

    Caching and worker pools are disabled by default so the numbers
    measure the simulator itself, not the engine's memoization.  When a
    caller supplies its own cache-enabled runner, the cache is bypassed
    for the duration of the timed loop (and restored afterwards): a
    cell served from ``.repro_cache/`` would otherwise report the wall
    time of a JSON read as simulated instructions per second.  The
    report asserts that zero timed cells were cache hits.
    """
    if runner is None:
        runner = ExperimentRunner(scale=scale, jobs=1, use_cache=False)
    samples = []
    manifest_start = len(runner.manifest)
    saved_cache = runner.cache
    runner.cache = None
    try:
        for benchmark, config in _grid(benchmarks, configs):
            start = time.perf_counter()
            result = runner.run(benchmark, config)
            wall = time.perf_counter() - start
            samples.append(ThroughputSample(
                benchmark, config.name, result.instructions,
                result.cycles, wall))
    finally:
        runner.cache = saved_cache
    timed = runner.manifest[manifest_start:]
    cache_hits = sum(1 for entry in timed if entry["cache_hit"])
    assert cache_hits == 0, (
        f"{cache_hits} timed cell(s) were served from the result "
        f"cache; throughput numbers would measure cache lookups")
    return ThroughputReport(samples, runner.scale,
                            manifest_digest(runner.manifest),
                            cache_hits=cache_hits)


class SamplingSample:
    """Sampled-vs-full comparison of one (benchmark, config) cell."""

    __slots__ = ("benchmark", "config_name", "total_instructions",
                 "full_ipc", "full_wall", "sampled_ipc", "sampled_ci",
                 "sampled_wall", "intervals")

    def __init__(self, benchmark: str, config_name: str,
                 total_instructions: int, full_ipc: float,
                 full_wall: float, sampled_ipc: float, sampled_ci: float,
                 sampled_wall: float, intervals: int):
        self.benchmark = benchmark
        self.config_name = config_name
        self.total_instructions = total_instructions
        self.full_ipc = full_ipc
        self.full_wall = full_wall
        self.sampled_ipc = sampled_ipc
        self.sampled_ci = sampled_ci
        self.sampled_wall = sampled_wall
        self.intervals = intervals

    @property
    def speedup(self) -> float:
        return self.full_wall / self.sampled_wall \
            if self.sampled_wall else 0.0

    @property
    def ipc_error(self) -> float:
        return abs(self.sampled_ipc - self.full_ipc)

    @property
    def within_ci(self) -> bool:
        """True iff the full-run IPC lies inside the sampled CI."""
        return self.ipc_error <= self.sampled_ci


class SamplingReport:
    """Aggregate of one sampled-vs-full validation sweep."""

    def __init__(self, samples: List[SamplingSample], scale: int,
                 warmup_insts: int, interval_insts: int):
        self.samples = samples
        self.scale = scale
        self.warmup_insts = warmup_insts
        self.interval_insts = interval_insts

    @property
    def all_within_ci(self) -> bool:
        return all(s.within_ci for s in self.samples)

    @property
    def min_speedup(self) -> float:
        return min((s.speedup for s in self.samples), default=0.0)

    def format(self) -> str:
        lines = [
            f"{'benchmark':<10} {'insts':>9} {'full IPC':>8} "
            f"{'sampled':>8} {'+/-CI':>7} {'err':>7} {'K':>3} "
            f"{'full(s)':>8} {'smpl(s)':>8} {'speedup':>8} {'ok':>3}",
        ]
        for s in self.samples:
            lines.append(
                f"{s.benchmark:<10} {s.total_instructions:>9d} "
                f"{s.full_ipc:>8.4f} {s.sampled_ipc:>8.4f} "
                f"{s.sampled_ci:>7.4f} {s.ipc_error:>7.4f} "
                f"{s.intervals:>3d} {s.full_wall:>8.2f} "
                f"{s.sampled_wall:>8.2f} {s.speedup:>7.1f}x "
                f"{'ok' if s.within_ci else 'MISS':>4}")
        lines += [
            "",
            f"warm-up {self.warmup_insts} + interval "
            f"{self.interval_insts} insts per window; min speedup "
            f"{self.min_speedup:.1f}x; "
            f"{'every' if self.all_within_ci else 'NOT every'} sampled "
            f"IPC within its reported CI of the full-run value",
        ]
        return "\n".join(lines)


def measure_sampling(benchmarks: Sequence[str], config: ProcessorConfig,
                     scale: int, intervals: int = 10,
                     warmup_insts: int = 1_000,
                     interval_insts: int = 5_000) -> SamplingReport:
    """Validate sampled mode against full detailed simulation.

    For each benchmark at ``scale``, runs the full detailed simulation
    and a sampled run (both timed, both uncached so wall times measure
    simulation), and reports per-benchmark speedup plus whether the
    sampled IPC's confidence interval covers the full-run IPC.
    """
    runner = ExperimentRunner(scale=scale, jobs=1, use_cache=False)
    samples = []
    for benchmark in benchmarks:
        start = time.perf_counter()
        sampled = runner.run_sampled(
            benchmark, config, intervals=intervals,
            warmup_insts=warmup_insts, interval_insts=interval_insts)
        sampled_wall = time.perf_counter() - start
        start = time.perf_counter()
        full = runner.run(benchmark, config)
        full_wall = time.perf_counter() - start
        info = sampled.sampling or {}
        samples.append(SamplingSample(
            benchmark, config.name,
            total_instructions=info.get("total_instructions",
                                        full.instructions),
            full_ipc=full.ipc, full_wall=full_wall,
            sampled_ipc=sampled.ipc,
            sampled_ci=info.get("ipc_ci95", 0.0),
            sampled_wall=sampled_wall,
            intervals=len(info.get("intervals", []))))
    return SamplingReport(samples, scale, warmup_insts, interval_insts)


class FastForwardSample:
    """Timing of one benchmark through both fast-forward engines."""

    __slots__ = ("benchmark", "warm", "instructions", "reference_wall",
                 "engine_wall", "bit_exact")

    def __init__(self, benchmark: str, warm: bool, instructions: int,
                 reference_wall: float, engine_wall: float,
                 bit_exact: bool):
        self.benchmark = benchmark
        self.warm = warm
        self.instructions = instructions
        self.reference_wall = reference_wall
        self.engine_wall = engine_wall
        self.bit_exact = bit_exact

    @property
    def speedup(self) -> float:
        return self.reference_wall / self.engine_wall \
            if self.engine_wall else 0.0

    @property
    def engine_insts_per_sec(self) -> float:
        return self.instructions / self.engine_wall \
            if self.engine_wall else 0.0

    @property
    def reference_insts_per_sec(self) -> float:
        return self.instructions / self.reference_wall \
            if self.reference_wall else 0.0


class FastForwardReport:
    """Aggregate of one batch-engine-vs-reference validation sweep."""

    def __init__(self, samples: List[FastForwardSample], scale: int):
        self.samples = samples
        self.scale = scale

    @property
    def all_bit_exact(self) -> bool:
        return all(s.bit_exact for s in self.samples)

    @property
    def min_speedup(self) -> float:
        return min((s.speedup for s in self.samples), default=0.0)

    def format(self) -> str:
        lines = [
            f"{'benchmark':<10} {'warm':>5} {'insts':>9} {'ref(s)':>8} "
            f"{'eng(s)':>8} {'ref Ki/s':>9} {'eng Ki/s':>9} "
            f"{'speedup':>8} {'exact':>5}",
        ]
        for s in self.samples:
            lines.append(
                f"{s.benchmark:<10} {'yes' if s.warm else 'no':>5} "
                f"{s.instructions:>9d} {s.reference_wall:>8.3f} "
                f"{s.engine_wall:>8.3f} "
                f"{s.reference_insts_per_sec / 1e3:>9.0f} "
                f"{s.engine_insts_per_sec / 1e3:>9.0f} "
                f"{s.speedup:>7.1f}x "
                f"{'ok' if s.bit_exact else 'DIFF':>5}")
        lines += [
            "",
            f"min speedup {self.min_speedup:.1f}x; "
            f"{'every' if self.all_bit_exact else 'NOT every'} cell "
            f"bit-exact vs the per-instruction reference engine",
        ]
        return "\n".join(lines)


def _fastforward_state(interp, bpred, hierarchy) -> tuple:
    """Full architected + warm state of one fast-forward pass."""
    return (list(interp.regs), interp.pc, interp.instructions_retired,
            interp.halted, interp.memory.digest(),
            bpred.export_state() if bpred is not None else None,
            hierarchy.export_state() if hierarchy is not None else None)


def measure_fastforward(benchmarks: Sequence[str], scale: int,
                        count: Optional[int] = None,
                        warm_modes: Sequence[bool] = (False, True),
                        limit: int = 5_000_000) -> FastForwardReport:
    """Validate the batch-dispatch fast-forward engine for speed and
    bit-exactness.

    For each benchmark at ``scale`` and each warm mode, runs ``count``
    instructions (default: to the halt, capped at ``limit``) through
    the per-instruction reference engine and the predecoded
    batch-dispatch engine, timing both, and compares the complete final
    state -- registers, pc, retire count, memory digest, and the warm
    bpred/cache capsules.  Predecode is primed outside the timed
    region: it is a one-time, content-cached cost shared by every
    engine over the program's lifetime.
    """
    from .branch.gshare import GsharePredictor
    from .isa.interp import Interpreter
    from .memory.cache import paper_hierarchy
    from .workloads import suites

    budget = limit if count is None else count
    samples = []
    for benchmark in benchmarks:
        program = suites.build(benchmark, scale)
        program.predecoded()
        for warm in warm_modes:
            reference = Interpreter(program)
            r_bpred = GsharePredictor() if warm else None
            r_hier = paper_hierarchy() if warm else None
            start = time.perf_counter()
            r_executed = reference.fast_forward_reference(
                budget, r_bpred, r_hier)
            reference_wall = time.perf_counter() - start

            engine = Interpreter(program)
            e_bpred = GsharePredictor() if warm else None
            e_hier = paper_hierarchy() if warm else None
            start = time.perf_counter()
            e_executed = engine.fast_forward(budget, e_bpred, e_hier)
            engine_wall = time.perf_counter() - start

            bit_exact = (
                e_executed == r_executed
                and _fastforward_state(engine, e_bpred, e_hier)
                == _fastforward_state(reference, r_bpred, r_hier))
            samples.append(FastForwardSample(
                benchmark, warm, e_executed,
                reference_wall, engine_wall, bit_exact))
    return FastForwardReport(samples, scale)


def profile_suite(benchmarks: Sequence[str],
                  configs: Sequence[ProcessorConfig],
                  scale: int = 4000,
                  runner: Optional[ExperimentRunner] = None
                  ) -> ProfileReport:
    """Run the grid under cProfile and rank functions by cumulative time."""
    if runner is None:
        runner = ExperimentRunner(scale=scale, jobs=1, use_cache=False)
    cells = _grid(benchmarks, configs)
    profile = cProfile.Profile()
    # Same cache bypass as measure_throughput: profiling a JSON read
    # says nothing about the simulator's hot functions.
    saved_cache = runner.cache
    runner.cache = None
    start = time.perf_counter()
    profile.enable()
    try:
        results = [runner.run(benchmark, config)
                   for benchmark, config in cells]
    finally:
        profile.disable()
        runner.cache = saved_cache
    total_seconds = time.perf_counter() - start
    total_instructions = sum(r.instructions for r in results)

    stats = pstats.Stats(profile)
    functions = []
    for (filename, lineno, funcname), (_, ncalls, tottime, cumtime, _) \
            in stats.stats.items():  # type: ignore[attr-defined]
        short = filename.rsplit("/", 1)[-1]
        functions.append(HotFunction(
            f"{short}:{lineno}({funcname})", ncalls, tottime, cumtime))
    functions.sort(key=lambda fn: fn.cumtime, reverse=True)
    return ProfileReport(functions, total_seconds, total_instructions)
