"""RISC-V conformance harness: real programs, every subsystem, one truth.

The standing check behind the ``riscv-conformance`` suite: every
committed RV32 program (``src/repro/workloads/riscv/*.hex``, loaded
through the :mod:`repro.isa.riscv` frontend) is executed on the in-order
interpreter oracle *and* on every configuration of the differential
matrix (one per registered memory subsystem), asserting that all of them
retire to the identical architectural state:

* **register digest** -- sha256 over the final architectural register
  file (:meth:`repro.pipeline.core.Core.architectural_registers` vs the
  interpreter's ``regs``);
* **memory digest** -- the content hash of the final memory image;
* **retire count** -- every run retires exactly the oracle trace length
  (the pipeline's built-in golden-trace validation already compares
  each retired value on the way).

A tier-1 test and a CI lane run this over the whole suite, so the
frontend is a conformance harness, not a one-off loader.
"""

from __future__ import annotations

import hashlib
import time
from typing import List, Optional, Sequence

from ..harness.configs import fuzz_config_matrix
from ..isa.interp import Interpreter
from ..obs.runrecord import SCHEMA_VERSION, RunRecord
from ..pipeline.config import ProcessorConfig
from ..pipeline.processor import Processor, SimulationError
from ..workloads import suites

#: ``kind`` discriminator for conformance report envelopes.
KIND_CONFORMANCE = "conformance"

#: Architectural execution budget per conformance program.
TRACE_LIMIT = 2_000_000


def register_digest(regs: Sequence[int]) -> str:
    """sha256 hex over an architectural register file."""
    hasher = hashlib.sha256()
    for value in regs:
        hasher.update(value.to_bytes(8, "little"))
    return hasher.hexdigest()


class ConformanceCell:
    """One (program, config) comparison against the oracle."""

    __slots__ = ("benchmark", "config_name", "ok", "detail", "cycles",
                 "instructions", "ipc", "register_digest", "memory_digest")

    def __init__(self, benchmark: str, config_name: str, ok: bool,
                 detail: str = "", cycles: int = 0, instructions: int = 0,
                 ipc: float = 0.0, register_digest: str = "",
                 memory_digest: str = ""):
        self.benchmark = benchmark
        self.config_name = config_name
        self.ok = ok
        self.detail = detail
        self.cycles = cycles
        self.instructions = instructions
        self.ipc = ipc
        self.register_digest = register_digest
        self.memory_digest = memory_digest

    def to_dict(self) -> dict:
        return {"benchmark": self.benchmark,
                "config_name": self.config_name,
                "ok": self.ok, "detail": self.detail,
                "cycles": self.cycles,
                "instructions": self.instructions,
                "ipc": self.ipc,
                "register_digest": self.register_digest,
                "memory_digest": self.memory_digest}


class ConformanceReport:
    """Outcome of one conformance sweep (suite x config matrix)."""

    def __init__(self, suite_name: str, config_names: List[str]):
        self.suite_name = suite_name
        self.config_names = config_names
        self.cells: List[ConformanceCell] = []
        self.oracle: dict = {}  # benchmark -> digests + trace length
        self.elapsed = 0.0

    @property
    def ok(self) -> bool:
        return all(cell.ok for cell in self.cells)

    @property
    def failures(self) -> List[ConformanceCell]:
        return [cell for cell in self.cells if not cell.ok]

    def geo_mean_ipc(self) -> dict:
        """Per-config geometric-mean IPC over the suite's programs."""
        from ..harness.experiment import geometric_mean
        means = {}
        for name in self.config_names:
            ipcs = [cell.ipc for cell in self.cells
                    if cell.config_name == name and cell.ok]
            means[name] = geometric_mean(ipcs) if ipcs else 0.0
        return means

    def to_dict(self) -> dict:
        return {
            "schema_version": SCHEMA_VERSION,
            "kind": KIND_CONFORMANCE,
            "suite": self.suite_name,
            "configurations": list(self.config_names),
            "ok": self.ok,
            "elapsed": self.elapsed,
            "oracle": dict(self.oracle),
            "geo_mean_ipc": self.geo_mean_ipc(),
            "cells": [cell.to_dict() for cell in self.cells],
        }

    def format(self) -> str:
        lines = [
            f"riscv conformance: suite {self.suite_name!r}, "
            f"{len(self.oracle)} programs x {len(self.config_names)} "
            f"configurations in {self.elapsed:.1f}s",
        ]
        for name, mean in sorted(self.geo_mean_ipc().items()):
            lines.append(f"  {name}: geo-mean IPC {mean:.3f}")
        if self.ok:
            lines.append("all register/memory digests identical to the "
                         "interpreter oracle")
        else:
            lines.append(f"{len(self.failures)} NONCONFORMING CELL(S):")
            for cell in self.failures:
                lines.append(f"  {cell.benchmark} @ {cell.config_name}: "
                             f"{cell.detail}")
        return "\n".join(lines)


def conformance_records(report: ConformanceReport) -> List[RunRecord]:
    """Per-cell RunRecords (manifest form) for the reporting pipeline."""
    records = []
    for cell in report.cells:
        if not cell.ok:
            continue
        records.append(RunRecord(
            benchmark=cell.benchmark, config_name=cell.config_name,
            config={}, scale=0, key="", cycles=cell.cycles,
            instructions=cell.instructions, ipc=cell.ipc, counters={}))
    return records


def run_conformance(suite_name: str = "riscv-conformance",
                    configs: Optional[Sequence[ProcessorConfig]] = None,
                    benchmarks: Optional[Sequence[str]] = None,
                    max_instructions: int = TRACE_LIMIT
                    ) -> ConformanceReport:
    """Run the conformance sweep.

    ``configs`` defaults to the differential fuzz matrix, which is
    guaranteed (and asserted by the fuzzer) to cover every registered
    memory subsystem; ``benchmarks`` defaults to the declared suite
    membership -- no cherry-picking.
    """
    if configs is None:
        configs = fuzz_config_matrix()
    if benchmarks is None:
        benchmarks = suites.suite(suite_name)
    report = ConformanceReport(suite_name, [c.name for c in configs])
    started = time.perf_counter()
    for benchmark in benchmarks:
        program = suites.build(benchmark, scale=0)
        interp = Interpreter(program)
        trace = interp.run(max_instructions)
        oracle_regs = register_digest(interp.regs)
        oracle_mem = interp.memory.digest()
        report.oracle[benchmark] = {
            "instructions": len(trace),
            "register_digest": oracle_regs,
            "memory_digest": oracle_mem,
        }
        for config in configs:
            try:
                core = Processor(program, config, trace=trace)
                result = core.run()
            except SimulationError as exc:
                report.cells.append(ConformanceCell(
                    benchmark, config.name, ok=False,
                    detail=f"trace divergence: {exc}"))
                continue
            regs = register_digest(core.architectural_registers())
            mem = core.memory.digest()
            problems = []
            if regs != oracle_regs:
                problems.append("final registers differ from oracle")
            if mem != oracle_mem:
                problems.append("final memory image differs from oracle")
            if result.instructions != len(trace):
                problems.append(
                    f"retired {result.instructions} instructions, "
                    f"oracle trace has {len(trace)}")
            report.cells.append(ConformanceCell(
                benchmark, config.name, ok=not problems,
                detail="; ".join(problems), cycles=result.cycles,
                instructions=result.instructions,
                ipc=result.instructions / result.cycles
                if result.cycles else 0.0,
                register_digest=regs, memory_digest=mem))
    report.elapsed = time.perf_counter() - started
    return report
