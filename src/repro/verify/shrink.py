"""Delta-debugging minimizer for fuzzer failures.

Given a program on which the differential fuzzer found a mismatch, the
shrinker reduces it to a (locally) minimal instruction sequence that
still reproduces the *same* failure -- same mismatch ``kind`` on the
same configuration.  Minimal cases turn a 400-instruction random blob
into the five-line store/load interleaving a human can actually debug,
and they are what gets committed to the regression corpus.

The reduction operates on the textual assembly emitted by
:meth:`repro.isa.program.Program.to_asm`, whose lines round-trip through
:func:`repro.isa.parser.parse_asm`.  Working at line granularity keeps
the representation trivially splicable; branch targets are absolute byte
addresses, so removing a line shifts the meaning of everything after it
-- which is fine, because every candidate is re-assembled and re-judged
from scratch (a candidate that no longer assembles, no longer halts, or
fails *differently* is simply rejected).

The algorithm is the classic ``ddmin``: try removing chunks of
decreasing size (half, quarter, ... single lines) and restart whenever a
removal keeps the failure alive, until no single line can be removed.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from ..isa.assembler import AssemblyError
from ..isa.interp import ExecutionLimitExceeded, Interpreter
from ..isa.parser import parse_asm
from ..isa.program import Program

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .fuzzer import DifferentialFuzzer, FuzzMismatch

#: Hard cap on predicate evaluations per shrink, so a pathological case
#: cannot stall a campaign (each evaluation simulates the candidate on
#: the full configuration matrix).
MAX_PREDICATE_CALLS = 400

#: Tighter architectural budget for shrink candidates: a mutated
#: program that spins for a long time is not a useful minimal case.
SHRINK_TRACE_LIMIT = 200_000


def _assemble(lines: List[str]) -> Optional[Program]:
    """Parse candidate lines back into a program, or ``None`` if the
    splice broke assembly (e.g. removed a ``.data`` continuation)."""
    text = "\n".join(lines)
    if not text.strip():
        return None
    try:
        return parse_asm(text, name="shrink-candidate")
    except (AssemblyError, ValueError):
        return None


def _halts(program: Program) -> bool:
    try:
        Interpreter(program).run(SHRINK_TRACE_LIMIT)
    except ExecutionLimitExceeded:
        return False
    return True


class _Reducer:
    """One shrink run: predicate state + ddmin loop."""

    def __init__(self, fuzzer: "DifferentialFuzzer",
                 failure: "FuzzMismatch"):
        self.fuzzer = fuzzer
        self.kind = failure.kind
        self.config_name = failure.config_name
        self.calls = 0

    def reproduces(self, program: Program) -> bool:
        """True iff the candidate still triggers the original mismatch
        (same kind, same configuration) -- and is well-formed enough to
        be worth keeping (assembles, halts on the oracle)."""
        if self.calls >= MAX_PREDICATE_CALLS:
            return False
        self.calls += 1
        if not _halts(program):
            return False
        for mismatch in self.fuzzer.check_program(program):
            if mismatch.kind == self.kind and \
                    mismatch.config_name == self.config_name:
                return True
        return False

    def reduce_lines(self, lines: List[str]) -> List[str]:
        """ddmin over assembly lines; returns a 1-minimal line list."""
        chunk = max(1, len(lines) // 2)
        while chunk >= 1:
            removed_any = True
            while removed_any and len(lines) > 1:
                removed_any = False
                start = 0
                while start < len(lines):
                    if self.calls >= MAX_PREDICATE_CALLS:
                        return lines
                    candidate_lines = (lines[:start]
                                       + lines[start + chunk:])
                    candidate = _assemble(candidate_lines)
                    if candidate is not None and \
                            self.reproduces(candidate):
                        lines = candidate_lines
                        removed_any = True
                        # do not advance: the next chunk now sits at
                        # the same index
                    else:
                        start += chunk
            if chunk == 1:
                break
            chunk = max(1, chunk // 2)
        return lines


def shrink_failure(fuzzer: "DifferentialFuzzer", program: Program,
                   failure: "FuzzMismatch") -> Program:
    """Reduce ``program`` to a minimal one reproducing ``failure``.

    Returns the original program untouched when the failure does not
    reproduce from the round-tripped assembly (e.g. an ``oracle-error``
    about non-termination, which :func:`_halts` deliberately filters) or
    when nothing can be removed.
    """
    reducer = _Reducer(fuzzer, failure)
    lines = program.to_asm().splitlines()
    baseline = _assemble(lines)
    if baseline is None or not reducer.reproduces(baseline):
        return program
    reduced = reducer.reduce_lines(lines)
    final = _assemble(reduced)
    return final if final is not None else program
