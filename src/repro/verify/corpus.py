"""Replayable crash-case corpus.

Every failure the fuzzer minimizes is persisted as one JSON document --
the program *text* (assembly, human-readable in review diffs), the
configuration name it failed on, the mismatch kind, and provenance
(generator seed, free-form notes).  A case is therefore self-contained:
replaying it needs no generator, no seed reproduction, just
``parse_asm`` and the named configuration.

Committed cases under ``corpus/`` double as regression tests:
``tests/test_corpus.py`` replays each one through the differential
check and asserts it now passes, and ``repro fuzz --replay`` does the
same from the command line (CI runs it in the tier-1 lane).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Union

from ..isa.parser import parse_asm
from ..isa.program import Program

#: Bump on any incompatible change to the case document shape.
CASE_SCHEMA_VERSION = 1


class CorpusError(ValueError):
    """A corpus document is malformed or from an unsupported schema."""


class CrashCase:
    """One minimized, replayable fuzzer failure."""

    def __init__(self, seed: int, kind: str, config_name: str,
                 detail: str, program_asm: str, note: str = ""):
        self.seed = seed
        self.kind = kind
        self.config_name = config_name
        self.detail = detail
        self.program_asm = program_asm
        self.note = note

    # -- identity --------------------------------------------------------------

    @property
    def name(self) -> str:
        """Stable filename stem: seed + kind + config."""
        kind = self.kind.replace(":", "-")
        config = self.config_name or "cross-config"
        return f"seed{self.seed}-{kind}-{config}"

    def program(self) -> Program:
        """Assemble the stored program text."""
        return parse_asm(self.program_asm, name=self.name)

    # -- serialization ---------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "case_schema_version": CASE_SCHEMA_VERSION,
            "seed": self.seed,
            "kind": self.kind,
            "config_name": self.config_name,
            "detail": self.detail,
            "program_asm": self.program_asm,
            "note": self.note,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "CrashCase":
        if not isinstance(payload, dict):
            raise CorpusError(f"corpus case must be a dict, "
                              f"got {type(payload).__name__}")
        version = payload.get("case_schema_version")
        if version != CASE_SCHEMA_VERSION:
            raise CorpusError(
                f"unsupported case_schema_version {version!r} "
                f"(this build reads version {CASE_SCHEMA_VERSION})")
        for field, kind in (("seed", int), ("kind", str),
                            ("config_name", str), ("detail", str),
                            ("program_asm", str)):
            if not isinstance(payload.get(field), kind):
                raise CorpusError(f"corpus case field {field!r} must be "
                                  f"a {kind.__name__}")
        return cls(seed=payload["seed"], kind=payload["kind"],
                   config_name=payload["config_name"],
                   detail=payload["detail"],
                   program_asm=payload["program_asm"],
                   note=payload.get("note", ""))

    def save(self, corpus_dir: Union[str, Path]) -> Path:
        """Write the case into ``corpus_dir`` (created if missing).

        An existing file with the same name is suffixed ``-2``, ``-3``,
        ... rather than overwritten, so repeated campaigns never clobber
        earlier evidence."""
        directory = Path(corpus_dir)
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"{self.name}.json"
        suffix = 1
        while path.exists():
            suffix += 1
            path = directory / f"{self.name}-{suffix}.json"
        path.write_text(json.dumps(self.to_dict(), indent=2,
                                   sort_keys=True) + "\n")
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "CrashCase":
        raw = Path(path).read_text()
        try:
            payload = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise CorpusError(f"{path}: not valid JSON: {exc}") from exc
        try:
            return cls.from_dict(payload)
        except CorpusError as exc:
            raise CorpusError(f"{path}: {exc}") from exc

    def __repr__(self) -> str:
        return (f"CrashCase({self.name}: {self.detail!r})")


def load_corpus(corpus_dir: Union[str, Path]) -> List[CrashCase]:
    """Load every ``*.json`` case under ``corpus_dir``, sorted by name.

    A missing directory is an empty corpus, not an error (fresh clones
    have no local crash directory)."""
    directory = Path(corpus_dir)
    if not directory.is_dir():
        return []
    return [CrashCase.load(path)
            for path in sorted(directory.glob("*.json"))]


def replay_case(case: CrashCase, fuzzer=None) -> List:
    """Differentially re-check one corpus case; returns the (hopefully
    empty) mismatch list.  Builds a default fuzzer when none is given."""
    if fuzzer is None:
        from .fuzzer import DifferentialFuzzer
        fuzzer = DifferentialFuzzer()
    return fuzzer.check_program(case.program(), seed=case.seed)


def replay_corpus(corpus_dir: Union[str, Path],
                  fuzzer=None) -> "ReplayReport":
    """Replay every case in ``corpus_dir``; aggregate the outcomes."""
    if fuzzer is None:
        from .fuzzer import DifferentialFuzzer
        fuzzer = DifferentialFuzzer()
    report = ReplayReport(str(corpus_dir))
    for case in load_corpus(corpus_dir):
        mismatches = replay_case(case, fuzzer)
        report.cases.append((case, mismatches))
    return report


class ReplayReport:
    """Outcome of replaying a corpus directory."""

    def __init__(self, corpus_dir: str):
        self.corpus_dir = corpus_dir
        self.cases: List = []

    @property
    def ok(self) -> bool:
        return all(not mismatches for _, mismatches in self.cases)

    def to_dict(self) -> dict:
        return {
            "corpus_dir": self.corpus_dir,
            "cases": [{
                "name": case.name,
                "kind": case.kind,
                "config_name": case.config_name,
                "ok": not mismatches,
                "mismatches": [m.to_dict() for m in mismatches],
            } for case, mismatches in self.cases],
            "ok": self.ok,
        }

    def format(self) -> str:
        lines = [f"corpus replay: {len(self.cases)} case(s) from "
                 f"{self.corpus_dir}"]
        for case, mismatches in self.cases:
            status = "ok" if not mismatches else "MISMATCH"
            lines.append(f"  {case.name}: {status}")
            for mismatch in mismatches:
                lines.append(f"    [{mismatch.kind}] "
                             f"{mismatch.config_name}: {mismatch.detail}")
        if not self.cases:
            lines.append("  (empty corpus)")
        return "\n".join(lines)
