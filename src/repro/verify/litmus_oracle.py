"""Operational-model oracle for litmus tests -- the second verification
backend, next to the differential fuzzer.

The fuzzer checks single-core configurations against the in-order
interpreter; that oracle says nothing about *multicore* runs, where
cross-core stores legitimately change what loads return.  This module
supplies the missing reference: a small operational memory model whose
set of **allowed outcomes** for a litmus test must cover every outcome
the simulator can produce.

The model (matching the simulated machine's shared-memory semantics):

* each thread **commits** its operations strictly in program order;
* a **store** becomes globally visible (writes the single shared image)
  at its commit -- exactly the simulator's store-retirement coherence
  point;
* a **load** may *pre-execute* at any point up to its commit, reading
  the shared image at that moment -- modelling out-of-order speculative
  load execution with no cross-core snooping.  If a program-order
  earlier *uncommitted* store of the same thread targets the same
  location, the load forwards that store's value instead (the machine's
  SFC/MDT/LSQ machinery squashes-and-replays any load that slipped past
  a same-core older store, so a load can never retire having missed
  one);
* a load not pre-executed by its commit simply reads the image at
  commit time.

:func:`allowed_outcomes` enumerates every interleaving of commit and
pre-execute events by exhaustive memoized DFS -- litmus tests are a
handful of operations, so the state space is tiny.  The oracle is sound
in one direction by construction: it may allow outcomes the finite
machine happens never to exhibit, but an *observed* outcome it rejects
is a memory-model bug in the simulator (or the oracle).  For the
shipped tests the interesting verdicts are: MP ``(1, 0)`` allowed (load
reordering), SB ``(0, 0)`` allowed (store buffering), LB ``(1, 1)``
**forbidden** (a causal cycle neither the model nor the in-order-retire
machine can produce).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Tuple

from ..harness.configs import baseline_sfc_mdt_config, litmus_system_config
from ..obs.runrecord import KIND_LITMUS, SCHEMA_VERSION
from ..pipeline.config import CoreConfig
from ..pipeline.system import System, SystemResult
from ..workloads.litmus import LD, LITMUS_TESTS, ST, LitmusTest, get_litmus


class LitmusOracle:
    """Exhaustive enumerator of outcomes allowed by the operational
    model."""

    name = "operational"

    def __init__(self):
        self._cache: Dict[str, FrozenSet[Tuple[int, ...]]] = {}

    def allowed_outcomes(self, test: LitmusTest
                         ) -> FrozenSet[Tuple[int, ...]]:
        """Every outcome tuple the operational model can produce."""
        cached = self._cache.get(test.name)
        if cached is not None:
            return cached
        outcomes = frozenset(_enumerate(test))
        self._cache[test.name] = outcomes
        return outcomes

    def allowed(self, test: LitmusTest, outcome: Tuple[int, ...]) -> bool:
        """Is ``outcome`` (an observed load-value tuple) allowed?"""
        return tuple(outcome) in self.allowed_outcomes(test)

    def explain(self, test: LitmusTest, outcome: Tuple[int, ...]) -> str:
        verdict = "allowed" if self.allowed(test, outcome) else "FORBIDDEN"
        universe = sorted(self.allowed_outcomes(test))
        return (f"{test.name}: outcome {tuple(outcome)} is {verdict}; "
                f"model allows {universe}")


def _enumerate(test: LitmusTest) -> List[Tuple[int, ...]]:
    """DFS over every interleaving of commit / pre-execute events."""
    threads = test.threads
    slots = test.load_slots()
    init_memory = tuple(sorted({op[1] for thread in threads
                                for op in thread}))
    outcomes = set()
    seen = set()

    def dfs(pcs, memory, pre, observed):
        # pcs: per-thread commit pointer; memory: loc -> value;
        # pre: (tid, op_index) -> captured value for pre-executed,
        # uncommitted loads; observed: (tid, op_index) -> committed value.
        key = (pcs, tuple(sorted(memory.items())),
               tuple(sorted(pre.items())),
               tuple(sorted(observed.items())))
        if key in seen:
            return
        seen.add(key)
        if all(pc == len(threads[tid]) for tid, pc in enumerate(pcs)):
            out = []
            for tid, slot in slots:
                index = _load_index(threads[tid], slot)
                out.append(observed[(tid, index)])
            outcomes.add(tuple(out))
            return
        for tid, thread in enumerate(threads):
            pc = pcs[tid]
            # Event 1: commit the next op of thread `tid`.
            if pc < len(thread):
                op = thread[pc]
                next_pcs = pcs[:tid] + (pc + 1,) + pcs[tid + 1:]
                if op[0] == ST:
                    dfs(next_pcs, {**memory, op[1]: op[2]}, pre, observed)
                else:
                    if (tid, pc) in pre:
                        next_pre = dict(pre)
                        value = next_pre.pop((tid, pc))
                    else:
                        # Every program-order earlier same-thread store
                        # has committed, so the image already holds the
                        # forwardable value (or a later overwrite by
                        # another thread -- equally legal).
                        next_pre = pre
                        value = memory[op[1]]
                    dfs(next_pcs, memory, next_pre,
                        {**observed, (tid, pc): value})
            # Event 2: pre-execute any future load of thread `tid`.
            for index in range(pc, len(thread)):
                op = thread[index]
                if op[0] != LD or (tid, index) in pre:
                    continue
                forwarded = _forwarding_store(thread, index, op[1], pc)
                value = forwarded if forwarded is not None \
                    else memory[op[1]]
                dfs(pcs, memory, {**pre, (tid, index): value}, observed)

    dfs(tuple(0 for _ in threads), {loc: 0 for loc in init_memory},
        {}, {})
    return sorted(outcomes)


def _load_index(thread, slot: int) -> int:
    """Op index of the ``slot``-th load in a thread."""
    count = 0
    for index, op in enumerate(thread):
        if op[0] == LD:
            if count == slot:
                return index
            count += 1
    raise IndexError(f"no load slot {slot} in {thread!r}")


def _forwarding_store(thread, load_index: int, loc: str,
                      pc: int) -> Optional[int]:
    """Value of the nearest program-order earlier *uncommitted* store to
    ``loc``, if that is what the load must forward from."""
    for index in range(load_index - 1, -1, -1):
        op = thread[index]
        if op[0] == ST and op[1] == loc:
            # Committed earlier stores are already in the image; only an
            # in-flight one forces forwarding of a specific value.
            return op[2] if index >= pc else None
    return None


# --------------------------------------------------------------------- runner


class LitmusResult:
    """One litmus test's simulated outcome plus the oracle verdict."""

    def __init__(self, test: LitmusTest, config_name: str,
                 outcome: Tuple[int, ...], allowed: bool,
                 allowed_outcomes: FrozenSet[Tuple[int, ...]],
                 system_result: Optional[SystemResult] = None):
        self.test_name = test.name
        self.description = test.description
        self.config_name = config_name
        self.outcome = tuple(outcome)
        self.allowed = allowed
        self.allowed_outcomes = allowed_outcomes
        self.system_result = system_result

    def to_dict(self) -> dict:
        return {
            "test": self.test_name,
            "config": self.config_name,
            "outcome": list(self.outcome),
            "allowed": self.allowed,
            "allowed_outcomes": sorted(
                list(outcome) for outcome in self.allowed_outcomes),
        }


class LitmusReport:
    """Outcome of a litmus campaign across tests (and configs)."""

    def __init__(self, results: List[LitmusResult]):
        self.results = results

    @property
    def violations(self) -> List[LitmusResult]:
        return [result for result in self.results if not result.allowed]

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> dict:
        return {
            "schema_version": SCHEMA_VERSION,
            "kind": KIND_LITMUS,
            "ok": self.ok,
            "runs": len(self.results),
            "violations": len(self.violations),
            "results": [result.to_dict() for result in self.results],
        }

    def format(self) -> str:
        lines = ["litmus campaign: "
                 f"{len(self.results)} run(s), "
                 f"{len(self.violations)} violation(s)"]
        for result in self.results:
            verdict = "ok " if result.allowed else "VIOLATION"
            lines.append(
                f"  [{verdict}] {result.test_name:<4} on "
                f"{result.config_name}: observed {result.outcome}, "
                f"model allows "
                f"{sorted(result.allowed_outcomes)}")
        return "\n".join(lines)


def run_litmus_test(test, core_config: Optional[CoreConfig] = None,
                    oracle: Optional[LitmusOracle] = None) -> LitmusResult:
    """Run one litmus test end-to-end on the simulated machine (shared
    memory mode, one core per thread) and judge the observed outcome."""
    if not isinstance(test, LitmusTest):
        test = get_litmus(test)
    core = core_config if core_config is not None \
        else baseline_sfc_mdt_config()
    config = litmus_system_config(core=core, cores=test.cores)
    system = System(test.programs(), config)
    system_result = system.run()
    outcome = test.outcome(system.shared_memory)
    oracle = oracle if oracle is not None else LitmusOracle()
    return LitmusResult(test, core.name, outcome,
                        oracle.allowed(test, outcome),
                        oracle.allowed_outcomes(test), system_result)


def run_litmus_suite(tests=None, core_configs=None) -> LitmusReport:
    """Run a litmus campaign: every test on every core config."""
    if tests is None:
        tests = [LITMUS_TESTS[name] for name in sorted(LITMUS_TESTS)]
    else:
        tests = [test if isinstance(test, LitmusTest) else get_litmus(test)
                 for test in tests]
    if core_configs is None:
        core_configs = [baseline_sfc_mdt_config()]
    oracle = LitmusOracle()
    results = [run_litmus_test(test, core, oracle)
               for core in core_configs for test in tests]
    return LitmusReport(results)
