"""Differential fuzzer: cross-check every memory subsystem on random
programs against the in-order interpreter oracle.

The paper's correctness claim is differential at its core: the
address-indexed SFC/MDT/store-FIFO pipeline must retire *exactly* the
architectural trace that the associative-LSQ baseline and the in-order
interpreter produce, for any program.  The fuzzer industrialises that
claim: each iteration generates one adversarial program
(:class:`~repro.workloads.randprog.FuzzProgramBuilder`), executes it on
the interpreter to obtain the golden trace and final memory image, then
runs it under every configuration of the differential matrix and checks

* **trace equivalence** -- the pipeline's built-in golden-trace
  validation (a divergence raises ``SimulationError``);
* **final memory image** -- the architectural memory after the run must
  hash identically to the interpreter's;
* **retire counts** -- every configuration retires exactly the trace's
  instruction/load/store counts;
* **determinism** -- re-running a configuration reproduces cycles and
  every counter bit-exactly;
* **metamorphic counter invariants** -- e.g. the non-enforcing
  (``NOT_ENF``) design must detect at least as many true-dependence
  violations as the enforcing design whose predictor stalls the
  offending loads, and no run may flush more violations than it
  detects.

A failing iteration is reduced by :mod:`repro.verify.shrink` to a
minimal instruction sequence and written into a ``corpus/`` directory as
a replayable JSON case (:mod:`repro.verify.corpus`).
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Sequence

from ..core import registry
from ..harness.configs import fuzz_config_matrix
from ..isa.instructions import LOAD_OPS
from ..isa.interp import ExecutionLimitExceeded, Interpreter
from ..isa.program import Program
from ..obs.runrecord import KIND_FUZZ, SCHEMA_VERSION
from ..pipeline.config import ProcessorConfig
from ..pipeline.processor import Processor, SimulationError
from . import frontends

#: Architectural execution budget per generated program.
TRACE_LIMIT = 500_000

#: Counters whose values must be identical across every configuration
#: (they count architectural events, not microarchitectural ones).
_ARCHITECTURAL_COUNTERS = ("retired_loads", "retired_stores")


class FuzzMismatch:
    """One divergence found by the fuzzer.

    ``kind`` is a short machine-readable discriminator
    (``trace-divergence``, ``memory-image``, ``retire-count``,
    ``nondeterminism``, ``oracle-error``, ``invariant:<name>``);
    ``config_name`` is the configuration that failed (empty for
    cross-configuration invariants); ``detail`` is human-readable.
    """

    __slots__ = ("seed", "kind", "config_name", "detail")

    def __init__(self, seed: int, kind: str, config_name: str,
                 detail: str):
        self.seed = seed
        self.kind = kind
        self.config_name = config_name
        self.detail = detail

    def to_dict(self) -> dict:
        return {"seed": self.seed, "kind": self.kind,
                "config_name": self.config_name, "detail": self.detail}

    def __repr__(self) -> str:
        return (f"FuzzMismatch(seed={self.seed}, kind={self.kind!r}, "
                f"config={self.config_name!r}: {self.detail})")


class FuzzReport:
    """Outcome of one fuzz campaign (schema-versioned summary record)."""

    def __init__(self, seed: int, config_names: List[str]):
        self.seed = seed
        self.config_names = config_names
        self.iterations = 0
        self.instructions = 0
        self.elapsed = 0.0
        self.failures: List[FuzzMismatch] = []
        self.corpus_paths: List[str] = []

    @property
    def ok(self) -> bool:
        return not self.failures

    def to_dict(self) -> dict:
        return {
            "schema_version": SCHEMA_VERSION,
            "kind": KIND_FUZZ,
            "seed": self.seed,
            "configurations": list(self.config_names),
            "iterations": self.iterations,
            "instructions": self.instructions,
            "elapsed": self.elapsed,
            "ok": self.ok,
            "failures": [f.to_dict() for f in self.failures],
            "corpus_cases": list(self.corpus_paths),
        }

    def format(self) -> str:
        lines = [
            f"differential fuzz: {self.iterations} programs "
            f"({self.instructions} retired instructions) x "
            f"{len(self.config_names)} configurations "
            f"in {self.elapsed:.1f}s",
            "configurations: " + ", ".join(self.config_names),
        ]
        if self.ok:
            lines.append("no mismatches")
        else:
            lines.append(f"{len(self.failures)} MISMATCH(ES):")
            for failure in self.failures:
                lines.append(f"  seed {failure.seed} "
                             f"[{failure.kind}] {failure.config_name}: "
                             f"{failure.detail}")
            for path in self.corpus_paths:
                lines.append(f"  minimized case written: {path}")
        return "\n".join(lines)


def _counters_subset(result) -> Dict[str, float]:
    """Copy of a SimResult's counters for bit-exact comparison."""
    return dict(result.counters.as_dict())


class DifferentialFuzzer:
    """Drives fuzz campaigns over a configuration matrix."""

    def __init__(self, configs: Optional[Sequence[ProcessorConfig]] = None,
                 builder: Optional[Callable[[int], Program]] = None,
                 max_instructions: int = TRACE_LIMIT,
                 check_determinism: bool = True):
        if builder is None:
            # The default builder round-robins across every registered
            # program frontend (native generator, RV32 translator, ...),
            # mirroring the subsystem-coverage rule below: a frontend
            # that exists but is not fuzzed is a tier-1 failure.
            builder = frontends.interleaved_builder()
            uncovered = frontends.missing_coverage(
                builder.frontend_names)
            if uncovered:
                raise ValueError(
                    f"default fuzz builder covers no program for "
                    f"registered frontend(s) {', '.join(uncovered)}")
        if configs is None:
            configs = fuzz_config_matrix()
            # The default matrix must exercise every registered
            # subsystem; an explicit config list is the caller's choice.
            uncovered = registry.missing_coverage(
                config.subsystem for config in configs)
            if uncovered:
                raise ValueError(
                    f"fuzz matrix covers no configuration for registered "
                    f"subsystem(s) {', '.join(uncovered)}; extend "
                    f"repro.harness.configs.fuzz_config_matrix or pass "
                    f"an explicit config list")
        names = [config.name for config in configs]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate configuration names: {names}")
        self.configs = list(configs)
        self.builder = builder
        self.max_instructions = max_instructions
        self.check_determinism = check_determinism

    # ------------------------------------------------------------ one seed

    def check_program(self, program: Program,
                      seed: int = -1) -> List[FuzzMismatch]:
        """Run one program through the full differential check."""
        mismatches: List[FuzzMismatch] = []
        try:
            interp = Interpreter(program)
            trace = interp.run(self.max_instructions)
        except ExecutionLimitExceeded as exc:
            return [FuzzMismatch(seed, "oracle-error", "",
                                 f"interpreter did not halt: {exc}")]
        oracle_digest = interp.memory.digest()
        oracle_loads = sum(1 for r in trace if r.op in LOAD_OPS)
        oracle_stores = sum(1 for r in trace if r.store_addr is not None)

        results = {}
        for config in self.configs:
            try:
                processor = Processor(program, config, trace=trace)
                result = processor.run()
            except SimulationError as exc:
                mismatches.append(FuzzMismatch(
                    seed, "trace-divergence", config.name, str(exc)))
                continue
            if processor.memory.digest() != oracle_digest:
                mismatches.append(FuzzMismatch(
                    seed, "memory-image", config.name,
                    "final architectural memory differs from the "
                    "interpreter oracle"))
            if result.instructions != len(trace):
                mismatches.append(FuzzMismatch(
                    seed, "retire-count", config.name,
                    f"retired {result.instructions} instructions, "
                    f"oracle trace has {len(trace)}"))
            counters = _counters_subset(result)
            if counters.get("retired_loads", 0) != oracle_loads or \
                    counters.get("retired_stores", 0) != oracle_stores:
                mismatches.append(FuzzMismatch(
                    seed, "retire-count", config.name,
                    f"retired {counters.get('retired_loads', 0)} loads/"
                    f"{counters.get('retired_stores', 0)} stores, oracle "
                    f"has {oracle_loads}/{oracle_stores}"))
            if self.check_determinism:
                rerun = Processor(program, config, trace=trace).run()
                if rerun.cycles != result.cycles or \
                        _counters_subset(rerun) != counters:
                    mismatches.append(FuzzMismatch(
                        seed, "nondeterminism", config.name,
                        f"rerun produced {rerun.cycles} cycles vs "
                        f"{result.cycles}, or differing counters"))
            results[config.name] = result

        mismatches.extend(self._cross_config_invariants(seed, results))
        return mismatches

    def _cross_config_invariants(self, seed: int,
                                 results) -> List[FuzzMismatch]:
        """Metamorphic invariants over the per-config counter records."""
        mismatches: List[FuzzMismatch] = []
        for name in _ARCHITECTURAL_COUNTERS:
            values = {config_name: result.counters.get(name)
                      for config_name, result in results.items()}
            if len(set(values.values())) > 1:
                mismatches.append(FuzzMismatch(
                    seed, f"invariant:{name}", "",
                    f"architectural counter differs across "
                    f"configurations: {values}"))
        for config_name, result in results.items():
            detected = (result.counters.get("mdt_true_violations")
                        + result.counters.get("mdt_anti_violations")
                        + result.counters.get("mdt_output_violations")
                        + result.counters.get("mdt_true_violations_at_retire")
                        + result.counters.get("lsq_true_violations")
                        + result.counters.get("retire_replay_violations"))
            flushed = (result.counters.get("violation_flushes_true")
                       + result.counters.get("violation_flushes_anti")
                       + result.counters.get("violation_flushes_output"))
            if flushed > detected:
                mismatches.append(FuzzMismatch(
                    seed, "invariant:flushes_le_detected", config_name,
                    f"{flushed} violation flushes but only {detected} "
                    f"violations detected"))
        return mismatches

    def check_seed(self, seed: int) -> List[FuzzMismatch]:
        """Generate the seed's program and differentially check it."""
        return self.check_program(self.builder(seed), seed)

    # ------------------------------------------------------------ campaign

    def run(self, iterations: Optional[int] = None,
            seconds: Optional[float] = None, seed: int = 0,
            corpus_dir: Optional[str] = None, minimize: bool = True,
            progress: Optional[Callable[[int], None]] = None
            ) -> FuzzReport:
        """Run a campaign of ``iterations`` programs (or until the
        ``seconds`` budget expires; with both set, whichever limit is
        hit first stops the campaign).

        Every failing seed is shrunk to a minimal program (unless
        ``minimize=False``) and, when ``corpus_dir`` is given, written
        there as a replayable JSON crash case.
        """
        if iterations is None and seconds is None:
            iterations = 100
        report = FuzzReport(seed, [c.name for c in self.configs])
        started = time.perf_counter()
        current = seed
        while True:
            if iterations is not None and report.iterations >= iterations:
                break
            if seconds is not None and \
                    time.perf_counter() - started >= seconds:
                break
            program = self.builder(current)
            failures = self.check_program(program, current)
            report.iterations += 1
            report.instructions += len(program.instructions)
            if failures:
                report.failures.extend(failures)
                if corpus_dir is not None:
                    report.corpus_paths.extend(
                        str(path) for path in self._archive(
                            program, current, failures, corpus_dir,
                            minimize))
            if progress is not None:
                progress(report.iterations)
            current += 1
        report.elapsed = time.perf_counter() - started
        return report

    def _archive(self, program: Program, seed: int,
                 failures: List[FuzzMismatch], corpus_dir,
                 minimize: bool) -> List:
        """Shrink and write one corpus case per distinct failure."""
        from .corpus import CrashCase
        from .shrink import shrink_failure

        paths = []
        seen = set()
        for failure in failures:
            key = (failure.kind, failure.config_name)
            if key in seen:
                continue
            seen.add(key)
            minimized = program
            if minimize:
                minimized = shrink_failure(self, program, failure)
            case = CrashCase(
                seed=seed, kind=failure.kind,
                config_name=failure.config_name, detail=failure.detail,
                program_asm=minimized.to_asm())
            paths.append(case.save(corpus_dir))
        return paths
