"""Program-frontend registry with mandatory fuzz coverage.

The subsystem registry (:mod:`repro.core.registry`) guarantees every
memory subsystem is differentially fuzzed; this registry applies the
same rule to every *program source*.  A frontend is any path that turns
external input into an executable :class:`~repro.isa.program.Program`
-- the native random generator, the RV32 decoder/translator, future
ELF/trace loaders.  Each registers a deterministic seed->program fuzz
builder here; :func:`interleaved_builder` (the
:class:`~repro.verify.fuzzer.DifferentialFuzzer` default) round-robins
seeds across all of them, so a frontend that exists but is not fuzzed
shows up in :func:`missing_coverage` and fails tier-1.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence

from ..isa.program import Program
from ..workloads.randprog import fuzz_program
from ..workloads.riscv_randprog import riscv_fuzz_program

FrontendBuilder = Callable[[int], Program]

_FRONTENDS: Dict[str, FrontendBuilder] = {}


def register_frontend(name: str, builder: FrontendBuilder) -> None:
    """Register a frontend's fuzz-program builder.  Duplicates are
    rejected: one frontend, one committed builder."""
    if name in _FRONTENDS:
        raise ValueError(f"duplicate frontend name {name!r}")
    _FRONTENDS[name] = builder


def frontend_names() -> List[str]:
    return sorted(_FRONTENDS)


def get_frontend(name: str) -> FrontendBuilder:
    try:
        return _FRONTENDS[name]
    except KeyError:
        raise KeyError(f"unknown frontend {name!r}; choose from "
                       f"{sorted(_FRONTENDS)}") from None


def missing_coverage(covered: Iterable[str]) -> List[str]:
    """Registered frontends not present in ``covered`` (sorted)."""
    return sorted(set(_FRONTENDS) - set(covered))


def interleaved_builder(frontends: Optional[Sequence[str]] = None
                        ) -> FrontendBuilder:
    """A seed->program builder that round-robins across frontends.

    With the default ``frontends=None`` it covers *every* registered
    frontend (sorted order, so the seed->frontend mapping is stable).
    The returned callable carries the covered names on a
    ``frontend_names`` attribute for coverage enforcement.
    """
    names = frontend_names() if frontends is None else list(frontends)
    builders = [get_frontend(name) for name in names]
    if not builders:
        raise ValueError("no frontends registered")

    def build(seed: int) -> Program:
        return builders[seed % len(builders)](seed)

    build.frontend_names = tuple(names)  # type: ignore[attr-defined]
    return build


register_frontend("native", fuzz_program)
register_frontend("riscv", riscv_fuzz_program)
