"""Differential verification: fuzzer, failure minimizer, crash corpus.

The oracle hierarchy (see DESIGN.md):

1. the in-order interpreter (:mod:`repro.isa.interp`) defines
   architectural truth -- the retirement trace and final memory image;
2. the associative-LSQ baseline pipeline must match it exactly;
3. every SFC/MDT and load-replay configuration must match both.

:class:`DifferentialFuzzer` stress-tests the full hierarchy on random
adversarial programs; :func:`shrink_failure` delta-debugs any failure to
a minimal instruction sequence; :mod:`~repro.verify.corpus` persists
minimized failures as replayable JSON regression cases.

Multicore shared-memory runs fall outside the interpreter oracle
(cross-core stores legitimately change load values), so a second
backend covers them: :class:`LitmusOracle`, an operational memory model
that enumerates the allowed outcomes of each litmus test
(:mod:`repro.workloads.litmus`); :func:`run_litmus_suite` drives the
simulated machine through the tests and judges every observed outcome.
"""

from .corpus import (
    CASE_SCHEMA_VERSION,
    CorpusError,
    CrashCase,
    ReplayReport,
    load_corpus,
    replay_case,
    replay_corpus,
)
from .conformance import (
    ConformanceCell,
    ConformanceReport,
    conformance_records,
    run_conformance,
)
from .frontends import (
    frontend_names,
    get_frontend,
    interleaved_builder,
    register_frontend,
)
from .fuzzer import DifferentialFuzzer, FuzzMismatch, FuzzReport
from .litmus_oracle import (
    LitmusOracle,
    LitmusReport,
    LitmusResult,
    run_litmus_suite,
    run_litmus_test,
)
from .shrink import shrink_failure

#: The verification backends, by name (see DESIGN.md).
VERIFICATION_BACKENDS = {
    "fuzz": DifferentialFuzzer,
    "litmus": LitmusOracle,
    "conformance": run_conformance,
}

__all__ = [
    "CASE_SCHEMA_VERSION",
    "ConformanceCell",
    "ConformanceReport",
    "CorpusError",
    "CrashCase",
    "DifferentialFuzzer",
    "FuzzMismatch",
    "FuzzReport",
    "LitmusOracle",
    "LitmusReport",
    "LitmusResult",
    "ReplayReport",
    "VERIFICATION_BACKENDS",
    "conformance_records",
    "frontend_names",
    "get_frontend",
    "interleaved_builder",
    "load_corpus",
    "register_frontend",
    "replay_case",
    "replay_corpus",
    "run_conformance",
    "run_litmus_suite",
    "run_litmus_test",
    "shrink_failure",
]
