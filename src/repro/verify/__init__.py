"""Differential verification: fuzzer, failure minimizer, crash corpus.

The oracle hierarchy (see DESIGN.md):

1. the in-order interpreter (:mod:`repro.isa.interp`) defines
   architectural truth -- the retirement trace and final memory image;
2. the associative-LSQ baseline pipeline must match it exactly;
3. every SFC/MDT and load-replay configuration must match both.

:class:`DifferentialFuzzer` stress-tests the full hierarchy on random
adversarial programs; :func:`shrink_failure` delta-debugs any failure to
a minimal instruction sequence; :mod:`~repro.verify.corpus` persists
minimized failures as replayable JSON regression cases.
"""

from .corpus import (
    CASE_SCHEMA_VERSION,
    CorpusError,
    CrashCase,
    ReplayReport,
    load_corpus,
    replay_case,
    replay_corpus,
)
from .fuzzer import DifferentialFuzzer, FuzzMismatch, FuzzReport
from .shrink import shrink_failure

__all__ = [
    "CASE_SCHEMA_VERSION",
    "CorpusError",
    "CrashCase",
    "DifferentialFuzzer",
    "FuzzMismatch",
    "FuzzReport",
    "ReplayReport",
    "load_corpus",
    "replay_case",
    "replay_corpus",
    "shrink_failure",
]
