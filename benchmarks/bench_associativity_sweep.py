"""Experiment txt2: Section 3.2's associativity study for bzip2 and mcf.

The paper: bzip2's >50%-of-stores SFC replay rate and mcf's >16%-of-loads
MDT replay rate are set-conflict pathologies; raising associativity to 16
(same number of sets) takes both to ~0% and recovers 9.0% / 6.5% IPC.

Shape to reproduce: replay rates collapse monotonically with
associativity and IPC improves.
"""

from repro.harness.figures import associativity_sweep


def test_associativity_fixes_bzip2_and_mcf(figure_bench):
    figure = figure_bench(associativity_sweep, "associativity_sweep",
                          assocs=(2, 4, 8, 16))

    # bzip2: SFC store replays vanish at 16-way, IPC improves.
    assert figure.value("bzip2", "st-replay@2") > 1.0
    assert figure.value("bzip2", "st-replay@16") < 0.02
    assert figure.value("bzip2", "IPC@16") > \
        figure.value("bzip2", "IPC@2") * 1.05
    # mcf: MDT load replays vanish at 16-way, IPC improves.
    assert figure.value("mcf", "ld-replay@2") > 0.16
    assert figure.value("mcf", "ld-replay@16") < 0.02
    assert figure.value("mcf", "IPC@16") > \
        figure.value("mcf", "IPC@2") * 1.05
    # Monotone improvement along the sweep.
    for name, key in (("bzip2", "st-replay"), ("mcf", "ld-replay")):
        rates = [figure.value(name, f"{key}@{assoc}")
                 for assoc in (2, 4, 8, 16)]
        assert rates[0] >= rates[-1]
