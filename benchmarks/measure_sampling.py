"""Measure sampled-mode speedup and accuracy on long kernel runs.

Runs three kernels at a scale yielding >= 1M retired instructions each,
once in full detailed mode and once with checkpointed interval
sampling (K detailed windows separated by fast-forward gaps), and
records wall-clock speedup plus whether each sampled IPC's 95%
confidence interval covers the full-run value.  Results go to
``benchmarks/results/BENCH_sampling.txt``.

Usage::

    PYTHONPATH=src python benchmarks/measure_sampling.py
"""

import os
import sys
from pathlib import Path

from repro.harness.configs import baseline_sfc_mdt_config
from repro.perf import measure_sampling

BENCHMARKS = ("gzip", "mcf", "equake")
SCALE = int(os.environ.get("REPRO_BENCH_SCALE", "2000000"))
INTERVALS = 10
WARMUP = 1_000
INTERVAL = 5_000
RESULTS = Path(__file__).parent / "results" / "BENCH_sampling.txt"


def main() -> int:
    config = baseline_sfc_mdt_config()
    report = measure_sampling(list(BENCHMARKS), config, SCALE,
                              intervals=INTERVALS, warmup_insts=WARMUP,
                              interval_insts=INTERVAL)
    lines = [
        "Sampled-mode benchmark: checkpointed fast-forward + interval "
        "sampling",
        f"config={config.name} scale={SCALE} intervals={INTERVALS} "
        f"warmup={WARMUP} interval={INTERVAL}",
        "",
        report.format(),
        "",
        f"min speedup {report.min_speedup:.1f}x; "
        f"all within CI: {report.all_within_ci}",
    ]
    text = "\n".join(lines) + "\n"
    RESULTS.write_text(text)
    print(text)
    print(f"wrote {RESULTS}")
    if not report.all_within_ci:
        print("FAIL: a sampled IPC fell outside its reported CI")
        return 1
    if report.min_speedup < 5.0:
        print(f"FAIL: min speedup {report.min_speedup:.1f}x < 5x")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
