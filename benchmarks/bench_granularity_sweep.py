"""Experiment txt4: Section 2.2's MDT granularity trade-off.

The paper: coarser MDT granules disambiguate more bytes per entry (fewer
tag conflicts in a small MDT) but alias distinct addresses into one
entry, producing spurious ordering violations; 8 bytes is adequate for a
64-bit machine.

Shape to reproduce: violation rates do not *decrease* as granules get
coarser, and the 8-byte configuration performs within noise of the best.
"""

from repro.harness.figures import granularity_sweep

GRANULARITIES = (4, 8, 16, 32)


def test_mdt_granularity_tradeoff(figure_bench):
    figure = figure_bench(granularity_sweep, "granularity_sweep",
                          granularities=GRANULARITIES)

    for name, values in figure.rows:
        ipc8 = values["IPC@8B"]
        best = max(values[f"IPC@{g}B"] for g in GRANULARITIES)
        # 8-byte granularity is adequate: within a few percent of best.
        assert ipc8 > 0.93 * best, name
        # Coarse granules never reduce the violation rate below the
        # fine-grained one (false sharing only adds violations).
        assert values["viol%@32B"] >= values["viol%@8B"] - 0.05, name
