"""Experiment scal1: the scalability claim (Sections 1 and 5).

"Because the CAM-free MDT and SFC scale readily, they are ideally suited
for checkpointed processors with large instruction windows."  This bench
sweeps the window (ROB/scheduler) size from 32 to 1024 on a well-behaved
workload and checks that the SFC/MDT's IPC tracks a size-matched LSQ's
across the whole range.
"""

from repro.harness.figures import window_scaling

WINDOWS = (32, 64, 128, 256, 512, 1024)


def test_sfc_mdt_tracks_lsq_across_window_sizes(figure_bench):
    figure = figure_bench(window_scaling, "window_scaling",
                          benchmark="swim", windows=WINDOWS)

    ratios = [values["ratio"] for _, values in figure.rows]
    # The SFC/MDT stays close to the size-matched LSQ at every window.
    assert min(ratios) > 0.80
    # Deeper windows help both machines (IPC grows with the window).
    first_lsq = figure.rows[0][1]["LSQ-IPC"]
    last_lsq = figure.rows[-1][1]["LSQ-IPC"]
    first_sfc = figure.rows[0][1]["SFC/MDT-IPC"]
    last_sfc = figure.rows[-1][1]["SFC/MDT-IPC"]
    assert last_lsq > first_lsq
    assert last_sfc > first_sfc
