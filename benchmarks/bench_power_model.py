"""Experiment pow1: dynamic energy of forwarding + disambiguation.

The paper's recurring claim (Sections 1, 4, 5): the LSQ's associative,
age-prioritized searches burn energy proportional to queue occupancy,
while the SFC/MDT perform constant-cost indexed accesses -- and the gap
grows with LSQ capacity.

Shape to reproduce: LSQ/SFC energy ratio > 1 for memory-intensive
workloads on the deep-window core, non-decreasing in LSQ size.

Caveat (documented in EXPERIMENTS.md): replay-pathological workloads
(mcf's MDT conflicts) re-access the MDT on every replay, so the SFC/MDT
can lose the energy comparison exactly where it loses the performance
comparison; the structural claim is made on well-behaved workloads.
"""

from repro.harness.figures import power_comparison

LSQ_SIZES = ((48, 32), (120, 80), (256, 256))


def test_energy_ratio_grows_with_lsq_size(figure_bench):
    figure = figure_bench(power_comparison, "power_model",
                          lsq_sizes=LSQ_SIZES)

    keys = [f"LSQ{lq}x{sq}/SFC" for lq, sq in LSQ_SIZES]
    for name, values in figure.rows:
        # The big-LSQ configuration always costs more energy than the
        # SFC/MDT for the same workload.
        assert values[keys[-1]] > 1.0, name
        # The gap does not shrink as the queues grow.
        assert values[keys[-1]] >= values[keys[0]] * 0.95, name
