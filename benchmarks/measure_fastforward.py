"""Measure batch-dispatch fast-forward throughput on long kernel runs.

Runs three kernels to the halt (capped at 5M instructions), cold and
with warm-state training (gshare + cache hierarchy riding along), once
through the per-instruction reference engine and once through the
predecoded batch-dispatch engine, and records wall-clock throughput,
speedup, and bit-exactness of the complete final state.  Results go to
``benchmarks/results/BENCH_fastforward.txt``.

Usage::

    PYTHONPATH=src python benchmarks/measure_fastforward.py
"""

import os
import sys
from pathlib import Path

from repro.perf import measure_fastforward

BENCHMARKS = ("gzip", "mcf", "equake")
SCALE = int(os.environ.get("REPRO_BENCH_SCALE", "2000000"))
RESULTS = Path(__file__).parent / "results" / "BENCH_fastforward.txt"


def main() -> int:
    report = measure_fastforward(list(BENCHMARKS), SCALE)
    lines = [
        "Fast-forward benchmark: predecoded batch dispatch vs "
        "per-instruction reference",
        f"scale={SCALE} warm modes: cold + gshare/cache training",
        "",
        report.format(),
    ]
    text = "\n".join(lines) + "\n"
    RESULTS.write_text(text)
    print(text)
    print(f"wrote {RESULTS}")
    if not report.all_bit_exact:
        print("FAIL: batch engine state diverged from the reference")
        return 1
    if report.min_speedup < 3.0:
        print(f"FAIL: min speedup {report.min_speedup:.1f}x < 3x")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
