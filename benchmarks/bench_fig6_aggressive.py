"""Experiment fig6: Figure 6 -- the aggressive (8-wide, 1024-entry) core.

Regenerates the paper's Figure 6 series: IPC of a 256x256 LSQ, a 48x32
LSQ, and the MDT/SFC with total-order enforcement, normalized per
benchmark to an idealized 120x80 LSQ.  mesa is excluded, as in the paper.

Paper shape to reproduce:

* the 256x256 LSQ matches the 120x80 LSQ (bigger buys nothing);
* the 48x32 LSQ loses badly on a 1024-entry window;
* the MDT/SFC lands somewhat below the big LSQs on specint (paper: -9%)
  and at-or-above them on specfp (paper: +2%);
* bzip2 and mcf are the specint outliers (SFC/MDT set conflicts).
"""

from repro.harness.figures import figure6


def test_fig6_aggressive_normalized_ipc(figure_bench):
    figure = figure_bench(figure6, "fig6_aggressive")

    # A bigger LSQ buys nothing over the 120x80 baseline.
    assert 0.95 < figure.average("int avg", "lsq256x256") < 1.15
    assert 0.95 < figure.average("fp avg", "lsq256x256") < 1.15
    # A small LSQ throttles the deep window.
    assert figure.average("int avg", "lsq48x32") < 0.97
    assert figure.average("fp avg", "lsq48x32") < 0.90
    # The SFC/MDT: behind on specint, competitive on specfp.
    int_enf = figure.average("int avg", "ENF")
    fp_enf = figure.average("fp avg", "ENF")
    assert 0.75 < int_enf < 1.0
    assert fp_enf > int_enf - 0.05
    assert fp_enf > 0.85
    # The paper's named outliers suffer 15%+ drops.
    assert figure.value("bzip2", "ENF") < 0.85
    assert figure.value("mcf", "ENF") < 0.85
    # The SFC/MDT beats the *small* LSQ overall: scalability in action.
    assert int_enf + fp_enf > \
        figure.average("int avg", "lsq48x32") + \
        figure.average("fp avg", "lsq48x32") - 0.10
