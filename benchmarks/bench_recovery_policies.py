"""Experiment abl1: Section 2.4's recovery-policy ablations.

The paper proposes (but does not simulate) two aggressive recovery
optimizations: counted true-dependence recovery (flush from the lone
conflicting load, Section 2.4.1) and corrupt-marking output recovery
(poison the SFC word instead of flushing, Section 2.4.2).  This bench
measures both against the conservative policy the paper models.

Shape to reproduce: the optimized policies never lose meaningfully, and
the machine stays architecturally exact under all of them (enforced by
retirement validation).
"""

from repro.harness.figures import recovery_policies

BENCHMARKS = ("gzip", "applu", "vpr_route", "ammp")


def test_recovery_policy_ablation(figure_bench):
    figure = figure_bench(recovery_policies, "recovery_policies",
                          benchmarks=BENCHMARKS)

    for name, values in figure.rows:
        conservative = values["conservative"]
        # Both optimizations stay within a few percent of conservative
        # recovery (they can only reduce flush work).
        assert values["counted"] > conservative * 0.9, name
        assert values["corrupt"] > conservative * 0.9, name
