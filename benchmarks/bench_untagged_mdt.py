"""Experiment abl3: tagged vs untagged MDT entries (Section 2.2).

The paper: "Entries in the MDT may be tagged or untagged.  In an untagged
MDT, all in-flight loads and stores whose addresses map to the same MDT
entry simply share that entry.  Thus, aliasing ... causes the MDT to
detect spurious memory ordering violations.  Tagged entries prevent
aliasing and enable construction of a set-associative MDT."

This bench sweeps the MDT size for both variants.  The untagged MDT
never suffers structural-conflict replays (any access can always use its
set's shared entry), but pays spurious violations once distinct
in-flight addresses start aliasing; tags buy exactness at the price of
conflicts when the table is small.

Shape to reproduce: at generous sizes the variants converge; shrinking
the table hurts the untagged variant through spurious violation flushes
and the tagged variant through replays.
"""

from repro.harness.configs import baseline_sfc_mdt_config
from repro.harness.figures import FigureResult

BENCHMARKS = ("parser", "equake")
MDT_SIZES = (4096, 256, 64)


def untagged_sweep(scale, runner):
    rows = []
    for name in BENCHMARKS:
        values = {}
        for sets in MDT_SIZES:
            for tagged in (True, False):
                label = "tag" if tagged else "untag"
                config = baseline_sfc_mdt_config(
                    mdt_sets=sets, name=f"{label}{sets}")
                config.mdt.tagged = tagged
                result = runner.run(name, config)
                retired = result.counters.get("retired_instructions") or 1
                violations = (
                    result.counters.get("violation_flushes_true") +
                    result.counters.get("violation_flushes_anti") +
                    result.counters.get("violation_flushes_output"))
                values[f"IPC-{label}@{sets}"] = result.ipc
                values[f"viol%-{label}@{sets}"] = \
                    100.0 * violations / retired
        rows.append((name, values))
    series = list(rows[0][1])
    return FigureResult(
        "Section 2.2: tagged vs untagged MDT across table sizes "
        "(baseline core)", series, rows)


def test_untagged_mdt_tradeoff(figure_bench):
    figure = figure_bench(untagged_sweep, "untagged_mdt")

    for name, values in figure.rows:
        # At the paper's 4K-set size the variants are equivalent.
        assert abs(values["IPC-tag@4096"] - values["IPC-untag@4096"]) \
            < 0.15 * values["IPC-tag@4096"], name
        # Shrinking the untagged MDT never helps: aliasing produces
        # spurious violations, which in turn train the dependence
        # predictor into over-serialising unrelated accesses.
        assert values["IPC-untag@64"] <= \
            values["IPC-untag@4096"] * 1.02, name
    # At least one aliasing-prone benchmark pays heavily for losing tags.
    assert any(values["IPC-untag@64"] < 0.9 * values["IPC-tag@64"]
               for _, values in figure.rows)
