"""Experiment txt3: Section 3.2's SFC corruption-rate analysis.

The paper: on the aggressive core, vpr_route, ammp, and equake replay
roughly 20% of their loads because of SFC corruption marks left by
partial flushes; most other benchmarks stay at or below ~6%.

Shape to reproduce: the corruption-prone trio sits clearly above the
suite's typical corruption replay rate.
"""

from repro.harness.figures import corruption_rates

CORRUPTION_PRONE = ("vpr_route", "ammp", "equake")


def test_corruption_replay_rates(figure_bench):
    figure = figure_bench(corruption_rates, "corruption_rates")

    rates = {name: values["corrupt-replays/load"]
             for name, values in figure.rows}
    prone = [rates[name] for name in CORRUPTION_PRONE]
    others = [rate for name, rate in rates.items()
              if name not in CORRUPTION_PRONE]

    # The corruption mechanism fires on the designed benchmarks...
    assert max(prone) > 0.03
    # ...and the trio's average exceeds the rest of the suite's.
    assert sum(prone) / len(prone) > sum(others) / len(others)
