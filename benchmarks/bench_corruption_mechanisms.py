"""Experiment abl2: corruption masks vs flush-endpoint tracking.

Section 3.2 proposes, as an alternative to the corruption bits, that the
SFC "record the sequence numbers of the earliest and latest instructions
flushed (the flush endpoints)" and replay a load only when it would
forward from a store whose number falls inside a window -- predicting
that this would rescue the corruption-bound benchmarks (vpr_route, ammp,
equake).  We implement both schemes and measure the trade.

Shape to reproduce: the endpoint scheme eliminates most corruption
replays on the corruption-prone benchmarks and never loses IPC
meaningfully.
"""

from repro.core import CORRUPTION_ENDPOINTS
from repro.harness.configs import aggressive_sfc_mdt_config
from repro.harness.figures import FigureResult

BENCHMARKS = ("vpr_route", "ammp", "equake", "gzip", "twolf")


def corruption_mechanisms(scale, runner):
    rows = []
    for name in BENCHMARKS:
        mask_config = aggressive_sfc_mdt_config(name="mask")
        endpoint_config = aggressive_sfc_mdt_config(name="endpoints")
        endpoint_config.sfc.corruption_mode = CORRUPTION_ENDPOINTS
        mask = runner.run(name, mask_config)
        endpoints = runner.run(name, endpoint_config)
        loads = mask.counters.get("retired_loads") or 1
        rows.append((name, {
            "IPC-mask": mask.ipc,
            "IPC-endpoints": endpoints.ipc,
            "corrupt/ld-mask":
                mask.counters.get("load_replays_sfc_corrupt") / loads,
            "corrupt/ld-endp":
                endpoints.counters.get("load_replays_sfc_corrupt") / loads,
            "overflows":
                endpoints.counters.get("sfc_endpoint_overflows"),
        }))
    return FigureResult(
        "Section 3.2 alternative: corruption masks vs flush endpoints "
        "(aggressive core)",
        ["IPC-mask", "IPC-endpoints", "corrupt/ld-mask",
         "corrupt/ld-endp", "overflows"], rows)


def test_flush_endpoints_vs_corruption_masks(figure_bench):
    figure = figure_bench(corruption_mechanisms,
                          "corruption_mechanisms")

    for name, values in figure.rows:
        # Endpoint tracking never replays more loads than blanket masks.
        assert values["corrupt/ld-endp"] <= \
            values["corrupt/ld-mask"] + 0.01, name
        # And never costs meaningful IPC.
        assert values["IPC-endpoints"] > values["IPC-mask"] * 0.97, name
