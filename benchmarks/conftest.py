"""Shared infrastructure for the reproduction benches.

Each bench regenerates one table/figure of the paper (see DESIGN.md's
experiment index), prints it, saves it under ``benchmarks/results/``, and
asserts its qualitative shape.  ``REPRO_BENCH_SCALE`` controls the dynamic
instruction budget per benchmark run (default 8000 -- small enough for a
pure-Python cycle-level simulator, large enough for stable shapes; the
numbers in EXPERIMENTS.md were produced at 20000).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.harness.experiment import ExperimentRunner

RESULTS_DIR = Path(__file__).parent / "results"

DEFAULT_SCALE = int(os.environ.get("REPRO_BENCH_SCALE", "8000"))


@pytest.fixture(scope="session")
def scale() -> int:
    return DEFAULT_SCALE


@pytest.fixture(scope="session")
def runner(scale) -> ExperimentRunner:
    """One shared runner per session: golden traces are built once."""
    return ExperimentRunner(scale=scale)


def publish(name: str, text: str) -> None:
    """Print a figure/table and archive it under benchmarks/results/."""
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
