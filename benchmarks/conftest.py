"""Shared infrastructure for the reproduction benches.

Each bench regenerates one table/figure of the paper (see DESIGN.md's
experiment index) through the :func:`figure_bench` fixture, which prints
it, saves it under ``benchmarks/results/``, and returns it for shape
assertions.  All benches share one cached :class:`ExperimentRunner`, so
identical grid cells are simulated once per cache lifetime no matter how
many benches (or re-runs) need them, and the engine's per-run manifest is
archived next to the figures at session end.

Environment knobs:

* ``REPRO_BENCH_SCALE`` -- dynamic instruction budget per benchmark run
  (default 8000 -- small enough for a pure-Python cycle-level simulator,
  large enough for stable shapes; EXPERIMENTS.md's numbers use 20000).
* ``REPRO_BENCH_JOBS`` -- worker processes for uncached grid cells
  (default: all cores; 1 = serial).
* ``REPRO_CACHE_DIR`` -- persistent result-cache directory (default
  ``.repro_cache/`` at the repository root); delete it to force cold
  re-simulation.
* ``REPRO_BENCH_TIMEOUT`` -- per-cell wall-clock timeout in seconds for
  pool workers (default 0 = disabled).
* ``REPRO_BENCH_RETRIES`` -- extra attempts per failing grid cell
  (default: the engine's default of 2).

Because completed cells checkpoint to the cache as they finish, an
interrupted bench session resumes where it left off on the next run.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.harness.experiment import ExperimentRunner
from repro.harness.figures import manifest_table

RESULTS_DIR = Path(__file__).parent / "results"

DEFAULT_SCALE = int(os.environ.get("REPRO_BENCH_SCALE", "8000"))

DEFAULT_JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "0")) or None

CACHE_DIR = os.environ.get(
    "REPRO_CACHE_DIR", str(Path(__file__).parent.parent / ".repro_cache"))

CELL_TIMEOUT = float(os.environ.get("REPRO_BENCH_TIMEOUT", "0")) or None

MAX_RETRIES = (int(os.environ["REPRO_BENCH_RETRIES"])
               if os.environ.get("REPRO_BENCH_RETRIES") else None)


@pytest.fixture(scope="session")
def scale() -> int:
    return DEFAULT_SCALE


@pytest.fixture(scope="session")
def runner() -> ExperimentRunner:
    """One shared engine per session: golden traces are built once and
    completed cells persist in the on-disk result cache."""
    engine = ExperimentRunner(scale=DEFAULT_SCALE, jobs=DEFAULT_JOBS,
                              cache_dir=CACHE_DIR,
                              cell_timeout=CELL_TIMEOUT,
                              max_retries=MAX_RETRIES)
    yield engine
    if engine.manifest:
        RESULTS_DIR.mkdir(exist_ok=True)
        engine.write_manifest(RESULTS_DIR / "engine_manifest.json")
        (RESULTS_DIR / "engine_manifest.txt").write_text(
            manifest_table(engine) + "\n")


@pytest.fixture
def figure_bench(benchmark, runner, scale):
    """Run one figure generator through pytest-benchmark and archive it.

    ``figure_bench(func, name, **kwargs)`` calls ``func(scale=...,
    runner=..., **kwargs)`` exactly once, publishes ``func``'s formatted
    table as ``results/<name>.txt``, and returns the figure for shape
    assertions -- the boilerplate every bench used to repeat.
    """
    def _run(func, name, **kwargs):
        figure = benchmark.pedantic(
            func, kwargs={"scale": scale, "runner": runner, **kwargs},
            rounds=1, iterations=1)
        publish(name, figure.format())
        return figure
    return _run


def publish(name: str, text: str) -> None:
    """Print a figure/table and archive it under benchmarks/results/."""
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
