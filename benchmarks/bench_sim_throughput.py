"""Simulator-throughput benchmark (engineering, not a paper artifact).

Times the cycle-level simulator itself on one representative kernel per
configuration class, reporting simulated instructions per second.  Useful
for tracking performance regressions in the simulator.
"""

import pytest

from repro import Processor
from repro.harness import (
    aggressive_sfc_mdt_config,
    baseline_lsq_config,
    baseline_sfc_mdt_config,
)
from repro.isa import run_program
from repro.workloads import build

SCALE = 4000


@pytest.fixture(scope="module")
def workload():
    prog = build("gap", scale=SCALE)
    return prog, run_program(prog, 1_000_000)


def _simulate(prog, trace, config):
    return Processor(prog, config, trace=trace).run()


def test_throughput_baseline_lsq(benchmark, workload):
    prog, trace = workload
    result = benchmark(_simulate, prog, trace, baseline_lsq_config())
    benchmark.extra_info["ipc"] = result.ipc
    benchmark.extra_info["instructions"] = result.instructions


def test_throughput_baseline_sfc_mdt(benchmark, workload):
    prog, trace = workload
    result = benchmark(_simulate, prog, trace, baseline_sfc_mdt_config())
    benchmark.extra_info["ipc"] = result.ipc


def test_throughput_aggressive_sfc_mdt(benchmark, workload):
    prog, trace = workload
    result = benchmark(_simulate, prog, trace, aggressive_sfc_mdt_config())
    benchmark.extra_info["ipc"] = result.ipc


def test_throughput_architectural_iss(benchmark, workload):
    prog, _ = workload
    trace = benchmark(run_program, prog, 1_000_000)
    benchmark.extra_info["instructions"] = len(trace)
