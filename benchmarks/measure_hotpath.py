"""Measure single-process simulator throughput for the hot-path bench.

Runs the full default grid (6 benchmarks x 4 configurations, the same
grid the bit-exactness gate hashes) serially and uncached, twice:

* both passes must produce identical result-manifest digests (the
  simulator is deterministic, so any drift is a bug);
* the faster pass is recorded to
  ``benchmarks/results/BENCH_hotpath_optimization.txt`` together with
  the archived pre-optimization baseline for the speedup ratio.

Usage::

    PYTHONPATH=src python benchmarks/measure_hotpath.py
"""

import os
import sys
from pathlib import Path

from repro import perf
from repro.harness import configs as C

BENCHMARKS = ("gzip", "gap", "mcf", "crafty", "swim", "applu")
SCALE = int(os.environ.get("REPRO_BENCH_SCALE", "4000"))
RESULTS = Path(__file__).parent / "results" / \
    "BENCH_hotpath_optimization.txt"

#: Seed-tree throughput on the reference host (commit 7d44b04, this
#: grid, jobs=1, no cache): the PR's before-number.  Re-measure with
#: ``git stash`` / checkout of the seed tree when moving hosts.
BASELINE_INSTS_PER_SEC = 49_423


def configs():
    return [C.baseline_lsq_config(), C.baseline_sfc_mdt_config(),
            C.aggressive_sfc_mdt_config(),
            C.aggressive_load_replay_config()]


def main():
    runs = [perf.measure_throughput(BENCHMARKS, configs(), scale=SCALE)
            for _ in range(2)]
    digests = {run.manifest_digest for run in runs}
    assert len(digests) == 1, \
        f"non-deterministic manifests: {sorted(digests)}"
    best = max(runs, key=lambda run: run.insts_per_sec)
    speedup = best.insts_per_sec / BASELINE_INSTS_PER_SEC

    lines = [
        "BENCH hotpath_optimization: single-process simulated "
        "instructions per second",
        f"grid: {len(BENCHMARKS)} benchmarks x {len(configs())} configs, "
        f"scale={SCALE}, jobs=1, cache disabled",
        f"host: {os.cpu_count()} cpu(s), python "
        f"{sys.version.split()[0]}",
        "",
        f"baseline (seed, commit 7d44b04): "
        f"{BASELINE_INSTS_PER_SEC:>7,} insts/s",
        f"optimized (this tree):           "
        f"{best.insts_per_sec:>7,.0f} insts/s",
        f"speedup:                         {speedup:>7.2f}x",
        "",
        f"us per simulated instruction: {best.usec_per_inst:.2f}",
        f"result-manifest sha256 (identical across both passes): "
        f"{best.manifest_digest}",
        "",
        best.format(),
    ]
    text = "\n".join(lines) + "\n"
    RESULTS.parent.mkdir(parents=True, exist_ok=True)
    RESULTS.write_text(text)
    print(text)
    print(f"wrote {RESULTS}")
    return best


if __name__ == "__main__":
    main()
