"""Measure the experiment engine's wall-clock on a Figure-4 style grid.

Runs the same (benchmark x config) grid four ways and records the
results to ``benchmarks/results/engine_timing.txt``:

* serial, cold cache      (jobs=1, fresh cache dir)
* parallel, cold cache    (jobs=cpu_count or REPRO_BENCH_JOBS, fresh dir)
* parallel, warm cache    (same cache dir as the parallel-cold run)
* serial, warm cache

and asserts the normalized-IPC output of every mode is byte-identical.

Usage::

    PYTHONPATH=src python benchmarks/measure_engine_timing.py
"""

import json
import os
import shutil
import sys
import tempfile
import time
from pathlib import Path

from repro.harness import baseline_lsq_config, baseline_sfc_mdt_config
from repro.harness.experiment import ExperimentRunner, normalized_ipc

BENCHMARKS = ("gzip", "gap", "mcf", "crafty", "swim", "applu")
SCALE = int(os.environ.get("REPRO_BENCH_SCALE", "4000"))
# jobs=1 short-circuits to the serial path, so on a single-core host we
# still spin up a 4-worker pool to measure the parallel machinery itself.
JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "0")) or \
    max(os.cpu_count() or 1, 4)
RESULTS = Path(__file__).parent / "results" / "engine_timing.txt"


def configs():
    return [baseline_lsq_config(), baseline_sfc_mdt_config()]


def grid_output(results):
    """The normalized-IPC text a figure would print for this grid."""
    lines = []
    for benchmark in BENCHMARKS:
        ratio = normalized_ipc(results, benchmark, "baseline-sfc-mdt-enf",
                               "baseline-lsq-48x32")
        lines.append(f"{benchmark:10s} {ratio:.6f}")
    return "\n".join(lines)


def timed_grid(label, cache_dir, jobs):
    runner = ExperimentRunner(scale=SCALE, jobs=jobs, cache_dir=cache_dir)
    start = time.perf_counter()
    results = runner.run_suite(list(BENCHMARKS), configs())
    elapsed = time.perf_counter() - start
    return {
        "label": label,
        "jobs": jobs,
        "seconds": elapsed,
        "cache_hits": runner.cache_hits,
        "cache_misses": runner.cache_misses,
        "output": grid_output(results),
    }


def main():
    cells = len(BENCHMARKS) * len(configs())
    serial_dir = tempfile.mkdtemp(prefix="repro-timing-serial-")
    parallel_dir = tempfile.mkdtemp(prefix="repro-timing-parallel-")
    try:
        runs = [
            timed_grid("serial, cold cache", serial_dir, jobs=1),
            timed_grid(f"parallel ({JOBS} jobs), cold cache",
                       parallel_dir, jobs=JOBS),
            timed_grid(f"parallel ({JOBS} jobs), warm cache",
                       parallel_dir, jobs=JOBS),
            timed_grid("serial, warm cache", serial_dir, jobs=1),
        ]
    finally:
        shutil.rmtree(serial_dir, ignore_errors=True)
        shutil.rmtree(parallel_dir, ignore_errors=True)

    outputs = {run["output"] for run in runs}
    assert len(outputs) == 1, "modes disagree on normalized IPC!"

    cold = runs[0]["seconds"]
    lines = [
        "Experiment-engine timing: Figure-4 baseline grid "
        f"({len(BENCHMARKS)} benchmarks x {len(configs())} configs = "
        f"{cells} cells, scale={SCALE})",
        f"host: {os.cpu_count()} cpu(s), python "
        f"{sys.version.split()[0]}",
        "",
        f"{'mode':34s} {'wall(s)':>9s} {'speedup':>9s} "
        f"{'hits':>5s} {'miss':>5s}",
    ]
    for run in runs:
        lines.append(
            f"{run['label']:34s} {run['seconds']:9.3f} "
            f"{cold / run['seconds']:8.1f}x "
            f"{run['cache_hits']:5d} {run['cache_misses']:5d}")
    if (os.cpu_count() or 1) < 2:
        lines += [
            "",
            "note: single-core host -- the worker pool cannot beat the "
            "serial path here",
            "(it pays fork + pickle overhead with no parallelism to "
            "recoup it); on an",
            "N-core host cold-grid wall-clock scales with min(jobs, N, "
            "pending cells).",
        ]
    lines += [
        "",
        "normalized IPC (sfc-mdt-enf / lsq), byte-identical in all "
        "four modes:",
        runs[0]["output"],
    ]
    text = "\n".join(lines) + "\n"
    RESULTS.parent.mkdir(parents=True, exist_ok=True)
    RESULTS.write_text(text)
    print(text)
    print(f"wrote {RESULTS}")
    return runs


if __name__ == "__main__":
    main()
