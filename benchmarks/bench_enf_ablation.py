"""Experiment txt1: Section 3.2's enforcement ablation (aggressive core).

The paper: on the aggressive core, enforcing a total ordering on each
producer set (ENF) beats enforcing only true dependences (NOT-ENF) by 14%
on specint and 43% on specfp, and cuts the average memory-ordering
violation rate from 0.93% to 0.11% of retired instructions.

Shape to reproduce: ENF >= NOT-ENF on average, with a pronounced specfp
gap, and an order-of-magnitude-style drop in violation rate.
"""

from repro.harness.figures import enf_ablation


def test_enf_vs_not_enf_on_aggressive_core(figure_bench):
    figure = figure_bench(enf_ablation, "enf_ablation")

    int_gain = figure.average("int avg", "ENF/NOT-ENF")
    fp_gain = figure.average("fp avg", "ENF/NOT-ENF")
    # Enforcement helps overall, most on specfp (paper: +14% / +43%).
    assert int_gain > 0.98
    assert fp_gain > 1.05
    assert fp_gain > int_gain

    viol_not = figure.average("fp avg", "viol%-NOT-ENF") + \
        figure.average("int avg", "viol%-NOT-ENF")
    viol_enf = figure.average("fp avg", "viol%-ENF") + \
        figure.average("int avg", "viol%-ENF")
    # Enforcement slashes the violation rate (paper: 0.93% -> 0.11%).
    assert viol_enf < viol_not
