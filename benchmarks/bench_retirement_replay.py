"""Experiment rel1: completion-time vs retirement-time disambiguation.

Paper Section 4: value-based retirement replay (Cain & Lipasti)
eliminates the load queue's CAM by re-executing loads at retirement, but
"the delay greatly increases the penalty for ordering violations ...  In
[checkpointed processors with large instruction windows], disambiguating
memory references at completion is preferable."

We implement the retirement-replay scheme and compare it against the
paper's SFC/MDT (completion-time disambiguation) on the aggressive core.

Shape to reproduce:

* on violation-prone workloads, retirement replay loses clearly to the
  SFC/MDT (each late detection flushes a full 1024-entry window);
* on violation-free workloads the two are comparable;
* retirement replay re-executes essentially every retired load (the
  bandwidth/energy cost Roth's store vulnerability window targets).
"""

from repro.harness.configs import (
    aggressive_load_replay_config,
    aggressive_sfc_mdt_config,
)
from repro.harness.figures import FigureResult

VIOLATION_PRONE = ("gzip", "ammp")
WELL_BEHAVED = ("swim", "art", "crafty")
BENCHMARKS = VIOLATION_PRONE + WELL_BEHAVED


def retirement_replay_comparison(scale, runner):
    rows = []
    for name in BENCHMARKS:
        sfc = runner.run(name, aggressive_sfc_mdt_config())
        replay = runner.run(name, aggressive_load_replay_config())
        loads = replay.counters.get("retired_loads") or 1
        rows.append((name, {
            "IPC-sfc/mdt": sfc.ipc,
            "IPC-replay": replay.ipc,
            "replay/sfc": replay.ipc / sfc.ipc if sfc.ipc else 0.0,
            "reexec/load":
                replay.counters.get("lsq_retire_replays") / loads,
            "late-violations":
                replay.counters.get("retire_replay_violations"),
        }))
    return FigureResult(
        "Section 4: completion-time (SFC/MDT) vs retirement-time "
        "(value-based replay) disambiguation, aggressive core",
        ["IPC-sfc/mdt", "IPC-replay", "replay/sfc", "reexec/load",
         "late-violations"], rows)


def test_completion_beats_retirement_on_deep_windows(figure_bench):
    figure = figure_bench(retirement_replay_comparison,
                          "retirement_replay")

    values = dict(figure.rows)
    # Violation-prone workloads: late detection costs a full window per
    # violation, so completion-time disambiguation wins clearly.
    for name in VIOLATION_PRONE:
        assert values[name]["late-violations"] > 0, name
        assert values[name]["replay/sfc"] < 0.92, name
    # Every retired load pays the second access.
    for name in BENCHMARKS:
        assert values[name]["reexec/load"] >= 0.99, name
