"""Experiment fig4: the paper's Figure 4 simulator-parameter table.

Prints both configuration columns and asserts that the preset
constructors implement exactly those parameters (so every other bench
runs the machines the paper describes).
"""

from repro.harness import (
    FIGURE4_PARAMETERS,
    aggressive_lsq_config,
    aggressive_sfc_mdt_config,
    baseline_lsq_config,
    baseline_sfc_mdt_config,
)

from benchmarks.conftest import publish


def _format_table() -> str:
    width = max(len(row[0]) for row in FIGURE4_PARAMETERS)
    lines = ["Figure 4: simulator parameters (baseline | aggressive)",
             "-" * 60]
    for name, baseline, aggressive in FIGURE4_PARAMETERS:
        lines.append(f"{name:<{width}}  {baseline}")
        if aggressive != "(same)":
            lines.append(f"{'':<{width}}  vs {aggressive}")
    return "\n".join(lines)


def test_fig4_configuration_table(benchmark):
    table = benchmark.pedantic(_format_table, rounds=1, iterations=1)
    publish("fig4_configs", table)

    baseline = baseline_sfc_mdt_config()
    aggressive = aggressive_sfc_mdt_config()
    # Core parameters (Figure 4, left and right columns).
    assert (baseline.width, aggressive.width) == (4, 8)
    assert (baseline.rob_size, aggressive.rob_size) == (128, 1024)
    assert (baseline.sched_size, aggressive.sched_size) == (128, 1024)
    assert (baseline.num_fus, aggressive.num_fus) == (4, 8)
    assert baseline.mispredict_penalty == \
        aggressive.mispredict_penalty == 8
    # Memory-structure geometries.
    assert (baseline.mdt.num_sets, aggressive.mdt.num_sets) == (4096, 8192)
    assert (baseline.sfc.num_sets, aggressive.sfc.num_sets) == (128, 512)
    assert baseline.mdt.assoc == baseline.sfc.assoc == 2
    # LSQ comparison points.
    lsq_base = baseline_lsq_config()
    lsq_aggr = aggressive_lsq_config()
    assert (lsq_base.lsq.lq_size, lsq_base.lsq.sq_size) == (48, 32)
    assert (lsq_aggr.lsq.lq_size, lsq_aggr.lsq.sq_size) == (120, 80)
