"""Experiment fig5: Figure 5 -- the baseline (4-wide) superscalar.

Regenerates the paper's Figure 5 series: IPC of the MDT/SFC with the
producer-set predictor enforcing all predicted dependences (ENF) and
enforcing only true dependences (NOT-ENF), normalized per benchmark to an
idealized 48x32 LSQ.

Paper shape to reproduce (not absolute numbers):

* ENF averages within ~1% of the LSQ, NOT-ENF within ~3%;
* no benchmark collapses on the baseline core;
* gzip/vpr_route/mesa benefit from enforcing output dependences.
"""

from repro.harness.figures import figure5
from repro.workloads import suites


def test_fig5_baseline_normalized_ipc(figure_bench):
    figure = figure_bench(figure5, "fig5_baseline")

    int_enf = figure.average("int avg", "ENF")
    fp_enf = figure.average("fp avg", "ENF")
    int_not = figure.average("int avg", "NOT-ENF")
    fp_not = figure.average("fp avg", "NOT-ENF")

    # ENF tracks the idealized LSQ closely on the baseline core
    # (paper: within ~1%; we allow a wider band for the small runs).
    assert int_enf > 0.93
    assert fp_enf > 0.90
    # NOT-ENF never beats ENF by a meaningful margin on average.
    assert int_not <= int_enf + 0.02
    assert fp_not <= fp_enf + 0.02
    # Nothing collapses on the 128-entry window.
    for name in suites.FIGURE5_BENCHMARKS:
        assert figure.value(name, "ENF") > 0.75, name
