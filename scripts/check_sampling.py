#!/usr/bin/env python
"""Sampled-mode accuracy gate.

Runs a small grid of kernels in two modes -- full detailed simulation
and checkpointed interval sampling -- and asserts that every sampled
IPC lies within its own reported 95% confidence interval of the
full-run value.  A sampled estimator whose error bars do not cover
ground truth is worse than no estimator: downstream speedup claims
inherit the bias silently.

    python scripts/check_sampling.py            # gate (CI)
    python scripts/check_sampling.py --report   # print the table only
"""

from __future__ import annotations

import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.harness.configs import (  # noqa: E402
    baseline_lsq_config,
    baseline_sfc_mdt_config,
)
from repro.perf import measure_sampling  # noqa: E402

BENCHMARKS = ("gzip", "mcf", "equake")
SCALE = 30_000
INTERVALS = 8
WARMUP = 500
INTERVAL = 2_000


def main() -> int:
    failures = 0
    for config in (baseline_sfc_mdt_config(), baseline_lsq_config()):
        report = measure_sampling(list(BENCHMARKS), config, SCALE,
                                  intervals=INTERVALS,
                                  warmup_insts=WARMUP,
                                  interval_insts=INTERVAL)
        print(report.format())
        if "--report" in sys.argv[1:]:
            continue
        for sample in report.samples:
            if not sample.within_ci:
                failures += 1
                print(f"FAIL: {sample.benchmark}/{sample.config_name}: "
                      f"sampled {sample.sampled_ipc:.4f} +/- "
                      f"{sample.sampled_ci:.4f} does not cover full "
                      f"{sample.full_ipc:.4f}")
    if failures:
        print(f"FAIL: {failures} sampled cell(s) outside their "
              f"reported confidence interval")
        return 1
    if "--report" not in sys.argv[1:]:
        print("ok: every sampled IPC within its 95% CI of the "
              "full-run value")
    return 0


if __name__ == "__main__":
    sys.exit(main())
