#!/usr/bin/env python
"""Regenerate the committed RV32 conformance corpus.

Writes the ``.hex`` programs under ``src/repro/workloads/riscv/`` (the
``riscv-conformance`` suite), the test fixture under
``tests/data/riscv/``, and ``examples/hazard.hex``.  Every program is
assembled here from explicit RV32 instructions via
:func:`repro.isa.riscv.encode`, so the corpus is deterministic and
re-runnable; each emitted word is decode/encode round-trip checked and
each program is executed on the interpreter oracle before being
written.

Usage: ``PYTHONPATH=src python scripts/gen_riscv_corpus.py``
"""

from __future__ import annotations

import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.isa.interp import Interpreter  # noqa: E402
from repro.isa.program import Program  # noqa: E402
from repro.isa.riscv import RVAssembler as RVAsm  # noqa: E402

REPO = os.path.abspath(os.path.join(os.path.dirname(__file__), ".."))
CORPUS_DIR = os.path.join(REPO, "src", "repro", "workloads", "riscv")
FIXTURE_DIR = os.path.join(REPO, "tests", "data", "riscv")
EXAMPLES_DIR = os.path.join(REPO, "examples")


# --- programs ---------------------------------------------------------------

#: The synapse32 store-to-load hazard program (SNIPPETS.md snippet 1),
#: ported verbatim: four same-address store->load pairs through x4's
#: buffer at 0x10000000, with an ecall appended so the stream halts.
STL_HAZARD_WORDS = [
    0x10000237,  # lui   x4, 0x10000
    0x00422023,  # sw    x4, 0(x4)     <- store/load same address
    0x00022503,  # lw    x10, 0(x4)
    0x08D00593,  # addi  x11, x0, 141
    0x00B22223,  # sw    x11, 4(x4)
    0x00422603,  # lw    x12, 4(x4)
    0x00100693,  # addi  x13, x0, 1
    0x00D22423,  # sw    x13, 8(x4)
    0x00822703,  # lw    x14, 8(x4)
    0x00170713,  # addi  x14, x14, 1
    0x00200793,  # addi  x15, x0, 2
    0x00F22623,  # sw    x15, 12(x4)
    0x00C22803,  # lw    x16, 12(x4)
    0x00180813,  # addi  x16, x16, 1
    0x01022623,  # sw    x16, 12(x4)
    0x00000013,  # nop
    0x00000073,  # ecall (halt)
]


def build_stl_hazard():
    return STL_HAZARD_WORDS


def build_partial_overlap():
    """Narrow stores under wide loads and wide stores under narrow
    loads, at every byte offset -- the SFC partial-forwarding corner."""
    a = RVAsm()
    a.emit("lui", rd=1, imm=0x2000)        # x1 = 0x2000 buffer
    a.emit("addi", rd=20, rs1=0, imm=0)    # x20 = checksum
    # sw under lb/lbu at offsets 0..3 and lh/lhu at 0/2.
    a.li32(2, 0xDEADBEEF)                  # x2 = 0xdeadbeef
    a.emit("sw", rs1=1, rs2=2, imm=0)
    for off in range(4):
        a.emit("lb", rd=3, rs1=1, imm=off)
        a.emit("add", rd=20, rs1=20, rs2=3)
        a.emit("lbu", rd=3, rs1=1, imm=off)
        a.emit("add", rd=20, rs1=20, rs2=3)
    for off in (0, 2):
        a.emit("lh", rd=3, rs1=1, imm=off)
        a.emit("add", rd=20, rs1=20, rs2=3)
        a.emit("lhu", rd=3, rs1=1, imm=off)
        a.emit("add", rd=20, rs1=20, rs2=3)
    # sb at each offset under a full-word lw.
    a.emit("addi", rd=4, rs1=0, imm=0x51)
    for off in range(4):
        a.emit("sb", rs1=1, rs2=4, imm=8 + off)
        a.emit("lw", rd=5, rs1=1, imm=8)
        a.emit("add", rd=20, rs1=20, rs2=5)
        a.emit("addi", rd=4, rs1=4, imm=0x11)
    # sh at both halves under lw; then mixed sb+sh composition.
    a.emit("addi", rd=6, rs1=0, imm=-2)          # 0xfffffffe
    a.emit("sh", rs1=1, rs2=6, imm=16)
    a.emit("lw", rd=7, rs1=1, imm=16)
    a.emit("add", rd=20, rs1=20, rs2=7)
    a.emit("sh", rs1=1, rs2=6, imm=18)
    a.emit("lw", rd=7, rs1=1, imm=16)
    a.emit("add", rd=20, rs1=20, rs2=7)
    a.emit("sb", rs1=1, rs2=4, imm=17)
    a.emit("lh", rd=8, rs1=1, imm=16)
    a.emit("lhu", rd=9, rs1=1, imm=16)
    a.emit("add", rd=20, rs1=20, rs2=8)
    a.emit("add", rd=20, rs1=20, rs2=9)
    a.emit("ecall")
    return a.words()


def build_load_use_chain():
    """A pointer chase: build a linked list in memory, then walk it with
    back-to-back dependent loads (load-use on the address register)."""
    a = RVAsm()
    a.emit("lui", rd=1, imm=0x3000)        # x1 = list head
    a.emit("addi", rd=2, rs1=1, imm=0)     # x2 = node cursor
    a.emit("addi", rd=3, rs1=0, imm=24)    # x3 = node count
    a.label("build")
    a.emit("addi", rd=4, rs1=2, imm=16)    # next node
    a.emit("sw", rs1=2, rs2=4, imm=0)      # node.next = next
    a.emit("sw", rs1=2, rs2=3, imm=4)      # node.value = countdown
    a.emit("addi", rd=2, rs1=4, imm=0)
    a.emit("addi", rd=3, rs1=3, imm=-1)
    a.branch("bne", 3, 0, "build")
    a.emit("sw", rs1=2, rs2=0, imm=0)      # terminate list
    a.emit("sw", rs1=2, rs2=0, imm=4)
    a.emit("addi", rd=2, rs1=1, imm=0)     # restart at head
    a.emit("addi", rd=10, rs1=0, imm=0)    # x10 = sum of values
    a.label("walk")
    a.emit("lw", rd=5, rs1=2, imm=4)       # value
    a.emit("add", rd=10, rs1=10, rs2=5)
    a.emit("lw", rd=2, rs1=2, imm=0)       # load-use: next -> address
    a.branch("bne", 2, 0, "walk")
    a.emit("ecall")
    return a.words()


def build_alias_loop():
    """Two differently computed base registers aliasing the same buffer;
    the loop keeps a store->load dependence flowing through both."""
    a = RVAsm()
    a.emit("lui", rd=1, imm=0x4000)        # x1 = buffer
    a.emit("addi", rd=2, rs1=1, imm=512)
    a.emit("addi", rd=2, rs1=2, imm=-512)  # x2 aliases x1
    a.emit("addi", rd=3, rs1=0, imm=0)     # x3 = i
    a.emit("addi", rd=4, rs1=0, imm=32)    # x4 = trip count
    a.emit("addi", rd=10, rs1=0, imm=1)    # x10 = running value
    a.label("loop")
    a.emit("slli", rd=5, rs1=3, imm=2)     # byte offset = 4*i
    a.emit("add", rd=6, rs1=1, rs2=5)      # via x1
    a.emit("add", rd=7, rs1=2, rs2=5)      # via x2 (same address)
    a.emit("sw", rs1=6, rs2=10, imm=0)
    a.emit("lw", rd=11, rs1=7, imm=0)      # aliased load
    a.emit("add", rd=10, rs1=10, rs2=11)
    a.emit("sw", rs1=7, rs2=10, imm=4)     # overlap into next slot
    a.emit("lw", rd=12, rs1=6, imm=4)
    a.emit("add", rd=10, rs1=10, rs2=12)
    a.emit("addi", rd=3, rs1=3, imm=1)
    a.branch("bne", 3, 4, "loop")
    a.emit("ecall")
    return a.words()


def build_mixed_width():
    """Mixed-width traffic plus the RV32 arithmetic corners (shift
    masking, division edge cases, unsigned compares) flowing through
    memory so every subsystem sees the values."""
    a = RVAsm()
    a.emit("lui", rd=1, imm=0x5000)
    # INT_MIN, -1, and friends via memory round-trips.
    a.emit("lui", rd=2, imm=-(1 << 31) & 0xFFFFF000)     # x2 = 0x80000000
    a.emit("sw", rs1=1, rs2=2, imm=0)
    a.emit("lw", rd=3, rs1=1, imm=0)
    a.emit("addi", rd=4, rs1=0, imm=-1)
    a.emit("div", rd=5, rs1=3, rs2=4)      # INT_MIN / -1 -> INT_MIN
    a.emit("rem", rd=6, rs1=3, rs2=4)      # INT_MIN % -1 -> 0
    a.emit("div", rd=7, rs1=3, rs2=0)      # div by zero -> -1
    a.emit("divu", rd=8, rs1=3, rs2=0)     # divu by zero -> 2**32-1
    a.emit("rem", rd=9, rs1=3, rs2=0)      # rem by zero -> dividend
    a.emit("sw", rs1=1, rs2=5, imm=4)
    a.emit("sw", rs1=1, rs2=7, imm=8)
    a.emit("sw", rs1=1, rs2=8, imm=12)
    a.emit("sw", rs1=1, rs2=9, imm=16)
    # Shift-amount masking: shifts use only the low 5 bits of rs2.
    a.emit("addi", rd=10, rs1=0, imm=33)
    a.emit("addi", rd=11, rs1=0, imm=7)
    a.emit("sll", rd=12, rs1=11, rs2=10)   # 7 << (33 & 31) = 14
    a.emit("srl", rd=13, rs1=2, rs2=10)    # unsigned >> 1
    a.emit("sra", rd=14, rs1=2, rs2=10)    # signed >> 1
    a.emit("sw", rs1=1, rs2=12, imm=20)
    a.emit("sw", rs1=1, rs2=13, imm=24)
    a.emit("sw", rs1=1, rs2=14, imm=28)
    # Unsigned comparison of "negative" values.
    a.emit("sltu", rd=15, rs1=11, rs2=2)   # 7 < 0x80000000 unsigned -> 1
    a.emit("sltiu", rd=16, rs1=2, imm=-1)  # 0x80000000 < 0xffffffff -> 1
    a.emit("slt", rd=17, rs1=2, rs2=11)    # INT_MIN < 7 signed -> 1
    a.emit("sb", rs1=1, rs2=15, imm=32)
    a.emit("sb", rs1=1, rs2=16, imm=33)
    a.emit("sb", rs1=1, rs2=17, imm=34)
    a.emit("sb", rs1=1, rs2=4, imm=35)     # 0xff byte
    a.emit("lw", rd=18, rs1=1, imm=32)     # reassemble the four bytes
    # Narrow signed reloads of wide negative data.
    a.emit("lb", rd=19, rs1=1, imm=3)      # top byte of 0x80000000 -> -128
    a.emit("lh", rd=20, rs1=1, imm=2)      # top half -> -32768
    a.emit("lhu", rd=21, rs1=1, imm=2)     # zero-extended half
    a.emit("mulh", rd=22, rs1=3, rs2=4)    # high word of INT_MIN * -1
    a.emit("mulhu", rd=23, rs1=3, rs2=4)
    a.emit("mulhsu", rd=24, rs1=3, rs2=4)
    a.emit("ecall")
    return a.words()


def build_auipc_jalr():
    """PC-relative addressing and an indirect call/return pair: auipc
    materialises a code address, jalr calls through it and returns."""
    a = RVAsm()
    a.emit("lui", rd=1, imm=0x6000)
    a.emit("auipc", rd=2, imm=0)           # x2 = pc of this instruction
    a.emit("addi", rd=10, rs1=0, imm=5)
    a.jal(5, "func")                       # x5 = return address
    a.emit("sw", rs1=1, rs2=10, imm=0)     # store f(5)
    a.emit("addi", rd=10, rs1=10, imm=100)
    a.jal(5, "func")
    a.emit("sw", rs1=1, rs2=10, imm=4)
    a.emit("lw", rd=11, rs1=1, imm=0)
    a.emit("lw", rd=12, rs1=1, imm=4)
    a.emit("add", rd=13, rs1=11, rs2=12)
    a.emit("ecall")
    a.label("func")                        # f(x10) = 3*x10 + 1, ret via x5
    a.emit("slli", rd=6, rs1=10, imm=1)
    a.emit("add", rd=10, rs1=10, rs2=6)
    a.emit("addi", rd=10, rs1=10, imm=1)
    a.emit("jalr", rd=0, rs1=5, imm=0)     # return
    return a.words()


CORPUS = {
    "stl_hazard": build_stl_hazard,
    "partial_overlap": build_partial_overlap,
    "load_use_chain": build_load_use_chain,
    "alias_loop": build_alias_loop,
    "mixed_width": build_mixed_width,
    "auipc_jalr": build_auipc_jalr,
}

#: Final architectural register values the synapse32 program must
#: produce (from the upstream testbench): x10 = the stored base address,
#: x12 = 141, x14 = 1+1, x16 = 2+1.
STL_HAZARD_EXPECTED = {"x4": 0x10000000, "x10": 0x10000000, "x12": 141,
                       "x13": 1, "x14": 2, "x15": 2, "x16": 3}


def write_hex(path, words, title):
    lines = [f"# {title}", "# generated by scripts/gen_riscv_corpus.py"]
    prog = Program.from_riscv(words, name=os.path.basename(path))
    for word, inst in zip(words, prog.instructions):
        lines.append(f"{word:08x}  # {inst!r}")
    with open(path, "w") as fh:
        fh.write("\n".join(lines) + "\n")
    return prog


def main():
    os.makedirs(CORPUS_DIR, exist_ok=True)
    os.makedirs(FIXTURE_DIR, exist_ok=True)
    os.makedirs(EXAMPLES_DIR, exist_ok=True)
    for name, builder in sorted(CORPUS.items()):
        words = builder()
        path = os.path.join(CORPUS_DIR, f"{name}.hex")
        prog = write_hex(path, words, f"riscv-conformance: {name}")
        interp = Interpreter(prog)
        trace = interp.run(max_instructions=200_000)
        print(f"{name}: {len(words)} words, {len(trace)} retired, "
              f"digest {prog.digest()[:12]}")

    # Test fixture: the hazard program plus its expected registers.
    fixture = os.path.join(FIXTURE_DIR, "stl_hazard.hex")
    prog = write_hex(fixture, STL_HAZARD_WORDS,
                     "synapse32 store-to-load hazard program")
    interp = Interpreter(prog)
    interp.run()
    for reg, want in STL_HAZARD_EXPECTED.items():
        got = interp.regs[int(reg[1:])]
        assert got == want, f"{reg}: got {got:#x}, want {want:#x}"
    with open(os.path.join(FIXTURE_DIR, "stl_hazard_expected.json"),
              "w") as fh:
        json.dump(STL_HAZARD_EXPECTED, fh, indent=2, sort_keys=True)
        fh.write("\n")

    # README quickstart example.
    write_hex(os.path.join(EXAMPLES_DIR, "hazard.hex"), STL_HAZARD_WORDS,
              "store-to-load hazard demo (try: repro run --riscv "
              "examples/hazard.hex)")
    print("corpus written")


if __name__ == "__main__":
    main()
