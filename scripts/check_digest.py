#!/usr/bin/env python
"""Bit-exactness gate: the observability layer must not perturb results.

Runs the fig5 + fig6 grid (every benchmark under all four baseline and
aggressive configurations) at a small scale and compares the manifest
digest -- a SHA-256 over every architected outcome (config, cycles, IPC,
all counters) -- against the committed reference.  Also proves that an
attached pipetrace sampler (ring buffer + epoch snapshots) leaves a
run's cycles and counters bit-identical.

    python scripts/check_digest.py             # verify
    python scripts/check_digest.py --update    # re-pin after an
                                               # intentional arch change
"""

from __future__ import annotations

import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro import Processor  # noqa: E402
from repro.harness.configs import (  # noqa: E402
    aggressive_lsq_config,
    aggressive_sfc_mdt_config,
    baseline_lsq_config,
    baseline_sfc_mdt_config,
)
from repro.harness.experiment import ExperimentRunner  # noqa: E402
from repro.perf import manifest_digest  # noqa: E402
from repro.pipeline.pipetrace import PipeTracer  # noqa: E402
from repro.workloads import ALL_BENCHMARKS, suites  # noqa: E402

REFERENCE = ROOT / "benchmarks" / "results" / "digest_fig56.txt"
SCALE = 1_000


def grid_digest() -> str:
    runner = ExperimentRunner(scale=SCALE, jobs=1, use_cache=False)
    configs = [baseline_lsq_config(), baseline_sfc_mdt_config(),
               aggressive_lsq_config(), aggressive_sfc_mdt_config()]
    runner.run_suite(sorted(ALL_BENCHMARKS), configs)
    return manifest_digest(runner.manifest)


def check_tracer_is_invisible() -> bool:
    """A sampled tracer must not change any architected outcome."""
    program = suites.build("gap", SCALE)
    plain = Processor(program, baseline_sfc_mdt_config()).run()
    traced_proc = Processor(program, baseline_sfc_mdt_config())
    PipeTracer(traced_proc, ring_size=64, epoch_cycles=100)
    traced = traced_proc.run()
    if plain.cycles != traced.cycles or \
            plain.counters.as_dict() != traced.counters.as_dict():
        print("FAIL: attaching a PipeTracer changed simulation results")
        return False
    print("ok: sampled pipetrace leaves cycles and counters bit-exact")
    return True


def main() -> int:
    digest = grid_digest()
    if "--update" in sys.argv[1:]:
        REFERENCE.write_text(digest + "\n")
        print(f"pinned {digest} -> {REFERENCE}")
        return 0
    if not REFERENCE.exists():
        print(f"FAIL: no reference digest at {REFERENCE}; "
              f"run with --update to pin one")
        return 1
    expected = REFERENCE.read_text().strip()
    if digest != expected:
        print(f"FAIL: manifest digest drifted\n  expected {expected}\n"
              f"  got      {digest}\n"
              f"Architected outcomes changed; if intentional, re-pin "
              f"with --update.")
        return 1
    print(f"ok: fig5+fig6 grid digest unchanged ({digest[:16]}...)")
    if not check_tracer_is_invisible():
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
