#!/usr/bin/env python
"""Fast-forward engine gate: bit-exactness plus minimum speedup.

Runs each kernel through the per-instruction reference engine
(``Interpreter.fast_forward_reference``) and the predecoded
batch-dispatch engine (``Interpreter.fast_forward``), cold and warm,
and asserts that

* the final state is bit-identical -- registers, pc, retire count,
  memory digest, and the warm bpred/cache capsules; and
* the batch engine is at least MIN_SPEEDUP x faster on every cell.

A fast-forward engine that drifts from the reference silently corrupts
every checkpoint captured through it, so exactness is gated before
speed.

    python scripts/check_fastforward.py            # gate (CI)
    python scripts/check_fastforward.py --report   # print the table only
"""

from __future__ import annotations

import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.perf import measure_fastforward  # noqa: E402

BENCHMARKS = ("gzip", "mcf", "equake")
SCALE = 300_000
#: The ROADMAP target is >= 3x over the reference engine; CI gates a
#: little below the measured floor to absorb shared-runner jitter.
MIN_SPEEDUP = 2.5


def main() -> int:
    report = measure_fastforward(list(BENCHMARKS), SCALE)
    print(report.format())
    if "--report" in sys.argv[1:]:
        return 0
    failures = 0
    for sample in report.samples:
        if not sample.bit_exact:
            failures += 1
            print(f"FAIL: {sample.benchmark} "
                  f"(warm={sample.warm}): batch engine state diverges "
                  f"from the reference engine")
    if failures:
        return 1
    if report.min_speedup < MIN_SPEEDUP:
        print(f"FAIL: min speedup {report.min_speedup:.2f}x < "
              f"{MIN_SPEEDUP}x")
        return 1
    print(f"ok: bit-exact on every cell; min speedup "
          f"{report.min_speedup:.1f}x >= {MIN_SPEEDUP}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
