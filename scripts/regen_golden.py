#!/usr/bin/env python
"""Regenerate the RunRecord golden file pinned by tests/test_obs.py.

Run this (from the repository root) only after a deliberate schema
change, together with a SCHEMA_VERSION bump:

    python scripts/regen_golden.py
"""

from __future__ import annotations

import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))
sys.path.insert(0, str(ROOT))

from repro import Processor  # noqa: E402
from repro.harness import baseline_sfc_mdt_config  # noqa: E402
from repro.obs.runrecord import RunRecord  # noqa: E402
from tests.conftest import assemble, counted_loop_program  # noqa: E402

GOLDEN = ROOT / "tests" / "data" / "runrecord.golden.json"


def main() -> int:
    result = Processor(assemble(counted_loop_program),
                       baseline_sfc_mdt_config()).run()
    record = RunRecord.from_sim_result(result, benchmark="counted-loop")
    GOLDEN.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN.write_text(record.to_json(indent=2) + "\n")
    print(f"wrote {GOLDEN}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
