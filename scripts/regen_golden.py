#!/usr/bin/env python
"""Regenerate the RunRecord golden files pinned by tests/test_obs.py.

Two goldens: the single-core v2 record (``runrecord.golden.json``) and
the multicore v3 record (``runrecord_v3.golden.json``, a deterministic
2-core litmus run).  Run this (from the repository root) only after a
deliberate schema change, together with the matching version bump:

    python scripts/regen_golden.py
"""

from __future__ import annotations

import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))
sys.path.insert(0, str(ROOT))

from repro import Processor  # noqa: E402
from repro.harness import baseline_sfc_mdt_config  # noqa: E402
from repro.obs.runrecord import RunRecord  # noqa: E402
from repro.verify.litmus_oracle import run_litmus_test  # noqa: E402
from tests.conftest import assemble, counted_loop_program  # noqa: E402

GOLDEN = ROOT / "tests" / "data" / "runrecord.golden.json"
GOLDEN_V3 = ROOT / "tests" / "data" / "runrecord_v3.golden.json"


def main() -> int:
    result = Processor(assemble(counted_loop_program),
                       baseline_sfc_mdt_config()).run()
    record = RunRecord.from_sim_result(result, benchmark="counted-loop")
    GOLDEN.parent.mkdir(parents=True, exist_ok=True)
    GOLDEN.write_text(record.to_json(indent=2) + "\n")
    print(f"wrote {GOLDEN}")

    litmus = run_litmus_test("mp")
    record_v3 = RunRecord.from_system_result(litmus.system_result,
                                             benchmark="litmus-mp")
    GOLDEN_V3.write_text(record_v3.to_json(indent=2) + "\n")
    print(f"wrote {GOLDEN_V3}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
