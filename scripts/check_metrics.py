#!/usr/bin/env python
"""Metric-declaration lint: every counter the simulator increments must
be declared in the metric registry (``repro.obs.metrics``).

Scans ``src/`` for ``counters.incr("name")`` / ``.cell("name")`` /
``.set("name")`` call sites (including f-string names, whose ``{...}``
holes are matched as wildcards against the registry) and fails if any
referenced counter has no declaration.  Run from the repository root:

    python scripts/check_metrics.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

import repro  # noqa: E402,F401  (populates the metric registry)
from repro.obs.metrics import METRICS  # noqa: E402

#: ``.incr("x")``, ``.cell("x")``, ``.set("x")`` with a literal or
#: f-string name argument.
CALL = re.compile(r"\.(?:incr|cell|set)\(\s*(f?)\"([^\"]+)\"")


def referenced_names():
    """Yield (path, lineno, is_fstring, name) for every call site."""
    for path in sorted((ROOT / "src").rglob("*.py")):
        for lineno, line in enumerate(path.read_text().splitlines(), 1):
            for is_f, name in CALL.findall(line):
                yield path.relative_to(ROOT), lineno, bool(is_f), name


#: Multicore runs namespace per-core values as ``core<N>_<base>``; the
#: base name is what must be declared (the registry resolves the prefix
#: the same way).  Covers both literal (``core0_``) and f-string
#: (``core{core_id}_``) spellings.
CORE_PREFIX = re.compile(r"^core(?:\d+|\{[^}]*\})_")


def matches_declared(name: str, is_fstring: bool) -> bool:
    name = CORE_PREFIX.sub("", name)
    if not is_fstring:
        return name in METRICS
    # An f-string name like f"{level}_misses": treat each interpolation
    # hole as a wildcard and require at least one declared match.
    pattern = re.compile(
        re.sub(r"\\\{[^}]*\\\}", r"[a-z0-9_]+", re.escape(name)) + r"\Z")
    return any(pattern.match(declared) for declared in METRICS.names())


def main() -> int:
    failures = []
    checked = 0
    for path, lineno, is_fstring, name in referenced_names():
        checked += 1
        if not matches_declared(name, is_fstring):
            failures.append(f"{path}:{lineno}: counter {name!r} is "
                            f"incremented but not declared")
    if failures:
        print("\n".join(failures))
        print(f"\n{len(failures)} undeclared counter reference(s) "
              f"(out of {checked} call sites; {len(METRICS)} metrics "
              f"declared)")
        return 1
    print(f"ok: {checked} counter call sites all declared "
          f"({len(METRICS)} metrics in registry)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
