"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.harness.configs import (
    aggressive_lsq_config,
    aggressive_sfc_mdt_config,
    baseline_lsq_config,
    baseline_sfc_mdt_config,
)
from repro.isa import Assembler


@pytest.fixture
def asm():
    return Assembler()


def assemble(build_fn, name="test"):
    """Build a program from a function that populates an Assembler."""
    a = Assembler()
    build_fn(a)
    return a.build(name=name)


def store_load_program(a: Assembler) -> None:
    """Store then load the same address; result in r3."""
    a.li("r1", 0x1000)
    a.li("r2", 42)
    a.sd("r2", "r1")
    a.ld("r3", "r1")
    a.halt()


def counted_loop_program(a: Assembler, n: int = 50) -> None:
    """Sum 0..n-1 into r6 through memory."""
    a.li("r1", 0x2000)
    a.li("r2", 0)
    a.li("r3", n)
    a.li("r6", 0)
    a.label("loop")
    a.slli("r4", "r2", 3)
    a.add("r4", "r4", "r1")
    a.sd("r2", "r4")
    a.ld("r5", "r4")
    a.add("r6", "r6", "r5")
    a.addi("r2", "r2", 1)
    a.bne("r2", "r3", "loop")
    a.halt()


ALL_CONFIG_BUILDERS = [
    baseline_lsq_config,
    baseline_sfc_mdt_config,
    aggressive_lsq_config,
    aggressive_sfc_mdt_config,
]


@pytest.fixture(params=["baseline_lsq", "baseline_sfc_mdt",
                        "aggressive_lsq", "aggressive_sfc_mdt"])
def any_config(request):
    """One of the four core processor configurations."""
    index = ["baseline_lsq", "baseline_sfc_mdt", "aggressive_lsq",
             "aggressive_sfc_mdt"].index(request.param)
    return ALL_CONFIG_BUILDERS[index]()
