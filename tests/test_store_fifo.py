"""Unit tests for the store FIFO."""

import pytest

from repro.core import StoreFifo


class TestStoreFifo:
    def test_dispatch_fill_retire(self):
        fifo = StoreFifo(4)
        assert fifo.dispatch(1)
        fifo.fill(1, addr=0x100, size=8, data=42)
        slot = fifo.retire(1)
        assert (slot.addr, slot.size, slot.data) == (0x100, 8, 42)
        assert len(fifo) == 0

    def test_in_order_retirement_enforced(self):
        fifo = StoreFifo(4)
        fifo.dispatch(1)
        fifo.dispatch(2)
        with pytest.raises(RuntimeError):
            fifo.retire(2)

    def test_capacity(self):
        fifo = StoreFifo(2)
        assert fifo.dispatch(1)
        assert fifo.dispatch(2)
        assert fifo.full
        assert not fifo.dispatch(3)

    def test_flush_after_removes_younger(self):
        fifo = StoreFifo(8)
        for seq in (1, 5, 9):
            fifo.dispatch(seq)
        assert fifo.flush_after(5) == 1
        assert len(fifo) == 2
        fifo.fill(1, 0, 8, 0)
        fifo.retire(1)
        fifo.fill(5, 0, 8, 0)
        fifo.retire(5)

    def test_flush_after_everything(self):
        fifo = StoreFifo(8)
        fifo.dispatch(1)
        fifo.dispatch(2)
        assert fifo.flush_after(0) == 2
        assert len(fifo) == 0

    def test_flush_all(self):
        fifo = StoreFifo(8)
        fifo.dispatch(1)
        fifo.flush_all()
        assert len(fifo) == 0
        assert fifo.dispatch(2)

    def test_flushed_slot_can_be_redispatched(self):
        fifo = StoreFifo(8)
        fifo.dispatch(1)
        fifo.dispatch(2)
        fifo.flush_after(1)
        assert fifo.dispatch(3)
        fifo.fill(3, 0x8, 4, 7)

    def test_unfilled_slot_flagged(self):
        fifo = StoreFifo(4)
        fifo.dispatch(1)
        slot = fifo.retire(1)
        assert not slot.filled

    def test_retire_empty_raises(self):
        fifo = StoreFifo(4)
        with pytest.raises(RuntimeError):
            fifo.retire(1)


class TestWrongPathFullSquash:
    """A wrong-path flush that squashes every in-flight store must leave
    the FIFO indistinguishable from a fresh one."""

    def test_flush_after_all_filled_stores(self):
        fifo = StoreFifo(4)
        for seq in (3, 7, 11):
            assert fifo.dispatch(seq)
            fifo.fill(seq, addr=0x100 + seq * 8, size=8, data=seq)
        # The recovery point is older than every in-flight store.
        assert fifo.flush_after(2) == 3
        assert len(fifo) == 0
        assert not fifo.full

    def test_fifo_usable_after_total_squash(self):
        fifo = StoreFifo(2)
        fifo.dispatch(5)
        fifo.dispatch(6)
        assert fifo.full
        fifo.flush_after(0)
        # Post-flush the full capacity is available again, and the
        # normal dispatch/fill/retire protocol works on new sequence
        # numbers (the squashed ones never retire).
        assert fifo.dispatch(10)
        assert fifo.dispatch(11)
        fifo.fill(10, addr=0x200, size=4, data=1)
        fifo.fill(11, addr=0x208, size=4, data=2)
        assert fifo.retire(10).data == 1
        assert fifo.retire(11).data == 2
        assert len(fifo) == 0

    def test_squashed_store_cannot_retire(self):
        fifo = StoreFifo(4)
        fifo.dispatch(1)
        fifo.fill(1, addr=0x100, size=8, data=9)
        fifo.flush_after(0)
        with pytest.raises(RuntimeError):
            fifo.retire(1)

    def test_flush_all_with_filled_slots(self):
        fifo = StoreFifo(4)
        for seq in (1, 2, 3):
            fifo.dispatch(seq)
            fifo.fill(seq, addr=0x100, size=8, data=seq)
        fifo.flush_all()
        assert len(fifo) == 0
        with pytest.raises(RuntimeError):
            fifo.retire(1)
