"""Failure-injection tests for the fault-tolerant experiment engine.

Each test swaps the engine's per-cell worker function (``_cell_fn``)
for a double that crashes, hangs, or raises on marked configurations,
then proves the recovery path: every other cell still completes and
checkpoints to the cache, exactly one structured failure entry lands in
the manifest, and a resumed run simulates only the missing cell.

The doubles live at module level so the process pool can pickle them;
they dispatch on ``config.name`` prefixes.  The marked configs carry
distinct parameter payloads (``rob_size``) so in-batch cache-key dedup
does not merge a faulty cell with a healthy one.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from pathlib import Path

import pytest

from repro.harness import baseline_lsq_config
from repro.harness.experiment import ExperimentRunner, _simulate_cell

SCALE = 800
BENCH = "gap"

# The doubles are pickled by reference into forked workers; under a
# spawn start method the child would have to re-import this test module,
# which is not on its path.
fork_only = pytest.mark.skipif(
    multiprocessing.get_start_method() != "fork",
    reason="worker doubles require the fork start method")


def cfg(name: str, rob: int):
    """A config whose payload (not just name) is unique in the grid."""
    config = baseline_lsq_config(name=name)
    config.rob_size = rob
    return config


def _crash_on_marked(program, trace, config):
    if config.name.startswith("crash"):
        os._exit(23)
    return _simulate_cell(program, trace, config)


def _hang_on_marked(program, trace, config):
    if config.name.startswith("hang"):
        time.sleep(60)
    return _simulate_cell(program, trace, config)


def _raise_on_marked(program, trace, config):
    if config.name.startswith("boom"):
        raise RuntimeError("injected cell failure")
    return _simulate_cell(program, trace, config)


def _raise_once_on_marked(program, trace, config):
    """Raises on the marked cell's first attempt only: the sentinel
    file (path via environment, inherited by workers) records that the
    first attempt happened."""
    if config.name.startswith("flaky"):
        sentinel = Path(os.environ["REPRO_TEST_FLAKY_SENTINEL"])
        try:
            fd = os.open(sentinel, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            pass  # retry attempt: succeed normally
        else:
            os.close(fd)
            raise RuntimeError("injected first-attempt failure")
    return _simulate_cell(program, trace, config)


def _chaos_on_marked(program, trace, config):
    if config.name.startswith("crash"):
        os._exit(23)
    if config.name.startswith("boom"):
        raise RuntimeError("injected cell failure")
    if config.name.startswith("hang"):
        time.sleep(60)
    return _simulate_cell(program, trace, config)


def _crash_once_on_marked(program, trace, config):
    if config.name.startswith("flaky"):
        sentinel = Path(os.environ["REPRO_TEST_FLAKY_SENTINEL"])
        try:
            fd = os.open(sentinel, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            pass
        else:
            os.close(fd)
            os._exit(23)
    return _simulate_cell(program, trace, config)


def runner(tmp_path, **kwargs):
    kwargs.setdefault("retry_backoff", 0.0)
    return ExperimentRunner(scale=SCALE, cache_dir=tmp_path / "cache",
                            **kwargs)


def failure_entries(engine):
    return [e for e in engine.manifest if e["status"] != "ok"]


@fork_only
class TestCrashRecovery:
    def test_crash_loses_only_the_crashing_cell(self, tmp_path):
        engine = runner(tmp_path, max_retries=1)
        engine._cell_fn = _crash_on_marked
        configs = [cfg("ok1", 128), cfg("crash-me", 64),
                   cfg("ok2", 96), cfg("ok3", 160)]
        results = engine.run_suite([BENCH], configs, jobs=2)

        assert set(results) == {(BENCH, "ok1"), (BENCH, "ok2"),
                                (BENCH, "ok3")}
        failures = failure_entries(engine)
        assert len(failures) == 1
        (entry,) = failures
        assert entry["config_name"] == "crash-me"
        assert entry["status"] == "failed"
        assert entry["attempts"] == 2  # first try + one retry
        assert "BrokenProcessPool" in entry["error"]
        # The three healthy cells checkpointed to cache as they
        # finished, despite the crash.
        cache_files = list((tmp_path / "cache").glob("*.json"))
        assert len(cache_files) == 3

    def test_resume_completes_only_the_missing_cell(self, tmp_path):
        configs = [cfg("ok1", 128), cfg("crash-me", 64),
                   cfg("ok2", 96), cfg("ok3", 160)]
        crashed = runner(tmp_path, max_retries=0)
        crashed._cell_fn = _crash_on_marked
        crashed.run_suite([BENCH], configs, jobs=2)
        assert len(failure_entries(crashed)) == 1

        resumed = runner(tmp_path)  # healthy worker this time
        results = resumed.run_suite([BENCH], configs, jobs=2)
        assert len(results) == 4
        assert resumed.cache_hits == 3, \
            "completed cells must come back from the checkpoint cache"
        assert resumed.cache_misses == 1, \
            "only the previously crashed cell may re-simulate"
        assert not failure_entries(resumed)

    def test_crash_once_then_succeed_on_retry(self, tmp_path,
                                              monkeypatch):
        monkeypatch.setenv("REPRO_TEST_FLAKY_SENTINEL",
                           str(tmp_path / "sentinel"))
        engine = runner(tmp_path, max_retries=2)
        engine._cell_fn = _crash_once_on_marked
        results = engine.run_suite(
            [BENCH], [cfg("flaky", 64), cfg("ok1", 128)], jobs=2)
        assert len(results) == 2
        assert not failure_entries(engine)
        assert all(e["status"] == "ok" for e in engine.manifest)


@fork_only
class TestHangRecovery:
    def test_hung_worker_times_out_and_grid_survives(self, tmp_path):
        engine = runner(tmp_path, max_retries=0, cell_timeout=0.5)
        engine._cell_fn = _hang_on_marked
        configs = [cfg("ok1", 128), cfg("hang-me", 64), cfg("ok2", 96)]
        started = time.monotonic()
        results = engine.run_suite([BENCH], configs, jobs=2)
        elapsed = time.monotonic() - started

        assert set(results) == {(BENCH, "ok1"), (BENCH, "ok2")}
        failures = failure_entries(engine)
        assert len(failures) == 1
        (entry,) = failures
        assert entry["config_name"] == "hang-me"
        assert entry["status"] == "timeout"
        assert entry["attempts"] == 1
        assert "timeout" in entry["error"]
        # The 60s sleeper was reclaimed, not waited out.
        assert elapsed < 30

    def test_timeout_resume_completes_only_the_hung_cell(self, tmp_path):
        configs = [cfg("ok1", 128), cfg("hang-me", 64), cfg("ok2", 96)]
        hung = runner(tmp_path, max_retries=0, cell_timeout=0.5)
        hung._cell_fn = _hang_on_marked
        hung.run_suite([BENCH], configs, jobs=2)

        resumed = runner(tmp_path)
        results = resumed.run_suite([BENCH], configs, jobs=2)
        assert len(results) == 3
        assert resumed.cache_hits == 2
        assert resumed.cache_misses == 1


@fork_only
class TestExceptionRetry:
    def test_persistent_exception_becomes_failure_entry(self, tmp_path):
        engine = runner(tmp_path, max_retries=2)
        engine._cell_fn = _raise_on_marked
        results = engine.run_suite(
            [BENCH], [cfg("boom", 64), cfg("ok1", 128)], jobs=2)
        assert set(results) == {(BENCH, "ok1")}
        (entry,) = failure_entries(engine)
        assert entry["status"] == "failed"
        assert entry["attempts"] == 3  # first try + two retries
        assert "RuntimeError: injected cell failure" in entry["error"]

    def test_transient_exception_retries_to_success(self, tmp_path,
                                                    monkeypatch):
        monkeypatch.setenv("REPRO_TEST_FLAKY_SENTINEL",
                           str(tmp_path / "sentinel"))
        engine = runner(tmp_path, max_retries=2)
        engine._cell_fn = _raise_once_on_marked
        results = engine.run_suite(
            [BENCH], [cfg("flaky", 64), cfg("ok1", 128)], jobs=2)
        assert len(results) == 2
        assert not failure_entries(engine)
        by_name = {e["config_name"]: e for e in engine.manifest}
        assert by_name["flaky"]["attempts"] == 2
        assert by_name["ok1"]["attempts"] == 1


class TestSerialPaths:
    def test_serial_exception_is_recorded_not_raised(self, tmp_path):
        engine = runner(tmp_path, max_retries=1)
        engine._cell_fn = _raise_on_marked
        results = engine.run_suite(
            [BENCH], [cfg("boom", 64), cfg("ok1", 128)], jobs=1)
        assert set(results) == {(BENCH, "ok1")}
        (entry,) = failure_entries(engine)
        assert entry["status"] == "failed"
        assert entry["attempts"] == 2

    def test_unusable_pool_degrades_to_serial(self, tmp_path):
        engine = runner(tmp_path, max_retries=0, max_pool_rebuilds=1)

        def broken_factory(workers):
            raise OSError("no processes available")

        engine._pool_factory = broken_factory
        configs = [cfg("ok1", 128), cfg("ok2", 64),
                   cfg("ok3", 96), cfg("ok4", 160)]
        results = engine.run_suite([BENCH], configs, jobs=4)
        assert len(results) == 4, \
            "serial degradation must complete the whole grid"
        assert not failure_entries(engine)
        assert all(e["engine"]["jobs"] == 4 for e in engine.manifest)


@fork_only
@pytest.mark.slow
class TestFaultStress:
    def test_mixed_fault_grid_converges(self, tmp_path):
        """A grid mixing a crasher, a raiser, a hanger, and healthy
        cells converges to N-3 results and 3 structured failures."""
        engine = runner(tmp_path, max_retries=1, cell_timeout=1.0,
                        max_pool_rebuilds=8)
        engine._cell_fn = _chaos_on_marked
        configs = [cfg("ok1", 128), cfg("crash-a", 64),
                   cfg("boom-b", 96), cfg("hang-c", 160),
                   cfg("ok2", 256), cfg("ok3", 48), cfg("ok4", 72)]
        results = engine.run_suite([BENCH], configs, jobs=3)
        assert set(results) == {(BENCH, n)
                                for n in ("ok1", "ok2", "ok3", "ok4")}
        failures = {e["config_name"]: e["status"]
                    for e in failure_entries(engine)}
        assert failures == {"crash-a": "failed", "boom-b": "failed",
                            "hang-c": "timeout"}
        # ...and a resumed healthy run completes exactly the missing 3.
        resumed = runner(tmp_path)
        resumed.run_suite([BENCH], configs, jobs=3)
        assert resumed.cache_hits == 4
        assert resumed.cache_misses == 3
        assert not failure_entries(resumed)
