"""Unit tests for the out-of-order scheduler."""

from repro.core import DependenceTagFile
from repro.isa import instructions as ops
from repro.isa.instructions import Instruction
from repro.pipeline import Scheduler
from repro.pipeline.dyninst import DynInst


def make_inst(seq, op=ops.ADD):
    return DynInst(seq, seq * 4, Instruction(op, rd=1, rs1=2, rs2=3),
                   trace_index=seq)


def make_scheduler(capacity=8):
    return Scheduler(capacity, DependenceTagFile())


class TestDispatchAndSelect:
    def test_ready_at_dispatch_selectable(self):
        sched = make_scheduler()
        inst = make_inst(1)
        sched.dispatch(inst, unready_phys=[])
        assert sched.select(4) == [inst]

    def test_waits_for_sources(self):
        sched = make_scheduler()
        inst = make_inst(1)
        sched.dispatch(inst, unready_phys=[40])
        assert sched.select(4) == []
        sched.on_phys_ready(40)
        assert sched.select(4) == [inst]

    def test_duplicate_source_counted_twice(self):
        sched = make_scheduler()
        inst = make_inst(1)
        sched.dispatch(inst, unready_phys=[40, 40])
        sched.on_phys_ready(40)
        assert sched.select(4) == [inst]

    def test_select_is_age_ordered(self):
        sched = make_scheduler()
        younger = make_inst(5)
        older = make_inst(2)
        sched.dispatch(younger, [])
        sched.dispatch(older, [])
        assert sched.select(2) == [older, younger]

    def test_select_width_limited(self):
        sched = make_scheduler()
        for seq in range(4):
            sched.dispatch(make_inst(seq), [])
        assert len(sched.select(2)) == 2
        assert len(sched.select(4)) == 2

    def test_capacity_tracking(self):
        sched = make_scheduler(capacity=2)
        sched.dispatch(make_inst(1), [])
        sched.dispatch(make_inst(2), [])
        assert not sched.has_space
        inst = sched.select(1)[0]
        sched.mark_issued(inst)
        assert sched.has_space


class TestDependenceTags:
    def test_consumer_waits_for_tag(self):
        tags = DependenceTagFile()
        sched = Scheduler(8, tags)
        tag = tags.allocate()
        inst = make_inst(1)
        inst.consumed_tag = tag
        sched.dispatch(inst, [])
        assert sched.select(4) == []
        tags.mark_ready(tag)
        sched.on_tag_ready(tag)
        assert sched.select(4) == [inst]

    def test_ready_tag_does_not_block(self):
        tags = DependenceTagFile()
        sched = Scheduler(8, tags)
        tag = tags.allocate()
        tags.mark_ready(tag)
        inst = make_inst(1)
        inst.consumed_tag = tag
        sched.dispatch(inst, [])
        assert sched.select(4) == [inst]

    def test_tag_and_phys_both_required(self):
        tags = DependenceTagFile()
        sched = Scheduler(8, tags)
        tag = tags.allocate()
        inst = make_inst(1)
        inst.consumed_tag = tag
        sched.dispatch(inst, [40])
        sched.on_phys_ready(40)
        assert sched.select(4) == []
        tags.mark_ready(tag)
        sched.on_tag_ready(tag)
        assert sched.select(4) == [inst]


class TestReplayAndStallBits:
    def test_replayed_inst_is_parked(self):
        sched = make_scheduler()
        inst = make_inst(1, ops.LD)
        sched.dispatch(inst, [])
        sched.mark_issued(sched.select(1)[0])
        sched.replay(inst)
        assert inst.stalled
        assert sched.select(4) == []

    def test_clear_stall_bits_releases(self):
        sched = make_scheduler()
        inst = make_inst(1, ops.LD)
        sched.dispatch(inst, [])
        sched.mark_issued(sched.select(1)[0])
        sched.replay(inst)
        sched.clear_stall_bits()
        assert sched.select(4) == [inst]

    def test_replay_restores_occupancy(self):
        sched = make_scheduler(capacity=1)
        inst = make_inst(1, ops.LD)
        sched.dispatch(inst, [])
        sched.mark_issued(sched.select(1)[0])
        assert sched.has_space
        sched.replay(inst)
        assert not sched.has_space

    def test_force_ready_for_rob_head(self):
        sched = make_scheduler()
        inst = make_inst(1, ops.LD)
        sched.dispatch(inst, [])
        sched.mark_issued(sched.select(1)[0])
        sched.replay(inst)
        sched.force_ready(inst)
        assert sched.select(4) == [inst]

    def test_replay_count_increments(self):
        sched = make_scheduler()
        inst = make_inst(1, ops.LD)
        sched.dispatch(inst, [])
        sched.mark_issued(sched.select(1)[0])
        sched.replay(inst)
        sched.clear_stall_bits()
        sched.mark_issued(sched.select(1)[0])
        sched.replay(inst)
        assert inst.replay_count == 2


class TestSquash:
    def test_squashed_not_selected(self):
        sched = make_scheduler()
        inst = make_inst(1)
        sched.dispatch(inst, [])
        inst.squashed = True
        sched.note_squashed(inst)
        assert sched.select(4) == []

    def test_squashed_waiter_dropped_on_wakeup(self):
        sched = make_scheduler()
        inst = make_inst(1)
        sched.dispatch(inst, [40])
        inst.squashed = True
        sched.note_squashed(inst)
        sched.on_phys_ready(40)
        assert sched.select(4) == []

    def test_note_squashed_restores_occupancy(self):
        sched = make_scheduler(capacity=1)
        inst = make_inst(1)
        sched.dispatch(inst, [])
        inst.squashed = True
        sched.note_squashed(inst)
        assert sched.has_space

    def test_squash_after_cleans_stalled_list(self):
        sched = make_scheduler()
        inst = make_inst(5, ops.LD)
        sched.dispatch(inst, [])
        sched.mark_issued(sched.select(1)[0])
        sched.replay(inst)
        inst.squashed = True
        sched.note_squashed(inst)
        sched.squash_after(2)
        assert sched.stalled_count == 0

    def test_flush_all(self):
        sched = make_scheduler()
        sched.dispatch(make_inst(1), [])
        sched.flush_all()
        assert sched.occupancy == 0
        assert sched.select(4) == []
