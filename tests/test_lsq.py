"""Unit tests for the idealized load/store queue baseline."""

from repro.core import LoadStoreQueue, LSQConfig
from repro.core.violations import TRUE_DEP
from repro.memory import MainMemory


def make_lsq(lq=8, sq=8):
    memory = MainMemory()
    return LoadStoreQueue(LSQConfig(lq, sq), memory), memory


class TestCapacities:
    def test_load_queue_capacity(self):
        lsq, _ = make_lsq(lq=2)
        lsq.dispatch_load(1, 0x10)
        lsq.dispatch_load(2, 0x14)
        assert not lsq.can_dispatch_load()

    def test_store_queue_capacity(self):
        lsq, _ = make_lsq(sq=1)
        lsq.dispatch_store(1, 0x10)
        assert not lsq.can_dispatch_store()

    def test_retire_frees_space(self):
        lsq, _ = make_lsq(lq=1)
        lsq.dispatch_load(1, 0x10)
        lsq.execute_load(1, 0x100, 8)
        lsq.retire_load(1)
        assert lsq.can_dispatch_load()


class TestForwarding:
    def test_forwards_from_completed_older_store(self):
        lsq, _ = make_lsq()
        lsq.dispatch_store(1, 0x10)
        lsq.dispatch_load(2, 0x14)
        lsq.execute_store(1, 0x100, 8, 0xABCD)
        value, forwarded = lsq.execute_load(2, 0x100, 8)
        assert value == 0xABCD and forwarded

    def test_reads_memory_when_no_store(self):
        lsq, memory = make_lsq()
        memory.write_int(0x100, 8, 77)
        lsq.dispatch_load(1, 0x10)
        value, forwarded = lsq.execute_load(1, 0x100, 8)
        assert value == 77 and not forwarded

    def test_youngest_older_store_wins(self):
        lsq, _ = make_lsq()
        lsq.dispatch_store(1, 0x10)
        lsq.dispatch_store(2, 0x14)
        lsq.dispatch_load(3, 0x18)
        lsq.execute_store(1, 0x100, 8, 1)
        lsq.execute_store(2, 0x100, 8, 2)
        value, _ = lsq.execute_load(3, 0x100, 8)
        assert value == 2

    def test_younger_store_not_forwarded(self):
        lsq, memory = make_lsq()
        memory.write_int(0x100, 8, 5)
        lsq.dispatch_load(1, 0x10)
        lsq.dispatch_store(2, 0x14)
        lsq.execute_store(2, 0x100, 8, 9)
        value, _ = lsq.execute_load(1, 0x100, 8)
        assert value == 5

    def test_byte_accurate_multi_store_assembly(self):
        lsq, memory = make_lsq()
        memory.write_int(0x100, 8, 0)
        lsq.dispatch_store(1, 0x10)
        lsq.dispatch_store(2, 0x14)
        lsq.dispatch_load(3, 0x18)
        lsq.execute_store(1, 0x100, 4, 0x11223344)
        lsq.execute_store(2, 0x104, 2, 0xAABB)
        value, forwarded = lsq.execute_load(3, 0x100, 8)
        assert value == 0x0000AABB11223344
        assert not forwarded        # top two bytes came from memory

    def test_partial_overlap_mixes_memory(self):
        lsq, memory = make_lsq()
        memory.write_int(0x100, 8, 0xFFFFFFFFFFFFFFFF)
        lsq.dispatch_store(1, 0x10)
        lsq.dispatch_load(2, 0x14)
        lsq.execute_store(1, 0x100, 1, 0x00)
        value, _ = lsq.execute_load(2, 0x100, 2)
        assert value == 0xFF00

    def test_uncompleted_store_invisible(self):
        lsq, memory = make_lsq()
        memory.write_int(0x100, 8, 3)
        lsq.dispatch_store(1, 0x10)      # never executes
        lsq.dispatch_load(2, 0x14)
        value, _ = lsq.execute_load(2, 0x100, 8)
        assert value == 3


class TestViolationDetection:
    def test_late_store_flags_younger_load(self):
        lsq, _ = make_lsq()
        lsq.dispatch_store(1, 0x10)
        lsq.dispatch_load(2, 0x14)
        lsq.execute_load(2, 0x100, 8)            # reads stale 0
        violations = lsq.execute_store(1, 0x100, 8, 42)
        assert len(violations) == 1
        assert violations[0].kind == TRUE_DEP
        assert violations[0].producer_pc == 0x10
        assert violations[0].consumer_pc == 0x14
        # Aggressive LSQ recovery: flush from the conflicting load.
        assert violations[0].flush_after_seq == 1

    def test_silent_store_not_flagged(self):
        """Value-based detection ignores stores that do not change the
        loaded bytes (Onder & Gupta's silent-store observation)."""
        lsq, memory = make_lsq()
        memory.write_int(0x100, 8, 42)
        lsq.dispatch_store(1, 0x10)
        lsq.dispatch_load(2, 0x14)
        lsq.execute_load(2, 0x100, 8)
        violations = lsq.execute_store(1, 0x100, 8, 42)   # same value
        assert not violations

    def test_earliest_conflicting_load_reported(self):
        lsq, _ = make_lsq()
        lsq.dispatch_store(1, 0x10)
        lsq.dispatch_load(2, 0x14)
        lsq.dispatch_load(3, 0x18)
        lsq.execute_load(3, 0x100, 8)
        lsq.execute_load(2, 0x100, 8)
        violations = lsq.execute_store(1, 0x100, 8, 9)
        assert violations[0].flush_after_seq == 1    # load seq 2 - 1

    def test_non_overlapping_load_not_flagged(self):
        lsq, _ = make_lsq()
        lsq.dispatch_store(1, 0x10)
        lsq.dispatch_load(2, 0x14)
        lsq.execute_load(2, 0x200, 8)
        assert not lsq.execute_store(1, 0x100, 8, 9)

    def test_incomplete_load_not_flagged(self):
        lsq, _ = make_lsq()
        lsq.dispatch_store(1, 0x10)
        lsq.dispatch_load(2, 0x14)      # address not yet computed
        assert not lsq.execute_store(1, 0x100, 8, 9)

    def test_older_load_not_flagged(self):
        lsq, _ = make_lsq()
        lsq.dispatch_load(1, 0x14)
        lsq.dispatch_store(2, 0x10)
        lsq.execute_load(1, 0x100, 8)
        assert not lsq.execute_store(2, 0x100, 8, 9)


class TestRetireAndFlush:
    def test_retire_store_returns_commit_tuple(self):
        lsq, _ = make_lsq()
        lsq.dispatch_store(1, 0x10)
        lsq.execute_store(1, 0x100, 4, 0xAB)
        assert lsq.retire_store(1) == (0x100, 4, 0xAB)
        assert lsq.store_occupancy == 0

    def test_flush_after_discards_younger(self):
        lsq, _ = make_lsq()
        lsq.dispatch_load(1, 0x10)
        lsq.dispatch_store(2, 0x14)
        lsq.dispatch_load(3, 0x18)
        lsq.flush_after(1)
        assert lsq.load_occupancy == 1
        assert lsq.store_occupancy == 0

    def test_flush_all(self):
        lsq, _ = make_lsq()
        lsq.dispatch_load(1, 0x10)
        lsq.dispatch_store(2, 0x14)
        lsq.flush_all()
        assert lsq.load_occupancy == 0 and lsq.store_occupancy == 0

    def test_flushed_store_invisible_to_forwarding(self):
        lsq, memory = make_lsq()
        memory.write_int(0x100, 8, 1)
        lsq.dispatch_store(1, 0x10)
        lsq.execute_store(1, 0x100, 8, 99)
        lsq.flush_after(0)
        lsq.dispatch_load(5, 0x14)
        value, _ = lsq.execute_load(5, 0x100, 8)
        assert value == 1


class TestEnergyCounters:
    def test_search_counters_accumulate(self):
        lsq, _ = make_lsq()
        for seq in range(1, 5):
            lsq.dispatch_store(seq, 0x10)
            lsq.execute_store(seq, 0x100 + 8 * seq, 8, seq)
        lsq.dispatch_load(10, 0x14)
        lsq.execute_load(10, 0x100, 8)
        assert lsq.counters.get("lsq_sq_entries_searched") >= 4
        assert lsq.counters.get("lsq_load_searches") == 1
