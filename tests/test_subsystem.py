"""Unit tests for the memory-subsystem layer (LSQ and SFC/MDT variants)."""

from repro.core import (
    DONE,
    LSQConfig,
    LSQSubsystem,
    MDTConfig,
    OUTPUT_RECOVERY_CORRUPT,
    REPLAY,
    SFCConfig,
    SfcMdtSubsystem,
)
from repro.memory import MainMemory, paper_hierarchy
from repro.stats import Counters


def make_lsq_subsystem(lq=8, sq=8):
    memory = MainMemory()
    return LSQSubsystem(LSQConfig(lq, sq), memory, paper_hierarchy(),
                        Counters()), memory


def make_sfc_mdt(sfc_sets=8, sfc_assoc=2, mdt_sets=16, mdt_assoc=2,
                 fifo=8, output_recovery="flush"):
    memory = MainMemory()
    subsystem = SfcMdtSubsystem(
        SFCConfig(sfc_sets, sfc_assoc), MDTConfig(mdt_sets, mdt_assoc),
        memory, paper_hierarchy(), Counters(),
        store_fifo_capacity=fifo, output_recovery=output_recovery)
    return subsystem, memory


class TestLSQSubsystem:
    def test_forwarding_is_single_cycle(self):
        sub, _ = make_lsq_subsystem()
        sub.dispatch_store(1, 0x10)
        sub.dispatch_load(2, 0x14)
        sub.execute_store(1, 0x10, 0x100, 8, 9, watermark=0)
        outcome = sub.execute_load(2, 0x14, 0x100, 8, watermark=0)
        assert outcome.status == DONE
        assert outcome.value == 9
        assert outcome.latency == 1

    def test_memory_load_pays_cache_latency(self):
        sub, memory = make_lsq_subsystem()
        memory.write_int(0x100, 8, 5)
        sub.dispatch_load(1, 0x10)
        outcome = sub.execute_load(1, 0x14, 0x100, 8, watermark=0)
        assert outcome.value == 5
        assert outcome.latency > 1          # cold miss

    def test_violation_propagates(self):
        sub, _ = make_lsq_subsystem()
        sub.dispatch_store(1, 0x10)
        sub.dispatch_load(2, 0x14)
        sub.execute_load(2, 0x14, 0x100, 8, watermark=0)
        outcome = sub.execute_store(1, 0x10, 0x100, 8, 42, watermark=0)
        assert outcome.violations

    def test_retire_store_commits(self):
        sub, _ = make_lsq_subsystem()
        sub.dispatch_store(1, 0x10)
        sub.execute_store(1, 0x10, 0x100, 8, 42, watermark=0)
        assert sub.retire_store(1, 0x100, 8)[:3] == (0x100, 8, 42)

    def test_no_extra_violation_penalty(self):
        sub, _ = make_lsq_subsystem()
        assert sub.violation_extra_penalty == 0

    def test_partial_flush_trims_queues(self):
        sub, _ = make_lsq_subsystem()
        sub.dispatch_load(1, 0x10)
        sub.dispatch_load(2, 0x14)
        sub.on_partial_flush(1)
        assert sub.lsq.load_occupancy == 1


class TestSfcMdtLoads:
    def test_sfc_hit_single_cycle(self):
        sub, _ = make_sfc_mdt()
        sub.dispatch_store(1, 0x10)
        sub.execute_store(1, 0x10, 0x100, 8, 7, watermark=0)
        outcome = sub.execute_load(0x0F, 0x14, 0x100, 8, watermark=0)
        # (seq 0x0F > store seq 1: no violation, forwarded)
        assert outcome.status == DONE
        assert outcome.value == 7 and outcome.latency == 1

    def test_sfc_miss_reads_memory(self):
        sub, memory = make_sfc_mdt()
        memory.write_int(0x300, 8, 3)
        outcome = sub.execute_load(1, 0x14, 0x300, 8, watermark=0)
        assert outcome.value == 3 and outcome.latency > 1

    def test_mdt_conflict_replays(self):
        sub, _ = make_sfc_mdt(mdt_sets=1, mdt_assoc=1)
        sub.execute_load(1, 0x14, 0x100, 8, watermark=0)
        outcome = sub.execute_load(2, 0x14, 0x900, 8, watermark=0)
        assert outcome.status == REPLAY
        assert outcome.replay_reason == "mdt_conflict"

    def test_corrupt_word_replays(self):
        sub, _ = make_sfc_mdt()
        sub.dispatch_store(1, 0x10)
        sub.execute_store(1, 0x10, 0x100, 8, 7, watermark=0)
        sub.on_partial_flush(1)
        outcome = sub.execute_load(5, 0x14, 0x100, 8, watermark=0)
        assert outcome.status == REPLAY
        assert outcome.replay_reason == "sfc_corrupt"

    def test_partial_match_replays(self):
        sub, _ = make_sfc_mdt()
        sub.dispatch_store(1, 0x10)
        sub.execute_store(1, 0x10, 0x100, 4, 7, watermark=0)
        outcome = sub.execute_load(5, 0x14, 0x100, 8, watermark=0)
        assert outcome.status == REPLAY
        assert outcome.replay_reason == "sfc_partial"

    def test_anti_violation_reported(self):
        sub, _ = make_sfc_mdt()
        sub.dispatch_store(9, 0x10)
        sub.execute_store(9, 0x10, 0x100, 8, 7, watermark=0)
        outcome = sub.execute_load(2, 0x14, 0x100, 8, watermark=0)
        assert outcome.status == DONE
        assert outcome.violations[0].kind == "anti"

    def test_rob_head_bypass_skips_structures(self):
        sub, memory = make_sfc_mdt(mdt_sets=1, mdt_assoc=1)
        memory.write_int(0x900, 8, 55)
        sub.execute_load(1, 0x14, 0x100, 8, watermark=0)   # fills MDT way
        outcome = sub.execute_load(2, 0x14, 0x900, 8, watermark=0,
                                   at_rob_head=True)
        assert outcome.status == DONE and outcome.value == 55
        assert sub.counters.get("rob_head_bypasses") == 1


class TestSfcMdtStores:
    def test_store_pays_tag_check_cycle(self):
        sub, _ = make_sfc_mdt()
        sub.dispatch_store(1, 0x10)
        outcome = sub.execute_store(1, 0x10, 0x100, 8, 7, watermark=0)
        assert outcome.latency == 2

    def test_sfc_conflict_replays_store(self):
        sub, _ = make_sfc_mdt(sfc_sets=1, sfc_assoc=1)
        sub.dispatch_store(1, 0x10)
        sub.dispatch_store(2, 0x14)
        sub.execute_store(1, 0x10, 0x100, 8, 7, watermark=0)
        outcome = sub.execute_store(2, 0x14, 0x900, 8, 8, watermark=0)
        assert outcome.status == REPLAY
        assert outcome.replay_reason == "sfc_conflict"

    def test_true_violation_reported(self):
        sub, _ = make_sfc_mdt()
        sub.dispatch_store(1, 0x10)
        sub.execute_load(9, 0x14, 0x100, 8, watermark=0)
        outcome = sub.execute_store(1, 0x10, 0x100, 8, 7, watermark=0)
        assert outcome.violations[0].kind == "true"

    def test_output_violation_flush_policy(self):
        sub, _ = make_sfc_mdt()
        sub.dispatch_store(9, 0x10)
        sub.dispatch_store(1, 0x14)
        sub.execute_store(9, 0x10, 0x100, 8, 9, watermark=0)
        outcome = sub.execute_store(1, 0x14, 0x100, 8, 1, watermark=0)
        assert outcome.violations[0].kind == "output"
        assert not outcome.train_only

    def test_output_violation_corrupt_policy(self):
        """Section 2.4.2: corrupt-mark instead of flushing."""
        sub, _ = make_sfc_mdt(output_recovery=OUTPUT_RECOVERY_CORRUPT)
        sub.dispatch_store(9, 0x10)
        sub.dispatch_store(1, 0x14)
        sub.execute_store(9, 0x10, 0x100, 8, 9, watermark=0)
        outcome = sub.execute_store(1, 0x14, 0x100, 8, 1, watermark=0)
        assert not outcome.violations          # no flush
        assert outcome.train_only[0].kind == "output"
        # The word is now poisoned: consumer loads replay.
        load = sub.execute_load(20, 0x18, 0x100, 8, watermark=0)
        assert load.status == REPLAY

    def test_store_fifo_capacity_gates_dispatch(self):
        sub, _ = make_sfc_mdt(fifo=1)
        sub.dispatch_store(1, 0x10)
        assert not sub.can_dispatch_store()

    def test_loads_never_gate_dispatch(self):
        sub, _ = make_sfc_mdt()
        assert sub.can_dispatch_load()

    def test_retire_store_commits_and_frees(self):
        sub, _ = make_sfc_mdt()
        sub.dispatch_store(1, 0x10)
        sub.execute_store(1, 0x10, 0x100, 8, 42, watermark=0)
        assert sub.retire_store(1, 0x100, 8)[:3] == (0x100, 8, 42)
        assert sub.sfc.occupancy() == 0
        assert sub.mdt.occupancy() == 0

    def test_retired_store_then_load_reads_memory(self):
        sub, memory = make_sfc_mdt()
        sub.dispatch_store(1, 0x10)
        sub.execute_store(1, 0x10, 0x100, 8, 42, watermark=0)
        addr, size, data, _ = sub.retire_store(1, 0x100, 8)
        memory.write_int(addr, size, data)
        outcome = sub.execute_load(5, 0x14, 0x100, 8, watermark=2)
        assert outcome.value == 42

    def test_eviction_events_combine_sfc_and_mdt(self):
        sub, _ = make_sfc_mdt()
        sub.dispatch_store(1, 0x10)
        sub.execute_store(1, 0x10, 0x100, 8, 42, watermark=0)
        before = sub.eviction_events
        sub.retire_store(1, 0x100, 8)
        assert sub.eviction_events > before

    def test_full_flush_clears_everything(self):
        sub, _ = make_sfc_mdt()
        sub.dispatch_store(1, 0x10)
        sub.execute_store(1, 0x10, 0x100, 8, 42, watermark=0)
        sub.on_full_flush()
        assert sub.sfc.occupancy() == 0
        assert sub.mdt.occupancy() == 0
        assert len(sub.store_fifo) == 0

    def test_violation_extra_penalty_models_tag_check(self):
        sub, _ = make_sfc_mdt()
        assert sub.violation_extra_penalty == 1

    def test_replayed_load_does_not_warm_cache(self):
        sub, _ = make_sfc_mdt(mdt_sets=1, mdt_assoc=1)
        sub.execute_load(1, 0x14, 0x100, 8, watermark=0)
        accesses = sub.hierarchy.l1d.accesses
        sub.execute_load(2, 0x14, 0x900, 8, watermark=0)   # replay
        assert sub.hierarchy.l1d.accesses == accesses
