"""Unit tests for the flush-endpoint corruption scheme (Section 3.2).

The alternative to blanket corruption masks: the SFC records the
sequence-number window of each partial flush plus each byte's writer
number, and a load replays only when a byte it needs was actually written
by a canceled store.
"""

import pytest

from repro.core import (
    CORRUPTION_ENDPOINTS,
    SFC_CORRUPT,
    SFC_HIT,
    SFC_MISS,
    SFCConfig,
    StoreForwardingCache,
)


def make_sfc(slots=4):
    return StoreForwardingCache(
        SFCConfig(num_sets=8, assoc=2,
                  corruption_mode=CORRUPTION_ENDPOINTS,
                  flush_endpoint_slots=slots))


class TestEndpointDetection:
    def test_clean_store_still_forwards_after_flush(self):
        """The headline improvement over the mask scheme: a flush that
        canceled *other* instructions leaves this word forwardable."""
        sfc = make_sfc()
        sfc.store_write(0x1000, 8, 7, seq=10)
        sfc.on_partial_flush(20, 30)      # canceled window: [20, 30]
        assert sfc.load_read(0x1000, 8, watermark=0)[0] == SFC_HIT

    def test_canceled_writer_detected(self):
        sfc = make_sfc()
        sfc.store_write(0x1000, 8, 7, seq=25)
        sfc.on_partial_flush(20, 30)      # seq 25 was canceled
        assert sfc.load_read(0x1000, 8, watermark=0)[0] == SFC_CORRUPT

    def test_per_byte_discrimination(self):
        """Only the bytes written by the canceled store are poisoned."""
        sfc = make_sfc()
        sfc.store_write(0x1000, 4, 0x11223344, seq=10)   # survives
        sfc.store_write(0x1004, 4, 0x55667788, seq=25)   # canceled
        sfc.on_partial_flush(20, 30)
        assert sfc.load_read(0x1000, 4, watermark=0)[0] == SFC_HIT
        assert sfc.load_read(0x1004, 4, watermark=0)[0] == SFC_CORRUPT

    def test_rewrite_clears_cancellation(self):
        sfc = make_sfc()
        sfc.store_write(0x1000, 8, 7, seq=25)
        sfc.on_partial_flush(20, 30)
        sfc.store_write(0x1000, 8, 9, seq=40)    # refetched store
        status, value = sfc.load_read(0x1000, 8, watermark=0)
        assert status == SFC_HIT and value == 9

    def test_window_boundaries_inclusive(self):
        sfc = make_sfc()
        sfc.store_write(0x1000, 4, 1, seq=20)
        sfc.store_write(0x2000, 4, 2, seq=30)
        sfc.store_write(0x3000, 4, 3, seq=19)
        sfc.store_write(0x4000, 4, 4, seq=31)
        sfc.on_partial_flush(20, 30)
        assert sfc.load_read(0x1000, 4, watermark=0)[0] == SFC_CORRUPT
        assert sfc.load_read(0x2000, 4, watermark=0)[0] == SFC_CORRUPT
        assert sfc.load_read(0x3000, 4, watermark=0)[0] == SFC_HIT
        assert sfc.load_read(0x4000, 4, watermark=0)[0] == SFC_HIT


class TestWindowLifecycle:
    def test_windows_prune_at_watermark(self):
        """Once the watermark passes a window, its bytes read as absent
        (memory holds the correct value) rather than corrupt."""
        sfc = make_sfc()
        sfc.store_write(0x1000, 8, 7, seq=25)
        sfc.store_write(0x1000, 8, 9, seq=45)    # live writer, same word
        sfc.on_partial_flush(20, 30)
        # Watermark 40 > window hi: the window drops, and byte writers
        # below the watermark are treated as absent -- here seq 45 wrote
        # everything, so the load still hits.
        status, value = sfc.load_read(0x1000, 8, watermark=40)
        assert status == SFC_HIT and value == 9

    def test_aged_canceled_bytes_read_as_absent(self):
        sfc = make_sfc()
        sfc.store_write(0x1000, 4, 7, seq=25)    # canceled writer
        sfc.store_write(0x1004, 4, 8, seq=45)    # keeps the entry alive
        sfc.on_partial_flush(20, 30)
        # After the window ages out, the canceled bytes are absent: the
        # load of them misses to memory (which never saw seq 25).
        assert sfc.load_read(0x1000, 4, watermark=40)[0] == SFC_MISS

    def test_overflow_falls_back_to_blanket_marking(self):
        sfc = make_sfc(slots=1)
        sfc.store_write(0x1000, 8, 7, seq=5)
        sfc.on_partial_flush(100, 110)           # takes the only slot
        sfc.on_partial_flush(200, 210)           # overflow: blanket mark
        assert sfc.counters.get("sfc_endpoint_overflows") == 1
        assert sfc.load_read(0x1000, 8, watermark=0)[0] == SFC_CORRUPT

    def test_full_flush_clears_windows(self):
        sfc = make_sfc()
        sfc.on_partial_flush(20, 30)
        sfc.on_full_flush()
        sfc.store_write(0x1000, 8, 7, seq=25)
        assert sfc.load_read(0x1000, 8, watermark=0)[0] == SFC_HIT


class TestConfig:
    def test_rejects_unknown_mode(self):
        with pytest.raises(ValueError):
            SFCConfig(corruption_mode="bogus")

    def test_mask_mode_ignores_window_arguments(self):
        sfc = StoreForwardingCache(SFCConfig(num_sets=8, assoc=2))
        sfc.store_write(0x1000, 8, 7, seq=5)
        sfc.on_partial_flush(100, 110)
        # Mask mode: everything valid is corrupt regardless of window.
        assert sfc.load_read(0x1000, 8, watermark=0)[0] == SFC_CORRUPT


class TestEndToEnd:
    def test_pipeline_runs_exactly_with_endpoints(self):
        from repro import Processor, run_program
        from repro.harness.configs import baseline_sfc_mdt_config
        from repro.workloads import random_program

        config = baseline_sfc_mdt_config(name="endpoints")
        config.sfc.corruption_mode = CORRUPTION_ENDPOINTS
        for seed in (3, 14, 159):
            prog = random_program(seed, max_blocks=15)
            trace = run_program(prog, 500_000)
            Processor(prog, config, trace=trace).run()

    def test_endpoints_reduce_corruption_replays(self):
        from repro import Processor, run_program
        from repro.harness.configs import aggressive_sfc_mdt_config
        from repro.workloads import build

        prog = build("ammp", scale=6000)
        trace = run_program(prog, 2_000_000)
        mask = Processor(prog, aggressive_sfc_mdt_config(),
                         trace=trace).run()
        config = aggressive_sfc_mdt_config(name="endpoints")
        config.sfc.corruption_mode = CORRUPTION_ENDPOINTS
        endpoints = Processor(prog, config, trace=trace).run()
        assert endpoints.counters.get("load_replays_sfc_corrupt") <= \
            mask.counters.get("load_replays_sfc_corrupt")
