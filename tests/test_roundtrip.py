"""Disassembler/parser roundtrip consistency.

The disassembler's output is valid input for the text parser, and
re-parsing it reproduces the instruction stream exactly.  This ties the
builder assembler, the disassembler, and the text parser together: any
formatting drift in one of them breaks the property.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa import run_program
from repro.isa.parser import parse_asm as parse
from repro.workloads import build, random_program


def instructions_equal(a, b):
    return (a.op == b.op and a.rd == b.rd and a.rs1 == b.rs1 and
            a.rs2 == b.rs2 and a.imm == b.imm)


def roundtrip(program):
    reparsed = parse(program.disassemble(), name=program.name)
    assert len(reparsed) == len(program)
    for original, again in zip(program.instructions,
                               reparsed.instructions):
        assert instructions_equal(original, again), \
            f"{original!r} != {again!r}"
    return reparsed


class TestRoundtrip:
    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=5000))
    def test_random_programs_roundtrip(self, seed):
        roundtrip(random_program(seed, max_blocks=10))

    def test_every_kernel_roundtrips(self):
        for name in ("gzip", "bzip2", "mcf", "mesa", "equake", "parser"):
            roundtrip(build(name, scale=1200))

    def test_reparsed_program_executes_identically(self):
        program = random_program(42, max_blocks=10)
        reparsed = parse(program.disassemble())
        # The disassembly carries no data segment; supply the original's.
        reparsed.data.update(program.data)
        original_trace = run_program(program, 500_000)
        reparsed_trace = run_program(reparsed, 500_000)
        assert len(original_trace) == len(reparsed_trace)
        for a, b in zip(original_trace, reparsed_trace):
            assert a.pc == b.pc and a.dest_value == b.dest_value
            assert a.store_addr == b.store_addr
