"""Unit tests for register renaming with checkpoints."""

import pytest

from repro.isa.instructions import NUM_REGS
from repro.pipeline import RenameError, RenameTable


class TestRename:
    def test_initial_identity_mapping(self):
        table = RenameTable(64)
        for arch in range(NUM_REGS):
            assert table.lookup(arch) == arch
            assert table.is_ready(arch)

    def test_allocate_remaps_and_clears_ready(self):
        table = RenameTable(64)
        phys = table.allocate(5)
        assert table.lookup(5) == phys
        assert phys >= NUM_REGS
        assert not table.is_ready(phys)

    def test_write_sets_value_and_ready(self):
        table = RenameTable(64)
        phys = table.allocate(5)
        table.write(phys, 42)
        assert table.is_ready(phys)
        assert table.read(phys) == 42

    def test_free_count_decrements(self):
        table = RenameTable(64)
        before = table.free_count
        table.allocate(1)
        assert table.free_count == before - 1

    def test_exhaustion_raises(self):
        table = RenameTable(NUM_REGS + 2)
        table.allocate(1)
        table.allocate(2)
        with pytest.raises(RenameError):
            table.allocate(3)

    def test_release_recycles(self):
        table = RenameTable(NUM_REGS + 1)
        phys = table.allocate(1)
        table.release(phys)
        assert table.allocate(2) == phys

    def test_snapshot_restore(self):
        table = RenameTable(64)
        snap = table.snapshot()
        table.allocate(5)
        table.allocate(7)
        table.restore(snap)
        assert table.lookup(5) == 5
        assert table.lookup(7) == 7

    def test_snapshot_is_a_copy(self):
        table = RenameTable(64)
        snap = table.snapshot()
        table.allocate(5)
        assert snap[5] == 5

    def test_rejects_too_few_phys(self):
        with pytest.raises(ValueError):
            RenameTable(NUM_REGS)

    def test_old_mapping_still_readable_after_rename(self):
        """Consumers renamed earlier read the old physical register."""
        table = RenameTable(64)
        table.write(table.lookup(3), 7)
        old_phys = table.lookup(3)
        table.allocate(3)
        assert table.read(old_phys) == 7
