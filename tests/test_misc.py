"""Tests for the small supporting modules: counters, violations, program
padding, and assorted pipeline edge cases."""

from repro import Processor
from repro.core import ANTI_DEP, TRUE_DEP, Violation
from repro.harness import baseline_lsq_config, baseline_sfc_mdt_config
from repro.isa import INSTRUCTION_BYTES, Program
from repro.isa import instructions as ops
from repro.isa.instructions import Instruction
from repro.isa.program import WRONG_PATH_PAD
from repro.stats import Counters
from tests.conftest import assemble


class TestCounters:
    def test_missing_counter_reads_zero(self):
        c = Counters()
        assert c.get("nope") == 0.0
        assert c["nope"] == 0.0
        assert "nope" not in c

    def test_incr_and_set(self):
        c = Counters()
        c.incr("a")
        c.incr("a", 2.5)
        c.set("b", 7)
        assert c.get("a") == 3.5
        assert c.get("b") == 7

    def test_rate_zero_denominator(self):
        c = Counters()
        c.incr("num", 5)
        assert c.rate("num", "denom") == 0.0

    def test_rate(self):
        c = Counters()
        c.incr("num", 5)
        c.incr("denom", 10)
        assert c.rate("num", "denom") == 0.5

    def test_merge(self):
        a = Counters()
        b = Counters()
        a.incr("x", 1)
        b.incr("x", 2)
        b.incr("y", 3)
        a.merge(b)
        assert a.get("x") == 3 and a.get("y") == 3

    def test_items_sorted(self):
        c = Counters()
        c.incr("zz")
        c.incr("aa")
        assert [k for k, _ in c.items()] == ["aa", "zz"]

    def test_as_dict_and_repr(self):
        c = Counters()
        c.incr("k", 2)
        assert c.as_dict() == {"k": 2}
        assert "k=2" in repr(c)


class TestViolation:
    def test_fields(self):
        v = Violation(TRUE_DEP, flush_after_seq=5, producer_pc=0x10,
                      consumer_pc=0x20)
        assert v.kind == TRUE_DEP
        assert v.flush_after_seq == 5
        assert "true" in repr(v)

    def test_repr_without_pcs(self):
        v = Violation(ANTI_DEP, flush_after_seq=3, producer_pc=None,
                      consumer_pc=None)
        assert "anti" in repr(v)


class TestProgramPadding:
    def test_out_of_range_fetch_pads_with_nops(self):
        program = Program([Instruction(ops.HALT)])
        pad = program.fetch(INSTRUCTION_BYTES)
        assert pad.op == ops.NOP

    def test_far_out_of_range_fetch_halts(self):
        program = Program([Instruction(ops.HALT)])
        far = (1 + WRONG_PATH_PAD + 1) * INSTRUCTION_BYTES
        assert program.fetch(far).op == ops.HALT

    def test_unaligned_fetch_is_nop(self):
        program = Program([Instruction(ops.HALT)])
        assert program.fetch(2).op == ops.NOP

    def test_pc_of(self):
        program = Program([Instruction(ops.NOP), Instruction(ops.HALT)])
        assert program.pc_of(1) == 4

    def test_disassemble(self):
        program = Program([Instruction(ops.ADD, rd=1, rs1=2, rs2=3),
                           Instruction(ops.HALT)])
        text = program.disassemble()
        assert "add" in text and "halt" in text and "0x0004" in text


class TestPipelineEdgeCases:
    def test_jal_discarding_link_register(self, any_config):
        def build(a):
            a.jal("r0", "next")      # call that discards the link
            a.label("next")
            a.halt()
        result = Processor(assemble(build), any_config).run()
        assert result.instructions == 2

    def test_division_heavy_program(self, any_config):
        def build(a):
            a.li("r1", 1000)
            a.li("r2", 7)
            a.div("r3", "r1", "r2")
            a.rem("r4", "r1", "r2")
            a.div("r5", "r1", "r0")   # division by zero
            a.rem("r6", "r1", "r0")
            a.halt()
        Processor(assemble(build), any_config).run()

    def test_store_to_load_different_widths(self):
        """Narrow store under a wide in-flight store (partial coverage)."""
        def build(a):
            a.li("r1", 0x1000)
            a.li("r2", 0x1111111111111111)
            a.li("r3", 0xAB)
            a.sd("r2", "r1", 0)
            a.sb("r3", "r1", 2)
            a.ld("r4", "r1", 0)
            a.halt()
        for config in (baseline_lsq_config(), baseline_sfc_mdt_config()):
            Processor(assemble(build), config).run()

    def test_back_to_back_branches(self, any_config):
        def build(a):
            a.li("r1", 1)
            a.beq("r1", "r0", "a")
            a.bne("r1", "r0", "b")
            a.label("a")
            a.li("r2", 9)
            a.label("b")
            a.halt()
        Processor(assemble(build), any_config).run()

    def test_self_modifying_address_patterns(self, any_config):
        """Loads whose base registers come from other loads."""
        def build(a):
            a.data_words(0x1000, [0x2000])
            a.data_words(0x2000, [77])
            a.li("r1", 0x1000)
            a.ld("r2", "r1", 0)     # pointer load
            a.ld("r3", "r2", 0)     # dependent load
            a.halt()
        Processor(assemble(build), any_config).run()

    def test_long_quiet_stretch_uses_clock_skip(self):
        """A cold L2 miss leaves the machine idle; the clock must skip."""
        def build(a):
            a.li("r1", 0x9000)
            a.ld("r2", "r1", 0)     # cold: 111 cycles
            a.add("r3", "r2", "r2")
            a.halt()
        result = Processor(assemble(build), baseline_lsq_config()).run()
        assert result.counters.get("idle_cycles_skipped") > 50

    def test_counters_exposed_on_result(self):
        result = Processor(assemble(lambda a: a.halt()),
                           baseline_lsq_config()).run()
        assert result.counters.get("retired_instructions") == 1
        assert result.counters.get("cycles") == result.cycles
