"""Tests for the synthetic SPEC-styled workloads."""

import pytest

from repro.isa import run_program
from repro.workloads import (
    ALL_BENCHMARKS,
    FIGURE5_BENCHMARKS,
    FIGURE6_BENCHMARKS,
    FP_BENCHMARKS,
    INT_BENCHMARKS,
    build,
    fuzz_program,
    is_fp,
    random_program,
)


class TestSuiteRegistry:
    def test_paper_benchmark_lists(self):
        # 12 specint workloads (vpr counted twice: place + route) and 8
        # specfp workloads, as in the paper's Figure 5.
        assert len(INT_BENCHMARKS) == 12
        assert len(FP_BENCHMARKS) == 8
        assert len(FIGURE5_BENCHMARKS) == 20

    def test_figure6_drops_mesa(self):
        assert "mesa" not in FIGURE6_BENCHMARKS
        assert len(FIGURE6_BENCHMARKS) == 19

    def test_is_fp(self):
        assert is_fp("swim") and is_fp("ammp")
        assert not is_fp("gcc")

    def test_unknown_benchmark_raises(self):
        with pytest.raises(KeyError):
            build("doom")

    def test_expected_names_present(self):
        for name in ("bzip2", "crafty", "gap", "gcc", "gzip", "mcf",
                     "parser", "perlbmk", "twolf", "vortex", "vpr_place",
                     "vpr_route", "ammp", "applu", "apsi", "art",
                     "equake", "mesa", "mgrid", "swim"):
            assert name in ALL_BENCHMARKS


@pytest.mark.parametrize("name", sorted(ALL_BENCHMARKS))
class TestEveryKernel:
    def test_builds_and_halts(self, name):
        prog = build(name, scale=2000)
        trace = run_program(prog, 1_000_000)
        assert trace[-1].op == 47 or prog.fetch(trace[-1].pc).op  # halted
        assert len(trace) > 500

    def test_scale_controls_length(self, name):
        short = len(run_program(build(name, scale=1500), 1_000_000))
        long = len(run_program(build(name, scale=4500), 1_000_000))
        assert long > short * 1.5

    def test_deterministic(self, name):
        first = run_program(build(name, scale=1500), 1_000_000)
        second = run_program(build(name, scale=1500), 1_000_000)
        assert len(first) == len(second)
        assert all(a.pc == b.pc and a.dest_value == b.dest_value
                   for a, b in zip(first, second))

    def test_contains_memory_traffic(self, name):
        trace = run_program(build(name, scale=2000), 1_000_000)
        loads = sum(1 for r in trace if r.op in range(26, 33))
        stores = sum(1 for r in trace if r.store_addr is not None)
        assert loads > 0
        if name != "mcf":          # mcf's price updates are rare
            assert stores > 0


class TestKernelSignatures:
    """Each pathology kernel exhibits its designed address behaviour."""

    def test_bzip2_store_stride_hits_one_sfc_set(self):
        trace = run_program(build("bzip2", scale=3000), 1_000_000)
        sets = {(r.store_addr >> 3) & 511 for r in trace
                if r.store_addr is not None}
        # The column stores cover at most a few of the 512 sets.
        assert len(sets) <= 4

    def test_mcf_node_records_at_64k_strides(self):
        prog = build("mcf", scale=2000)
        node_bases = sorted(addr for addr in prog.data
                            if 0x40_0000 <= addr < 0x60_0000)
        assert len(node_bases) == 8
        deltas = {b - a for a, b in zip(node_bases, node_bases[1:])}
        assert deltas == {65536}

    def test_mesa_has_silent_stores(self):
        trace = run_program(build("mesa", scale=4000), 1_000_000)
        last_value = {}
        silent = 0
        total = 0
        for record in trace:
            if record.store_addr is None:
                continue
            total += 1
            key = (record.store_addr, record.store_size)
            if last_value.get(key) == record.store_data:
                silent += 1
            last_value[key] = record.store_data
        assert total > 0
        assert silent > 0        # depth rewrites of equal z values

    def test_gzip_rewrites_hash_heads(self):
        trace = run_program(build("gzip", scale=4000), 1_000_000)
        counts = {}
        for record in trace:
            if record.store_addr is not None:
                counts[record.store_addr] = \
                    counts.get(record.store_addr, 0) + 1
        assert max(counts.values()) >= 4     # recurring head buckets


class TestRandomPrograms:
    def test_always_halts(self):
        for seed in range(30):
            run_program(random_program(seed), 500_000)

    def test_deterministic_per_seed(self):
        first = run_program(random_program(7), 500_000)
        second = run_program(random_program(7), 500_000)
        assert len(first) == len(second)

    def test_different_seeds_differ(self):
        a = run_program(random_program(1), 500_000)
        b = run_program(random_program(2), 500_000)
        assert len(a) != len(b) or \
            any(x.pc != y.pc for x, y in zip(a, b))

    def test_max_blocks_scales_size(self):
        small = len(random_program(3, max_blocks=4).instructions)
        large = len(random_program(3, max_blocks=40).instructions)
        assert large > small


class TestGeneratorDeterminism:
    """The generators must be byte-identical for a fixed seed -- the
    fuzzer's seeds, its corpus, and the cached experiment results all
    assume so."""

    #: Golden digests pin the generators across processes and Python
    #: builds; a hash-order or RNG-usage leak changes these first.
    GOLDEN = {
        ("fuzz", 0):
            "f3431c3630d8111291d92a0bcbca9bdf"
            "00109ea1e838685abb2e4a2e26af091a",
        ("fuzz", 7):
            "53d033ee1189e9438cc1f05ae5ace182"
            "5f2dbe64eab4d595ba0d2559618935d9",
        ("fuzz", 1234):
            "6bc2737ed6d19759bd785d9e8cc59d8a"
            "435204cd7c9e9c94c28fbbc2f34ea79d",
        ("rand", 0):
            "d199555b5aa81dd2271c87c918616a69"
            "6fb4c31881e3a93a691ec3a1cbc613d9",
        ("rand", 42):
            "393167d10b6428ba991818b15c0c3e51"
            "4bb067e473b39cae627aff7e25e6c12e",
    }

    def test_two_builds_identical(self):
        for seed in (0, 3, 99, 4096):
            assert random_program(seed).digest() == \
                random_program(seed).digest()
            assert fuzz_program(seed).digest() == \
                fuzz_program(seed).digest()

    def test_golden_digests(self):
        for (kind, seed), expected in self.GOLDEN.items():
            builder = fuzz_program if kind == "fuzz" else random_program
            assert builder(seed).digest() == expected, \
                f"{kind} generator changed for seed {seed}"

    def test_fuzz_generator_emits_unaligned_accesses(self):
        unaligned = 0
        for seed in range(20):
            for record in run_program(fuzz_program(seed), 500_000):
                if record.store_addr is not None and \
                        record.store_addr % record.store_size:
                    unaligned += 1
        assert unaligned > 0

    def test_fuzz_asm_roundtrip(self):
        from repro.isa import parse_asm
        prog = fuzz_program(11)
        rebuilt = parse_asm(prog.to_asm(), name="rt")
        first = run_program(prog, 500_000)
        second = run_program(rebuilt, 500_000)
        assert len(first) == len(second)
        assert all(a.pc == b.pc and a.dest_value == b.dest_value
                   for a, b in zip(first, second))
