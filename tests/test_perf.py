"""Tests for the profiling/throughput module and the bit-exactness gate."""

import pytest

from repro import perf
from repro.cli import main
from repro.harness import baseline_lsq_config, baseline_sfc_mdt_config
from repro.harness.experiment import ExperimentRunner


def _fake_manifest(counter=7.0, extra=None):
    entry = {
        "benchmark": "gzip",
        "config_name": "baseline",
        "config": {"rob_size": 48},
        "scale": 1000,
        "cycles": 2500,
        "instructions": 1000,
        "ipc": 0.4,
        "counters": {"retired_loads": counter},
    }
    if extra:
        entry.update(extra)
    return [entry]


class TestManifestDigest:
    def test_stable_for_identical_manifests(self):
        assert perf.manifest_digest(_fake_manifest()) == \
            perf.manifest_digest(_fake_manifest())

    def test_counter_change_changes_digest(self):
        assert perf.manifest_digest(_fake_manifest(counter=7.0)) != \
            perf.manifest_digest(_fake_manifest(counter=8.0))

    def test_ignores_non_architected_fields(self):
        """Wall-clock style bookkeeping must not perturb the digest."""
        noisy = _fake_manifest(extra={"wall_seconds": 1.23,
                                      "cache_hit": True})
        assert perf.manifest_digest(noisy) == \
            perf.manifest_digest(_fake_manifest())

    def test_is_sha256_hex(self):
        digest = perf.manifest_digest(_fake_manifest())
        assert len(digest) == 64
        int(digest, 16)


class TestMeasureThroughput:
    def test_reports_positive_throughput(self):
        report = perf.measure_throughput(
            ["gzip"], [baseline_lsq_config()], scale=800)
        assert len(report.samples) == 1
        assert report.total_instructions > 0
        assert report.insts_per_sec > 0
        assert report.usec_per_inst > 0

    def test_grid_covers_every_cell(self):
        configs = [baseline_lsq_config(), baseline_sfc_mdt_config()]
        report = perf.measure_throughput(["gzip", "gap"], configs,
                                         scale=600)
        cells = {(s.benchmark, s.config_name) for s in report.samples}
        assert len(cells) == 4

    def test_timed_cells_bypass_result_cache(self, tmp_path):
        """Regression: a pre-warmed result cache used to serve timing
        cells as ~instant cache hits, inflating reported simulator
        throughput by orders of magnitude.  measure_throughput must
        re-simulate every cell and prove it via cache_hits == 0."""
        runner = ExperimentRunner(scale=800, cache_dir=tmp_path)
        runner.run("gzip", baseline_lsq_config())  # warm the cache
        report = perf.measure_throughput(
            ["gzip"], [baseline_lsq_config()], scale=800, runner=runner)
        assert report.cache_hits == 0
        timed = runner.manifest[1:]
        assert timed and all(not entry["cache_hit"] for entry in timed)
        assert runner.cache is not None, \
            "the runner's cache must be restored after measurement"

    def test_format_mentions_throughput_and_digest(self):
        report = perf.measure_throughput(
            ["gzip"], [baseline_lsq_config()], scale=600)
        text = report.format()
        assert "insts/s" in text
        assert report.manifest_digest in text


class TestBitExactness:
    def test_repeated_runs_are_bit_identical(self):
        """The regression gate itself: the simulator is deterministic,
        so back-to-back uncached runs must hash identically."""
        digests = set()
        for _ in range(2):
            runner = ExperimentRunner(scale=800, jobs=1, use_cache=False)
            runner.run("mcf", baseline_sfc_mdt_config())
            runner.run("mcf", baseline_lsq_config())
            digests.add(perf.manifest_digest(runner.manifest))
        assert len(digests) == 1


class TestProfileSuite:
    def test_finds_hot_simulator_functions(self):
        report = perf.profile_suite(["gzip"], [baseline_sfc_mdt_config()],
                                    scale=800)
        assert report.total_instructions > 0
        assert report.total_seconds > 0
        names = " ".join(fn.name for fn in report.top(50))
        # The pipeline's hot loops live in pipeline/core.py (the
        # single-core Processor is a thin subclass over it).
        assert "core.py" in names

    def test_top_limits_rows(self):
        report = perf.profile_suite(["gzip"], [baseline_lsq_config()],
                                    scale=600)
        assert len(report.top(5)) == 5
        assert "function" in report.format(top_n=5)


class TestBenchCli:
    def test_bench_smoke(self, capsys):
        assert main(["bench", "--benchmarks", "gzip",
                     "--configs", "baseline-lsq", "--scale", "600"]) == 0
        out = capsys.readouterr().out
        assert "insts/s" in out
        assert "manifest sha256:" in out

    def test_bench_profile(self, capsys):
        assert main(["bench", "--benchmarks", "gzip",
                     "--configs", "baseline-lsq", "--scale", "600",
                     "--profile", "--top", "5"]) == 0
        out = capsys.readouterr().out
        assert "cProfile" in out
        assert "cumtime" in out
