"""Unit tests for the Memory Disambiguation Table (paper Section 2.2)."""

import pytest

from repro.core import (
    ANTI_DEP,
    MDT_CONFLICT,
    MDT_OK,
    MDTConfig,
    MemoryDisambiguationTable,
    OUTPUT_DEP,
    TRUE_DEP,
)


def make_mdt(num_sets=16, assoc=2, granularity=8, tagged=True,
             counted=False):
    return MemoryDisambiguationTable(
        MDTConfig(num_sets=num_sets, assoc=assoc, granularity=granularity,
                  tagged=tagged, counted_load_recovery=counted))


class TestProtocolBasics:
    def test_in_order_accesses_are_clean(self):
        mdt = make_mdt()
        assert not mdt.access_store(0x100, 8, 1, 0x10, 0).violations
        assert not mdt.access_load(0x100, 8, 2, 0x14, 0).violations
        assert not mdt.access_store(0x100, 8, 3, 0x18, 0).violations

    def test_disjoint_addresses_never_conflict(self):
        mdt = make_mdt()
        assert not mdt.access_store(0x100, 8, 5, 0x10, 0).violations
        assert not mdt.access_load(0x200, 8, 1, 0x14, 0).violations

    def test_true_violation_detected(self):
        """Younger load issued before an older store to the same address."""
        mdt = make_mdt()
        mdt.access_load(0x100, 8, seq=10, pc=0x14, watermark=0)
        result = mdt.access_store(0x100, 8, seq=5, pc=0x10, watermark=0)
        assert len(result.violations) == 1
        violation = result.violations[0]
        assert violation.kind == TRUE_DEP
        assert violation.producer_pc == 0x10
        assert violation.consumer_pc == 0x14
        # Conservative policy: flush everything after the store.
        assert violation.flush_after_seq == 5

    def test_anti_violation_detected(self):
        """Older load issuing after a younger store already completed."""
        mdt = make_mdt()
        mdt.access_store(0x100, 8, seq=10, pc=0x10, watermark=0)
        result = mdt.access_load(0x100, 8, seq=5, pc=0x14, watermark=0)
        violation = result.violations[0]
        assert violation.kind == ANTI_DEP
        # The load itself must be squashed: flush from just before it.
        assert violation.flush_after_seq == 4
        assert violation.producer_pc == 0x14       # earlier load produces
        assert violation.consumer_pc == 0x10       # later store consumes

    def test_output_violation_detected(self):
        """Older store completing after a younger store."""
        mdt = make_mdt()
        mdt.access_store(0x100, 8, seq=10, pc=0x10, watermark=0)
        result = mdt.access_store(0x100, 8, seq=5, pc=0x18, watermark=0)
        violation = result.violations[0]
        assert violation.kind == OUTPUT_DEP
        assert violation.flush_after_seq == 5
        assert violation.producer_pc == 0x18
        assert violation.consumer_pc == 0x10

    def test_store_can_hit_both_true_and_output(self):
        mdt = make_mdt()
        mdt.access_load(0x100, 8, seq=20, pc=0x14, watermark=0)
        mdt.access_store(0x100, 8, seq=10, pc=0x10, watermark=0)
        result = mdt.access_store(0x100, 8, seq=5, pc=0x18, watermark=0)
        kinds = {v.kind for v in result.violations}
        assert kinds == {TRUE_DEP, OUTPUT_DEP}

    def test_reissue_same_seq_is_idempotent(self):
        """A replayed access re-issues with its own sequence number."""
        mdt = make_mdt()
        mdt.access_store(0x100, 8, seq=5, pc=0x10, watermark=0)
        result = mdt.access_store(0x100, 8, seq=5, pc=0x10, watermark=0)
        assert not result.violations

    def test_youngest_numbers_are_kept(self):
        mdt = make_mdt()
        mdt.access_load(0x100, 8, seq=5, pc=0x14, watermark=0)
        mdt.access_load(0x100, 8, seq=9, pc=0x24, watermark=0)
        # A store older than both reports the *latest* load as consumer.
        result = mdt.access_store(0x100, 8, seq=1, pc=0x10, watermark=0)
        assert result.violations[0].consumer_pc == 0x24


class TestGranularity:
    def test_same_granule_aliasing(self):
        """Distinct addresses within one granule share an entry."""
        mdt = make_mdt(granularity=8)
        mdt.access_store(0x100, 1, seq=10, pc=0x10, watermark=0)
        result = mdt.access_load(0x107, 1, seq=5, pc=0x14, watermark=0)
        assert result.violations[0].kind == ANTI_DEP

    def test_finer_granularity_separates(self):
        mdt = make_mdt(granularity=4)
        mdt.access_store(0x100, 1, seq=10, pc=0x10, watermark=0)
        result = mdt.access_load(0x104, 1, seq=5, pc=0x14, watermark=0)
        assert not result.violations

    def test_access_spanning_granules_touches_both(self):
        mdt = make_mdt(granularity=8)
        mdt.access_store(0x100, 8, seq=1, pc=0x10, watermark=0)
        mdt.access_store(0x108, 8, seq=2, pc=0x10, watermark=0)
        # A load spanning both granules, older than both stores.
        result = mdt.access_load(0x104, 8, seq=0, pc=0x14, watermark=0)
        assert len(result.violations) == 2

    def test_rejects_non_power_of_two_granularity(self):
        with pytest.raises(ValueError):
            MDTConfig(granularity=12)


class TestConflicts:
    def test_tagged_set_conflict_replays(self):
        mdt = make_mdt(num_sets=1, assoc=2)
        mdt.access_load(0x100, 8, seq=1, pc=0x10, watermark=0)
        mdt.access_load(0x200, 8, seq=2, pc=0x10, watermark=0)
        result = mdt.access_load(0x300, 8, seq=3, pc=0x10, watermark=0)
        assert result.status == MDT_CONFLICT
        assert mdt.counters.get("mdt_set_conflicts") == 1

    def test_conflict_scrubs_dead_ways_first(self):
        mdt = make_mdt(num_sets=1, assoc=1)
        mdt.access_load(0x100, 8, seq=1, pc=0x10, watermark=0)
        result = mdt.access_load(0x200, 8, seq=50, pc=0x10, watermark=40)
        assert result.status == MDT_OK

    def test_untagged_shares_entries(self):
        mdt = make_mdt(num_sets=1, tagged=False)
        mdt.access_store(0x100, 8, seq=10, pc=0x10, watermark=0)
        # A *different* address aliases to the same untagged entry and
        # produces a spurious anti violation -- the paper's trade-off.
        result = mdt.access_load(0x900, 8, seq=5, pc=0x14, watermark=0)
        assert result.status == MDT_OK
        assert result.violations[0].kind == ANTI_DEP

    def test_untagged_never_conflicts(self):
        mdt = make_mdt(num_sets=1, assoc=1, tagged=False)
        for i in range(10):
            result = mdt.access_load(0x100 * i, 8, seq=20 + i, pc=0x10,
                                     watermark=0)
            assert result.status == MDT_OK


class TestRetirement:
    def test_load_retire_invalidates_and_frees(self):
        mdt = make_mdt()
        mdt.access_load(0x100, 8, seq=5, pc=0x14, watermark=0)
        mdt.on_load_retire(0x100, 8, seq=5)
        assert mdt.occupancy() == 0

    def test_store_retire_invalidates_and_frees(self):
        mdt = make_mdt()
        mdt.access_store(0x100, 8, seq=5, pc=0x10, watermark=0)
        mdt.on_store_retire(0x100, 8, seq=5)
        assert mdt.occupancy() == 0

    def test_entry_survives_while_other_number_valid(self):
        mdt = make_mdt()
        mdt.access_load(0x100, 8, seq=5, pc=0x14, watermark=0)
        mdt.access_store(0x100, 8, seq=6, pc=0x10, watermark=0)
        mdt.on_load_retire(0x100, 8, seq=5)
        assert mdt.occupancy() == 1
        mdt.on_store_retire(0x100, 8, seq=6)
        assert mdt.occupancy() == 0

    def test_stale_retire_does_not_clear_younger_number(self):
        mdt = make_mdt()
        mdt.access_load(0x100, 8, seq=5, pc=0x14, watermark=0)
        mdt.access_load(0x100, 8, seq=9, pc=0x14, watermark=0)
        mdt.on_load_retire(0x100, 8, seq=5)
        # Seq 9 still recorded: an older store must still violate.
        result = mdt.access_store(0x100, 8, seq=2, pc=0x10, watermark=0)
        assert result.violations

    def test_retire_frees_count_as_evictions(self):
        mdt = make_mdt()
        mdt.access_load(0x100, 8, seq=5, pc=0x14, watermark=0)
        before = mdt.eviction_events
        mdt.on_load_retire(0x100, 8, seq=5)
        assert mdt.eviction_events == before + 1


class TestFlushesAndScrub:
    def test_partial_flush_leaves_state(self):
        mdt = make_mdt()
        mdt.access_store(0x100, 8, seq=10, pc=0x10, watermark=0)
        mdt.on_partial_flush()
        # Conservatism: the canceled store still triggers violations.
        result = mdt.access_load(0x100, 8, seq=5, pc=0x14, watermark=0)
        assert result.violations

    def test_full_flush_clears(self):
        mdt = make_mdt()
        mdt.access_store(0x100, 8, seq=10, pc=0x10, watermark=0)
        mdt.on_full_flush()
        assert mdt.occupancy() == 0

    def test_scrub_reclaims_dead(self):
        mdt = make_mdt()
        mdt.access_load(0x100, 8, seq=1, pc=0x14, watermark=0)
        mdt.access_load(0x200, 8, seq=50, pc=0x14, watermark=0)
        mdt.scrub(watermark=10)
        assert mdt.occupancy() == 1

    def test_wrong_path_flush_of_every_store_stays_conservative(self):
        """A recovery flush that squashes every in-flight store leaves
        their recorded sequence numbers behind (Section 2.2): the very
        next older load still sees the canceled store and replays/flags
        conservatively rather than missing a real ordering risk."""
        mdt = make_mdt()
        mdt.access_store(0x100, 8, seq=10, pc=0x10, watermark=0)
        mdt.access_store(0x180, 8, seq=12, pc=0x18, watermark=0)
        # Recovery point 0 is older than both stores: total squash.
        mdt.on_partial_flush(flush_after_seq=0)
        result = mdt.access_load(0x100, 8, seq=5, pc=0x14, watermark=0)
        assert any(v.kind == ANTI_DEP for v in result.violations)

    def test_wrong_path_flush_of_every_store_drops_counted_loads(self):
        """The §2.4.1 completed-load sets must not leak squashed loads:
        after a total squash the store falls back to conservative
        store-point recovery instead of targeting a ghost load."""
        mdt = make_mdt(counted=True)
        mdt.access_load(0x100, 8, seq=10, pc=0x14, watermark=0)
        mdt.access_load(0x100, 8, seq=12, pc=0x24, watermark=0)
        mdt.on_partial_flush(flush_after_seq=0)
        result = mdt.access_store(0x100, 8, seq=5, pc=0x10, watermark=0)
        assert result.violations
        assert result.violations[0].flush_after_seq == 5

    def test_full_flush_then_out_of_order_seqs_are_clean(self):
        """After a full flush nothing is in flight, so a low-seq access
        arriving after a squashed high-seq store must not conflict."""
        mdt = make_mdt()
        mdt.access_store(0x100, 8, seq=10, pc=0x10, watermark=0)
        mdt.on_full_flush()
        assert mdt.occupancy() == 0
        result = mdt.access_load(0x100, 8, seq=5, pc=0x14, watermark=0)
        assert not result.violations


class TestCountedRecovery:
    def test_single_load_flushes_from_load(self):
        """Section 2.4.1: with one completed conflicting load, flush the
        load instead of the whole post-store window."""
        mdt = make_mdt(counted=True)
        mdt.access_load(0x100, 8, seq=10, pc=0x14, watermark=0)
        result = mdt.access_store(0x100, 8, seq=5, pc=0x10, watermark=0)
        assert result.violations[0].flush_after_seq == 9

    def test_multiple_loads_fall_back_to_conservative(self):
        mdt = make_mdt(counted=True)
        mdt.access_load(0x100, 8, seq=10, pc=0x14, watermark=0)
        mdt.access_load(0x100, 8, seq=12, pc=0x24, watermark=0)
        result = mdt.access_store(0x100, 8, seq=5, pc=0x10, watermark=0)
        assert result.violations[0].flush_after_seq == 5

    def test_disabled_by_default(self):
        mdt = make_mdt(counted=False)
        mdt.access_load(0x100, 8, seq=10, pc=0x14, watermark=0)
        result = mdt.access_store(0x100, 8, seq=5, pc=0x10, watermark=0)
        assert result.violations[0].flush_after_seq == 5

    def test_load_count_decrements_at_retire(self):
        mdt = make_mdt(counted=True)
        mdt.access_load(0x100, 8, seq=10, pc=0x14, watermark=0)
        mdt.access_load(0x100, 8, seq=12, pc=0x24, watermark=0)
        mdt.on_load_retire(0x100, 8, seq=10)
        result = mdt.access_store(0x100, 8, seq=5, pc=0x10, watermark=0)
        assert result.violations[0].flush_after_seq == 11

    def test_recovery_after_partial_flush_cancels_tracked_load(self):
        """A partial flush un-counts the canceled load, so §2.4.1
        recovery targets the surviving one instead of falling back."""
        mdt = make_mdt(counted=True)
        mdt.access_load(0x100, 8, seq=10, pc=0x14, watermark=0)
        mdt.access_load(0x100, 8, seq=12, pc=0x24, watermark=0)
        # Flush everything younger than seq 11: load 12 never executed.
        mdt.on_partial_flush(flush_after_seq=11)
        result = mdt.access_store(0x100, 8, seq=5, pc=0x10, watermark=0)
        # Exactly one completed load remains -> flush from that load.
        assert result.violations[0].flush_after_seq == 9

    def test_partial_flush_without_point_stays_conservative(self):
        mdt = make_mdt(counted=True)
        mdt.access_load(0x100, 8, seq=10, pc=0x14, watermark=0)
        mdt.access_load(0x100, 8, seq=12, pc=0x24, watermark=0)
        mdt.on_partial_flush()
        result = mdt.access_store(0x100, 8, seq=5, pc=0x10, watermark=0)
        assert result.violations[0].flush_after_seq == 5


class TestMultiGranuleAtomicity:
    def test_spanning_conflict_commits_nothing(self):
        """If any granule of a spanning access conflicts, no granule may
        be updated: the access replays and must see a clean table."""
        mdt = make_mdt(num_sets=2, assoc=1)
        # Fill the set that granule 0x108 maps to (granule 0x21, set 1).
        mdt.access_load(0x208, 8, seq=1, pc=0x10, watermark=0)
        before = mdt.occupancy()
        # Spans granules 0x100 (set 0, free) and 0x108 (set 1, full).
        result = mdt.access_load(0x104, 8, seq=2, pc=0x14, watermark=0)
        assert result.status == MDT_CONFLICT
        # The free first granule must NOT have been allocated.
        assert mdt.occupancy() == before
        # An older store to the first granule sees no phantom load.
        check = mdt.access_store(0x100, 8, seq=0, pc=0x18, watermark=0)
        assert not check.violations

    def test_spanning_same_set_counts_pending_allocations(self):
        """Both granules of one access landing in the same set must find
        room for *two* new entries, not one."""
        mdt = make_mdt(num_sets=1, assoc=2)
        mdt.access_load(0x300, 8, seq=1, pc=0x10, watermark=0)
        before = mdt.occupancy()
        # Needs two ways in set 0; only one is free.
        result = mdt.access_load(0x104, 8, seq=2, pc=0x14, watermark=0)
        assert result.status == MDT_CONFLICT
        assert mdt.occupancy() == before

    def test_conflicting_access_replays_cleanly(self):
        """Replay after the blocker retires behaves as a first access."""
        mdt = make_mdt(num_sets=2, assoc=1)
        mdt.access_load(0x208, 8, seq=1, pc=0x10, watermark=0)
        assert mdt.access_load(0x104, 8, seq=2, pc=0x14,
                               watermark=0).status == MDT_CONFLICT
        mdt.on_load_retire(0x208, 8, seq=1)
        replay = mdt.access_load(0x104, 8, seq=2, pc=0x14, watermark=0)
        assert replay.status == MDT_OK
        assert not replay.violations
        assert mdt.occupancy() == 2


class TestResultIsolation:
    def test_violations_are_immutable_tuples(self):
        mdt = make_mdt()
        clean = mdt.access_load(0x100, 8, seq=1, pc=0x14, watermark=0)
        assert isinstance(clean.violations, tuple)
        with pytest.raises(AttributeError):
            clean.violations.append(None)

    def test_clean_results_never_leak_violations(self):
        """Two independent clean results share no mutable state, so a
        violation reported to one caller can never appear in another's
        (the old shared-list singleton bug)."""
        mdt = make_mdt()
        first = mdt.access_load(0x100, 8, seq=1, pc=0x14, watermark=0)
        mdt.access_store(0x200, 8, seq=10, pc=0x10, watermark=0)
        violating = mdt.access_load(0x200, 8, seq=5, pc=0x14, watermark=0)
        second = mdt.access_load(0x300, 8, seq=20, pc=0x14, watermark=0)
        assert not first.violations
        assert not second.violations
        assert len(violating.violations) == 1
