"""Replay every committed corpus case as a tier-1 regression test.

Each JSON document under ``corpus/`` is a minimized program that once
exposed a bug (or locks in an adversarial access pattern).  This module
parametrizes over the directory, so dropping a new case file in --
which ``repro fuzz --corpus corpus`` does automatically on a failure --
adds a regression test with no further wiring.
"""

from pathlib import Path

import pytest

from repro.verify import CrashCase, DifferentialFuzzer, load_corpus

CORPUS_DIR = Path(__file__).resolve().parent.parent / "corpus"

_CASES = load_corpus(CORPUS_DIR)


@pytest.fixture(scope="module")
def fuzzer():
    return DifferentialFuzzer()


def test_corpus_is_committed():
    # The repo ships regression cases; an empty directory means the
    # checkout (or the loader) is broken.
    assert _CASES, f"no corpus cases found under {CORPUS_DIR}"


@pytest.mark.parametrize("case", _CASES, ids=lambda case: case.name)
class TestCorpusReplay:
    def test_program_assembles(self, case: CrashCase):
        program = case.program()
        assert program.instructions

    def test_differentially_clean(self, case: CrashCase, fuzzer):
        mismatches = fuzzer.check_program(case.program(), seed=case.seed)
        assert not mismatches, "\n".join(
            f"[{m.kind}] {m.config_name}: {m.detail}" for m in mismatches)
