"""Tests for the stable public API facade and the deprecation shims."""

import warnings

import pytest

from repro import Processor, api
from repro.harness import baseline_sfc_mdt_config
from repro.obs.runrecord import RunRecord
from repro.stats.report import format_report
from repro.workloads import ALL_BENCHMARKS
from tests.conftest import assemble, counted_loop_program


def quiet_runner_kwargs():
    return dict(jobs=1, use_cache=False)


class TestSimulate:
    def test_returns_runrecord(self):
        record = api.simulate("gap", "baseline-sfc-mdt", scale=1200,
                              **quiet_runner_kwargs())
        assert isinstance(record, RunRecord)
        assert record.benchmark == "gap"
        # Preset names carry a parameter suffix (e.g. "-enf").
        assert record.config_name.startswith("baseline-sfc-mdt")
        assert record.scale == 1200
        assert record.cycles > 0 and record.counters

    def test_accepts_config_object(self):
        config = baseline_sfc_mdt_config()
        record = api.simulate("gap", config, scale=1200,
                              **quiet_runner_kwargs())
        assert record.config_name == config.name

    def test_unknown_config_rejected(self):
        with pytest.raises(KeyError):
            api.simulate("gap", "no-such-preset", scale=1200,
                         **quiet_runner_kwargs())

    def test_unknown_config_message_lists_presets(self):
        with pytest.raises(KeyError, match="baseline-sfc-mdt"):
            api.resolve_config("no-such-preset")

    def test_unknown_workload_rejected_with_message(self):
        with pytest.raises(KeyError, match="doom"):
            api.simulate("doom", scale=1200, **quiet_runner_kwargs())


class TestCompare:
    def test_records_in_request_order(self):
        records = api.compare(
            "gap", ["baseline-sfc-mdt", "baseline-lsq"], scale=1200,
            **quiet_runner_kwargs())
        names = [r.config_name for r in records]
        assert names[0].startswith("baseline-sfc-mdt")
        assert names[1].startswith("baseline-lsq")
        assert all(r.benchmark == "gap" for r in records)


class TestRunFigure:
    def test_figure_smoke(self):
        figure = api.run_figure("window-scaling", scale=1200,
                                **quiet_runner_kwargs())
        assert figure.rows and figure.series_names

    def test_unknown_figure_rejected(self):
        with pytest.raises(KeyError):
            api.run_figure("fig99", scale=1200, **quiet_runner_kwargs())


class TestTrace:
    def test_trace_returns_epochs(self):
        tracer = api.trace("gap", scale=1200, ring_size=64,
                           epoch_cycles=200)
        assert tracer.epochs
        assert len(tracer.traces) <= 64


class TestListings:
    def test_list_benchmarks(self):
        assert api.list_benchmarks() == sorted(ALL_BENCHMARKS)

    def test_list_configs(self):
        assert "baseline-sfc-mdt" in api.list_configs()
        assert api.list_configs() == sorted(api.CONFIGS)

    def test_list_figures(self):
        assert api.list_figures() == sorted(api.FIGURES)


class TestDeprecationShims:
    """Old entry points keep working, but warn."""

    def test_cli_configs_attribute_warns(self):
        from repro import cli
        with pytest.warns(DeprecationWarning, match="repro.api.CONFIGS"):
            configs = cli.CONFIGS
        assert configs is api.CONFIGS

    def test_cli_figures_attribute_warns(self):
        from repro import cli
        with pytest.warns(DeprecationWarning, match="repro.api.FIGURES"):
            figures = cli.FIGURES
        assert figures is api.FIGURES

    def test_cli_unknown_attribute_still_raises(self):
        from repro import cli
        with pytest.raises(AttributeError):
            cli.NO_SUCH_NAME

    def test_format_report_simresult_warns_and_renders(self):
        result = Processor(assemble(counted_loop_program),
                           baseline_sfc_mdt_config()).run()
        with pytest.warns(DeprecationWarning, match="RunRecord"):
            report = format_report(result)
        assert "IPC" in report

    def test_format_report_runrecord_does_not_warn(self):
        record = api.simulate("gap", scale=1200, **quiet_runner_kwargs())
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            report = format_report(record)
        assert "gap on baseline-sfc-mdt" in report


class TestSimulateSystem:
    def test_returns_v3_runrecord(self):
        record = api.simulate_system("gap", "baseline-sfc-mdt", cores=2,
                                     scale=1200, **quiet_runner_kwargs())
        assert isinstance(record, RunRecord)
        assert record.cores == 2
        assert record.to_dict()["schema_version"] == 3
        assert record.counters["core1_retired_instructions"] > 0
        assert "l2_miss_rate" in record.counters

    def test_litmus_benchmark_defaults_to_shared(self):
        record = api.simulate_system("litmus-mp",
                                     **quiet_runner_kwargs())
        assert record.cores == 2
        assert record.benchmark == "litmus-mp"

    def test_litmus_with_private_memory_rejected(self):
        with pytest.raises(ValueError, match="shared"):
            api.simulate_system("litmus-mp", memory_mode="private",
                                **quiet_runner_kwargs())

    def test_litmus_wrong_core_count_rejected(self):
        with pytest.raises(ValueError, match="cores"):
            api.simulate_system("litmus-mp", cores=3,
                                **quiet_runner_kwargs())

    def test_list_litmus_tests(self):
        assert api.list_litmus_tests() == ["litmus-lb", "litmus-mp",
                                           "litmus-sb"]


class TestRunLitmusApi:
    def test_default_suite_ok(self):
        report = api.run_litmus()
        assert report.ok and len(report.results) == 3

    def test_named_config_resolved(self):
        report = api.run_litmus(tests=["mp"], configs=["baseline-lsq"])
        assert report.ok
        assert report.results[0].config_name.startswith("baseline-lsq")
