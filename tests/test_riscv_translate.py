"""RV32 -> internal-ISA translation semantics, checked on the oracle.

Every test assembles a small real RV32 program, runs it through the
full frontend (decode -> translate) and the in-order interpreter, and
compares register results against hand-computed RV32 semantics.  Each
destination is also checked for the translation invariant: a W-op
result register always holds the 64-bit sign-extension of its 32-bit
value (that is what lets 64-bit compares/branches implement the 32-bit
ones without any fix-up instructions).
"""

from __future__ import annotations

import pytest

from repro.isa.instructions import NUM_REGS
from repro.isa.interp import Interpreter
from repro.isa.riscv import RVAssembler

MASK32 = (1 << 32) - 1
MASK64 = (1 << 64) - 1


def run_rv(build):
    """Assemble, translate, and interpret; returns the register file."""
    asm = RVAssembler()
    build(asm)
    asm.emit("ecall")
    interp = Interpreter(asm.build(name="translate-test"))
    interp.run(100_000)
    return interp.regs


def low32(value):
    return value & MASK32


def assert_sign_extended(regs):
    """The frontend invariant on every architectural register."""
    for index in range(NUM_REGS):
        value = regs[index]
        expected = value & MASK32
        if expected >> 31:
            expected |= MASK64 ^ MASK32
        assert value == expected, f"x{index} not sign-extended"


class TestArithmetic32:
    def test_add_sub_wrap_at_32_bits(self):
        def build(asm):
            asm.li32(1, 0x7FFFFFFF)
            asm.emit("addi", rd=2, rs1=1, imm=1)       # overflow to INT_MIN
            asm.emit("add", rd=3, rs1=1, rs2=1)        # 0xFFFFFFFE
            asm.emit("sub", rd=4, rs1=0, rs2=1)        # -INT_MAX
        regs = run_rv(build)
        assert low32(regs[2]) == 0x80000000
        assert low32(regs[3]) == 0xFFFFFFFE
        assert low32(regs[4]) == 0x80000001
        assert_sign_extended(regs)

    def test_shifts_mask_shamt_to_five_bits(self):
        def build(asm):
            asm.emit("addi", rd=1, rs1=0, imm=1)
            asm.emit("addi", rd=2, rs1=0, imm=33)      # shamt 33 -> 1
            asm.emit("sll", rd=3, rs1=1, rs2=2)        # 1 << 1
            asm.li32(4, 0x80000000)
            asm.emit("srl", rd=5, rs1=4, rs2=2)        # logical >> 1
            asm.emit("sra", rd=6, rs1=4, rs2=2)        # arithmetic >> 1
            asm.emit("srai", rd=7, rs1=4, imm=31)      # -> all-ones
        regs = run_rv(build)
        assert low32(regs[3]) == 2
        assert low32(regs[5]) == 0x40000000
        assert low32(regs[6]) == 0xC0000000
        assert low32(regs[7]) == 0xFFFFFFFF
        assert_sign_extended(regs)

    def test_compares_are_32_bit(self):
        def build(asm):
            asm.li32(1, 0x80000000)                    # INT_MIN / big unsigned
            asm.emit("addi", rd=2, rs1=0, imm=1)
            asm.emit("slt", rd=3, rs1=1, rs2=2)        # signed: INT_MIN < 1
            asm.emit("slt", rd=4, rs1=2, rs2=1)        # signed: 1 < INT_MIN?
            asm.emit("sltu", rd=5, rs1=2, rs2=1)       # unsigned: 1 < 2^31
            asm.emit("sltu", rd=6, rs1=1, rs2=2)       # unsigned: 2^31 < 1?
            asm.emit("sltiu", rd=7, rs1=0, imm=-1)     # 0 < 0xFFFFFFFF
            asm.li32(8, 0xFFFFFFFF)
            asm.emit("sltiu", rd=9, rs1=8, imm=-1)     # UINT_MAX < UINT_MAX?
        regs = run_rv(build)
        assert (regs[3], regs[4]) == (1, 0)
        assert (regs[5], regs[6]) == (1, 0)
        assert (regs[7], regs[9]) == (1, 0)


class TestMulDiv32:
    def test_mulh_variants(self):
        def build(asm):
            asm.li32(1, 0x80000000)
            asm.li32(2, 0xFFFFFFFF)
            asm.emit("mul", rd=3, rs1=1, rs2=1)        # low 32 of 2^62
            asm.emit("mulh", rd=4, rs1=1, rs2=1)       # (-2^31)^2 >> 32
            asm.emit("mulhu", rd=5, rs1=1, rs2=1)      # (2^31)^2 >> 32
            asm.emit("mulhsu", rd=6, rs1=1, rs2=2)     # -2^31 * (2^32-1)
        regs = run_rv(build)
        assert low32(regs[3]) == 0
        assert low32(regs[4]) == 0x40000000
        assert low32(regs[5]) == 0x40000000
        assert low32(regs[6]) == 0x80000000
        assert_sign_extended(regs)

    def test_division_truncates_toward_zero(self):
        def build(asm):
            asm.emit("addi", rd=1, rs1=0, imm=7)
            asm.emit("addi", rd=2, rs1=0, imm=-2)
            asm.emit("div", rd=3, rs1=1, rs2=2)        # 7 / -2 = -3
            asm.emit("rem", rd=4, rs1=1, rs2=2)        # 7 rem -2 = 1
            asm.emit("addi", rd=5, rs1=0, imm=-7)
            asm.emit("div", rd=6, rs1=5, rs2=2)        # -7 / -2 = 3
            asm.emit("rem", rd=7, rs1=5, rs2=2)        # -7 rem -2 = -1
        regs = run_rv(build)
        assert low32(regs[3]) == low32(-3)
        assert low32(regs[4]) == 1
        assert low32(regs[6]) == 3
        assert low32(regs[7]) == low32(-1)

    def test_division_edge_cases(self):
        def build(asm):
            asm.li32(1, 0x80000000)                    # INT_MIN
            asm.emit("addi", rd=2, rs1=0, imm=-1)
            asm.emit("div", rd=3, rs1=1, rs2=2)        # INT_MIN / -1 wraps
            asm.emit("rem", rd=4, rs1=1, rs2=2)        # -> 0
            asm.emit("div", rd=5, rs1=1, rs2=0)        # div by zero -> -1
            asm.emit("divu", rd=6, rs1=1, rs2=0)       # -> UINT_MAX
            asm.emit("rem", rd=7, rs1=1, rs2=0)        # -> dividend
            asm.emit("remu", rd=8, rs1=1, rs2=0)       # -> dividend
        regs = run_rv(build)
        assert low32(regs[3]) == 0x80000000
        assert low32(regs[4]) == 0
        assert low32(regs[5]) == 0xFFFFFFFF
        assert low32(regs[6]) == 0xFFFFFFFF
        assert low32(regs[7]) == 0x80000000
        assert low32(regs[8]) == 0x80000000
        assert_sign_extended(regs)


class TestMemoryWidths:
    def test_narrow_loads_sign_and_zero_extend(self):
        def build(asm):
            asm.li32(1, 0x1000)
            asm.li32(2, 0x80FF7F80)
            asm.emit("sw", rs1=1, rs2=2, imm=0)
            asm.emit("lb", rd=3, rs1=1, imm=0)         # 0x80 -> -128
            asm.emit("lbu", rd=4, rs1=1, imm=0)        # 0x80 -> 128
            asm.emit("lb", rd=5, rs1=1, imm=1)         # 0x7F -> 127
            asm.emit("lh", rd=6, rs1=1, imm=2)         # 0x80FF -> negative
            asm.emit("lhu", rd=7, rs1=1, imm=2)        # 0x80FF
        regs = run_rv(build)
        assert low32(regs[3]) == low32(-128)
        assert low32(regs[4]) == 128
        assert low32(regs[5]) == 127
        assert low32(regs[6]) == low32(-0x7F01)
        assert low32(regs[7]) == 0x80FF
        assert_sign_extended(regs)

    def test_bytes_reassemble_little_endian(self):
        def build(asm):
            asm.li32(1, 0x1000)
            for offset, byte in enumerate((0x44, 0x33, 0x22, 0x11)):
                asm.emit("addi", rd=2, rs1=0, imm=byte)
                asm.emit("sb", rs1=1, rs2=2, imm=offset)
            asm.emit("lw", rd=3, rs1=1, imm=0)
        regs = run_rv(build)
        assert low32(regs[3]) == 0x11223344


class TestControlFlow:
    def test_jal_links_and_skips(self):
        def build(asm):
            asm.jal(1, "over")                         # pc=0 -> link 4
            asm.emit("addi", rd=2, rs1=0, imm=99)      # skipped
            asm.label("over")
            asm.emit("addi", rd=3, rs1=0, imm=7)
        regs = run_rv(build)
        assert regs[1] == 4
        assert regs[2] == 0
        assert regs[3] == 7

    def test_jalr_call_and_return(self):
        def build(asm):
            asm.jal(1, "func")                         # call
            asm.emit("addi", rd=4, rs1=3, imm=1)       # after return
            asm.jal(0, "done")
            asm.label("func")
            asm.emit("addi", rd=3, rs1=0, imm=41)
            asm.emit("jalr", rd=0, rs1=1, imm=0)       # return
            asm.label("done")
        regs = run_rv(build)
        assert regs[3] == 41
        assert regs[4] == 42

    def test_jalr_clears_bit_zero(self):
        def build(asm):
            asm.emit("addi", rd=1, rs1=0, imm=13)      # target 12, bit 0 set
            asm.emit("jalr", rd=2, rs1=1, imm=0)       # lands on pc=12
            asm.emit("addi", rd=3, rs1=0, imm=99)      # pc=8: skipped
            asm.emit("addi", rd=4, rs1=0, imm=5)       # pc=12
        regs = run_rv(build)
        assert regs[2] == 8                            # link = pc + 4
        assert regs[3] == 0
        assert regs[4] == 5

    def test_auipc_is_pc_relative(self):
        def build(asm):
            asm.emit("auipc", rd=1, imm=0x2000)        # pc=0 -> 0x2000
            asm.emit("auipc", rd=2, imm=0)             # pc=4 -> 4
        regs = run_rv(build)
        assert regs[1] == 0x2000
        assert regs[2] == 4

    def test_branches_compare_32_bit_values(self):
        def build(asm):
            asm.li32(1, 0x80000000)
            asm.emit("addi", rd=2, rs1=0, imm=1)
            asm.emit("addi", rd=3, rs1=0, imm=0)
            asm.branch("blt", 1, 2, "signed_taken")    # INT_MIN < 1
            asm.emit("addi", rd=3, rs1=0, imm=99)      # must be skipped
            asm.label("signed_taken")
            asm.emit("addi", rd=4, rs1=0, imm=0)
            asm.branch("bltu", 1, 2, "wrong")          # 2^31 < 1 is false
            asm.emit("addi", rd=4, rs1=0, imm=7)
            asm.label("wrong")
        regs = run_rv(build)
        assert regs[3] == 0
        assert regs[4] == 7

    def test_fence_is_a_nop(self):
        def build(asm):
            asm.emit("addi", rd=1, rs1=0, imm=3)
            asm.emit("fence", imm=0x0FF)               # fence iorw, iorw
            asm.emit("fence.i")
            asm.emit("addi", rd=1, rs1=1, imm=4)
        regs = run_rv(build)
        assert regs[1] == 7


class TestLui:
    def test_li32_composes_arbitrary_constants(self):
        # 0xDEADBEEF has its low-12 high bit set: the regression that
        # requires the +0x800 rounding in the lui/addi idiom.
        values = [0xDEADBEEF, 0x7FFFFFFF, 0x80000000, 0x00000800,
                  0xFFFFF7FF, 0x12345678, 0xFFFFFFFF, 0]
        def build(asm):
            for index, value in enumerate(values):
                asm.li32(index + 1, value)
        regs = run_rv(build)
        for index, value in enumerate(values):
            assert low32(regs[index + 1]) == value, hex(value)
        assert_sign_extended(regs)
