"""Tests for the parallel experiment engine and its persistent cache."""

import json
import os
import subprocess
import sys
import time
from pathlib import Path

import pytest

import repro
from repro.harness import baseline_lsq_config, baseline_sfc_mdt_config
from repro.harness.experiment import (
    ExperimentRunner,
    ResultCache,
    cache_key,
)
from repro.harness.figures import manifest_table

BENCHMARKS = ["gap", "crafty"]
SCALE = 1200


def configs():
    return [baseline_lsq_config(), baseline_sfc_mdt_config()]


def grid_snapshot(results):
    """Comparable view of a result grid: every architected number."""
    return {
        f"{benchmark}/{name}": (result.cycles, result.instructions,
                                sorted(result.counters.as_dict().items()))
        for (benchmark, name), result in results.items()
    }


class TestCacheKey:
    def test_key_is_deterministic(self):
        assert cache_key("gap", SCALE, baseline_lsq_config()) == \
            cache_key("gap", SCALE, baseline_lsq_config())

    def test_key_ignores_display_name(self):
        named = baseline_lsq_config(name="a-pretty-label")
        assert cache_key("gap", SCALE, named) == \
            cache_key("gap", SCALE, baseline_lsq_config())

    def test_key_covers_benchmark_and_scale(self):
        config = baseline_lsq_config()
        base = cache_key("gap", SCALE, config)
        assert cache_key("crafty", SCALE, config) != base
        assert cache_key("gap", SCALE + 1, config) != base

    def test_key_stable_across_processes(self):
        """The content hash must not depend on interpreter state (dict
        order, hash randomization, object ids)."""
        config = baseline_sfc_mdt_config()
        here = cache_key("gap", SCALE, config)
        script = (
            "from repro.harness import baseline_sfc_mdt_config\n"
            "from repro.harness.experiment import cache_key\n"
            f"print(cache_key('gap', {SCALE}, baseline_sfc_mdt_config()))\n")
        env = dict(os.environ)
        src = str(Path(repro.__file__).resolve().parents[1])
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        env["PYTHONHASHSEED"] = "random"
        there = subprocess.run(
            [sys.executable, "-c", script], env=env, text=True,
            capture_output=True, check=True).stdout.strip()
        assert there == here

    def test_key_changes_when_any_config_field_changes(self):
        """Every simulation parameter participates in the cache key."""
        def perturbed(value):
            if isinstance(value, bool):
                return not value
            if isinstance(value, int):
                return value * 2 + 2  # preserves power-of-two-ness
            if isinstance(value, float):
                return value / 2 + 0.01
            if isinstance(value, str):
                perturbations = {"lsq": "sfc_mdt", "flush": "corrupt",
                                 "LSQ": "ENF", "mask": "endpoints"}
                return perturbations[value]
            raise AssertionError(f"unhandled field type: {value!r}")

        base = cache_key("gap", SCALE, baseline_lsq_config())
        reference = baseline_lsq_config().to_dict()
        seen = set()
        for field, value in reference.items():
            if field == "name":
                continue
            config = baseline_lsq_config()
            if isinstance(value, dict):  # nested config record
                nested = getattr(config, field)
                for sub_field in value:
                    setattr(nested, sub_field,
                            perturbed(value[sub_field]))
                    key = cache_key("gap", SCALE, config)
                    assert key != base, f"{field}.{sub_field}"
                    assert key not in seen, f"{field}.{sub_field}"
                    seen.add(key)
                    setattr(nested, sub_field, value[sub_field])
            else:
                setattr(config, field, perturbed(value))
                key = cache_key("gap", SCALE, config)
                assert key != base, field
                assert key not in seen, field
                seen.add(key)


class TestResultCache:
    def test_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        payload = {"format": 1, "cycles": 7}
        cache.store("k" * 64, payload)
        assert cache.load("k" * 64) == payload

    def test_temp_names_are_collision_proof(self, tmp_path, monkeypatch):
        """Two stores of one key from one pid must never share a temp
        name (pid-only suffixes collide across hosts sharing a cache
        directory over NFS)."""
        cache = ResultCache(tmp_path)
        seen = []
        original = Path.replace

        def spy(self, target):
            seen.append(self.name)
            return original(self, target)

        monkeypatch.setattr(Path, "replace", spy)
        cache.store("k" * 64, {"format": 1})
        cache.store("k" * 64, {"format": 1})
        assert len(seen) == 2 and seen[0] != seen[1]
        assert all(f".tmp.{os.getpid()}." in name for name in seen)

    def test_stale_temps_swept_on_open(self, tmp_path):
        tmp_path.mkdir(exist_ok=True)
        stale = tmp_path / ("a" * 64 + ".json.tmp.999.deadbeef")
        stale.write_text("{")
        old = time.time() - 7200
        os.utime(stale, (old, old))
        fresh = tmp_path / ("b" * 64 + ".json.tmp.999.cafef00d")
        fresh.write_text("{")
        ResultCache(tmp_path)
        assert not stale.exists(), "hour-old orphan temp must be swept"
        assert fresh.exists(), "a concurrent writer's temp must survive"

    def test_future_mtime_temp_survives_timed_sweep(self, tmp_path):
        """Regression: a temp whose mtime lies in the future (clock
        skew across hosts sharing a cache dir) used to compute a huge
        *negative* age that compared as stale under unsigned handling
        variants -- it must read as brand new instead."""
        cache = ResultCache(tmp_path)
        skewed = tmp_path / ("c" * 64 + ".json.tmp.999.0ddba11")
        skewed.write_text("{")
        ahead = time.time() + 86_400
        os.utime(skewed, (ahead, ahead))
        removed = cache.sweep_stale_temps()
        assert removed == 0
        assert skewed.exists(), \
            "future-dated temp must be treated as age zero, not stale"

    def test_timed_sweep_floors_aggressive_max_age(self, tmp_path):
        """Regression: callers passing a tiny max_age could sweep a
        concurrent writer's seconds-old temp mid-write.  Timed sweeps
        floor the horizon at MIN_STALE_TEMP_SECONDS."""
        from repro.harness.experiment import MIN_STALE_TEMP_SECONDS

        cache = ResultCache(tmp_path)
        young = tmp_path / ("d" * 64 + ".json.tmp.999.aa")
        young.write_text("{")
        recent = time.time() - 10
        os.utime(young, (recent, recent))
        old = tmp_path / ("e" * 64 + ".json.tmp.999.bb")
        old.write_text("{")
        past = time.time() - (MIN_STALE_TEMP_SECONDS + 300)
        os.utime(old, (past, past))
        removed = cache.sweep_stale_temps(max_age=1.0)
        assert removed == 1
        assert young.exists(), \
            "sub-floor max_age must not sweep a seconds-old temp"
        assert not old.exists()

    def test_gc_removes_fresh_and_future_temps(self, tmp_path):
        """gc() is the explicit remove-everything form: the clamp and
        floor protections must not apply to it."""
        cache = ResultCache(tmp_path)
        fresh = tmp_path / ("f" * 64 + ".json.tmp.999.cc")
        fresh.write_text("")
        skewed = tmp_path / ("a" * 63 + "b.json.tmp.999.dd")
        skewed.write_text("")
        ahead = time.time() + 86_400
        os.utime(skewed, (ahead, ahead))
        assert cache.gc() == 2
        assert not fresh.exists() and not skewed.exists()

    def test_gc_drops_unreadable_and_foreign_entries(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.store("good", {"format": 1, "cycles": 7})
        cache.store("old", {"format": -1})
        cache.path("corrupt").write_text("{not json")
        (tmp_path / "x.json.tmp.1.ff").write_text("")
        removed = cache.gc()
        assert removed == 3
        assert cache.load("good") == {"format": 1, "cycles": 7}
        assert not cache.path("old").exists()
        assert not cache.path("corrupt").exists()

    def test_missing_entry_is_none(self, tmp_path):
        assert ResultCache(tmp_path).load("nope") is None

    def test_corrupt_entry_reads_as_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.path("bad").parent.mkdir(parents=True, exist_ok=True)
        cache.path("bad").write_text("{not json")
        assert cache.load("bad") is None

    def test_foreign_format_reads_as_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.store("old", {"format": -1, "cycles": 7})
        assert cache.load("old") is None


class TestEngineGrids:
    def test_serial_and_parallel_grids_identical(self, tmp_path):
        serial = ExperimentRunner(scale=SCALE, use_cache=False)
        parallel = ExperimentRunner(scale=SCALE, use_cache=False)
        a = serial.run_suite(BENCHMARKS, configs(), jobs=1)
        b = parallel.run_suite(BENCHMARKS, configs(), jobs=4)
        assert grid_snapshot(a) == grid_snapshot(b)
        assert serial.cache_misses == parallel.cache_misses == 4

    def test_warm_cache_grid_identical_and_simulation_free(self, tmp_path):
        cold = ExperimentRunner(scale=SCALE, cache_dir=tmp_path)
        a = cold.run_suite(BENCHMARKS, configs(), jobs=2)
        assert cold.cache_hits == 0 and cold.cache_misses == 4

        warm = ExperimentRunner(scale=SCALE, cache_dir=tmp_path)
        b = warm.run_suite(BENCHMARKS, configs(), jobs=2)
        assert warm.cache_hits == 4 and warm.cache_misses == 0
        assert grid_snapshot(a) == grid_snapshot(b)
        # No program/trace was ever built on the warm path.
        assert not warm._programs and not warm._traces

    def test_single_run_fills_and_hits_cache(self, tmp_path):
        runner = ExperimentRunner(scale=SCALE, cache_dir=tmp_path)
        first = runner.run("gap", baseline_lsq_config())
        second = runner.run("gap", baseline_lsq_config())
        assert second.cycles == first.cycles
        assert [e["cache_hit"] for e in runner.manifest] == [False, True]

    def test_cache_shared_between_run_and_run_suite(self, tmp_path):
        runner = ExperimentRunner(scale=SCALE, cache_dir=tmp_path)
        runner.run("gap", baseline_lsq_config())
        runner.run_suite(["gap"], configs())
        hits = [e["cache_hit"] for e in runner.manifest]
        assert hits == [False, True, False]

    def test_config_field_change_invalidates_cache(self, tmp_path):
        runner = ExperimentRunner(scale=SCALE, cache_dir=tmp_path)
        runner.run("gap", baseline_lsq_config())
        changed = baseline_lsq_config()
        changed.rob_size = 64
        runner.run("gap", changed)
        assert [e["cache_hit"] for e in runner.manifest] == [False, False]

    def test_jobs_default_comes_from_cpu_count(self):
        assert ExperimentRunner(scale=SCALE).jobs == (os.cpu_count() or 1)
        assert ExperimentRunner(scale=SCALE, jobs=3).jobs == 3

    def test_parallel_serial_cached_manifests_equivalent(self, tmp_path):
        """jobs=1, jobs=N, and a warm-cache rerun must agree on every
        architected field of every manifest entry (wall_time and
        cache-provenance fields excepted)."""
        def normalized(runner):
            entries = []
            for entry in sorted(runner.manifest,
                                key=lambda e: (e["benchmark"],
                                               e["config_name"])):
                entry = dict(entry)
                for volatile in ("wall_time", "engine", "cache_hit"):
                    entry.pop(volatile)
                entries.append(entry)
            return entries

        serial = ExperimentRunner(scale=SCALE, use_cache=False)
        parallel = ExperimentRunner(scale=SCALE, use_cache=False)
        cold = ExperimentRunner(scale=SCALE, cache_dir=tmp_path)
        a = serial.run_suite(BENCHMARKS, configs(), jobs=1)
        b = parallel.run_suite(BENCHMARKS, configs(), jobs=4)
        cold.run_suite(BENCHMARKS, configs(), jobs=2)
        warm = ExperimentRunner(scale=SCALE, cache_dir=tmp_path)
        c = warm.run_suite(BENCHMARKS, configs(), jobs=2)
        assert grid_snapshot(a) == grid_snapshot(b) == grid_snapshot(c)
        assert normalized(serial) == normalized(parallel) == \
            normalized(warm)
        assert all(e["status"] == "ok" for e in serial.manifest)


class TestBatchDedup:
    def test_identical_duplicate_configs_simulate_once(self, tmp_path):
        runner = ExperimentRunner(scale=SCALE, use_cache=False)
        calls = []
        original = runner._cell_fn

        def counting(program, trace, config):
            calls.append(config.name)
            return original(program, trace, config)

        runner._cell_fn = counting
        results = runner.run_suite(
            ["gap"], [baseline_lsq_config(), baseline_lsq_config()],
            jobs=1)
        assert len(results) == 1
        assert len(calls) == 1
        assert len(runner.manifest) == 1

    def test_same_payload_different_names_share_one_simulation(self):
        runner = ExperimentRunner(scale=SCALE, use_cache=False)
        calls = []
        original = runner._cell_fn

        def counting(program, trace, config):
            calls.append(config.name)
            return original(program, trace, config)

        runner._cell_fn = counting
        results = runner.run_suite(
            ["gap"], [baseline_lsq_config(name="alpha"),
                      baseline_lsq_config(name="beta")], jobs=1)
        assert len(calls) == 1, "one cache key must simulate once"
        assert set(results) == {("gap", "alpha"), ("gap", "beta")}
        assert results[("gap", "alpha")].cycles == \
            results[("gap", "beta")].cycles
        names = [e["config_name"] for e in runner.manifest]
        assert sorted(names) == ["alpha", "beta"]

    def test_duplicate_name_with_different_payload_raises(self):
        runner = ExperimentRunner(scale=SCALE, use_cache=False)
        changed = baseline_lsq_config()
        changed.rob_size = 64
        with pytest.raises(ValueError, match="duplicate config name"):
            runner.run_suite(["gap"], [baseline_lsq_config(), changed])


class TestEngineProvenance:
    def test_run_suite_records_effective_jobs(self, tmp_path):
        """run_suite(jobs=...) must be what the manifest reports, not
        the constructor default."""
        runner = ExperimentRunner(scale=SCALE, jobs=8, use_cache=False)
        runner.run_suite(["gap"], [baseline_lsq_config()], jobs=1)
        assert runner.manifest[-1]["engine"]["jobs"] == 1
        runner.run_suite(["crafty"], [baseline_lsq_config()], jobs=2)
        assert runner.manifest[-1]["engine"]["jobs"] == 2

    def test_cache_hit_records_effective_jobs(self, tmp_path):
        cold = ExperimentRunner(scale=SCALE, jobs=8, cache_dir=tmp_path)
        cold.run_suite(["gap"], [baseline_lsq_config()], jobs=1)
        warm = ExperimentRunner(scale=SCALE, jobs=8, cache_dir=tmp_path)
        warm.run_suite(["gap"], [baseline_lsq_config()], jobs=3)
        assert warm.manifest[-1]["cache_hit"] is True
        assert warm.manifest[-1]["engine"]["jobs"] == 3


class TestManifest:
    def test_manifest_entry_schema(self, tmp_path):
        runner = ExperimentRunner(scale=SCALE, cache_dir=tmp_path)
        result = runner.run("gap", baseline_lsq_config())
        (entry,) = runner.manifest
        assert entry["benchmark"] == "gap"
        assert entry["config_name"] == baseline_lsq_config().name
        assert entry["config"] == baseline_lsq_config().to_dict()
        assert entry["cycles"] == result.cycles
        assert entry["ipc"] == pytest.approx(result.ipc)
        assert entry["counters"] == result.counters.as_dict()
        assert entry["wall_time"] > 0
        assert entry["cache_hit"] is False
        assert entry["key"] == cache_key("gap", SCALE,
                                         baseline_lsq_config())

    def test_write_manifest_json(self, tmp_path):
        runner = ExperimentRunner(scale=SCALE, cache_dir=tmp_path)
        runner.run("gap", baseline_lsq_config())
        path = runner.write_manifest(tmp_path / "out" / "manifest.json")
        loaded = json.loads(path.read_text())
        assert len(loaded) == 1 and loaded[0]["benchmark"] == "gap"

    def test_manifest_table_renders(self, tmp_path):
        runner = ExperimentRunner(scale=SCALE, cache_dir=tmp_path)
        runner.run("gap", baseline_lsq_config())
        runner.run("gap", baseline_lsq_config())
        text = manifest_table(runner)
        assert "gap" in text
        assert "hit" in text and "miss" in text
        assert "1 cache hits, 1 simulated" in text


class TestRunSystem:
    def make_config(self, cores=2, memory_mode="private"):
        from repro.pipeline import SystemConfig
        return SystemConfig(core=baseline_sfc_mdt_config(), cores=cores,
                            memory_mode=memory_mode)

    def test_multicore_cell_cached(self, tmp_path):
        runner = ExperimentRunner(scale=SCALE, cache_dir=tmp_path)
        cold = runner.run_system("gap", self.make_config())
        warm = runner.run_system("gap", self.make_config())
        assert [e["cache_hit"] for e in runner.manifest] == [False, True]
        assert cold.cycles == warm.cycles
        assert cold.counters == warm.counters
        assert warm.cores == 2

    def test_system_key_distinct_from_core_key(self):
        core = baseline_sfc_mdt_config()
        assert cache_key("gap", SCALE, core) != \
            cache_key("gap", SCALE, self.make_config(cores=1))

    def test_key_varies_with_cores_and_mode(self):
        keys = {cache_key("gap", SCALE, self.make_config(cores=n,
                                                         memory_mode=m))
                for n in (1, 2) for m in ("shared", "private")}
        assert len(keys) == 4

    def test_litmus_cell_via_engine(self, tmp_path):
        from repro.pipeline import SystemConfig
        runner = ExperimentRunner(scale=SCALE, cache_dir=tmp_path)
        config = SystemConfig(core=baseline_sfc_mdt_config(), cores=2,
                              memory_mode="shared")
        record = runner.run_system("litmus-mp", config)
        assert record.benchmark == "litmus-mp"
        assert record.cores == 2

    def test_litmus_config_mismatch_rejected(self, tmp_path):
        runner = ExperimentRunner(scale=SCALE, cache_dir=tmp_path)
        with pytest.raises(ValueError, match="needs exactly 2"):
            runner.run_system("litmus-mp", self.make_config(
                cores=3, memory_mode="shared"))
        with pytest.raises(ValueError, match="shared"):
            runner.run_system("litmus-mp", self.make_config(
                cores=2, memory_mode="private"))
