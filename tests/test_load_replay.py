"""Tests for the value-based retirement-replay subsystem (paper §4)."""

from repro import Processor, run_program
from repro.core import LoadReplaySubsystem, LSQConfig
from repro.harness import aggressive_load_replay_config
from repro.harness.configs import SUBSYSTEM_LOAD_REPLAY
from repro.memory import MainMemory, paper_hierarchy
from repro.stats import Counters
from repro.workloads import random_program
from tests.conftest import assemble, counted_loop_program


def make_subsystem(lq=8, sq=8):
    memory = MainMemory()
    return LoadReplaySubsystem(LSQConfig(lq, sq), memory,
                               paper_hierarchy(), Counters()), memory


def baseline_load_replay_config():
    config = aggressive_load_replay_config()
    config.width = 4
    config.rob_size = config.sched_size = 128
    config.num_fus = 4
    config.fetch_branches_per_cycle = 1
    config.name = "baseline-load-replay"
    return config


class TestUnit:
    def test_store_execute_never_flags(self):
        sub, _ = make_subsystem()
        sub.dispatch_store(1, 0x10)
        sub.dispatch_load(2, 0x14)
        sub.execute_load(2, 0x14, 0x100, 8, watermark=0)   # stale read
        outcome = sub.execute_store(1, 0x10, 0x100, 8, 42, watermark=0)
        assert not outcome.violations      # detection deferred to retire

    def test_clean_load_retires_without_correction(self):
        sub, memory = make_subsystem()
        memory.write_int(0x100, 8, 7)
        sub.dispatch_load(1, 0x14)
        sub.execute_load(1, 0x14, 0x100, 8, watermark=0)
        corrected, violations = sub.retire_load(1, 0x100, 8)
        assert corrected is None and not violations

    def test_stale_load_corrected_at_retire(self):
        sub, memory = make_subsystem()
        sub.dispatch_store(1, 0x10)
        sub.dispatch_load(2, 0x14)
        sub.execute_load(2, 0x14, 0x100, 8, watermark=0)   # reads 0
        sub.execute_store(1, 0x10, 0x100, 8, 42, watermark=0)
        # Store retires first (in order), committing to memory.
        addr, size, data, _ = sub.retire_store(1, 0x100, 8)
        memory.write_int(addr, size, data)
        corrected, violations = sub.retire_load(2, 0x100, 8)
        assert corrected == 42
        assert violations and violations[0].flush_after_seq == 2

    def test_every_load_reexecutes(self):
        sub, memory = make_subsystem()
        for seq in (1, 2, 3):
            sub.dispatch_load(seq, 0x14)
            sub.execute_load(seq, 0x14, 0x100 + 8 * seq, 8, watermark=0)
            sub.retire_load(seq, 0x100 + 8 * seq, 8)
        assert sub.counters.get("lsq_retire_replays") == 3

    def test_forwarding_still_works_at_execute(self):
        sub, _ = make_subsystem()
        sub.dispatch_store(1, 0x10)
        sub.dispatch_load(2, 0x14)
        sub.execute_store(1, 0x10, 0x100, 8, 9, watermark=0)
        outcome = sub.execute_load(2, 0x14, 0x100, 8, watermark=0)
        assert outcome.value == 9 and outcome.latency == 1


class TestPipeline:
    def test_config_constructs(self):
        config = aggressive_load_replay_config()
        assert config.subsystem == SUBSYSTEM_LOAD_REPLAY
        assert (config.lsq.lq_size, config.lsq.sq_size) == (120, 80)

    def test_counted_loop_runs_exactly(self):
        result = Processor(assemble(counted_loop_program),
                           baseline_load_replay_config()).run()
        assert result.instructions > 0

    def test_random_programs_retire_exactly(self):
        for seed in (5, 55, 555):
            prog = random_program(seed, max_blocks=15)
            trace = run_program(prog, 500_000)
            Processor(prog, aggressive_load_replay_config(),
                      trace=trace).run()

    def test_violation_detected_at_retirement(self):
        """A late store is only caught when the stale load retires."""
        def build(a):
            a.li("r1", 0x1000)
            a.li("r2", 0)
            a.li("r3", 40)
            a.li("r7", 3)
            a.label("loop")
            a.mul("r4", "r2", "r7")
            a.mul("r4", "r4", "r7")
            a.sd("r4", "r1", 0)
            a.ld("r5", "r1", 0)
            a.add("r6", "r6", "r5")
            a.addi("r2", "r2", 1)
            a.bne("r2", "r3", "loop")
            a.halt()
        result = Processor(assemble(build),
                           baseline_load_replay_config()).run()
        assert result.counters.get("retire_replay_violations") >= 1

    def test_reexecution_traffic_counted(self):
        result = Processor(assemble(counted_loop_program),
                           baseline_load_replay_config()).run()
        assert result.counters.get("lsq_retire_replays") == \
            result.counters.get("retired_loads")
