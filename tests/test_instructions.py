"""Unit tests for the instruction set definitions."""

import pytest

from repro.isa import instructions as ops
from repro.isa.instructions import (
    Instruction,
    sign_extend,
    to_signed,
    to_unsigned,
)


class TestOpcodeSets:
    def test_opcode_values_are_unique(self):
        names = list(ops.OPCODE_NAMES)
        assert len(names) == len(set(names))

    def test_every_opcode_has_a_name(self):
        for value in range(ops.NUM_OPCODES):
            assert value in ops.OPCODE_NAMES

    def test_load_and_store_sets_are_disjoint(self):
        assert not (ops.LOAD_OPS & ops.STORE_OPS)

    def test_mem_ops_is_union_of_loads_and_stores(self):
        assert ops.MEM_OPS == ops.LOAD_OPS | ops.STORE_OPS

    def test_control_ops_cover_branches_and_jumps(self):
        assert ops.BEQ in ops.CONTROL_OPS
        assert ops.J in ops.CONTROL_OPS
        assert ops.JR in ops.CONTROL_OPS
        assert ops.ADD not in ops.CONTROL_OPS

    def test_access_sizes(self):
        assert ops.ACCESS_SIZE[ops.LB] == 1
        assert ops.ACCESS_SIZE[ops.LH] == 2
        assert ops.ACCESS_SIZE[ops.LW] == 4
        assert ops.ACCESS_SIZE[ops.LD] == 8
        assert ops.ACCESS_SIZE[ops.SB] == 1
        assert ops.ACCESS_SIZE[ops.SD] == 8

    def test_latencies(self):
        assert Instruction(ops.ADD).latency == 1
        assert Instruction(ops.MUL).latency == 3
        assert Instruction(ops.DIV).latency == 12
        assert Instruction(ops.FADD).latency == 4
        assert Instruction(ops.LD).latency == 1


class TestInstruction:
    def test_predicates_load(self):
        inst = Instruction(ops.LW, rd=3, rs1=2, imm=8)
        assert inst.is_load and inst.is_mem
        assert not inst.is_store and not inst.is_branch

    def test_predicates_store(self):
        inst = Instruction(ops.SW, rs1=2, rs2=3, imm=8)
        assert inst.is_store and inst.is_mem
        assert not inst.is_load

    def test_predicates_branch(self):
        inst = Instruction(ops.BNE, rs1=1, rs2=2, imm=0x40)
        assert inst.is_branch and inst.is_control
        assert not inst.is_mem

    def test_access_size_none_for_alu(self):
        assert Instruction(ops.ADD).access_size is None

    def test_repr_forms(self):
        assert "lw" in repr(Instruction(ops.LW, rd=1, rs1=2, imm=4))
        assert "sd" in repr(Instruction(ops.SD, rs1=2, rs2=3, imm=4))
        assert "beq" in repr(Instruction(ops.BEQ, rs1=1, rs2=2, imm=8))
        assert repr(Instruction(ops.NOP)) == "nop"
        assert "li" in repr(Instruction(ops.LI, rd=1, imm=7))
        assert "jr" in repr(Instruction(ops.JR, rs1=5))
        assert "add" in repr(Instruction(ops.ADD, rd=1, rs1=2, rs2=3))


class TestValueHelpers:
    def test_to_signed_positive(self):
        assert to_signed(5) == 5

    def test_to_signed_negative(self):
        assert to_signed((1 << 64) - 1) == -1
        assert to_signed(1 << 63) == -(1 << 63)

    def test_to_unsigned_wraps(self):
        assert to_unsigned(-1) == (1 << 64) - 1
        assert to_unsigned(1 << 64) == 0

    @pytest.mark.parametrize("value,bits,expected", [
        (0x80, 8, (1 << 64) - 0x80),
        (0x7F, 8, 0x7F),
        (0x8000, 16, (1 << 64) - 0x8000),
        (0x7FFF, 16, 0x7FFF),
        (0x8000_0000, 32, (1 << 64) - 0x8000_0000),
    ])
    def test_sign_extend(self, value, bits, expected):
        assert sign_extend(value, bits) == expected

    def test_sign_extend_roundtrip(self):
        for bits in (8, 16, 32):
            for v in (0, 1, (1 << (bits - 1)) - 1, 1 << (bits - 1),
                      (1 << bits) - 1):
                extended = sign_extend(v, bits)
                assert extended & ((1 << bits) - 1) == v
