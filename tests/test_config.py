"""Validation tests for the configuration records: CoreConfig /
SystemConfig (pipeline) and CacheConfig (memory)."""

from __future__ import annotations

import pytest

from repro.memory.cache import (CacheConfig, paper_l1d_config,
                                paper_l1i_config, paper_l2_config)
from repro.pipeline import (MEMORY_MODES, MEMORY_PRIVATE, MEMORY_SHARED,
                            CoreConfig, ProcessorConfig, SystemConfig)


class TestCoreConfig:
    @pytest.mark.parametrize("field", ["width", "fetch_branches_per_cycle",
                                       "rob_size", "sched_size", "num_fus"])
    @pytest.mark.parametrize("bad", [0, -1, 2.5, "4", None])
    def test_positive_int_fields_rejected(self, field, bad):
        with pytest.raises(ValueError, match=f"{field} must be a positive"):
            CoreConfig(**{field: bad})

    def test_unknown_subsystem_rejected(self):
        with pytest.raises(Exception, match="nonesuch"):
            CoreConfig(subsystem="nonesuch")

    def test_defaults_are_legal_and_named(self):
        config = CoreConfig()
        assert config.width == 4
        assert config.name == config.subsystem

    def test_processor_config_is_alias(self):
        assert ProcessorConfig is CoreConfig

    def test_to_dict_covers_every_field(self):
        config = CoreConfig(name="probe")
        payload = config.to_dict()
        assert set(payload) == set(vars(config))
        assert payload["name"] == "probe"


class TestSystemConfig:
    @pytest.mark.parametrize("bad", [0, -2, 1.5, "2", True])
    def test_bad_core_count_rejected(self, bad):
        if bad is True:
            # bools are ints; a 1-core system from True would be legal
            # but surprising, so just document the current behavior.
            SystemConfig(cores=bad)
            return
        with pytest.raises(ValueError, match="cores must be a positive"):
            SystemConfig(cores=bad)

    def test_bad_memory_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown memory_mode"):
            SystemConfig(memory_mode="numa")

    def test_mode_constants(self):
        assert MEMORY_MODES == (MEMORY_SHARED, MEMORY_PRIVATE)
        assert SystemConfig(memory_mode=MEMORY_SHARED).shared_memory
        assert not SystemConfig(memory_mode=MEMORY_PRIVATE).shared_memory

    def test_default_name_encodes_shape(self):
        config = SystemConfig(core=CoreConfig(name="b"), cores=3,
                              memory_mode=MEMORY_PRIVATE)
        assert config.name == "b-x3-private"
        assert SystemConfig(name="custom").name == "custom"

    def test_to_dict_nests_core(self):
        config = SystemConfig(cores=2)
        payload = config.to_dict()
        assert payload["cores"] == 2
        assert payload["memory_mode"] == MEMORY_SHARED
        assert isinstance(payload["core"], dict)
        assert payload["core"]["width"] == config.core.width


class TestCacheConfig:
    def test_bad_assoc_rejected(self):
        with pytest.raises(ValueError, match="assoc must be a positive"):
            CacheConfig("l1", 1024, 0, 64, 1, 10)

    @pytest.mark.parametrize("bad_line", [0, 3, 48, -64])
    def test_non_power_of_two_line_rejected(self, bad_line):
        with pytest.raises(ValueError, match="line_bytes must be a power"):
            CacheConfig("l1", 1024, 2, bad_line, 1, 10)

    def test_indivisible_size_rejected(self):
        with pytest.raises(ValueError, match="not divisible"):
            CacheConfig("l1", 1000, 2, 64, 1, 10)

    def test_non_power_of_two_set_count_rejected(self):
        # 3 sets: 768 / (4 * 64)
        with pytest.raises(ValueError,
                           match="sets must be a positive power"):
            CacheConfig("l1", 768, 4, 64, 1, 10)

    def test_paper_configs_valid(self):
        for config in (paper_l1i_config(), paper_l1d_config(),
                       paper_l2_config()):
            assert config.num_sets >= 1
