"""Tests for the command-line interface and the text report."""

import json

import pytest

from repro import Processor
from repro.api import CONFIGS, FIGURES
from repro.cli import main
from repro.harness import baseline_lsq_config, baseline_sfc_mdt_config
from repro.obs.runrecord import SCHEMA_VERSION, RunRecord
from repro.stats.report import format_report
from repro.workloads import ALL_BENCHMARKS
from tests.conftest import assemble, counted_loop_program


def record_of(build_fn, config):
    result = Processor(assemble(build_fn), config).run()
    return RunRecord.from_sim_result(result, benchmark="inline")


class TestReport:
    def test_report_has_all_sections(self):
        record = record_of(counted_loop_program, baseline_sfc_mdt_config())
        report = format_report(record)
        for section in ("performance", "front end", "memory subsystem",
                        "ordering violations", "caches"):
            assert section in report
        assert "IPC" in report
        assert "SFC forwards" in report

    def test_lsq_report_shows_cam_work(self):
        record = record_of(counted_loop_program, baseline_lsq_config())
        report = format_report(record)
        assert "CAM-searched" in report
        assert "SFC forwards" not in report


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for benchmark in ALL_BENCHMARKS:
            assert benchmark in out
        for config in CONFIGS:
            assert config in out
        for figure in FIGURES:
            assert figure in out

    def test_run(self, capsys):
        assert main(["run", "gap", "--scale", "1500"]) == 0
        out = capsys.readouterr().out
        assert "gap on" in out and "IPC" in out

    def test_run_each_config(self, capsys):
        for config in CONFIGS:
            assert main(["run", "crafty", "--scale", "1200",
                         "--config", config]) == 0

    def test_compare(self, capsys):
        assert main(["compare", "gap", "--scale", "1500",
                     "--configs", "baseline-lsq", "baseline-sfc-mdt"]) == 0
        out = capsys.readouterr().out
        assert "baseline-lsq" in out and "baseline-sfc-mdt" in out

    def test_figure(self, capsys):
        assert main(["figure", "window-scaling", "--scale", "1500"]) == 0
        out = capsys.readouterr().out
        assert "Window scaling" in out

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "doom"])

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            main(["figure", "fig99"])

    def test_all_figures_registered(self):
        # Every generator in the harness is reachable from the CLI.
        assert set(FIGURES) == {
            "fig5", "fig6", "enf-ablation", "associativity", "corruption",
            "granularity", "power", "window-scaling", "recovery"}


class TestJsonFormat:
    """``--format json`` emits parseable, schema-versioned documents."""

    def test_run_json_is_a_runrecord(self, capsys):
        assert main(["run", "gap", "--scale", "1500", "--no-cache",
                     "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema_version"] == SCHEMA_VERSION
        assert payload["kind"] == "run"
        assert payload["benchmark"] == "gap"
        assert payload["counters"]["retired_loads"] > 0
        # The document round-trips through the validating constructor.
        record = RunRecord.from_dict(payload)
        assert record.ipc == payload["ipc"]

    def test_compare_json_envelope(self, capsys):
        assert main(["compare", "gap", "--scale", "1500", "--no-cache",
                     "--configs", "baseline-lsq", "baseline-sfc-mdt",
                     "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "compare"
        assert payload["schema_version"] == SCHEMA_VERSION
        names = [run["config_name"] for run in payload["runs"]]
        assert names[0].startswith("baseline-lsq")
        assert names[1].startswith("baseline-sfc-mdt")
        for run in payload["runs"]:
            RunRecord.from_dict(run)

    def test_figure_json_envelope(self, capsys):
        assert main(["figure", "window-scaling", "--scale", "1500",
                     "--no-cache", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "figure"
        assert payload["name"] == "window-scaling"
        assert payload["rows"] and payload["series"]
        assert all("schema_version" in run for run in payload["runs"])

    def test_list_json_envelope(self, capsys):
        assert main(["list", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "list"
        assert set(payload["configurations"]) == set(CONFIGS)
        assert set(payload["figures"]) == set(FIGURES)
        assert list(ALL_BENCHMARKS) == payload["benchmarks"]

    def test_out_writes_file(self, tmp_path, capsys):
        out = tmp_path / "record.json"
        assert main(["run", "gap", "--scale", "1500", "--no-cache",
                     "--format", "json", "--out", str(out)]) == 0
        stdout = capsys.readouterr().out
        assert str(out) in stdout  # stdout notes the path, not the doc
        payload = json.loads(out.read_text())
        assert payload["kind"] == "run"

    def test_trace_out_writes_epoch_jsonl(self, tmp_path, capsys):
        trace = tmp_path / "epochs.jsonl"
        assert main(["run", "gap", "--scale", "1500", "--no-cache",
                     "--epoch-cycles", "200",
                     "--trace-out", str(trace)]) == 0
        lines = trace.read_text().splitlines()
        assert lines
        snapshot = json.loads(lines[0])
        assert snapshot["cycle"] >= 200
        assert "rob_occupancy" in snapshot

    def test_trace_out_requires_epoch_cycles(self):
        assert main(["run", "gap", "--scale", "1500", "--no-cache",
                     "--trace-out", "x.jsonl"]) == 2


class TestErrorPaths:
    """Bad inputs exit with a message, never a traceback."""

    def test_unknown_config_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            main(["run", "gap", "--config", "no-such-preset"])

    def test_malformed_out_path_exits_cleanly(self, tmp_path, capsys):
        # The parent "directory" is a regular file, so the write must
        # fail -- with exit code 2 and a message, not an OSError dump.
        blocker = tmp_path / "blocker"
        blocker.write_text("not a directory")
        bad = blocker / "sub" / "out.json"
        assert main(["list", "--format", "json",
                     "--out", str(bad)]) == 2
        err = capsys.readouterr().err
        assert "error:" in err
        assert "Traceback" not in err

    def test_clean_campaign_never_touches_corpus_dir(self, tmp_path,
                                                     capsys):
        # Corpus directories are created lazily, on the first failure:
        # a clean campaign with an unusable --corpus path still passes.
        blocker = tmp_path / "blocker"
        blocker.write_text("not a directory")
        assert main(["fuzz", "--iterations", "1", "--seed", "0",
                     "--corpus", str(blocker / "corpus")]) == 0
        assert not (blocker / "corpus").exists()
        capsys.readouterr()

    def test_replay_requires_corpus(self, capsys):
        assert main(["fuzz", "--replay"]) == 2
        assert "--corpus" in capsys.readouterr().err


class TestSuiteCommand:
    """``repro suite``: the fault-tolerant, resumable grid runner."""

    SUITE = ["suite", "--benchmarks", "gap", "crafty",
             "--configs", "baseline-lsq", "baseline-sfc-mdt",
             "--scale", "1200", "--jobs", "1"]

    def args(self, tmp_path, *extra):
        return self.SUITE + ["--cache-dir", str(tmp_path / "cache"),
                             "--manifest",
                             str(tmp_path / "m.json")] + list(extra)

    def test_suite_writes_valid_manifest(self, tmp_path, capsys):
        assert main(self.args(tmp_path)) == 0
        out = capsys.readouterr().out
        assert "4 cells" in out and "failed: 0" in out
        entries = json.loads((tmp_path / "m.json").read_text())
        assert len(entries) == 4
        for entry in entries:
            record = RunRecord.from_dict(entry)  # validates schema
            assert record.ok
            assert entry["engine"]["jobs"] == 1

    def test_rerun_without_resume_refused(self, tmp_path, capsys):
        assert main(self.args(tmp_path)) == 0
        capsys.readouterr()
        assert main(self.args(tmp_path)) == 2
        assert "--resume" in capsys.readouterr().err

    def test_resume_restores_from_cache(self, tmp_path, capsys):
        assert main(self.args(tmp_path)) == 0
        capsys.readouterr()
        assert main(self.args(tmp_path, "--resume")) == 0
        out = capsys.readouterr().out
        assert "4 from cache, 0 simulated" in out

    def test_resume_rejects_no_cache(self, tmp_path, capsys):
        assert main(self.args(tmp_path, "--resume", "--no-cache")) == 2
        assert "--no-cache" in capsys.readouterr().err

    def test_suite_json_envelope(self, tmp_path, capsys):
        assert main(self.args(tmp_path, "--format", "json")) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "suite"
        assert payload["schema_version"] == SCHEMA_VERSION
        assert payload["cells"] == 4
        assert payload["failures"] == 0
        assert len(payload["runs"]) == 4


class TestFuzzCli:
    def test_clean_campaign_exits_zero(self, capsys):
        assert main(["fuzz", "--iterations", "5", "--seed", "0"]) == 0
        out = capsys.readouterr().out
        assert "no mismatches" in out
        assert "5 programs" in out

    def test_json_envelope(self, capsys):
        assert main(["fuzz", "--iterations", "3", "--seed", "2",
                     "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "fuzz"
        assert payload["schema_version"] == SCHEMA_VERSION
        assert payload["ok"] is True
        assert payload["iterations"] == 3
        assert payload["failures"] == []
        assert len(payload["configurations"]) >= 4

    def test_explicit_config_subset(self, capsys):
        assert main(["fuzz", "--iterations", "3",
                     "--configs", "baseline-lsq", "--format",
                     "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["configurations"] == ["baseline-lsq-48x32"]

    def test_replay_empty_corpus_ok(self, tmp_path, capsys):
        empty = tmp_path / "corpus"
        empty.mkdir()
        assert main(["fuzz", "--replay", "--corpus", str(empty)]) == 0
        assert "0 case(s)" in capsys.readouterr().out


class TestMulticoreCli:
    def test_run_litmus_exits_zero_when_allowed(self, capsys):
        assert main(["run", "litmus-mp", "--cores", "2"]) == 0
        out = capsys.readouterr().out
        assert "litmus-mp" in out
        assert "outcome:" in out and "model allows:" in out

    def test_run_litmus_default_cores(self, capsys):
        # --cores defaults to 1, meaning "use the test's own count".
        assert main(["run", "litmus-sb"]) == 0

    def test_run_litmus_wrong_cores_rejected(self, capsys):
        assert main(["run", "litmus-mp", "--cores", "3"]) == 2
        assert "needs --cores 2" in capsys.readouterr().err

    def test_run_litmus_private_memory_rejected(self, capsys):
        assert main(["run", "litmus-mp", "--memory-mode", "private"]) == 2
        assert "shared memory" in capsys.readouterr().err

    def test_run_litmus_trace_flags_rejected(self, capsys):
        assert main(["run", "litmus-mp", "--epoch-cycles", "100",
                     "--trace-out", "/tmp/x.jsonl"]) == 2
        assert "single-core only" in capsys.readouterr().err

    def test_run_litmus_json_envelope(self, capsys):
        assert main(["run", "litmus-mp", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "litmus-run"
        assert payload["litmus"]["test"] == "mp"
        assert payload["litmus"]["allowed"] is True
        run = payload["run"]
        assert run["schema_version"] == SCHEMA_VERSION + 1
        assert run["cores"] == 2
        record = RunRecord.from_dict(run)
        assert record.cores == 2

    def test_run_multicore_benchmark(self, capsys):
        assert main(["run", "gap", "--scale", "1500", "--no-cache",
                     "--cores", "2"]) == 0
        out = capsys.readouterr().out
        assert "gap x2" in out
        assert "core0:" in out and "core1:" in out
        assert "shared L2:" in out

    def test_run_multicore_json_is_v3_record(self, capsys):
        assert main(["run", "gap", "--scale", "1500", "--no-cache",
                     "--cores", "2", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema_version"] == SCHEMA_VERSION + 1
        assert payload["cores"] == 2
        assert payload["counters"]["core0_retired_instructions"] > 0

    def test_litmus_subcommand_suite(self, capsys):
        assert main(["litmus"]) == 0
        out = capsys.readouterr().out
        assert "3 run(s), 0 violation(s)" in out

    def test_litmus_subcommand_json(self, capsys):
        assert main(["litmus", "--tests", "litmus-mp", "--format",
                     "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "litmus"
        assert payload["ok"] is True
        assert payload["runs"] == 1

    def test_list_includes_litmus_tests(self, capsys):
        assert main(["list", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["litmus_tests"] == ["litmus-lb", "litmus-mp",
                                           "litmus-sb"]
