"""Tests for the command-line interface and the text report."""

import pytest

from repro import Processor
from repro.cli import CONFIGS, FIGURES, main
from repro.harness import baseline_lsq_config, baseline_sfc_mdt_config
from repro.stats.report import format_report
from repro.workloads import ALL_BENCHMARKS
from tests.conftest import assemble, counted_loop_program


class TestReport:
    def test_report_has_all_sections(self):
        result = Processor(assemble(counted_loop_program),
                           baseline_sfc_mdt_config()).run()
        report = format_report(result)
        for section in ("performance", "front end", "memory subsystem",
                        "ordering violations", "caches"):
            assert section in report
        assert "IPC" in report
        assert "SFC forwards" in report

    def test_lsq_report_shows_cam_work(self):
        result = Processor(assemble(counted_loop_program),
                           baseline_lsq_config()).run()
        report = format_report(result)
        assert "CAM-searched" in report
        assert "SFC forwards" not in report


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for benchmark in ALL_BENCHMARKS:
            assert benchmark in out
        for config in CONFIGS:
            assert config in out
        for figure in FIGURES:
            assert figure in out

    def test_run(self, capsys):
        assert main(["run", "gap", "--scale", "1500"]) == 0
        out = capsys.readouterr().out
        assert "gap on" in out and "IPC" in out

    def test_run_each_config(self, capsys):
        for config in CONFIGS:
            assert main(["run", "crafty", "--scale", "1200",
                         "--config", config]) == 0

    def test_compare(self, capsys):
        assert main(["compare", "gap", "--scale", "1500",
                     "--configs", "baseline-lsq", "baseline-sfc-mdt"]) == 0
        out = capsys.readouterr().out
        assert "baseline-lsq" in out and "baseline-sfc-mdt" in out

    def test_figure(self, capsys):
        assert main(["figure", "window-scaling", "--scale", "1500"]) == 0
        out = capsys.readouterr().out
        assert "Window scaling" in out

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "doom"])

    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            main(["figure", "fig99"])

    def test_all_figures_registered(self):
        # Every generator in the harness is reachable from the CLI.
        assert set(FIGURES) == {
            "fig5", "fig6", "enf-ablation", "associativity", "corruption",
            "granularity", "power", "window-scaling", "recovery"}
