"""Tests for the N-core System layer (pipeline/system.py).

The load-bearing equivalence facts:

* a 1-core private-memory ``System`` is *bit-identical* (cycles and
  every counter) to a bare ``Core`` run with ``idle_skip=False``;
* against ``Processor`` (which keeps the legacy idle-cycle
  fast-forward) the same run matches on cycles and on every counter
  except the idle-skip bookkeeping family -- with the skip disabled the
  core counts each stall cycle it would otherwise have jumped over.
"""

from __future__ import annotations

import pytest

from repro.pipeline import (MEMORY_PRIVATE, MEMORY_SHARED, Processor,
                            System, SystemConfig)
from repro.pipeline.core import Core
from repro.workloads import suites

from tests.conftest import assemble, counted_loop_program

# Counters whose values depend on whether guaranteed-idle cycles are
# fast-forwarded (skipped cycles accrue no per-cycle stall bookkeeping).
IDLE_SKIP_SENSITIVE = ("idle_cycles_skipped", "dispatch_stalls_rob",
                       "dispatch_stalls_sched", "dispatch_stalls_phys",
                       "dispatch_stalls_lq", "dispatch_stalls_sq")


def _scrub(counters: dict) -> dict:
    return {name: value for name, value in counters.items()
            if name not in IDLE_SKIP_SENSITIVE}


class TestSingleCoreEquivalence:
    def test_matches_core_without_idle_skip_exactly(self, any_config):
        program = suites.build("gzip", 800)
        core = Core(program, any_config, idle_skip=False).run()
        config = SystemConfig(core=any_config, cores=1,
                              memory_mode=MEMORY_PRIVATE)
        sysres = System([program], config).run()
        [core_result] = sysres.core_results
        assert core_result.cycles == core.cycles
        assert core_result.counters.as_dict() == core.counters.as_dict()
        assert sysres.cycles == core.cycles
        assert sysres.instructions == core.instructions

    def test_matches_processor_modulo_idle_bookkeeping(self):
        program = suites.build("gzip", 800)
        solo = Processor(program, _baseline()).run()
        config = SystemConfig(core=_baseline(), cores=1,
                              memory_mode=MEMORY_PRIVATE)
        sysres = System([program], config).run()
        [core_result] = sysres.core_results
        assert core_result.cycles == solo.cycles
        assert _scrub(core_result.counters.as_dict()) == \
            _scrub(solo.counters.as_dict())

    def test_single_program_replicated_across_cores(self):
        program = assemble(counted_loop_program)
        config = SystemConfig(core=_baseline(), cores=2,
                              memory_mode=MEMORY_PRIVATE)
        system = System([program], config)
        assert len(system.cores) == 2
        result = system.run()
        assert len(result.core_results) == 2
        # Both cores retire the full program; cycle counts may differ
        # (the second core hits lines the first already pulled into the
        # shared L2).
        assert result.core_results[0].instructions == \
            result.core_results[1].instructions


class TestDeterminism:
    def test_two_identical_runs_are_identical(self):
        program = assemble(counted_loop_program)
        config = SystemConfig(core=_baseline(), cores=2,
                              memory_mode=MEMORY_SHARED)
        first = System([program], config).run()
        second = System([program], config).run()
        assert first.cycles == second.cycles
        assert first.counters == second.counters


class TestValidation:
    def test_wrong_program_count_rejected(self):
        program = assemble(counted_loop_program)
        config = SystemConfig(core=_baseline(), cores=3)
        with pytest.raises(ValueError, match="2 program"):
            System([program, program], config)

    def test_wrong_trace_count_rejected(self):
        program = assemble(counted_loop_program)
        config = SystemConfig(core=_baseline(), cores=2)
        with pytest.raises(ValueError, match="1 trace"):
            System([program], config, traces=[[]])


class TestCounterNamespacing:
    def test_merged_counters_structure(self):
        program = assemble(counted_loop_program)
        config = SystemConfig(core=_baseline(), cores=2,
                              memory_mode=MEMORY_PRIVATE)
        result = System([program], config).run()
        counters = result.counters
        for core_id in (0, 1):
            assert counters[f"core{core_id}_cycles"] > 0
            assert counters[f"core{core_id}_retired_instructions"] > 0
            assert f"core{core_id}_retired_loads" in counters
        assert "l2_accesses" in counters
        assert "l2_misses" in counters
        assert "l2_miss_rate" in counters
        assert counters["cycles"] == max(counters["core0_cycles"],
                                         counters["core1_cycles"])
        assert counters["retired_instructions"] == \
            counters["core0_retired_instructions"] + \
            counters["core1_retired_instructions"]
        assert result.instructions == counters["retired_instructions"]

    def test_to_dict_roundtrips_through_json(self):
        import json

        program = assemble(counted_loop_program)
        config = SystemConfig(core=_baseline(), cores=2)
        result = System([program], config).run()
        payload = json.loads(json.dumps(result.to_dict()))
        assert payload["cores"] == 2
        assert payload["cycles"] == result.cycles
        assert payload["config"]["core"]["name"] == _baseline().name


def _baseline():
    from repro.harness import baseline_sfc_mdt_config
    return baseline_sfc_mdt_config()
