"""Tests for the checkpoint subsystem (repro.checkpoint).

The headline properties, checked with hypothesis over random programs:

* ``fast_forward`` is architecturally identical to stepping -- same
  registers, PC, retire count, and memory digest at any cut point k;
* checkpoint-at-k + resume reproduces the full run exactly -- the
  resumed retire trace equals the full trace's suffix and the final
  memory digest matches, for k at block boundaries and mid-loop;
* the detailed pipeline restored from a checkpoint retires exactly the
  golden suffix and converges to the same final memory image.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.checkpoint import (
    ArchCheckpoint,
    CheckpointStore,
    capture_train,
    ensure_train,
    select_checkpoints,
    train_key,
)
from repro.harness.configs import (
    baseline_lsq_config,
    baseline_sfc_mdt_config,
)
from repro.isa.interp import Interpreter
from repro.memory.main_memory import MainMemory
from repro.pipeline.core import Core
from repro.workloads import random_program
from repro.workloads import suites

_SLOW = settings(max_examples=25, deadline=None,
                 suppress_health_check=[HealthCheck.too_slow])

_RECORD_FIELDS = ("index", "pc", "op", "rd", "dest_value", "store_addr",
                  "store_size", "store_data", "next_pc", "taken")


def _record_tuple(record):
    return tuple(getattr(record, field) for field in _RECORD_FIELDS)


def _full_run(program):
    interp = Interpreter(program)
    trace = interp.run(500_000)
    return trace, interp


def _base_image(program):
    memory = MainMemory()
    memory.load_segments(program.data)
    return memory


class TestFastForward:
    """fast_forward == step, architecturally, at every cut point."""

    @_SLOW
    @given(seed=st.integers(min_value=0, max_value=10_000),
           frac=st.floats(min_value=0.0, max_value=1.0))
    def test_matches_stepping(self, seed, frac):
        program = random_program(seed)
        trace, golden = _full_run(program)
        k = int(frac * len(trace))
        ff = Interpreter(program)
        executed = ff.fast_forward(k)
        assert executed == k
        assert ff.instructions_retired == k
        stepped = Interpreter(program)
        for _ in range(k):
            stepped.step()
        assert ff.pc == stepped.pc
        assert ff.regs == stepped.regs
        assert ff.halted == stepped.halted
        assert ff.memory.digest() == stepped.memory.digest()

    def test_runs_to_halt_and_stops(self):
        program = random_program(3)
        trace, golden = _full_run(program)
        interp = Interpreter(program)
        executed = interp.fast_forward(10 ** 9)
        assert executed == len(trace)
        assert interp.halted
        assert interp.memory.digest() == golden.memory.digest()
        assert interp.fast_forward(10) == 0

    def test_warm_training_does_not_change_architecture(self):
        from repro.branch.gshare import GsharePredictor
        from repro.memory.cache import paper_hierarchy

        program = random_program(11)
        cold = Interpreter(program)
        cold.fast_forward(10 ** 9)
        warm = Interpreter(program)
        bpred = GsharePredictor()
        hierarchy = paper_hierarchy()
        warm.fast_forward(10 ** 9, bpred=bpred, hierarchy=hierarchy)
        assert warm.pc == cold.pc
        assert warm.regs == cold.regs
        assert warm.memory.digest() == cold.memory.digest()
        assert hierarchy.l1i.accesses > 0


class TestInterpreterRoundTrip:
    """Full run == fast-forward-to-k + checkpoint + resume, exactly."""

    @_SLOW
    @given(seed=st.integers(min_value=0, max_value=10_000),
           frac=st.floats(min_value=0.0, max_value=1.0))
    def test_mid_run_checkpoint_resume(self, seed, frac):
        program = random_program(seed)
        trace, golden = _full_run(program)
        # Arbitrary k lands mid-loop as often as on block boundaries;
        # both matter (mid-loop state has live loop-carried registers).
        k = int(frac * len(trace))
        interp = Interpreter(program)
        interp.fast_forward(k)
        ckpt = ArchCheckpoint.capture(interp, _base_image(program))
        resumed = ckpt.resume_interpreter(program)
        assert resumed.instructions_retired == k
        suffix = resumed.run(500_000)
        assert [_record_tuple(r) for r in suffix] == \
            [_record_tuple(r) for r in trace[k:]]
        assert resumed.memory.digest() == golden.memory.digest()

    @_SLOW
    @given(seed=st.integers(min_value=0, max_value=10_000),
           frac=st.floats(min_value=0.0, max_value=1.0))
    def test_serialized_checkpoint_resumes_identically(self, seed, frac):
        program = random_program(seed)
        trace, golden = _full_run(program)
        k = int(frac * len(trace))
        interp = Interpreter(program)
        interp.fast_forward(k)
        ckpt = ArchCheckpoint.capture(interp, _base_image(program))
        clone = ArchCheckpoint.from_dict(ckpt.to_dict())
        assert clone.regs == ckpt.regs
        assert clone.pages == ckpt.pages
        assert clone.pc == ckpt.pc and clone.retired == ckpt.retired
        resumed = clone.resume_interpreter(program)
        resumed.run(500_000)
        assert resumed.memory.digest() == golden.memory.digest()

    def test_block_boundary_checkpoints(self):
        """k at every captured block boundary of a real kernel."""
        program = suites.build("gzip", 2_000)
        trace, golden = _full_run(program)
        checkpoints, total = capture_train(program, every=500, warm=False)
        assert total == len(trace)
        assert [c.retired for c in checkpoints] == \
            list(range(0, ((total - 1) // 500) * 500 + 1, 500))
        for ckpt in checkpoints[::2]:
            resumed = ckpt.resume_interpreter(program)
            suffix = resumed.run(500_000)
            assert len(suffix) == total - ckpt.retired
            assert resumed.memory.digest() == golden.memory.digest()

    def test_checkpoint_rejects_wrong_program(self):
        program = random_program(5)
        other = random_program(6)
        interp = Interpreter(program)
        interp.fast_forward(10)
        ckpt = ArchCheckpoint.capture(interp, _base_image(program))
        with pytest.raises(ValueError, match="digest"):
            ckpt.restore_memory(other)


class TestCoreRestore:
    """The detailed pipeline picks up from a checkpoint exactly."""

    @pytest.mark.parametrize("config_fn", [baseline_lsq_config,
                                           baseline_sfc_mdt_config])
    def test_resumed_core_retires_suffix(self, config_fn):
        program = suites.build("gzip", 3_000)
        trace, golden = _full_run(program)
        checkpoints, total = capture_train(program, every=1_000,
                                           warm=True)
        ckpt = checkpoints[2]
        resumed = ckpt.resume_interpreter(program)
        resumed.instructions_retired = 0  # suffix records index from 0
        suffix = resumed.run(500_000)
        memory = ckpt.restore_memory(program)
        core = Core(program, config_fn(), trace=suffix, memory=memory,
                    start_pc=ckpt.pc, start_regs=ckpt.regs,
                    warm_state=ckpt.warm)
        core.run()
        assert core.retired == total - ckpt.retired
        assert memory.digest() == golden.memory.digest()

    def test_from_reset_defaults_unchanged(self):
        """start_pc=0/start_regs=None is bit-identical to the old
        constructor: same cycles, same counters."""
        program = suites.build("gzip", 1_500)
        trace, _ = _full_run(program)
        plain = Core(program, baseline_sfc_mdt_config(), trace=trace)
        plain_result = plain.run()
        restored = Core(program, baseline_sfc_mdt_config(), trace=trace,
                        start_pc=0, start_regs=None, warm_state=None)
        restored_result = restored.run()
        assert restored_result.cycles == plain_result.cycles
        assert restored_result.counters.as_dict() == \
            plain_result.counters.as_dict()


class TestTrainAndStore:
    def test_thinning_caps_train_length(self):
        program = suites.build("gzip", 3_000)
        checkpoints, total = capture_train(program, every=10, warm=False,
                                           max_checkpoints=16)
        assert len(checkpoints) <= 16
        positions = [c.retired for c in checkpoints]
        assert positions == sorted(positions)
        assert positions[0] == 0

    def test_select_checkpoints_spacing(self):
        program = suites.build("gzip", 2_000)
        checkpoints, total = capture_train(program, every=200, warm=False)
        picked = select_checkpoints(checkpoints, total, intervals=4,
                                    window=300)
        assert 1 <= len(picked) <= 4
        positions = [c.retired for c in picked]
        assert positions == sorted(set(positions))
        assert all(p + 300 <= total for p in positions)

    def test_select_degenerates_to_start_when_program_short(self):
        program = suites.build("gzip", 2_000)
        checkpoints, total = capture_train(program, every=500, warm=False)
        picked = select_checkpoints(checkpoints, total, intervals=3,
                                    window=total + 1)
        assert [c.retired for c in picked] == [0]

    def test_store_round_trip(self, tmp_path):
        program = suites.build("gzip", 2_000)
        checkpoints, total = capture_train(program, every=700, warm=True)
        store = CheckpointStore(tmp_path)
        key = train_key(program.digest(), 700, True)
        assert store.load(key) is None
        store.store(key, checkpoints, total)
        train = store.load(key)
        assert train["total_instructions"] == total
        assert len(train["checkpoints"]) == len(checkpoints)
        reloaded = train["checkpoints"][1]
        assert reloaded.retired == checkpoints[1].retired
        assert reloaded.regs == checkpoints[1].regs
        assert reloaded.pages == checkpoints[1].pages
        assert reloaded.warm == checkpoints[1].warm

    def test_store_corrupt_reads_as_miss(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.path("bad").parent.mkdir(parents=True, exist_ok=True)
        store.path("bad").write_text("{not json")
        assert store.load("bad") is None


class TestStoreFaultInjection:
    """A failed write never leaks a ``*.tmp.*`` file, whatever raised."""

    @staticmethod
    def _checkpoint(program):
        interp = Interpreter(program)
        return ArchCheckpoint.capture(interp, _base_image(program))

    def test_unserializable_capsule_cleans_temp(self, tmp_path):
        # Non-OSError mid-write: json.dumps raises TypeError on the
        # capsule.  Historically this leaked the temp file.
        program = suites.build("gzip", 2_000)
        ckpt = self._checkpoint(program)
        ckpt.warm = {"bpred": object()}
        store = CheckpointStore(tmp_path)
        with pytest.raises(TypeError):
            store.store("key", [ckpt], 100)
        assert list(tmp_path.glob("*.tmp.*")) == []
        assert store.load("key") is None

    def test_rename_failure_cleans_temp(self, tmp_path, monkeypatch):
        import pathlib

        program = suites.build("gzip", 2_000)
        ckpt = self._checkpoint(program)
        store = CheckpointStore(tmp_path)

        def broken_replace(self, target):
            raise RuntimeError("injected rename failure")

        monkeypatch.setattr(pathlib.Path, "replace", broken_replace)
        with pytest.raises(RuntimeError):
            store.store("key", [ckpt], 100)
        assert list(tmp_path.glob("*.tmp.*")) == []


def _train_fingerprint(train):
    import json

    return (train["total_instructions"], train["complete"],
            train["stride"],
            [(c.retired, c.pc, tuple(c.regs), sorted(c.pages.items()),
              json.dumps(c.warm, sort_keys=True))
             for c in train["checkpoints"]])


class TestEnsureTrain:
    """Cross-scale checkpoint-train reuse: prefix serve + in-place
    extension, never a recapture."""

    @pytest.mark.parametrize("warm", [True, False])
    def test_extension_bit_identical_to_fresh_capture(self, tmp_path,
                                                      warm):
        program = suites.build("gzip", 4_000)
        grown = CheckpointStore(tmp_path / "grown")
        fresh = CheckpointStore(tmp_path / "fresh")
        short = ensure_train(program, 300, warm, horizon=1_000,
                             store=grown)
        assert not short["complete"]
        assert short["total_instructions"] >= 1_000
        extended = ensure_train(program, 300, warm, horizon=3_000,
                                store=grown)
        reference = ensure_train(program, 300, warm, horizon=3_000,
                                 store=fresh)
        assert _train_fingerprint(extended) == \
            _train_fingerprint(reference)
        # ... and extending to completion still matches a fresh full run
        full = ensure_train(program, 300, warm, store=grown)
        full_ref = ensure_train(program, 300, warm, store=fresh)
        assert full["complete"]
        assert _train_fingerprint(full) == _train_fingerprint(full_ref)

    def test_longer_train_serves_shorter_horizon_without_rewrite(
            self, tmp_path):
        program = suites.build("gzip", 4_000)
        store = CheckpointStore(tmp_path)
        long_train = ensure_train(program, 300, True, horizon=3_000,
                                  store=store)
        key = train_key(program.digest(), 300, True)
        mtime = store.path(key).stat().st_mtime_ns
        short = ensure_train(program, 300, True, horizon=500,
                             store=store)
        assert _train_fingerprint(short) == \
            _train_fingerprint(long_train)
        assert store.path(key).stat().st_mtime_ns == mtime

    def test_complete_train_serves_any_horizon(self, tmp_path):
        program = suites.build("gzip", 2_000)
        store = CheckpointStore(tmp_path)
        full = ensure_train(program, 300, True, store=store)
        assert full["complete"]
        served = ensure_train(
            program, 300, True,
            horizon=full["total_instructions"] * 10, store=store)
        assert _train_fingerprint(served) == _train_fingerprint(full)

    def test_incomplete_train_positions_resumable(self, tmp_path):
        # The invariant extension depends on: an incomplete train's
        # total_instructions is exactly its last checkpoint's position.
        program = suites.build("gzip", 4_000)
        store = CheckpointStore(tmp_path)
        train = ensure_train(program, 300, True, horizon=1_500,
                             store=store)
        assert not train["complete"]
        assert train["checkpoints"][-1].retired == \
            train["total_instructions"]

    def test_without_store_captures_fresh(self):
        program = suites.build("gzip", 2_000)
        train = ensure_train(program, 300, True, horizon=900)
        assert train["total_instructions"] >= 900
        assert train["checkpoints"][0].retired == 0


class TestWarmCapsules:
    def test_gshare_export_import_round_trip(self):
        from repro.branch.gshare import GsharePredictor

        trained = GsharePredictor()
        for pc in range(0, 400, 4):
            taken = (pc // 4) % 3 == 0
            trained.update(pc, taken, trained.predict(pc))
        trained.update_indirect(64, 1024)
        fresh = GsharePredictor()
        fresh.import_state(trained.export_state())
        assert fresh._counters == trained._counters
        assert fresh._history == trained._history
        assert fresh.predict_indirect(64) == 1024
        assert fresh.predictions == 0  # stats start from zero

    def test_gshare_import_rejects_geometry_mismatch(self):
        from repro.branch.gshare import GsharePredictor

        small = GsharePredictor(table_bits=4)
        big = GsharePredictor()
        with pytest.raises(ValueError, match="counters"):
            big.import_state(small.export_state())

    def test_hierarchy_export_import_round_trip(self):
        from repro.memory.cache import paper_hierarchy

        warm = paper_hierarchy()
        for addr in range(0, 1 << 14, 64):
            warm.data_latency(addr)
            warm.inst_latency(addr)
        cold = paper_hierarchy()
        cold.import_state(warm.export_state())
        assert cold.l1d.export_lines() == warm.l1d.export_lines()
        assert cold.l2.export_lines() == warm.l2.export_lines()
        assert cold.l1d.accesses == 0  # stats start from zero

    def test_cache_import_rejects_set_mismatch(self):
        from repro.memory.cache import Cache, CacheConfig

        a = Cache(CacheConfig("a", 1024, 2, 64, 1, 10))
        b = Cache(CacheConfig("b", 2048, 2, 64, 1, 10))
        with pytest.raises(ValueError, match="sets"):
            b.import_lines(a.export_lines())


class TestMemoryPageDelta:
    def test_delta_and_apply_round_trip(self):
        base = MainMemory()
        base.write_bytes(0x1000, b"hello")
        modified = base.copy()
        modified.write_bytes(0x1002, b"XY")
        modified.write_bytes(0x40_0000, b"far away")
        delta = modified.page_delta(base)
        assert set(delta) == {0x1, 0x400}
        restored = base.copy()
        restored.apply_page_delta(delta)
        assert restored.digest() == modified.digest()

    def test_untouched_and_zero_pages_not_in_delta(self):
        base = MainMemory()
        base.write_bytes(0x1000, b"data")
        same = base.copy()
        same.read_bytes(0x9000, 8)  # reads allocate nothing
        same.write_bytes(0x5000, b"\x00\x00")  # zero write == absent
        assert same.page_delta(base) == {}

    def test_apply_rejects_partial_page(self):
        with pytest.raises(ValueError, match="bytes"):
            MainMemory().apply_page_delta({0: b"short"})


class TestInterpreterLoadSegments:
    """Regression: handing the Interpreter an existing memory must not
    re-stamp the program image over caller-owned state."""

    def test_load_segments_false_preserves_caller_memory(self):
        program = suites.build("gzip", 1_000)
        data_addr = min(program.data)
        memory = MainMemory()
        memory.load_segments(program.data)
        memory.write_bytes(data_addr, b"\xde\xad\xbe\xef")
        Interpreter(program, memory=memory, load_segments=False)
        assert memory.read_bytes(data_addr, 4) == b"\xde\xad\xbe\xef"

    def test_default_still_stamps_image(self):
        program = suites.build("gzip", 1_000)
        data_addr = min(program.data)
        expected = bytes(program.data[data_addr][:4])
        memory = MainMemory()
        memory.write_bytes(data_addr, b"\xde\xad\xbe\xef")
        Interpreter(program, memory=memory)
        assert memory.read_bytes(data_addr, 4) == expected
