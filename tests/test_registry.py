"""Tests for the pluggable memory-subsystem registry."""

import pytest

from repro import Processor
from repro.core import registry
from repro.core.load_replay import LoadReplaySubsystem
from repro.core.registry import register_subsystem
from repro.core.subsystem import LSQSubsystem, SfcMdtSubsystem
from repro.pipeline.config import (
    SUBSYSTEM_LOAD_REPLAY,
    SUBSYSTEM_LSQ,
    SUBSYSTEM_SFC_MDT,
    ProcessorConfig,
)
from tests.conftest import assemble, counted_loop_program


class TestBuiltinRegistrations:
    def test_available_lists_builtins(self):
        assert registry.available() == ["load_replay", "lsq", "sfc_mdt"]

    def test_builtin_names_match_constants(self):
        for name in (SUBSYSTEM_LSQ, SUBSYSTEM_SFC_MDT,
                     SUBSYSTEM_LOAD_REPLAY):
            assert registry.is_registered(name)

    def test_processor_builds_each_builtin(self):
        program = assemble(counted_loop_program)
        expected = {"lsq": LSQSubsystem, "sfc_mdt": SfcMdtSubsystem,
                    "load_replay": LoadReplaySubsystem}
        for name, cls in expected.items():
            processor = Processor(program, ProcessorConfig(subsystem=name))
            assert type(processor.subsystem) is cls

    def test_subsystem_name_attribute_matches_registration(self):
        program = assemble(counted_loop_program)
        for name in registry.available():
            processor = Processor(program, ProcessorConfig(subsystem=name))
            assert processor.subsystem.name == name


class TestValidation:
    def test_unknown_subsystem_raises_with_choices(self):
        with pytest.raises(ValueError) as err:
            ProcessorConfig(subsystem="warp_drive")
        message = str(err.value)
        assert "warp_drive" in message
        # The error enumerates the registered choices, and stays in sync
        # with the registry rather than a hard-coded tuple.
        for name in registry.available():
            assert name in message

    def test_validate_returns_known_name(self):
        assert registry.validate("lsq") == "lsq"

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_subsystem("lsq")(LSQSubsystem.from_config)

    def test_reregistering_same_object_is_idempotent(self):
        register_subsystem("lsq")(LSQSubsystem)  # module re-import case

    def test_unregister_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="not registered"):
            registry.unregister("warp_drive")

    def test_bad_name_rejected(self):
        with pytest.raises(ValueError):
            register_subsystem("")


class TestToySubsystem:
    """A third-party subsystem plugs in end-to-end through Processor."""

    @pytest.fixture
    def toy_name(self):
        name = "toy_magic"
        yield name
        if registry.is_registered(name):
            registry.unregister(name)

    def test_toy_subsystem_runs_end_to_end(self, toy_name):
        @register_subsystem(toy_name)
        class ToySubsystem(LSQSubsystem):
            """An LSQ wearing a trench coat, to prove the seam works."""
            name = toy_name

        config = ProcessorConfig(subsystem=toy_name)
        assert config.name == toy_name  # default name follows subsystem
        result = Processor(assemble(counted_loop_program), config).run()
        assert type(Processor(assemble(counted_loop_program),
                              config).subsystem) is ToySubsystem
        assert result.instructions > 0
        assert result.ipc > 0
        # Retirement validation against the golden trace ran, so the toy
        # machine is architecturally exact.
        assert result.counters.get("retired_instructions") == \
            result.instructions

    def test_toy_factory_function_runs(self, toy_name):
        @register_subsystem(toy_name)
        def build_toy(config, memory, hierarchy, counters):
            return LSQSubsystem(config.lsq, memory, hierarchy, counters)

        result = Processor(assemble(counted_loop_program),
                           ProcessorConfig(subsystem=toy_name)).run()
        assert result.ipc > 0

    def test_unregistered_toy_rejected_again(self, toy_name):
        register_subsystem(toy_name)(LSQSubsystem.from_config)
        registry.unregister(toy_name)
        with pytest.raises(ValueError):
            ProcessorConfig(subsystem=toy_name)
