"""RV32 decoder/encoder tests: known encodings, typed errors, and the
property-based round-trip ``encode(decode_word(w)) == w``."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.isa import DecodeError, UnsupportedInstructionError, decode_word
from repro.isa.riscv import RVAssembler, RVInstruction, encode

_FAST = settings(max_examples=300, deadline=None,
                 suppress_health_check=[HealthCheck.too_slow])


class TestKnownEncodings:
    """Hand-assembled words decode to the expected fields."""

    @pytest.mark.parametrize("word,mnemonic,fields", [
        (0x00500093, "addi", dict(rd=1, rs1=0, imm=5)),
        (0xFFF00093, "addi", dict(rd=1, rs1=0, imm=-1)),
        (0x00208133, "add", dict(rd=2, rs1=1, rs2=2)),
        (0x40208133, "sub", dict(rd=2, rs1=1, rs2=2)),
        (0x02208133, "mul", dict(rd=2, rs1=1, rs2=2)),
        (0x0000A103, "lw", dict(rd=2, rs1=1, imm=0)),
        (0x0020A023, "sw", dict(rs1=1, rs2=2, imm=0)),
        (0x10000237, "lui", dict(rd=4, imm=0x10000000)),
        (0x00000073, "ecall", dict()),
        (0x00100073, "ebreak", dict()),
        (0x00000013, "addi", dict(rd=0, rs1=0, imm=0)),  # canonical NOP
    ])
    def test_decode_fields(self, word, mnemonic, fields):
        rv = decode_word(word)
        assert rv.mnemonic == mnemonic
        for field, value in fields.items():
            assert getattr(rv, field) == value, field
        assert encode(rv) == word

    def test_branch_offset_is_signed_and_even(self):
        # beq x1, x2, -8 (a backward branch).
        rv = decode_word(0xFE208CE3)
        assert rv.mnemonic == "beq"
        assert (rv.rs1, rv.rs2) == (1, 2)
        assert rv.imm == -8

    def test_jal_offset(self):
        rv = decode_word(0x008000EF)  # jal x1, +8
        assert (rv.mnemonic, rv.rd, rv.imm) == ("jal", 1, 8)

    def test_shift_shamt(self):
        rv = decode_word(0x00509093)  # slli x1, x1, 5
        assert (rv.mnemonic, rv.imm) == ("slli", 5)
        rv = decode_word(0x40505093)  # srai x1, x0, 5
        assert (rv.mnemonic, rv.imm) == ("srai", 5)


class TestTypedErrors:
    """Invalid input raises :class:`DecodeError`, never ``KeyError``."""

    @pytest.mark.parametrize("word", [
        0x00000000,          # all-zero (defined illegal in RV32)
        0xFFFFFFFF,          # all-ones
        0x0000001B,          # OP-IMM-32 (RV64-only major opcode)
        0x00001067,          # jalr with funct3 != 0
        0x00202063,          # branch funct3=2 (invalid)
        0x0000B003,          # load funct3=3 (ld is RV64-only)
        0x0000B023,          # store funct3=3 (sd is RV64-only)
        0x40509093,          # slli with funct7=0x20
        0x7F208133,          # OP with unknown funct7
    ])
    def test_invalid_words(self, word):
        with pytest.raises(DecodeError):
            decode_word(word)

    @pytest.mark.parametrize("word", [
        0x30529073,          # csrrw (Zicsr)
        0x30200073,          # mret (privileged)
    ])
    def test_unmodelled_words_are_typed_separately(self, word):
        with pytest.raises(UnsupportedInstructionError):
            decode_word(word)

    def test_error_reports_word_and_pc(self):
        with pytest.raises(DecodeError) as excinfo:
            decode_word(0x0000001B, pc=0x40)
        message = str(excinfo.value)
        assert "word=0x0000001b" in message
        assert "pc=0x40" in message
        assert excinfo.value.word == 0x0000001B
        assert excinfo.value.pc == 0x40

    def test_non_int_and_out_of_range_words(self):
        with pytest.raises(DecodeError):
            decode_word("00500093")  # type: ignore[arg-type]
        with pytest.raises(DecodeError):
            decode_word(-1)
        with pytest.raises(DecodeError):
            decode_word(1 << 32)


class TestRoundTripProperty:
    """The fuzzed contract: decoding any 32-bit word either raises a
    typed :class:`DecodeError` or round-trips bit-exactly."""

    @_FAST
    @given(word=st.integers(min_value=0, max_value=0xFFFFFFFF))
    def test_decode_never_crashes_and_reencodes_exactly(self, word):
        try:
            rv = decode_word(word)
        except DecodeError:
            return  # includes UnsupportedInstructionError
        assert encode(rv) == word

    @_FAST
    @given(rd=st.integers(0, 31), rs1=st.integers(0, 31),
           imm=st.integers(-2048, 2047),
           mnemonic=st.sampled_from(
               ["addi", "slti", "sltiu", "xori", "ori", "andi",
                "lb", "lh", "lw", "lbu", "lhu", "jalr"]))
    def test_itype_field_roundtrip(self, rd, rs1, imm, mnemonic):
        rv = RVInstruction(mnemonic, rd=rd, rs1=rs1, imm=imm)
        assert decode_word(encode(rv)).key() == rv.key()

    @_FAST
    @given(rs1=st.integers(0, 31), rs2=st.integers(0, 31),
           imm=st.integers(-2048, 2047),
           mnemonic=st.sampled_from(["sb", "sh", "sw"]))
    def test_store_field_roundtrip(self, rs1, rs2, imm, mnemonic):
        rv = RVInstruction(mnemonic, rs1=rs1, rs2=rs2, imm=imm)
        assert decode_word(encode(rv)).key() == rv.key()

    @_FAST
    @given(rs1=st.integers(0, 31), rs2=st.integers(0, 31),
           offset=st.integers(-2048, 2047),
           mnemonic=st.sampled_from(
               ["beq", "bne", "blt", "bge", "bltu", "bgeu"]))
    def test_branch_field_roundtrip(self, rs1, rs2, offset, mnemonic):
        rv = RVInstruction(mnemonic, rs1=rs1, rs2=rs2, imm=offset * 2)
        assert decode_word(encode(rv)).key() == rv.key()

    @_FAST
    @given(rd=st.integers(0, 31), upper=st.integers(0, (1 << 20) - 1),
           mnemonic=st.sampled_from(["lui", "auipc"]))
    def test_utype_field_roundtrip(self, rd, upper, mnemonic):
        imm = upper << 12
        if imm >> 31:
            imm -= 1 << 32  # decode sign-extends the shifted immediate
        rv = RVInstruction(mnemonic, rd=rd, imm=imm)
        assert decode_word(encode(rv)).key() == rv.key()

    @_FAST
    @given(rd=st.integers(0, 31), offset=st.integers(-(1 << 19),
                                                     (1 << 19) - 1))
    def test_jal_field_roundtrip(self, rd, offset):
        rv = RVInstruction("jal", rd=rd, imm=offset * 2)
        assert decode_word(encode(rv)).key() == rv.key()


class TestAssemblerRoundTrip:
    """RVAssembler output is itself decodable (labels resolved)."""

    def test_emitted_words_all_decode(self):
        asm = RVAssembler()
        asm.li32(1, 0xDEADBEEF)
        asm.label("top")
        asm.emit("addi", rd=2, rs1=2, imm=1)
        asm.branch("bne", 2, 3, "top")
        asm.jal(5, "end")
        asm.emit("sw", rs1=1, rs2=2, imm=4)
        asm.label("end")
        asm.emit("ecall")
        for word in asm.words():
            assert encode(decode_word(word)) == word

    def test_duplicate_label_rejected(self):
        asm = RVAssembler()
        asm.label("x")
        with pytest.raises(DecodeError):
            asm.label("x")

    def test_undefined_label_rejected(self):
        asm = RVAssembler()
        asm.branch("beq", 0, 0, "nowhere")
        with pytest.raises(DecodeError):
            asm.words()
