"""Unit tests for the in-order architectural simulator (ISS)."""

import pytest

from repro.isa import (
    Assembler,
    ExecutionLimitExceeded,
    Interpreter,
    run_program,
)
from repro.isa import instructions as ops
from repro.isa.instructions import MASK64
from repro.isa.interp import branch_taken, execute_op


def run_regs(build_fn, max_instructions=10_000):
    a = Assembler()
    build_fn(a)
    interp = Interpreter(a.build())
    interp.run(max_instructions)
    return interp.regs


class TestAluSemantics:
    def test_add_wraps(self):
        assert execute_op(ops.ADD, MASK64, 1, 0) == 0

    def test_sub_wraps(self):
        assert execute_op(ops.SUB, 0, 1, 0) == MASK64

    def test_logic(self):
        assert execute_op(ops.AND, 0b1100, 0b1010, 0) == 0b1000
        assert execute_op(ops.OR, 0b1100, 0b1010, 0) == 0b1110
        assert execute_op(ops.XOR, 0b1100, 0b1010, 0) == 0b0110

    def test_slt_signed(self):
        assert execute_op(ops.SLT, MASK64, 0, 0) == 1   # -1 < 0
        assert execute_op(ops.SLT, 0, MASK64, 0) == 0

    def test_sltu_unsigned(self):
        assert execute_op(ops.SLTU, MASK64, 0, 0) == 0
        assert execute_op(ops.SLTU, 0, MASK64, 0) == 1

    def test_shifts(self):
        assert execute_op(ops.SLL, 1, 63, 0) == 1 << 63
        assert execute_op(ops.SRL, 1 << 63, 63, 0) == 1
        assert execute_op(ops.SRA, 1 << 63, 63, 0) == MASK64

    def test_shift_amount_mod_64(self):
        assert execute_op(ops.SLL, 1, 64, 0) == 1
        assert execute_op(ops.SLLI, 1, 0, 65) == 2

    def test_immediates(self):
        assert execute_op(ops.ADDI, 1, 0, -1) == 0
        assert execute_op(ops.ANDI, 0xFF, 0, 0x0F) == 0x0F
        assert execute_op(ops.ORI, 0xF0, 0, 0x0F) == 0xFF
        assert execute_op(ops.XORI, 0xFF, 0, 0xFF) == 0
        assert execute_op(ops.SLTI, MASK64, 0, 0) == 1
        assert execute_op(ops.SRAI, MASK64, 0, 4) == MASK64

    def test_li(self):
        assert execute_op(ops.LI, 0, 0, 12345) == 12345
        assert execute_op(ops.LI, 0, 0, -1) == MASK64

    def test_mul_wraps(self):
        assert execute_op(ops.MUL, 1 << 63, 2, 0) == 0

    def test_div_truncates_toward_zero(self):
        minus7 = (-7) & MASK64
        assert execute_op(ops.DIV, minus7, 2, 0) == (-3) & MASK64
        assert execute_op(ops.DIV, 7, 2, 0) == 3

    def test_div_by_zero_is_all_ones(self):
        assert execute_op(ops.DIV, 42, 0, 0) == MASK64

    def test_rem_sign_follows_dividend(self):
        minus7 = (-7) & MASK64
        assert execute_op(ops.REM, minus7, 2, 0) == (-1) & MASK64
        assert execute_op(ops.REM, 7, (-2) & MASK64, 0) == 1

    def test_rem_by_zero_returns_dividend(self):
        assert execute_op(ops.REM, 42, 0, 0) == 42

    def test_fp_class_integer_semantics(self):
        assert execute_op(ops.FADD, 2, 3, 0) == 5
        assert execute_op(ops.FSUB, 2, 3, 0) == MASK64
        assert execute_op(ops.FMUL, 4, 5, 0) == 20
        assert execute_op(ops.FDIV, 20, 5, 0) == 4
        assert execute_op(ops.FDIV, 20, 0, 0) == MASK64

    def test_unknown_opcode_raises(self):
        with pytest.raises(ValueError):
            execute_op(ops.LW, 0, 0, 0)


class TestBranchTaken:
    def test_all_conditions(self):
        minus1 = MASK64
        assert branch_taken(ops.BEQ, 3, 3)
        assert not branch_taken(ops.BEQ, 3, 4)
        assert branch_taken(ops.BNE, 3, 4)
        assert branch_taken(ops.BLT, minus1, 0)
        assert not branch_taken(ops.BLT, 0, minus1)
        assert branch_taken(ops.BGE, 0, minus1)
        assert branch_taken(ops.BLTU, 0, minus1)
        assert not branch_taken(ops.BLTU, minus1, 0)
        assert branch_taken(ops.BGEU, minus1, 0)

    def test_non_branch_raises(self):
        with pytest.raises(ValueError):
            branch_taken(ops.ADD, 0, 0)


class TestMemorySemantics:
    def test_store_load_roundtrip_all_widths(self):
        def build(a):
            a.li("r1", 0x1000)
            a.li("r2", 0x1122334455667788)
            a.sd("r2", "r1", 0)
            a.lb("r3", "r1", 0)
            a.lbu("r4", "r1", 0)
            a.lh("r5", "r1", 0)
            a.lhu("r6", "r1", 0)
            a.lw("r7", "r1", 0)
            a.lwu("r8", "r1", 0)
            a.ld("r9", "r1", 0)
            a.halt()
        regs = run_regs(build)
        assert regs[3] == ((-0x78) & MASK64)        # 0x88 sign-extended
        assert regs[4] == 0x88
        assert regs[5] == 0x7788
        assert regs[6] == 0x7788
        assert regs[7] == 0x55667788
        assert regs[8] == 0x55667788
        assert regs[9] == 0x1122334455667788

    def test_sign_extension_of_negative_word(self):
        def build(a):
            a.li("r1", 0x1000)
            a.li("r2", 0xFFFFFFFF)
            a.sw("r2", "r1", 0)
            a.lw("r3", "r1", 0)
            a.lwu("r4", "r1", 0)
            a.halt()
        regs = run_regs(build)
        assert regs[3] == MASK64
        assert regs[4] == 0xFFFFFFFF

    def test_narrow_store_truncates(self):
        def build(a):
            a.li("r1", 0x1000)
            a.li("r2", 0x1FF)
            a.sb("r2", "r1", 0)
            a.lbu("r3", "r1", 0)
            a.halt()
        assert run_regs(build)[3] == 0xFF

    def test_unmapped_memory_reads_zero(self):
        def build(a):
            a.li("r1", 0xDEAD000)
            a.ld("r2", "r1", 8)
            a.halt()
        assert run_regs(build)[2] == 0

    def test_initial_data_segment_visible(self):
        a = Assembler()
        a.data_words(0x1000, [99])
        a.li("r1", 0x1000)
        a.ld("r2", "r1")
        a.halt()
        interp = Interpreter(a.build())
        interp.run()
        assert interp.regs[2] == 99


class TestControlFlow:
    def test_loop_sums(self):
        def build(a):
            a.li("r1", 0)
            a.li("r2", 10)
            a.li("r3", 0)
            a.label("top")
            a.add("r3", "r3", "r1")
            a.addi("r1", "r1", 1)
            a.bne("r1", "r2", "top")
            a.halt()
        assert run_regs(build)[3] == 45

    def test_jal_links_and_jr_returns(self):
        def build(a):
            a.jal("r31", "func")
            a.li("r5", 7)          # executed after return
            a.halt()
            a.label("func")
            a.li("r4", 3)
            a.jr("r31")
        regs = run_regs(build)
        assert regs[4] == 3 and regs[5] == 7

    def test_r0_is_hardwired_zero(self):
        def build(a):
            a.li("r0", 99)
            a.addi("r0", "r0", 5)
            a.mov("r1", "r0")
            a.halt()
        assert run_regs(build)[1] == 0

    def test_retire_records_contents(self):
        a = Assembler()
        a.li("r1", 0x1000)
        a.li("r2", 5)
        a.sd("r2", "r1")
        a.beq("r0", "r0", "end")
        a.label("end")
        a.halt()
        trace = run_program(a.build())
        assert len(trace) == 5
        store = trace[2]
        assert store.store_addr == 0x1000
        assert store.store_size == 8
        assert store.store_data == 5
        branch = trace[3]
        assert branch.taken and branch.next_pc == 16
        assert trace[4].op == ops.HALT

    def test_execution_limit_raises(self):
        a = Assembler()
        a.label("spin")
        a.j("spin")
        with pytest.raises(ExecutionLimitExceeded):
            run_program(a.build(), max_instructions=100)

    def test_step_after_halt_returns_none(self):
        a = Assembler()
        a.halt()
        interp = Interpreter(a.build())
        interp.run()
        assert interp.step() is None

    def test_halt_exactly_on_budget_boundary_returns_trace(self):
        # A program whose halt is the max_instructions-th instruction
        # must return its trace, not raise ExecutionLimitExceeded.
        a = Assembler()
        a.li("r1", 1)
        a.li("r2", 2)
        a.halt()
        trace = run_program(a.build(), max_instructions=3)
        assert len(trace) == 3
        assert trace[-1].op == ops.HALT

    def test_budget_one_short_of_halt_raises(self):
        a = Assembler()
        a.li("r1", 1)
        a.li("r2", 2)
        a.halt()
        with pytest.raises(ExecutionLimitExceeded):
            run_program(a.build(), max_instructions=2)
