"""Tests for the litmus workloads and the operational-model oracle.

The acceptance-critical cases: the oracle's exact allowed sets (LB
``(1, 1)`` forbidden), the end-to-end machine-vs-model check on every
shipped test, and the forbidden-outcome injection proving the oracle
*can* reject a run.
"""

from __future__ import annotations

import pytest

from repro.harness import (aggressive_sfc_mdt_config, baseline_lsq_config,
                           baseline_sfc_mdt_config)
from repro.verify import (LitmusOracle, LitmusReport, LitmusResult,
                          VERIFICATION_BACKENDS, run_litmus_suite,
                          run_litmus_test)
from repro.workloads import (LITMUS_TESTS, get_litmus, is_litmus,
                             litmus_benchmark_names)
from repro.workloads.litmus import (LD, LOCATIONS, ST, LitmusTest,
                                    result_address)


class TestWorkloadStructure:
    def test_shipped_suite_names(self):
        assert set(LITMUS_TESTS) == {"mp", "sb", "lb"}
        assert litmus_benchmark_names() == \
            ["litmus-lb", "litmus-mp", "litmus-sb"]

    def test_lookup_by_short_and_prefixed_name(self):
        assert get_litmus("mp") is LITMUS_TESTS["mp"]
        assert get_litmus("litmus-mp") is LITMUS_TESTS["mp"]
        assert is_litmus("sb") and is_litmus("litmus-sb")
        assert not is_litmus("gzip")
        with pytest.raises(KeyError, match="unknown litmus test"):
            get_litmus("litmus-nope")

    def test_malformed_ops_rejected(self):
        with pytest.raises(ValueError, match="malformed op"):
            LitmusTest("bad", "", threads=[[("xchg", "X", 1)]])
        with pytest.raises(ValueError, match="malformed op"):
            LitmusTest("bad", "", threads=[[(LD, "Q")]])

    def test_programs_one_per_thread_and_branch_free(self):
        for test in LITMUS_TESTS.values():
            programs = test.programs()
            assert len(programs) == test.cores
            for program in programs:
                assert not any(inst.is_branch
                               for inst in program.instructions)

    def test_locations_and_thread_result_areas_on_distinct_lines(self):
        # Shared locations and per-thread result areas must not share an
        # L2 (128B) line with each other (slots within one thread may).
        areas = sorted(LOCATIONS.values()) + \
            [result_address(t, 0) for t in range(3)]
        lines = [address // 128 for address in areas]
        assert len(set(lines)) == len(areas)

    def test_load_slots_outcome_order(self):
        assert LITMUS_TESTS["mp"].load_slots() == [(1, 0), (1, 1)]
        assert LITMUS_TESTS["sb"].load_slots() == [(0, 0), (1, 0)]


class TestOracle:
    def test_mp_allows_all_four(self):
        oracle = LitmusOracle()
        assert oracle.allowed_outcomes(LITMUS_TESTS["mp"]) == \
            frozenset({(0, 0), (0, 1), (1, 0), (1, 1)})

    def test_sb_allows_all_four(self):
        # (0, 0) is the store-buffering outcome this machine exhibits.
        oracle = LitmusOracle()
        assert oracle.allowed_outcomes(LITMUS_TESTS["sb"]) == \
            frozenset({(0, 0), (0, 1), (1, 0), (1, 1)})

    def test_lb_forbids_causal_cycle(self):
        oracle = LitmusOracle()
        assert oracle.allowed_outcomes(LITMUS_TESTS["lb"]) == \
            frozenset({(0, 0), (0, 1), (1, 0)})
        assert not oracle.allowed(LITMUS_TESTS["lb"], (1, 1))
        assert "FORBIDDEN" in oracle.explain(LITMUS_TESTS["lb"], (1, 1))

    def test_same_thread_forwarding_respected(self):
        # A load after a same-thread store to the same location can only
        # ever observe that store's value (forwarded or from the image).
        test = LitmusTest("fwd", "", threads=[[(ST, "X", 7), (LD, "X")]])
        assert LitmusOracle().allowed_outcomes(test) == frozenset({(7,)})


class TestEndToEnd:
    def test_every_shipped_test_outcome_allowed(self):
        report = run_litmus_suite()
        assert report.ok
        assert len(report.results) == 3
        assert report.violations == []

    def test_across_core_configs(self):
        report = run_litmus_suite(
            core_configs=[baseline_sfc_mdt_config(), baseline_lsq_config(),
                          aggressive_sfc_mdt_config()])
        assert report.ok
        assert len(report.results) == 9

    def test_single_run_result_shape(self):
        result = run_litmus_test("mp")
        assert result.test_name == "mp"
        assert result.allowed
        assert result.outcome in result.allowed_outcomes
        assert result.system_result is not None
        assert result.system_result.config.cores == 2
        payload = result.to_dict()
        assert payload["test"] == "mp"
        assert payload["outcome"] == list(result.outcome)

    def test_forbidden_outcome_injection_fails_report(self):
        # Prove the oracle can fail: hand it the LB causal-cycle outcome
        # the machine must never produce.
        test = LITMUS_TESTS["lb"]
        oracle = LitmusOracle()
        injected = LitmusResult(
            test, "injected", (1, 1),
            oracle.allowed(test, (1, 1)),
            oracle.allowed_outcomes(test))
        assert not injected.allowed
        report = LitmusReport([run_litmus_test("mp"), injected])
        assert not report.ok
        assert report.violations == [injected]
        assert report.to_dict()["violations"] == 1
        assert "VIOLATION" in report.format()

    def test_report_dict_envelope(self):
        report = run_litmus_suite(tests=["mp"])
        payload = report.to_dict()
        assert payload["kind"] == "litmus"
        assert payload["ok"] is True
        assert payload["runs"] == 1

    def test_litmus_is_registered_verification_backend(self):
        assert VERIFICATION_BACKENDS["litmus"] is LitmusOracle
