"""Unit tests for the producer-set predictor and dependence tag file."""

from repro.core import (
    ANTI_DEP,
    DependenceTagFile,
    ENF,
    LSQ_MODE,
    NOT_ENF,
    OUTPUT_DEP,
    TOTAL,
    PredictorConfig,
    ProducerSetPredictor,
    TRUE_DEP,
)


def make_predictor(mode=ENF):
    return ProducerSetPredictor(PredictorConfig(mode=mode)), \
        DependenceTagFile()


class TestTagFile:
    def test_allocation_starts_not_ready(self):
        tags = DependenceTagFile()
        tag = tags.allocate()
        assert not tags.is_ready(tag)

    def test_mark_ready(self):
        tags = DependenceTagFile()
        tag = tags.allocate()
        tags.mark_ready(tag)
        assert tags.is_ready(tag)

    def test_released_tags_read_ready(self):
        tags = DependenceTagFile()
        tag = tags.allocate()
        tags.release(tag)
        assert tags.is_ready(tag)

    def test_unknown_tag_reads_ready(self):
        tags = DependenceTagFile()
        assert tags.is_ready(12345)

    def test_tags_are_unique(self):
        tags = DependenceTagFile()
        assert len({tags.allocate() for _ in range(100)}) == 100


class TestTraining:
    def test_untrained_pcs_get_no_tags(self):
        pred, tags = make_predictor()
        consumed, produced = pred.on_dispatch(0x40, False, tags)
        assert consumed is None and produced is None

    def test_true_violation_links_pair(self):
        pred, tags = make_predictor()
        pred.on_violation(TRUE_DEP, producer_pc=0x10, consumer_pc=0x20)
        pid, _ = pred.producer_set_of(0x10)
        _, cid = pred.producer_set_of(0x20)
        assert pid >= 0 and pid == cid

    def test_merge_rule_smaller_id_wins(self):
        pred, tags = make_predictor()
        pred.on_violation(TRUE_DEP, 0x10, 0x20)   # id A
        pred.on_violation(TRUE_DEP, 0x30, 0x40)   # id B
        pred.on_violation(TRUE_DEP, 0x10, 0x40)   # merge
        pid_a, _ = pred.producer_set_of(0x10)
        _, cid_b = pred.producer_set_of(0x40)
        assert pid_a == cid_b == min(pid_a, cid_b)

    def test_none_pcs_ignored(self):
        pred, tags = make_predictor()
        pred.on_violation(TRUE_DEP, None, 0x20)
        assert pred.counters.get("pred_trainings") == 0


class TestEnforcementModes:
    def test_enf_trains_on_all_kinds(self):
        pred, _ = make_predictor(ENF)
        pred.on_violation(ANTI_DEP, 0x10, 0x20)
        pred.on_violation(OUTPUT_DEP, 0x30, 0x40)
        assert pred.counters.get("pred_trainings") == 2

    def test_not_enf_trains_only_true(self):
        pred, _ = make_predictor(NOT_ENF)
        pred.on_violation(ANTI_DEP, 0x10, 0x20)
        pred.on_violation(OUTPUT_DEP, 0x30, 0x40)
        pred.on_violation(TRUE_DEP, 0x50, 0x60)
        assert pred.counters.get("pred_trainings") == 1
        assert pred.producer_set_of(0x10) == (-1, -1)

    def test_total_makes_both_producer_and_consumer(self):
        pred, _ = make_predictor(TOTAL)
        pred.on_violation(TRUE_DEP, 0x10, 0x20)
        pid_p, cid_p = pred.producer_set_of(0x10)
        pid_c, cid_c = pred.producer_set_of(0x20)
        assert pid_p == cid_p == pid_c == cid_c >= 0

    def test_lsq_mode_trains_only_true(self):
        pred, _ = make_predictor(LSQ_MODE)
        pred.on_violation(OUTPUT_DEP, 0x10, 0x20)
        assert pred.counters.get("pred_trainings") == 0


class TestDispatchTags:
    def test_producer_publishes_consumer_reads(self):
        pred, tags = make_predictor()
        pred.on_violation(TRUE_DEP, producer_pc=0x10, consumer_pc=0x20)
        _, produced = pred.on_dispatch(0x10, True, tags)
        assert produced is not None
        consumed, _ = pred.on_dispatch(0x20, False, tags)
        assert consumed == produced

    def test_consumer_before_any_producer_gets_none(self):
        pred, tags = make_predictor()
        pred.on_violation(TRUE_DEP, 0x10, 0x20)
        consumed, _ = pred.on_dispatch(0x20, False, tags)
        assert consumed is None

    def test_consumer_sees_latest_producer(self):
        pred, tags = make_predictor()
        pred.on_violation(TRUE_DEP, 0x10, 0x20)
        _, first = pred.on_dispatch(0x10, True, tags)
        _, second = pred.on_dispatch(0x10, True, tags)
        consumed, _ = pred.on_dispatch(0x20, False, tags)
        assert consumed == second != first

    def test_total_mode_chains_in_fetch_order(self):
        """An instruction that is both consumer and producer links to the
        previous producer, not to itself."""
        pred, tags = make_predictor(TOTAL)
        pred.on_violation(TRUE_DEP, 0x10, 0x20)
        _, t1 = pred.on_dispatch(0x10, True, tags)
        c2, t2 = pred.on_dispatch(0x20, True, tags)
        c3, t3 = pred.on_dispatch(0x10, True, tags)
        assert c2 == t1
        assert c3 == t2
        assert len({t1, t2, t3}) == 3

    def test_lsq_mode_stores_do_not_consume(self):
        """Section 2.1: with the LSQ, predicted output dependences among
        stores are not enforced."""
        pred, tags = make_predictor(LSQ_MODE)
        pred.on_violation(TRUE_DEP, producer_pc=0x10, consumer_pc=0x20)
        # Make the producer PC also a consumer via another violation.
        pred.on_violation(TRUE_DEP, producer_pc=0x30, consumer_pc=0x10)
        pred.on_dispatch(0x30, True, tags)
        consumed_store, _ = pred.on_dispatch(0x10, True, tags)
        consumed_load, _ = pred.on_dispatch(0x10, False, tags)
        assert consumed_store is None
        assert consumed_load is not None

    def test_counters(self):
        pred, tags = make_predictor()
        pred.on_violation(TRUE_DEP, 0x10, 0x20)
        pred.on_dispatch(0x10, True, tags)
        pred.on_dispatch(0x20, False, tags)
        assert pred.counters.get("pred_produces") == 1
        assert pred.counters.get("pred_consumes") == 1


class TestConfig:
    def test_rejects_unknown_mode(self):
        import pytest
        with pytest.raises(ValueError):
            PredictorConfig(mode="bogus")

    def test_id_allocation_wraps(self):
        pred = ProducerSetPredictor(PredictorConfig(num_ids=2))
        ids = {pred._allocate_id() for _ in range(5)}
        assert ids == {0, 1}
