"""Unit tests for the Store Forwarding Cache (paper Section 2.3)."""

from repro.core import (
    SFC_CORRUPT,
    SFC_HIT,
    SFC_MISS,
    SFC_PARTIAL,
    SFCConfig,
    StoreForwardingCache,
)

LIVE = 10 ** 9      # watermark far below any test sequence number


def make_sfc(num_sets=8, assoc=2):
    return StoreForwardingCache(SFCConfig(num_sets=num_sets, assoc=assoc))


class TestStoreLoadForwarding:
    def test_full_match_forwards(self):
        sfc = make_sfc()
        sfc.store_write(0x1000, 8, 0xDEADBEEF, seq=1)
        status, value = sfc.load_read(0x1000, 8)
        assert status == SFC_HIT and value == 0xDEADBEEF

    def test_miss_when_empty(self):
        sfc = make_sfc()
        assert sfc.load_read(0x1000, 8)[0] == SFC_MISS

    def test_subword_store_forwards_to_matching_load(self):
        sfc = make_sfc()
        sfc.store_write(0x1002, 2, 0xBEEF, seq=1)
        status, value = sfc.load_read(0x1002, 2)
        assert status == SFC_HIT and value == 0xBEEF

    def test_partial_match_on_wider_load(self):
        sfc = make_sfc()
        sfc.store_write(0x1000, 4, 0x11223344, seq=1)
        assert sfc.load_read(0x1000, 8)[0] == SFC_PARTIAL

    def test_cumulative_value_from_two_stores(self):
        sfc = make_sfc()
        sfc.store_write(0x1000, 4, 0x11223344, seq=1)
        sfc.store_write(0x1004, 4, 0x55667788, seq=2)
        status, value = sfc.load_read(0x1000, 8)
        assert status == SFC_HIT
        assert value == 0x5566778811223344

    def test_younger_store_overwrites_bytes(self):
        sfc = make_sfc()
        sfc.store_write(0x1000, 8, 0, seq=1)
        sfc.store_write(0x1000, 1, 0xAB, seq=2)
        status, value = sfc.load_read(0x1000, 8)
        assert status == SFC_HIT and value == 0xAB

    def test_load_of_untouched_bytes_in_live_word_misses(self):
        sfc = make_sfc()
        sfc.store_write(0x1000, 4, 0x11223344, seq=1)
        assert sfc.load_read(0x1004, 4)[0] == SFC_MISS

    def test_unaligned_store_spans_two_words(self):
        sfc = make_sfc()
        sfc.store_write(0x1004, 8, 0x1122334455667788, seq=1)
        status, value = sfc.load_read(0x1004, 8)
        assert status == SFC_HIT and value == 0x1122334455667788
        # Both aligned words host bytes.
        assert sfc.occupancy() == 2

    def test_multiword_load_mixing_hit_and_miss_is_partial(self):
        sfc = make_sfc()
        sfc.store_write(0x1000, 8, 1, seq=1)
        assert sfc.load_read(0x1004, 8)[0] == SFC_PARTIAL


class TestAllocationAndConflicts:
    def test_probe_allows_existing_word(self):
        sfc = make_sfc(num_sets=1, assoc=1)
        sfc.store_write(0x1000, 8, 1, seq=1)
        assert sfc.probe_store(0x1000, 8, watermark=0)

    def test_set_conflict_detected(self):
        sfc = make_sfc(num_sets=1, assoc=2)
        sfc.store_write(0x1000, 8, 1, seq=1)
        sfc.store_write(0x2000, 8, 2, seq=2)
        assert not sfc.probe_store(0x3000, 8, watermark=0)
        assert sfc.counters.get("sfc_set_conflicts") == 1

    def test_probe_scrubs_dead_ways(self):
        sfc = make_sfc(num_sets=1, assoc=1)
        sfc.store_write(0x1000, 8, 1, seq=1)
        # Watermark above the entry's writer: it is dead and reclaimable.
        assert sfc.probe_store(0x2000, 8, watermark=5)

    def test_associativity_gives_capacity(self):
        sfc = make_sfc(num_sets=1, assoc=4)
        for i in range(4):
            assert sfc.probe_store(0x1000 * (i + 1), 8, watermark=0)
            sfc.store_write(0x1000 * (i + 1), 8, i, seq=i + 1)
        assert not sfc.probe_store(0x9000, 8, watermark=0)

    def test_store_write_recycles_dead_entry_state(self):
        sfc = make_sfc()
        sfc.store_write(0x1000, 1, 0xAA, seq=1)
        sfc.on_partial_flush()                     # corrupt byte 0
        # Entry is now dead (writer "canceled"); a new store must not
        # inherit the stale valid/corrupt bytes.
        sfc.store_write(0x1004, 4, 0x12345678, seq=10, watermark=5)
        status, value = sfc.load_read(0x1004, 4, watermark=5)
        assert status == SFC_HIT and value == 0x12345678
        assert sfc.load_read(0x1000, 1, watermark=5)[0] == SFC_MISS


class TestRetirementFreeing:
    def test_latest_store_retire_frees_entry(self):
        sfc = make_sfc()
        sfc.store_write(0x1000, 8, 1, seq=1)
        sfc.on_store_retire(0x1000, 8, seq=1)
        assert sfc.occupancy() == 0
        assert sfc.load_read(0x1000, 8)[0] == SFC_MISS

    def test_older_store_retire_does_not_free(self):
        sfc = make_sfc()
        sfc.store_write(0x1000, 8, 1, seq=1)
        sfc.store_write(0x1000, 8, 2, seq=5)
        sfc.on_store_retire(0x1000, 8, seq=1)
        status, value = sfc.load_read(0x1000, 8)
        assert status == SFC_HIT and value == 2

    def test_retire_counts_as_eviction_event(self):
        sfc = make_sfc()
        sfc.store_write(0x1000, 8, 1, seq=1)
        before = sfc.eviction_events
        sfc.on_store_retire(0x1000, 8, seq=1)
        assert sfc.eviction_events == before + 1


class TestCorruption:
    def test_partial_flush_marks_valid_bytes_corrupt(self):
        sfc = make_sfc()
        sfc.store_write(0x1000, 8, 1, seq=1)
        sfc.on_partial_flush()
        assert sfc.load_read(0x1000, 8)[0] == SFC_CORRUPT

    def test_new_store_clears_corruption_for_its_bytes(self):
        sfc = make_sfc()
        sfc.store_write(0x1000, 8, 1, seq=1)
        sfc.on_partial_flush()
        sfc.store_write(0x1000, 4, 7, seq=2)
        assert sfc.load_read(0x1000, 4)[0] == SFC_HIT
        assert sfc.load_read(0x1004, 4)[0] == SFC_CORRUPT

    def test_full_flush_discards_everything(self):
        sfc = make_sfc()
        sfc.store_write(0x1000, 8, 1, seq=1)
        sfc.on_full_flush()
        assert sfc.occupancy() == 0
        assert sfc.load_read(0x1000, 8)[0] == SFC_MISS

    def test_mark_corrupt_range(self):
        sfc = make_sfc()
        sfc.store_write(0x1000, 8, 1, seq=1)
        sfc.mark_corrupt(0x1000, 4)
        assert sfc.load_read(0x1000, 4)[0] == SFC_CORRUPT
        assert sfc.load_read(0x1004, 4)[0] == SFC_HIT

    def test_mark_corrupt_missing_entry_is_noop(self):
        sfc = make_sfc()
        sfc.mark_corrupt(0x1000, 8)
        assert sfc.load_read(0x1000, 8)[0] == SFC_MISS

    def test_paper_example_corrupt_then_reclaim(self):
        """The ST/LD/BR/ST example from Section 2.3."""
        sfc = make_sfc()
        sfc.store_write(0xB000, 2, 0xA1A1, seq=1)     # store [1]
        sfc.store_write(0xB000, 2, 0xB2B2, seq=3)     # wrong-path store [3]
        sfc.on_partial_flush()                         # branch resolves
        # Load [4] on the correct path finds the entry corrupt.
        assert sfc.load_read(0xB000, 2, watermark=2)[0] == SFC_CORRUPT
        # Store [1] retires (watermark passes it); once every sequence
        # number in the entry is dead the entry is reclaimed and the load
        # reads the committed value from the cache hierarchy instead.
        assert sfc.load_read(0xB000, 2, watermark=4)[0] == SFC_MISS


class TestScrubbing:
    def test_scrub_reclaims_dead_entries(self):
        sfc = make_sfc()
        sfc.store_write(0x1000, 8, 1, seq=1)
        sfc.store_write(0x2000, 8, 2, seq=10)
        sfc.scrub(watermark=5)
        assert sfc.occupancy() == 1

    def test_dead_entries_invisible_to_loads(self):
        sfc = make_sfc()
        sfc.store_write(0x1000, 8, 1, seq=1)
        assert sfc.load_read(0x1000, 8, watermark=0)[0] == SFC_HIT
        assert sfc.load_read(0x1000, 8, watermark=2)[0] == SFC_MISS

    def test_scrub_counts_eviction_events(self):
        sfc = make_sfc()
        sfc.store_write(0x1000, 8, 1, seq=1)
        before = sfc.eviction_events
        sfc.scrub(watermark=99)
        assert sfc.eviction_events == before + 1


class TestConfig:
    def test_rejects_non_power_of_two_sets(self):
        import pytest
        with pytest.raises(ValueError):
            SFCConfig(num_sets=100)

    def test_counters_track_traffic(self):
        sfc = make_sfc()
        sfc.store_write(0x1000, 8, 1, seq=1)
        sfc.load_read(0x1000, 8)
        assert sfc.counters.get("sfc_store_writes") == 1
        assert sfc.counters.get("sfc_load_lookups") == 1
        assert sfc.counters.get("sfc_forwards") == 1
