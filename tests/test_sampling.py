"""Tests for interval sampling (repro.checkpoint.sampling) and its
harness/api/CLI integration.

The accuracy contract: on real kernels, the sampled IPC's reported
confidence interval covers the full-run IPC.  The bit-exactness
contract: sampled mode is pure addition -- exact-mode records, cache
keys, and the manifest digest are byte-identical with the feature in
the tree.
"""

from __future__ import annotations

import pytest

from repro import api, perf
from repro.checkpoint import SamplingError, sample_run
from repro.checkpoint.sampling import t95
from repro.harness.configs import (
    baseline_lsq_config,
    baseline_sfc_mdt_config,
)
from repro.harness.experiment import ExperimentRunner, cache_key
from repro.isa.interp import Interpreter
from repro.pipeline.core import Core
from repro.workloads import suites

#: Three kernels with different phase structure for the tolerance test.
TOLERANCE_KERNELS = ("gzip", "mcf", "equake")
SCALE = 30_000


def _full_ipc(benchmark, config, scale=SCALE):
    program = suites.build(benchmark, scale)
    interp = Interpreter(program)
    trace = interp.run(5_000_000)
    core = Core(program, config, trace=trace)
    result = core.run()
    return result.instructions / result.cycles


class TestSampledAccuracy:
    @pytest.mark.parametrize("kernel", TOLERANCE_KERNELS)
    def test_sampled_ipc_within_ci_of_full(self, kernel):
        config = baseline_sfc_mdt_config()
        program = suites.build(kernel, SCALE)
        sampled = sample_run(program, config, intervals=8,
                             warmup_insts=500, interval_insts=2_000)
        full = _full_ipc(kernel, config)
        assert abs(sampled.ipc_mean - full) <= sampled.ipc_ci95, (
            f"{kernel}: sampled {sampled.ipc_mean:.4f} +/- "
            f"{sampled.ipc_ci95:.4f} does not cover full {full:.4f}")

    def test_detailed_fraction_is_small(self):
        config = baseline_sfc_mdt_config()
        program = suites.build("gzip", SCALE)
        sampled = sample_run(program, config, intervals=5,
                             warmup_insts=500, interval_insts=2_000)
        assert sampled.total_instructions > 30_000
        assert sampled.detailed_instructions < \
            sampled.total_instructions // 2

    def test_warm_capsules_cover_cache_sensitive_config(self):
        """With warm capsules even a short warm-up suffices on the
        cache-sensitive baseline-lsq config."""
        config = baseline_lsq_config()
        program = suites.build("gzip", SCALE)
        full = _full_ipc("gzip", config)
        sampled = sample_run(program, config, intervals=8,
                             warmup_insts=500, interval_insts=2_000,
                             warm=True)
        assert abs(sampled.ipc_mean - full) <= sampled.ipc_ci95

    def test_cold_short_warmup_underpredicts(self):
        """Regression oracle for the cold-start bias that warm capsules
        correct: cold restore with a tiny warm-up reads biased-low."""
        config = baseline_lsq_config()
        program = suites.build("gzip", SCALE)
        full = _full_ipc("gzip", config)
        cold = sample_run(program, config, intervals=8,
                          warmup_insts=500, interval_insts=2_000,
                          warm=False)
        warm = sample_run(program, config, intervals=8,
                          warmup_insts=500, interval_insts=2_000,
                          warm=True)
        assert cold.ipc_mean < full
        assert abs(warm.ipc_mean - full) < abs(cold.ipc_mean - full)

    def test_single_interval_reports_wide_ci(self):
        config = baseline_sfc_mdt_config()
        program = suites.build("gzip", 2_000)
        sampled = sample_run(program, config, intervals=1,
                             warmup_insts=100, interval_insts=500)
        assert len(sampled.intervals) == 1
        assert sampled.ipc_ci95 == pytest.approx(0.10 * sampled.ipc_mean)

    def test_unhaltable_warmup_raises_sampling_error(self):
        config = baseline_sfc_mdt_config()
        program = suites.build("gzip", 2_000)
        with pytest.raises(SamplingError, match="warm-up"):
            sample_run(program, config, intervals=2,
                       warmup_insts=10_000_000, interval_insts=100)

    def test_t95_table(self):
        assert t95(1) == pytest.approx(12.706)
        assert t95(9) == pytest.approx(2.262)
        assert t95(17) == pytest.approx(2.131)
        assert t95(200) == pytest.approx(1.96)


class TestBoundaryAccounting:
    """Interval accounting at halt/horizon boundaries: instructions past
    the halt or the requested horizon never enter the IPC denominator
    or the sampled-span bookkeeping."""

    def test_degenerate_short_program_sampled_equals_exact(self):
        # Program shorter than one window, zero warm-up: the single
        # degenerate interval must reproduce exact-mode IPC *exactly* --
        # any post-halt remainder in the denominator would break this.
        config = baseline_sfc_mdt_config()
        program = suites.build("gzip", 300)
        sampled = sample_run(program, config, intervals=4,
                             warmup_insts=0, interval_insts=100_000)
        exact = _full_ipc("gzip", config, scale=300)
        assert sampled.ipc_mean == exact
        assert len(sampled.intervals) == 1
        assert sampled.instructions == sampled.total_instructions

    def test_halt_inside_window_excludes_post_halt_remainder(self):
        # The warm-up+measure window extends past the halt: the measured
        # span must end at the halt, not run the window length.
        config = baseline_sfc_mdt_config()
        program = suites.build("gzip", 300)
        sampled = sample_run(program, config, intervals=2,
                             warmup_insts=100, interval_insts=100_000)
        total = sampled.total_instructions
        for iv in sampled.intervals:
            assert iv["position"] + 100 + iv["retired"] <= total
            assert iv["ipc"] == iv["retired"] / iv["cycles"]

    def test_horizon_clamps_span_and_eligibility(self):
        config = baseline_sfc_mdt_config()
        program = suites.build("gzip", 10_000)
        window = 300 + 1_000
        sampled = sample_run(program, config, intervals=4,
                             warmup_insts=300, interval_insts=1_000,
                             horizon=4_000)
        assert sampled.total_instructions == 4_000
        for iv in sampled.intervals:
            assert iv["position"] + window <= 4_000

    def test_horizon_past_halt_clamps_to_total(self):
        config = baseline_sfc_mdt_config()
        program = suites.build("gzip", 300)
        sampled = sample_run(program, config, intervals=2,
                             warmup_insts=0, interval_insts=1_000,
                             horizon=50_000)
        unscoped = sample_run(program, config, intervals=2,
                              warmup_insts=0, interval_insts=1_000)
        assert sampled.total_instructions == \
            unscoped.total_instructions


class TestRunnerIntegration:
    def test_run_sampled_record_shape(self, tmp_path):
        runner = ExperimentRunner(scale=10_000, cache_dir=tmp_path)
        record = runner.run_sampled("gzip", baseline_sfc_mdt_config(),
                                    intervals=4, warmup_insts=300,
                                    interval_insts=1_000)
        assert record.ok and record.sampling is not None
        info = record.sampling
        assert record.ipc == pytest.approx(info["ipc_mean"])
        assert info["ipc_ci95"] > 0
        assert 1 <= len(info["intervals"]) <= 4
        assert info["warmup_insts"] == 300
        payload = record.to_dict()
        assert payload["sampling"] == info
        from repro.obs.runrecord import RunRecord
        assert RunRecord.from_dict(payload).sampling == info

    def test_sampled_cells_cache_separately_from_exact(self, tmp_path):
        runner = ExperimentRunner(scale=10_000, cache_dir=tmp_path)
        config = baseline_sfc_mdt_config()
        exact = runner.run("gzip", config)
        sampled = runner.run_sampled("gzip", config, intervals=4,
                                     warmup_insts=300,
                                     interval_insts=1_000)
        exact_entry, sampled_entry = runner.manifest[-2:]
        assert exact_entry["key"] != sampled_entry["key"]
        assert "sampling" not in exact_entry
        # Second sampled call is a cache hit with the same numbers.
        again = runner.run_sampled("gzip", config, intervals=4,
                                   warmup_insts=300,
                                   interval_insts=1_000)
        assert runner.manifest[-1]["cache_hit"] is True
        assert again.ipc == sampled.ipc
        assert again.sampling == sampled.sampling

    def test_checkpoint_train_shared_across_configs(self, tmp_path):
        """Two configs of one benchmark fast-forward once: the second
        run_sampled reuses the persisted checkpoint train."""
        runner = ExperimentRunner(scale=10_000, cache_dir=tmp_path)
        runner.run_sampled("gzip", baseline_sfc_mdt_config(),
                           intervals=3, warmup_insts=300,
                           interval_insts=1_000)
        trains = list((tmp_path / "checkpoints").glob("*.ckpt.json"))
        assert len(trains) == 1
        runner.run_sampled("gzip", baseline_lsq_config(), intervals=3,
                           warmup_insts=300, interval_insts=1_000)
        assert list((tmp_path / "checkpoints").glob("*.ckpt.json")) \
            == trains

    def test_train_reused_across_horizons(self, tmp_path):
        """A train captured for one horizon is prefix-served or extended
        in place for other horizons -- never recaptured into a second
        file, and never rewritten for a shorter request."""
        runner = ExperimentRunner(scale=30_000, cache_dir=tmp_path)
        config = baseline_sfc_mdt_config()
        runner.run_sampled("gzip", config, intervals=3,
                           warmup_insts=300, interval_insts=1_000,
                           horizon=5_000)
        trains = list((tmp_path / "checkpoints").glob("*.ckpt.json"))
        assert len(trains) == 1
        # Longer horizon: extended in place, still one file.
        runner.run_sampled("gzip", config, intervals=3,
                           warmup_insts=300, interval_insts=1_000,
                           horizon=20_000)
        assert list((tmp_path / "checkpoints").glob("*.ckpt.json")) \
            == trains
        mtime = trains[0].stat().st_mtime_ns
        # Shorter horizon again: served as a prefix, no rewrite.
        runner.run_sampled("gzip", config, intervals=2,
                           warmup_insts=300, interval_insts=1_000,
                           horizon=3_000)
        assert trains[0].stat().st_mtime_ns == mtime

    def test_horizon_cells_cache_separately(self, tmp_path):
        runner = ExperimentRunner(scale=10_000, cache_dir=tmp_path)
        config = baseline_sfc_mdt_config()
        plain = runner.run_sampled("gzip", config, intervals=3,
                                   warmup_insts=300,
                                   interval_insts=1_000)
        scoped = runner.run_sampled("gzip", config, intervals=3,
                                    warmup_insts=300,
                                    interval_insts=1_000, horizon=4_000)
        plain_entry, scoped_entry = runner.manifest[-2:]
        assert plain_entry["key"] != scoped_entry["key"]
        assert scoped.sampling["total_instructions"] == 4_000
        assert plain.sampling["total_instructions"] > 4_000

    def test_exact_cache_key_unchanged_by_sampling_param(self):
        config = baseline_sfc_mdt_config()
        assert cache_key("gzip", 1000, config) == \
            cache_key("gzip", 1000, config, sampling=None)
        assert cache_key("gzip", 1000, config) != \
            cache_key("gzip", 1000, config, sampling={"intervals": 4})

    def test_exact_manifest_digest_untouched_by_sampled_cells(self,
                                                              tmp_path):
        """Appending sampled cells must not perturb the digest of the
        exact cells already in a manifest slice."""
        runner = ExperimentRunner(scale=5_000, cache_dir=tmp_path)
        runner.run("gzip", baseline_sfc_mdt_config())
        exact_digest = perf.manifest_digest(runner.manifest)
        runner.run_sampled("gzip", baseline_sfc_mdt_config(),
                           intervals=3, warmup_insts=300,
                           interval_insts=1_000)
        assert perf.manifest_digest(runner.manifest[:1]) == exact_digest


class TestApiAndCli:
    def test_simulate_sampled(self, tmp_path):
        record = api.simulate_sampled("gzip", "baseline-sfc-mdt",
                                      scale=10_000, intervals=4,
                                      warmup_insts=300,
                                      interval_insts=1_000,
                                      cache_dir=tmp_path)
        assert record.sampling is not None
        assert record.ipc > 0

    def test_cli_sampled_run(self, tmp_path, capsys):
        from repro.cli import main

        code = main(["run", "gzip", "--scale", "10000",
                     "--sample-intervals", "4", "--warmup-insts", "300",
                     "--interval-insts", "1000",
                     "--cache-dir", str(tmp_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "sampled" in out and "95% CI" in out

    def test_cli_sampled_json(self, tmp_path, capsys):
        import json

        from repro.cli import main

        code = main(["run", "gzip", "--scale", "10000",
                     "--sample-intervals", "4", "--warmup-insts", "300",
                     "--interval-insts", "1000",
                     "--cache-dir", str(tmp_path), "--format", "json"])
        out = capsys.readouterr().out
        assert code == 0
        payload = json.loads(out)
        assert payload["sampling"]["ipc_ci95"] > 0

    def test_cli_sampled_rejects_multicore(self, tmp_path, capsys):
        from repro.cli import main

        code = main(["run", "gzip", "--cores", "2",
                     "--sample-intervals", "4",
                     "--cache-dir", str(tmp_path)])
        assert code == 2
        assert "single-core" in capsys.readouterr().err

    def test_cli_sampled_rejects_pipetrace(self, tmp_path, capsys):
        from repro.cli import main

        code = main(["run", "gzip", "--sample-intervals", "4",
                     "--epoch-cycles", "100", "--trace-out",
                     str(tmp_path / "t.jsonl"),
                     "--cache-dir", str(tmp_path)])
        assert code == 2
        assert "exact mode" in capsys.readouterr().err


class TestSystemCheckpointRestore:
    def test_private_mode_restores_from_checkpoints(self):
        from repro.checkpoint import capture_train
        from repro.pipeline.config import SystemConfig
        from repro.pipeline.system import System

        program = suites.build("gzip", 3_000)
        interp = Interpreter(program)
        golden_trace = interp.run(5_000_000)
        checkpoints, total = capture_train(program, every=1_000,
                                           warm=True)
        ckpt = checkpoints[1]
        resumed = ckpt.resume_interpreter(program)
        resumed.instructions_retired = 0
        suffix = resumed.run(500_000)
        config = SystemConfig(core=baseline_sfc_mdt_config(), cores=2,
                              memory_mode="private")
        system = System([program] * 2, config,
                        traces=[suffix] * 2,
                        checkpoints=[ckpt] * 2)
        result = system.run()
        expected = 2 * (total - ckpt.retired)
        assert result.instructions == expected
        for core in system.cores:
            assert core.memory.digest() == interp.memory.digest()

    def test_shared_mode_rejects_checkpoints(self):
        from repro.checkpoint import capture_train
        from repro.pipeline.config import SystemConfig
        from repro.pipeline.system import System

        program = suites.build("gzip", 2_000)
        checkpoints, _ = capture_train(program, every=500, warm=False)
        config = SystemConfig(core=baseline_sfc_mdt_config(), cores=2,
                              memory_mode="shared")
        with pytest.raises(ValueError, match="private"):
            System([program] * 2, config,
                   checkpoints=[checkpoints[0]] * 2)
