"""Tests for the predecode pass and the batch-dispatch fast-forward
engine (repro.isa.predecode + Interpreter.fast_forward).

The contracts:

* predecoded arrays round-trip to the original instruction stream for
  every committed workload (native suites + RV32 corpus) and for random
  programs;
* the predecode cache is keyed by content digest -- two identically
  built programs share one predecode object;
* the batch-dispatch engine is architecturally identical to N x step()
  and bit-identical (registers, memory digest, retire count, warm
  bpred/cache capsules) to the per-instruction reference engine, with
  and without warm-state training, at every cut point -- including cuts
  that land mid-block, past the halt, and in the wrong-path pad.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.branch.gshare import GsharePredictor
from repro.isa import Assembler, Interpreter
from repro.isa import instructions as ops
from repro.isa.instructions import Instruction
from repro.isa.predecode import (
    _STRAIGHT_KINDS,
    MAX_BLOCK_INSTRUCTIONS,
    PredecodedProgram,
)
from repro.isa.program import WRONG_PATH_PAD, Program
from repro.memory.cache import paper_hierarchy
from repro.memory.main_memory import MainMemory
from repro.workloads import random_program
from repro.workloads.suites import ALL_BENCHMARKS, RISCV_BENCHMARKS, build

_SLOW = settings(max_examples=25, deadline=None,
                 suppress_health_check=[HealthCheck.too_slow])


def _tuples(program):
    return [(inst.op, inst.rd, inst.rs1, inst.rs2, inst.imm)
            for inst in program.instructions]


class TestRoundTrip:
    """Predecoded arrays carry exactly the original instruction stream."""

    def test_native_suite_round_trips(self):
        for name in sorted(ALL_BENCHMARKS):
            program = build(name, scale=2_000)
            pd = program.predecoded()
            assert pd.to_instruction_tuples() == _tuples(program), name
            assert pd.length == len(program.instructions)

    def test_riscv_corpus_round_trips(self):
        assert RISCV_BENCHMARKS, "RV32 corpus missing"
        for name in sorted(RISCV_BENCHMARKS):
            program = build(name)
            pd = program.predecoded()
            assert pd.to_instruction_tuples() == _tuples(program), name

    @_SLOW
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_random_program_round_trips(self, seed):
        program = random_program(seed)
        pd = program.predecoded()
        assert pd.to_instruction_tuples() == _tuples(program)

    def test_run_lengths_partition_at_terminators(self):
        program = build("gzip", scale=2_000)
        pd = program.predecoded()
        for i in range(pd.length):
            if pd.kind[i] in _STRAIGHT_KINDS:
                assert pd.run_len[i] >= 1
                assert i + pd.run_len[i] <= pd.length
                # every instruction inside the run is straight-line
                for j in range(i, i + pd.run_len[i]):
                    assert pd.kind[j] in _STRAIGHT_KINDS
            else:
                assert pd.run_len[i] == 0


class TestPredecodeCache:
    """The cache is keyed by content digest, not object identity."""

    @staticmethod
    def _twin_programs():
        def builder():
            a = Assembler()
            a.li("r1", 0x1000)
            a.li("r2", 17)
            a.sd("r2", "r1")
            a.ld("r3", "r1")
            a.halt()
            return a.build()
        return builder(), builder()

    def test_identical_programs_share_one_predecode(self):
        first, second = self._twin_programs()
        assert first is not second
        assert first.predecoded() is second.predecoded()

    def test_distinct_programs_do_not_share(self):
        first, _ = self._twin_programs()
        other = Program([Instruction(ops.HALT)])
        assert first.predecoded() is not other.predecoded()

    def test_memo_survives_repeated_calls(self):
        program, _ = self._twin_programs()
        assert program.predecoded() is program.predecoded()


def _state(interp, bpred=None, hierarchy=None):
    return (list(interp.regs), interp.pc, interp.instructions_retired,
            interp.halted, interp.memory.digest(),
            bpred.export_state() if bpred is not None else None,
            hierarchy.export_state() if hierarchy is not None else None)


class TestDifferential:
    """fast_forward == N x step == fast_forward_reference, bit-exact."""

    @_SLOW
    @given(seed=st.integers(min_value=0, max_value=10_000),
           frac=st.floats(min_value=0.0, max_value=1.2),
           warm=st.booleans())
    def test_engine_matches_reference_and_stepping(self, seed, frac, warm):
        program = random_program(seed)
        total = len(Interpreter(program).run(500_000))
        k = int(frac * total)  # up to 20% past the halt

        engine = Interpreter(program)
        e_bpred = GsharePredictor() if warm else None
        e_hier = paper_hierarchy() if warm else None
        e_executed = engine.fast_forward(k, e_bpred, e_hier)

        reference = Interpreter(program)
        r_bpred = GsharePredictor() if warm else None
        r_hier = paper_hierarchy() if warm else None
        r_executed = reference.fast_forward_reference(k, r_bpred, r_hier)

        assert e_executed == r_executed
        assert _state(engine, e_bpred, e_hier) == \
            _state(reference, r_bpred, r_hier)

        stepped = Interpreter(program)
        for _ in range(k):
            stepped.step()
        assert engine.pc == stepped.pc
        assert engine.regs == stepped.regs
        assert engine.halted == stepped.halted
        assert engine.instructions_retired == stepped.instructions_retired
        assert engine.memory.digest() == stepped.memory.digest()

    @_SLOW
    @given(seed=st.integers(min_value=0, max_value=10_000),
           cuts=st.lists(st.integers(min_value=1, max_value=500),
                         min_size=1, max_size=4))
    def test_resumable_in_arbitrary_chunks(self, seed, cuts):
        """Chunked fast-forwarding (the checkpoint capture pattern)
        equals one uninterrupted reference pass of the same length."""
        program = random_program(seed)
        engine = Interpreter(program)
        e_bpred, e_hier = GsharePredictor(), paper_hierarchy()
        for cut in cuts:
            engine.fast_forward(cut, e_bpred, e_hier)
        reference = Interpreter(program)
        r_bpred, r_hier = GsharePredictor(), paper_hierarchy()
        reference.fast_forward_reference(sum(cuts), r_bpred, r_hier)
        assert _state(engine, e_bpred, e_hier) == \
            _state(reference, r_bpred, r_hier)


class _CountingMemory(MainMemory):
    """MainMemory that counts read_int calls (loads performed)."""

    def __init__(self):
        super().__init__()
        self.reads = 0

    def read_int(self, addr, size):
        self.reads += 1
        return super().read_int(addr, size)


class TestR0LoadUnification:
    """Loads with rd == r0 perform the read in every execution path."""

    @staticmethod
    def _program():
        a = Assembler()
        a.li("r1", 0x2000)
        a.li("r2", 0xAB)
        a.sb("r2", "r1")
        a.lb("r0", "r1")   # architectural no-op, but the read happens
        a.ld("r0", "r1")
        a.halt()
        return a.build()

    def _reads(self, runner):
        program = self._program()
        memory = _CountingMemory()
        interp = Interpreter(program, memory=memory)
        runner(interp)
        assert interp.halted
        return memory.reads

    def test_all_paths_perform_r0_load_reads(self):
        by_step = self._reads(lambda i: i.run(100))
        assert by_step == 2
        assert self._reads(lambda i: i.fast_forward(100)) == by_step
        assert self._reads(
            lambda i: i.fast_forward_reference(100)) == by_step
        # mid-block budget cut: the scalar tail path reads too
        assert self._reads(lambda i: (i.fast_forward(4),
                                      i.fast_forward(100))) == by_step


class TestBlockDispatchEdges:
    def test_budget_cut_mid_block_matches_stepping(self):
        a = Assembler()
        a.li("r1", 0)
        for _ in range(10):
            a.addi("r1", "r1", 3)
        a.halt()
        program = a.build()
        for k in range(0, 13):
            ff = Interpreter(program)
            assert ff.fast_forward(k) == k
            stepped = Interpreter(program)
            for _ in range(k):
                stepped.step()
            assert (ff.regs, ff.pc, ff.halted) == \
                (stepped.regs, stepped.pc, stepped.halted), k

    def test_run_longer_than_block_cap(self):
        a = Assembler()
        a.li("r1", 0)
        for _ in range(MAX_BLOCK_INSTRUCTIONS + 150):
            a.addi("r1", "r1", 1)
        a.halt()
        program = a.build()
        interp = Interpreter(program)
        executed = interp.fast_forward(10_000)
        assert interp.halted
        assert executed == MAX_BLOCK_INSTRUCTIONS + 150 + 2
        assert interp.regs[1] == MAX_BLOCK_INSTRUCTIONS + 150

    def test_wrong_path_pad_and_implicit_halt(self):
        # No explicit halt: execution falls off the end, coasts through
        # the nop pad, and hits the implicit halt -- identically to
        # stepping.
        program = Program([Instruction(ops.ADDI, rd=1, rs1=1, imm=5)])
        ff = Interpreter(program)
        executed = ff.fast_forward(10_000)
        stepped = Interpreter(program)
        count = 0
        while stepped.step() is not None:
            count += 1
        assert ff.halted and stepped.halted
        assert executed == count == 1 + WRONG_PATH_PAD + 1
        assert ff.pc == stepped.pc
        assert ff.regs == stepped.regs

    def test_unaligned_pc_executes_as_nop(self):
        program = Program([Instruction(ops.ADDI, rd=1, rs1=1, imm=5),
                           Instruction(ops.HALT)])
        ff = Interpreter(program)
        ff.pc = 2
        stepped = Interpreter(program)
        stepped.pc = 2
        ff.fast_forward(3)
        for _ in range(3):
            stepped.step()
        assert (ff.pc, ff.regs, ff.halted) == \
            (stepped.pc, stepped.regs, stepped.halted)

    def test_warm_capsule_identical_to_reference_on_kernels(self):
        """Line-crossing-only I-cache touches leave the same tag state
        as the reference's per-instruction touches."""
        for name in ("gzip", "mcf"):
            program = build(name, scale=3_000)
            engine = Interpreter(program)
            e_bpred, e_hier = GsharePredictor(), paper_hierarchy()
            engine.fast_forward(50_000, e_bpred, e_hier)
            reference = Interpreter(program)
            r_bpred, r_hier = GsharePredictor(), paper_hierarchy()
            reference.fast_forward_reference(50_000, r_bpred, r_hier)
            assert _state(engine, e_bpred, e_hier) == \
                _state(reference, r_bpred, r_hier), name


class TestPredecodedProgramShape:
    def test_blocks_are_cached_per_entry(self):
        program = build("gzip", scale=2_000)
        pd = PredecodedProgram(program.instructions, program.digest())
        entry = next(i for i in range(pd.length) if pd.run_len[i])
        blk1 = pd.cold_block(entry)
        blk2 = pd.cold_block(entry)
        assert blk1 is blk2 and blk1 is not None
        fn, blen = blk1
        assert 1 <= blen <= min(pd.run_len[entry], MAX_BLOCK_INSTRUCTIONS)
